//! `MachineSet` — the concrete, enum-dispatched machine families of this
//! repository, and `AlgoSet`, the matching algorithm-instance enum that
//! builds them.
//!
//! The boxed `begin_rename` API is convenient but costs a heap
//! allocation per machine per trial and a virtual call per step. A
//! [`MachineSet`] is one concrete enum over every algorithm family —
//! splitter walks, expander majority walks, snapshot renaming, composite
//! (staged/piped) renamers, store&collect first stores, unbounded-naming
//! acquires, and wait-free altruistic deposits (with their serve-only
//! helpers) — so a pool of them is plain `Vec` storage,
//! dispatch is a jump table instead of a vtable load, and
//! [`StepMachine::reset`] re-arms the same storage for the next trial.
//! Families whose machines are closure-built (the composite renamers)
//! keep one box *inside* their variant; the box survives across trials,
//! so the per-trial allocation is still gone.
//!
//! [`AlgoSet`] is the uniform entry point the grid driver uses to run
//! non-renaming workloads: it owns the algorithm instance and hands out
//! `MachineSet`s per process, with [`SetOutput::claim`] as the common
//! "what exclusive resource did this process end up holding" view that
//! safety checks compare (a new name, a value register, a claimed
//! integer).
//!
//! ```
//! use exsel_core::MoirAnderson;
//! use exsel_shm::RegAlloc;
//! use exsel_sim::{policy::RandomPolicy, AlgoSet, StepEngine};
//!
//! let mut alloc = RegAlloc::new();
//! let algo = AlgoSet::MoirAnderson(MoirAnderson::new(&mut alloc, 4));
//! let mut pool = algo.pool(&[10, 20, 30, 40]);
//! let mut engine = StepEngine::reusable(alloc.total());
//! for seed in 0..8 {
//!     let mut policy = RandomPolicy::new(seed);
//!     engine.run_pool(&mut policy, &mut pool);
//!     let mut claims: Vec<u64> = pool
//!         .completed()
//!         .filter_map(|(_, out)| out.claim())
//!         .collect();
//!     claims.sort_unstable();
//!     claims.dedup();
//!     assert_eq!(claims.len(), 4, "names must be exclusive");
//! }
//! ```

use exsel_core::{
    Majority, MajorityOp, MoirAnderson, Outcome, RenameMachine, SnapshotRename, SnapshotRenameOp,
    SplitWalkOp, StepRename,
};
use exsel_shm::{OpKind, Pid, Poll, RegId, ShmOp, StepMachine, Word};
use exsel_storecollect::{CollectOp, FirstStoreOp, StoreCollect, StoreCollectError};
use exsel_unbounded::{AltruisticDeposit, DepositOp, NamingMachine, UnboundedNaming};

use crate::pool::MachinePool;

/// The uniform output of a [`MachineSet`] trial: what the process ended
/// up holding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetOutput {
    /// A renaming outcome (all four renaming variants).
    Rename(Outcome),
    /// A first-store result: the adopted value register, or capacity
    /// exhaustion.
    Store(Result<RegId, StoreCollectError>),
    /// The last integer claimed by an unbounded-naming machine.
    Name(u64),
    /// The last arena register claimed by a wait-free deposit machine
    /// (`None` for serve-only machines, which consume nothing).
    Deposit(Option<u64>),
    /// A collect result: how many `(owner, value)` pairs the view holds.
    /// Collects acquire nothing exclusive; the view itself stays readable
    /// on the machine ([`exsel_storecollect::CollectOp::view`]).
    Collect(usize),
}

impl SetOutput {
    /// The exclusive resource this process acquired, as one comparable
    /// integer — a new name, a value-register id, or a claimed integer.
    /// `None` when the machine completed without acquiring (instance
    /// failure, capacity exhaustion). Safety checks assert claims are
    /// pairwise distinct; the numbers are only comparable *within* one
    /// family.
    #[must_use]
    pub fn claim(&self) -> Option<u64> {
        match self {
            SetOutput::Rename(outcome) => outcome.name(),
            SetOutput::Store(Ok(reg)) => Some(reg.0 as u64),
            SetOutput::Store(Err(_)) => None,
            SetOutput::Name(name) => Some(*name),
            SetOutput::Deposit(reg) => *reg,
            SetOutput::Collect(_) => None,
        }
    }

    /// The renaming outcome, for rename-family machines.
    #[must_use]
    pub fn outcome(&self) -> Option<&Outcome> {
        match self {
            SetOutput::Rename(outcome) => Some(outcome),
            _ => None,
        }
    }
}

/// One machine from any of the repository's algorithm families; see the
/// module docs.
pub enum MachineSet<'a> {
    /// Moir–Anderson splitter-grid walk.
    Walk(SplitWalkOp<'a>),
    /// Expander majority walk.
    Majority(MajorityOp<'a>),
    /// Snapshot-based `(2k−1)`-renaming.
    SnapshotRename(SnapshotRenameOp<'a>),
    /// A composite (staged/piped) renamer — Basic, PolyLog,
    /// Almost-Adaptive, Adaptive, Efficient. The box is built once and
    /// pooled; `reset` re-arms it in place.
    Rename(RenameMachine<'a>),
    /// Store&collect first store (rename + raise controls + value write).
    FirstStore(FirstStoreOp<'a>),
    /// Unbounded-naming acquire loop.
    Naming(NamingMachine<'a>),
    /// Wait-free altruistic deposit (or serve-only) loop.
    Deposit(DepositOp<'a>),
    /// Store&collect prefix-read collect.
    Collect(CollectOp<'a>),
}

impl StepMachine for MachineSet<'_> {
    type Output = SetOutput;

    fn op(&self) -> ShmOp {
        match self {
            MachineSet::Walk(m) => m.op(),
            MachineSet::Majority(m) => m.op(),
            MachineSet::SnapshotRename(m) => m.op(),
            MachineSet::Rename(m) => m.op(),
            MachineSet::FirstStore(m) => m.op(),
            MachineSet::Naming(m) => m.op(),
            MachineSet::Deposit(m) => m.op(),
            MachineSet::Collect(m) => m.op(),
        }
    }

    fn peek(&self) -> (OpKind, RegId) {
        match self {
            MachineSet::Walk(m) => m.peek(),
            MachineSet::Majority(m) => m.peek(),
            MachineSet::SnapshotRename(m) => m.peek(),
            MachineSet::Rename(m) => m.peek(),
            MachineSet::FirstStore(m) => m.peek(),
            MachineSet::Naming(m) => m.peek(),
            MachineSet::Deposit(m) => m.peek(),
            MachineSet::Collect(m) => m.peek(),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<SetOutput> {
        let wrap_rename = |poll: Poll<Outcome>| match poll {
            Poll::Ready(outcome) => Poll::Ready(SetOutput::Rename(outcome)),
            Poll::Pending => Poll::Pending,
        };
        match self {
            MachineSet::Walk(m) => wrap_rename(m.advance(input)),
            MachineSet::Majority(m) => wrap_rename(m.advance(input)),
            MachineSet::SnapshotRename(m) => wrap_rename(m.advance(input)),
            MachineSet::Rename(m) => wrap_rename(m.advance(input)),
            MachineSet::FirstStore(m) => match m.advance(input) {
                Poll::Ready(res) => Poll::Ready(SetOutput::Store(res)),
                Poll::Pending => Poll::Pending,
            },
            MachineSet::Naming(m) => match m.advance(input) {
                Poll::Ready(name) => Poll::Ready(SetOutput::Name(name)),
                Poll::Pending => Poll::Pending,
            },
            MachineSet::Deposit(m) => match m.advance(input) {
                Poll::Ready(reg) => Poll::Ready(SetOutput::Deposit(reg)),
                Poll::Pending => Poll::Pending,
            },
            MachineSet::Collect(m) => match m.advance(input) {
                Poll::Ready(len) => Poll::Ready(SetOutput::Collect(len)),
                Poll::Pending => Poll::Pending,
            },
        }
    }

    fn reset(&mut self, pid: Pid) {
        match self {
            MachineSet::Walk(m) => m.reset(pid),
            MachineSet::Majority(m) => m.reset(pid),
            MachineSet::SnapshotRename(m) => m.reset(pid),
            MachineSet::Rename(m) => m.reset(pid),
            MachineSet::FirstStore(m) => m.reset(pid),
            MachineSet::Naming(m) => m.reset(pid),
            MachineSet::Deposit(m) => m.reset(pid),
            MachineSet::Collect(m) => m.reset(pid),
        }
    }
}

/// An owned algorithm instance of any family, handing out [`MachineSet`]
/// machines — the grid driver's uniform, non-`StepRename` entry point.
pub enum AlgoSet {
    /// Moir–Anderson splitter grid.
    MoirAnderson(MoirAnderson),
    /// `Majority(ℓ, N)` expander renaming.
    Majority(Majority),
    /// Snapshot-based `(2k−1)`-renaming baseline.
    SnapshotRename(SnapshotRename),
    /// Any composite renamer behind the boxed [`StepRename`] face.
    Rename(Box<dyn StepRename + Send>),
    /// A store&collect object; machines run the first-store path (the
    /// stored value is the process's original name).
    StoreCollect(StoreCollect),
    /// A store&collect object with mixed roles: the last `collectors` of
    /// the contenders run the step-machine collect path
    /// ([`exsel_storecollect::CollectOp`]) while everyone else first-
    /// stores — the end-to-end store → collect shape of ROADMAP item 3,
    /// with collects off the blocking code path.
    StoreCollectRoundtrip {
        /// The shared store&collect object.
        sc: StoreCollect,
        /// Total contenders (the pool size the roles are split over).
        contenders: usize,
        /// How many of the highest pids collect instead of storing.
        collectors: usize,
    },
    /// The unbounded-naming object; each machine claims `rounds`
    /// integers per trial.
    Naming {
        /// The shared naming object.
        naming: UnboundedNaming,
        /// Integers each process claims per trial.
        rounds: usize,
    },
    /// The wait-free altruistic repository (Theorem 9). The last
    /// `servers` of the repository's `n` processes run serve-only
    /// machines (the paper's fairness assumption); everyone else
    /// performs `rounds` deposits per trial, depositing
    /// `original + round` values.
    Deposit {
        /// The shared repository.
        repo: AltruisticDeposit,
        /// Deposits each depositor performs per trial.
        rounds: usize,
        /// How many of the highest pids serve instead of depositing.
        servers: usize,
    },
}

impl AlgoSet {
    /// Starts process `pid`'s machine on input `original` (renaming
    /// input, store token+value, ignored by naming).
    #[must_use]
    pub fn begin(&self, pid: Pid, original: u64) -> MachineSet<'_> {
        match self {
            AlgoSet::MoirAnderson(algo) => MachineSet::Walk(algo.begin_walk(original)),
            AlgoSet::Majority(algo) => MachineSet::Majority(algo.begin_walk(original)),
            AlgoSet::SnapshotRename(algo) => {
                MachineSet::SnapshotRename(algo.begin_rename_slot(pid.0, original))
            }
            AlgoSet::Rename(algo) => MachineSet::Rename(algo.begin_rename(pid, original)),
            AlgoSet::StoreCollect(sc) => {
                MachineSet::FirstStore(sc.begin_first_store(pid, original, original))
            }
            AlgoSet::StoreCollectRoundtrip {
                sc,
                contenders,
                collectors,
            } => {
                assert!(
                    *collectors < *contenders,
                    "{collectors} collectors leave no storer among {contenders}"
                );
                if pid.0 >= contenders - collectors {
                    MachineSet::Collect(sc.begin_collect(pid))
                } else {
                    MachineSet::FirstStore(sc.begin_first_store(pid, original, original))
                }
            }
            AlgoSet::Naming { naming, rounds } => {
                MachineSet::Naming(naming.begin_machine(pid, *rounds))
            }
            AlgoSet::Deposit {
                repo,
                rounds,
                servers,
            } => {
                let n = repo.num_processes();
                assert!(
                    *servers <= n,
                    "{servers} serve-only processes exceed the repository's {n}"
                );
                MachineSet::Deposit(if pid.0 >= n - servers {
                    // Serve long enough to keep every depositor's column
                    // supplied for the whole trial.
                    repo.begin_server(pid, (2 * n * *rounds) as u64)
                } else {
                    repo.begin_deposit(pid, original, *rounds)
                })
            }
        }
    }

    /// A pool of one machine per contender: machine `p` runs
    /// `originals[p]` as process `Pid(p)`.
    #[must_use]
    pub fn pool(&self, originals: &[u64]) -> MachinePool<MachineSet<'_>> {
        originals
            .iter()
            .enumerate()
            .map(|(p, &orig)| self.begin(Pid(p), orig))
            .collect()
    }

    /// The [`SnapArena`](exsel_shm::SnapArena) backing this family's
    /// shared snapshot object, for families built on one — the hook
    /// sweep drivers use to fold record/view recycling telemetry into
    /// their [`Metrics`](crate::Metrics) (composite renamers box their
    /// stages behind `StepRename` and expose no arena).
    #[must_use]
    pub fn snapshot_arena(&self) -> Option<&exsel_shm::SnapArena> {
        match self {
            AlgoSet::SnapshotRename(algo) => Some(algo.snapshot().arena()),
            AlgoSet::Naming { naming, .. } => Some(naming.snapshot().arena()),
            AlgoSet::Deposit { repo, .. } => Some(repo.naming().snapshot().arena()),
            _ => None,
        }
    }

    /// Appends the registers a machine begun for `pid` may touch — the
    /// [`exsel_shm::Footprint`] contract, dispatched per family exactly
    /// like [`AlgoSet::begin`]. Renamers declare through
    /// [`StepRename::footprint`]; the session families implement
    /// [`exsel_shm::Footprint`] directly.
    pub fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        use exsel_shm::Footprint as _;
        match self {
            AlgoSet::MoirAnderson(algo) => StepRename::footprint(algo, pid, spec),
            AlgoSet::Majority(algo) => StepRename::footprint(algo, pid, spec),
            AlgoSet::SnapshotRename(algo) => StepRename::footprint(algo, pid, spec),
            AlgoSet::Rename(algo) => algo.footprint(pid, spec),
            AlgoSet::StoreCollect(sc) | AlgoSet::StoreCollectRoundtrip { sc, .. } => {
                sc.footprint(pid, spec);
            }
            AlgoSet::Naming { naming, .. } => naming.footprint(pid, spec),
            AlgoSet::Deposit { repo, .. } => repo.footprint(pid, spec),
        }
    }

    /// Compiles a dynamic [`AccessChecker`](exsel_analysis::AccessChecker)
    /// for an `n`-contender instance over a bank of `num_registers`,
    /// running the static non-interference pass in the process. Install
    /// the result with [`StepEngine::install_checker`](crate::StepEngine::install_checker).
    ///
    /// # Errors
    ///
    /// Returns the static pass's error if the declarations interfere.
    #[cfg(feature = "check")]
    pub fn checker(
        &self,
        n: usize,
        num_registers: usize,
    ) -> Result<exsel_analysis::AccessChecker, exsel_analysis::StaticError> {
        struct ByBegin<'a>(&'a AlgoSet);
        impl exsel_shm::Footprint for ByBegin<'_> {
            fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
                self.0.footprint(pid, spec);
            }
        }
        exsel_analysis::AccessChecker::for_instance(&ByBegin(self), n, num_registers)
    }

    /// Whether this family guarantees a claim for every surviving
    /// process (the `Majority` renamer only promises half; serve-only
    /// deposit machines legitimately claim nothing; everyone else names,
    /// stores or claims for all survivors within capacity).
    #[must_use]
    pub fn claims_all_survivors(&self) -> bool {
        !matches!(
            self,
            AlgoSet::Majority(_)
                | AlgoSet::Deposit { servers: 1.., .. }
                | AlgoSet::StoreCollectRoundtrip {
                    collectors: 1..,
                    ..
                }
        )
    }
}

impl std::fmt::Debug for AlgoSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoSet::MoirAnderson(_) => write!(f, "AlgoSet::MoirAnderson"),
            AlgoSet::Majority(_) => write!(f, "AlgoSet::Majority"),
            AlgoSet::SnapshotRename(_) => write!(f, "AlgoSet::SnapshotRename"),
            AlgoSet::Rename(_) => write!(f, "AlgoSet::Rename"),
            AlgoSet::StoreCollect(_) => write!(f, "AlgoSet::StoreCollect"),
            AlgoSet::StoreCollectRoundtrip {
                contenders,
                collectors,
                ..
            } => write!(
                f,
                "AlgoSet::StoreCollectRoundtrip(contenders={contenders}, collectors={collectors})"
            ),
            AlgoSet::Naming { rounds, .. } => write!(f, "AlgoSet::Naming(rounds={rounds})"),
            AlgoSet::Deposit {
                rounds, servers, ..
            } => write!(f, "AlgoSet::Deposit(rounds={rounds}, servers={servers})"),
        }
    }
}

/// The pooled machine bundle of one service-harness client slot: every
/// machine a full acquire → store → collect → deposit session needs,
/// built once per slot and re-armed in place as the open-loop harness
/// binds, frees and re-binds clients (`exsel_sim::service`). Slots are
/// stored as plain `Vec` slabs over this bundle, so an open-loop run
/// performs zero per-session machine allocations on either register-bank
/// backend.
///
/// Crash dirt is tracked here because it is machine state, not client
/// state: a crashed incarnation leaves the naming (or deposit) machine
/// mid-protocol, and the *next* incarnation on the same slot must
/// re-enter it as a fresh contender with suites republished instead of
/// starting over ([`NamingMachine::reenter`]) — the paper's wasted-claim
/// crash budget.
pub struct SessionMachines<'w> {
    /// Unbounded-naming acquire machine (claims the session ticket).
    pub naming: NamingMachine<'w>,
    /// The slot's first store (rename + raise controls + value write).
    pub first_store: FirstStoreOp<'w>,
    /// The value register adopted by the completed first store; `None`
    /// until the slot's first session registers it.
    pub registered: Option<exsel_shm::RegId>,
    /// Prefix-read collect machine.
    pub collect: CollectOp<'w>,
    /// Wait-free altruistic deposit machine.
    pub deposit: DepositOp<'w>,
    /// A previous incarnation crashed mid-acquire; the next session must
    /// re-enter the naming machine instead of beginning fresh.
    pub naming_dirty: bool,
    /// A previous incarnation crashed mid-deposit; the next deposit
    /// round must re-enter instead of beginning fresh.
    pub deposit_dirty: bool,
}

impl<'w> SessionMachines<'w> {
    /// Builds the bundle for slot `pid` over the service's three shared
    /// objects; `original` is the slot's store&collect token.
    #[must_use]
    pub fn new(
        naming: &'w UnboundedNaming,
        sc: &'w StoreCollect,
        repo: &'w AltruisticDeposit,
        pid: Pid,
        original: u64,
    ) -> Self {
        SessionMachines {
            naming: naming.begin_machine(pid, 1),
            first_store: sc.begin_first_store(pid, original, 0),
            registered: None,
            collect: sc.begin_collect(pid),
            deposit: repo.begin_deposit(pid, 0, 1),
            naming_dirty: false,
            deposit_dirty: false,
        }
    }

    /// Arms the acquire phase for a newly bound client: re-enters the
    /// naming machine when the previous incarnation died mid-acquire
    /// (keeping its burned claims), else begins a fresh session.
    pub fn begin_acquire(&mut self) {
        if self.naming_dirty {
            self.naming.reenter();
            self.naming_dirty = false;
        } else {
            self.naming.begin_session();
        }
    }

    /// Arms the deposit phase for `value`: re-enters the deposit machine
    /// when a previous incarnation died mid-round, else begins fresh.
    pub fn begin_deposit(&mut self, value: u64) {
        if self.deposit_dirty {
            self.deposit.reenter(value);
            self.deposit_dirty = false;
        } else {
            self.deposit.begin_round(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StepEngine;
    use crate::policy::RandomPolicy;
    use exsel_core::RenameConfig;
    use exsel_shm::RegAlloc;
    use std::collections::BTreeSet;

    fn distinct_claims(algo: &AlgoSet, regs: usize, originals: &[u64], seeds: u64) {
        let mut pool = algo.pool(originals);
        let mut engine = StepEngine::reusable(regs);
        for seed in 0..seeds {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            let claims: Vec<u64> = pool
                .completed()
                .filter_map(|(_, out)| out.claim())
                .collect();
            let set: BTreeSet<u64> = claims.iter().copied().collect();
            assert_eq!(set.len(), claims.len(), "{algo:?} seed {seed}: {claims:?}");
            if algo.claims_all_survivors() {
                assert_eq!(claims.len(), originals.len(), "{algo:?} seed {seed}");
            } else {
                assert!(2 * claims.len() >= originals.len(), "{algo:?} seed {seed}");
            }
        }
    }

    #[test]
    fn every_family_claims_exclusively_across_pooled_trials() {
        let cfg = RenameConfig::default();
        let originals: Vec<u64> = (0..4u64).map(|i| i * 13 + 1).collect();

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::MoirAnderson(MoirAnderson::new(&mut alloc, 4));
        distinct_claims(&algo, alloc.total(), &originals, 5);

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::Majority(Majority::new(&mut alloc, 64, 4, &cfg));
        distinct_claims(&algo, alloc.total(), &originals, 5);

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::SnapshotRename(SnapshotRename::new(&mut alloc, 4));
        distinct_claims(&algo, alloc.total(), &originals, 5);

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::Rename(Box::new(exsel_core::BasicRename::new(
            &mut alloc, 64, 4, &cfg,
        )));
        distinct_claims(&algo, alloc.total(), &originals, 5);

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::StoreCollect(StoreCollect::known(&mut alloc, 4, 64, &cfg));
        distinct_claims(&algo, alloc.total(), &originals, 5);

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::Naming {
            naming: UnboundedNaming::new(&mut alloc, 4),
            rounds: 2,
        };
        distinct_claims(&algo, alloc.total(), &originals, 5);

        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::Deposit {
            repo: AltruisticDeposit::new(&mut alloc, 4, 512),
            rounds: 2,
            servers: 0,
        };
        distinct_claims(&algo, alloc.total(), &originals, 5);
    }

    #[test]
    fn deposit_family_mixes_depositors_and_servers() {
        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::Deposit {
            repo: AltruisticDeposit::new(&mut alloc, 4, 512),
            rounds: 2,
            servers: 2,
        };
        assert!(!algo.claims_all_survivors());
        let originals: Vec<u64> = (0..4u64).map(|i| i * 100 + 1).collect();
        let mut pool = algo.pool(&originals);
        let mut engine = StepEngine::reusable(alloc.total());
        for seed in 0..4u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            // Everyone completes: depositors with their last register,
            // servers with None.
            assert_eq!(pool.completed().count(), 4, "seed {seed}");
            let claims: Vec<u64> = pool
                .completed()
                .filter_map(|(_, out)| out.claim())
                .collect();
            assert_eq!(claims.len(), 2, "seed {seed}: {claims:?}");
            let servers = pool
                .machines()
                .iter()
                .filter(|m| matches!(m, MachineSet::Deposit(d) if d.is_server()))
                .count();
            assert_eq!(servers, 2);
        }
    }

    #[test]
    fn storecollect_roundtrip_mixes_storers_and_collectors() {
        let cfg = RenameConfig::default();
        let mut alloc = RegAlloc::new();
        let algo = AlgoSet::StoreCollectRoundtrip {
            sc: StoreCollect::adaptive(&mut alloc, 4, &cfg),
            contenders: 4,
            collectors: 2,
        };
        assert!(!algo.claims_all_survivors());
        let originals: Vec<u64> = (0..4u64).map(|i| i * 7 + 1).collect();
        let mut pool = algo.pool(&originals);
        let mut engine = StepEngine::reusable(alloc.total());
        for seed in 0..4u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            assert_eq!(pool.completed().count(), 4, "seed {seed}");
            // Storers claim distinct value registers; collectors claim
            // nothing but their views only hold registered owners.
            let claims: Vec<u64> = pool
                .completed()
                .filter_map(|(_, out)| out.claim())
                .collect();
            let set: BTreeSet<u64> = claims.iter().copied().collect();
            assert_eq!(claims.len(), 2, "seed {seed}: {claims:?}");
            assert_eq!(set.len(), claims.len(), "seed {seed}");
            for m in pool.machines() {
                if let MachineSet::Collect(c) = m {
                    let owners: BTreeSet<u64> = c.view().iter().map(|&(o, _)| o).collect();
                    assert_eq!(owners.len(), c.view().len(), "duplicate owner in view");
                    assert!(c.view().len() <= 2);
                }
            }
        }
    }

    #[test]
    fn set_output_claims() {
        assert_eq!(SetOutput::Rename(Outcome::Named(7)).claim(), Some(7));
        assert_eq!(SetOutput::Rename(Outcome::Failed).claim(), None);
        assert_eq!(SetOutput::Store(Ok(RegId(3))).claim(), Some(3));
        assert_eq!(
            SetOutput::Store(Err(StoreCollectError::CapacityExceeded)).claim(),
            None
        );
        assert_eq!(SetOutput::Name(9).claim(), Some(9));
        assert!(SetOutput::Name(9).outcome().is_none());
        assert_eq!(SetOutput::Deposit(Some(4)).claim(), Some(4));
        assert_eq!(SetOutput::Deposit(None).claim(), None);
        assert_eq!(
            SetOutput::Rename(Outcome::Named(7)).outcome(),
            Some(&Outcome::Named(7))
        );
    }
}
