//! Reduced exhaustive exploration: sleep-set partial-order reduction,
//! pid-symmetry canonicalization and visited-state pruning over the
//! pooled [`StepEngine`], with counterexample minimization.
//!
//! The unreduced explorers of [`mod@crate::explore`] enumerate **every**
//! grant sequence — exponential in the total operation count, which caps
//! exhaustive verification at 3 processes for the compete family
//! (73,608 executions). This module cuts the *number* of executions
//! along three independent axes, each behind a [`ReduceConfig`] flag so
//! the unreduced walk remains available as a differential oracle (the
//! `pending_rebuild(true)` / `recycling(false)` pattern):
//!
//! * **Sleep sets** ([`ReduceConfig::sleep_sets`]) — two pending
//!   operations are *independent* when they commute: they target
//!   disjoint registers, or both only read the same register
//!   ([`independent`]). Executions differing only in the order of
//!   adjacent independent grants reach identical states (one
//!   Mazurkiewicz trace class), so exploring one representative per
//!   class suffices. After a branch `c` of a node is fully explored,
//!   `c` is put to sleep for the node's remaining branches; a child
//!   inherits the sleeping processes whose pending operations are
//!   independent of the granted one. Because the lock-step model keeps
//!   every live process enabled at every node, sleep sets alone are
//!   sound here — no persistent-set computation is needed — and they
//!   preserve the exact set of reachable terminal states.
//! * **Visited states** ([`ReduceConfig::visited`]) — the engine is
//!   deterministic, so two nodes in identical global states (machine
//!   control states + results + register bank, digested through
//!   [`exsel_shm::Fingerprint`]) root identical subtrees. A node whose
//!   state was already expanded under a sleep set **no larger** than the
//!   current one is cut: the earlier expansion explored a superset of
//!   its branches (the covering-mask rule; masks are compared per
//!   canonical digest).
//! * **Pid symmetry** ([`ReduceConfig::symmetry`]) — the paper's
//!   algorithms are symmetric under relabeling process ids together with
//!   the tokens they carry. The canonical digest is the minimum over all
//!   `n!` pid permutations, with token payloads relabeled through
//!   [`exsel_shm::TokenMap`], so symmetric states collide in the visited
//!   set. With symmetry on, terminal states are preserved only *up to
//!   relabeling*: checkers must themselves be pid-symmetric (the
//!   compete checks — "at most one winner" — are).
//!
//! On the first failing `check`, the failing grant sequence is
//! replay-shrunk ([`ReduceConfig::shrink`]): greedy chunk removal over
//! the deterministic engine (`ddmin`-style halving), replaying each
//! candidate through [`crate::policy::Scripted`] with round-robin
//! fallback. The result — a subsequence of the original failing
//! schedule that still fails — lands in
//! [`ExploreReport::minimized`]; [`replay_pool`] re-executes it.
//!
//! Every node of the walk is one engine run: the prefix of grants is
//! replayed, the pending set past it observed once, and the run aborted
//! by crashing the remaining machines — [`crate::Action::Crash`] never
//! advances a machine, so the post-abort pool and bank are *exactly*
//! the node's state, which is what makes the fingerprint probe free of
//! any state-cloning machinery.

use std::collections::HashMap;

use exsel_shm::{Fingerprint, OpKind, Pid, RegisterBank, StateHasher, StepMachine, TokenMap};

use crate::engine::StepEngine;
use crate::explore::ExploreReport;
use crate::policy::{Action, PendingOp, Policy, Scripted};
use crate::pool::MachinePool;

/// Which reductions the reduced explorer applies.
///
/// All-off ([`ReduceConfig::off`]) is the oracle configuration: the same
/// depth-first enumerator with every reduction disabled, which must
/// reproduce the unreduced [`crate::explore_pool`] execution count and
/// verdicts exactly (differentially tested).
#[derive(Clone, Debug)]
pub struct ReduceConfig {
    /// Sleep-set partial-order reduction (one execution per Mazurkiewicz
    /// trace class).
    pub sleep_sets: bool,
    /// Visited-state subtree cutting by state fingerprint. Requires the
    /// machine family to implement [`Fingerprint`] soundly (use
    /// [`explore_pool_reduced`]).
    pub visited: bool,
    /// Canonicalize fingerprints under pid permutation (implies
    /// `visited`). Checkers must be pid-symmetric.
    pub symmetry: bool,
    /// Token carried by each process (`tokens[i]` = pid `i`'s token),
    /// relabeled alongside pids when `symmetry` is on. Must be pairwise
    /// distinct and one per pooled machine.
    pub tokens: Vec<u64>,
    /// Truncate the walk after this many complete executions.
    pub max_executions: u64,
    /// Minimize the first failing schedule by replay-shrinking. When
    /// off, the failing schedule is reported unminimized.
    pub shrink: bool,
}

impl ReduceConfig {
    /// Every reduction off — the differential-oracle walk.
    #[must_use]
    pub fn off(max_executions: u64) -> Self {
        ReduceConfig {
            sleep_sets: false,
            visited: false,
            symmetry: false,
            tokens: Vec::new(),
            max_executions,
            shrink: true,
        }
    }

    /// Sleep sets only — sound for *every* machine family, no
    /// fingerprinting involved (the mode for composite machines like the
    /// store&collect renamers whose state cannot be hashed cheaply).
    #[must_use]
    pub fn sleep_only(max_executions: u64) -> Self {
        ReduceConfig {
            sleep_sets: true,
            ..ReduceConfig::off(max_executions)
        }
    }

    /// The full stack: sleep sets + visited states + pid-symmetry
    /// canonicalization over the given per-process tokens.
    #[must_use]
    pub fn full(tokens: &[u64], max_executions: u64) -> Self {
        ReduceConfig {
            sleep_sets: true,
            visited: true,
            symmetry: true,
            tokens: tokens.to_vec(),
            ..ReduceConfig::off(max_executions)
        }
    }
}

/// Whether two pending operations commute: they target different
/// registers, or both only read the shared one. Granting two independent
/// operations in either order yields the same global state.
#[must_use]
pub fn independent(a: &PendingOp, b: &PendingOp) -> bool {
    a.reg != b.reg || (a.kind == OpKind::Read && b.kind == OpKind::Read)
}

/// Replays `prefix` grants, observes the pending set at its frontier
/// once, then aborts the run by crashing every remaining machine.
/// `Action::Crash` never advances a machine, so the post-run pool and
/// bank are exactly the state at depth `prefix.len()`; `recorded` stays
/// `false` iff the prefix ran to quiescence (a leaf).
struct ProbePolicy<'a> {
    prefix: &'a [Pid],
    depth: usize,
    observed: Vec<PendingOp>,
    recorded: bool,
}

impl Policy for ProbePolicy<'_> {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if self.depth < self.prefix.len() {
            let pid = self.prefix[self.depth];
            self.depth += 1;
            debug_assert!(
                pending.iter().any(|op| op.pid == pid),
                "replayed prefix diverged: {pid} not pending"
            );
            return Action::Grant(pid);
        }
        if !self.recorded {
            self.recorded = true;
            self.observed.extend_from_slice(pending);
        }
        Action::Crash(pending[0].pid)
    }
}

/// Canonical-state digest of the current pool + bank, plus the node's
/// sleep mask mapped into canonical pid positions.
type KeyFn<'k, M, B> = Box<dyn FnMut(&MachinePool<M>, &B, u64) -> (u128, u64) + 'k>;

/// The depth-first walk. One instance per exploration; borrows the
/// engine and pool for its whole lifetime and accumulates the report
/// counters.
struct Dfs<'e, 'k, M: StepMachine, B: RegisterBank, C> {
    engine: &'e mut StepEngine<B>,
    pool: &'e mut MachinePool<M>,
    check: C,
    key: Option<KeyFn<'k, M, B>>,
    sleep_sets: bool,
    max_executions: u64,
    executions: u64,
    pruned: u64,
    max_depth: usize,
    truncated: bool,
    /// Canonical digest → sleep masks (canonical positions) this state
    /// was already expanded under.
    visited: HashMap<u128, Vec<u64>>,
    failing: Option<Vec<Pid>>,
}

impl<M, B, C> Dfs<'_, '_, M, B, C>
where
    M: StepMachine,
    B: RegisterBank,
    C: FnMut(&MachinePool<M>) -> bool,
{
    fn walk(&mut self, prefix: &mut Vec<Pid>, sleep: u64) {
        if self.truncated {
            return;
        }
        if self.executions >= self.max_executions {
            self.truncated = true;
            return;
        }
        let mut probe = ProbePolicy {
            prefix: prefix.as_slice(),
            depth: 0,
            observed: Vec::new(),
            recorded: false,
        };
        self.engine.run_pool(&mut probe, self.pool);
        let (pending, is_leaf) = (probe.observed, !probe.recorded);

        if is_leaf {
            self.executions += 1;
            self.max_depth = self.max_depth.max(prefix.len());
            if !(self.check)(self.pool) && self.failing.is_none() {
                self.failing = Some(prefix.clone());
            }
            return;
        }

        if self.key.is_some() {
            let (digest, cmask) = {
                let Dfs {
                    key, pool, engine, ..
                } = self;
                (key.as_mut().expect("checked"))(&**pool, engine.bank(), sleep)
            };
            let masks = self.visited.entry(digest).or_default();
            // Covering-mask rule: an earlier expansion of this state
            // under a subset sleep mask explored a superset of branches.
            if masks.iter().any(|&m| m & !cmask == 0) {
                self.pruned += 1;
                return;
            }
            masks.push(cmask);
        }

        let mut sleep = sleep;
        for idx in 0..pending.len() {
            if self.truncated {
                return;
            }
            let c = pending[idx];
            let bit = 1u64 << c.pid.0;
            if self.sleep_sets && sleep & bit != 0 {
                // The class of every execution starting with `c` here is
                // represented elsewhere in the tree.
                self.pruned += 1;
                continue;
            }
            // A sleeping process stays asleep in the child iff its (still
            // pending) operation commutes with the granted one.
            let child_sleep = if self.sleep_sets {
                pending
                    .iter()
                    .filter(|q| sleep & (1u64 << q.pid.0) != 0 && independent(q, &c))
                    .fold(0u64, |m, q| m | (1u64 << q.pid.0))
            } else {
                0
            };
            prefix.push(c.pid);
            self.walk(prefix, child_sleep);
            prefix.pop();
            if self.sleep_sets {
                sleep |= bit;
            }
        }
    }
}

/// Replays `schedule` on the pooled engine: scripted grants in order,
/// round-robin for anything past the script, until quiescence. The
/// replay vehicle for minimized counterexamples.
pub fn replay_pool<M, B>(engine: &mut StepEngine<B>, pool: &mut MachinePool<M>, schedule: &[Pid])
where
    M: StepMachine,
    B: RegisterBank,
{
    let mut policy = Scripted::new(schedule.iter().copied());
    engine.run_pool(&mut policy, pool);
}

/// Greedy chunk-removal minimization (`ddmin`-lite): repeatedly tries
/// dropping chunks of halving sizes, keeping any removal after which the
/// replayed schedule still fails `check`. The result is a subsequence of
/// `failing` by construction, and the procedure is deterministic.
fn shrink_schedule<M, B, C>(
    engine: &mut StepEngine<B>,
    pool: &mut MachinePool<M>,
    check: &mut C,
    failing: Vec<Pid>,
) -> Vec<Pid>
where
    M: StepMachine,
    B: RegisterBank,
    C: FnMut(&MachinePool<M>) -> bool,
{
    let mut cur = failing;
    let mut chunk = cur.len() / 2;
    while chunk >= 1 {
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur[..i].to_vec();
            candidate.extend_from_slice(&cur[(i + chunk).min(cur.len())..]);
            replay_pool(engine, pool, &candidate);
            if !check(pool) {
                cur = candidate; // removal kept the failure: stay at `i`
            } else {
                i += chunk;
            }
        }
        chunk /= 2;
    }
    cur
}

/// Minimizes a schedule that provokes a footprint violation from the
/// engine's installed checker: the same greedy chunk-removal as the
/// exploration shrinker, with "still fails" meaning the replay still
/// counts at least one violation ([`Metrics::checker_violations`]).
/// The result is a subsequence of `failing`; replaying it on the same
/// engine/pool deterministically reproduces a violation, and the
/// surviving checker state ([`StepEngine::checker`]) reports it with
/// its offending pid/register/op index.
///
/// # Panics
///
/// Panics if the engine has no checker installed, or if `failing` does
/// not actually provoke a violation under replay.
///
/// [`Metrics::checker_violations`]: crate::Metrics
#[cfg(feature = "check")]
pub fn shrink_violation<M, B>(
    engine: &mut StepEngine<B>,
    pool: &mut MachinePool<M>,
    failing: &[Pid],
) -> Vec<Pid>
where
    M: StepMachine,
    B: RegisterBank,
{
    assert!(
        engine.checker().is_some(),
        "shrink_violation needs a checker installed on the engine"
    );
    replay_pool(engine, pool, failing);
    assert!(
        engine.metrics().checker_violations > 0,
        "schedule handed to shrink_violation does not violate under replay"
    );
    let violates = |engine: &mut StepEngine<B>, pool: &mut MachinePool<M>, s: &[Pid]| {
        replay_pool(engine, pool, s);
        engine.metrics().checker_violations > 0
    };
    let mut cur = failing.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur[..i].to_vec();
            candidate.extend_from_slice(&cur[(i + chunk).min(cur.len())..]);
            if violates(engine, pool, &candidate) {
                cur = candidate; // removal kept the violation: stay at `i`
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Leave the engine/pool state at the minimized replay so callers can
    // read the violation report directly.
    replay_pool(engine, pool, &cur);
    cur
}

/// All permutations of `0..n` in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: &mut Vec<usize>, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..remaining.len() {
            let v = remaining.remove(i);
            cur.push(v);
            rec(remaining, cur, out);
            cur.pop();
            remaining.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..n).collect(), &mut Vec::new(), &mut out);
    out
}

/// The shared driver: walks the reduced tree, then shrinks the first
/// failing schedule (if any).
fn run_dfs<M, B, C>(
    engine: &mut StepEngine<B>,
    pool: &mut MachinePool<M>,
    config: &ReduceConfig,
    check: C,
    key: Option<KeyFn<'_, M, B>>,
) -> ExploreReport
where
    M: StepMachine,
    B: RegisterBank,
    C: FnMut(&MachinePool<M>) -> bool,
{
    assert!(pool.len() <= 64, "sleep sets use a 64-bit pid mask");
    let mut dfs = Dfs {
        engine: &mut *engine,
        pool: &mut *pool,
        check,
        key,
        sleep_sets: config.sleep_sets,
        max_executions: config.max_executions,
        executions: 0,
        pruned: 0,
        max_depth: 0,
        truncated: false,
        visited: HashMap::new(),
        failing: None,
    };
    dfs.walk(&mut Vec::new(), 0);
    let Dfs {
        mut check,
        executions,
        pruned,
        max_depth,
        truncated,
        visited,
        failing,
        ..
    } = dfs;
    let minimized = failing.map(|schedule| {
        if config.shrink {
            shrink_schedule(engine, pool, &mut check, schedule)
        } else {
            schedule
        }
    });
    ExploreReport {
        executions,
        complete: !truncated,
        max_depth,
        execs_pruned: pruned,
        states_canonical: visited.len() as u64,
        minimized,
    }
}

/// Reduced exhaustive exploration of a pooled machine family whose state
/// can be fingerprinted: all of [`ReduceConfig`] is honored, including
/// visited-state pruning and pid-symmetry canonicalization. `check`
/// returns whether the completed execution satisfies the property; the
/// first failure is recorded (and minimized) rather than panicking, so
/// differential harnesses can compare verdicts.
///
/// With `symmetry` on, `config.tokens` must hold one distinct token per
/// pooled machine and the checker must be pid-symmetric (terminal states
/// are reached up to pid/token relabeling only).
///
/// # Panics
///
/// Panics if `symmetry` is requested for more than 6 processes (the
/// canonicalizer enumerates all `n!` relabelings), if `tokens` does not
/// match the pool, or if the pool exceeds the 64-process sleep mask.
pub fn explore_pool_reduced<M, B, C>(
    engine: &mut StepEngine<B>,
    pool: &mut MachinePool<M>,
    config: &ReduceConfig,
    check: C,
) -> ExploreReport
where
    M: StepMachine + Fingerprint,
    M::Output: Fingerprint,
    B: RegisterBank + Fingerprint,
    C: FnMut(&MachinePool<M>) -> bool,
{
    let n = pool.len();
    let key: Option<KeyFn<'_, M, B>> = if config.visited || config.symmetry {
        // (perm, inverse, token relabeling) per candidate permutation;
        // identity only when symmetry is off.
        let tables: Vec<(Vec<usize>, Vec<usize>, TokenMap)> = if config.symmetry {
            assert!(
                n <= 6,
                "pid-symmetry canonicalization enumerates n! relabelings; n = {n} is too large"
            );
            assert_eq!(config.tokens.len(), n, "one token per pooled machine");
            permutations(n)
                .into_iter()
                .map(|perm| {
                    let mut inv = vec![0; n];
                    for (i, &p) in perm.iter().enumerate() {
                        inv[p] = i;
                    }
                    let map = TokenMap::new(&config.tokens, &perm);
                    (perm, inv, map)
                })
                .collect()
        } else {
            vec![((0..n).collect(), (0..n).collect(), TokenMap::identity())]
        };
        Some(Box::new(
            move |pool: &MachinePool<M>, bank: &B, sleep: u64| {
                let mut best: Option<(u128, usize)> = None;
                for (pi, (_, inv, map)) in tables.iter().enumerate() {
                    let mut h = StateHasher::new();
                    for &i in inv.iter() {
                        match &pool.results()[i] {
                            Some(Ok(out)) => {
                                h.write_u8(1);
                                out.fingerprint(&mut h, map);
                            }
                            // Mid-flight (probe-aborted) machine: its
                            // control state is the behavioral state.
                            _ => {
                                h.write_u8(0);
                                pool.machines()[i].fingerprint(&mut h, map);
                            }
                        }
                    }
                    bank.fingerprint(&mut h, map);
                    let d = h.finish();
                    // First strict minimum in fixed enumeration order:
                    // deterministic across runs.
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, pi));
                    }
                }
                let (digest, pi) = best.expect("at least the identity permutation");
                let perm = &tables[pi].0;
                let mut cmask = 0u64;
                for (p, &target) in perm.iter().enumerate() {
                    if sleep & (1u64 << p) != 0 {
                        cmask |= 1u64 << target;
                    }
                }
                (digest, cmask)
            },
        ))
    } else {
        None
    };
    run_dfs(engine, pool, config, check, key)
}

/// Reduced exploration without any fingerprinting bound: sleep-set
/// reduction (and the all-off oracle walk) for machine families whose
/// state cannot be hashed soundly — the composite store&collect
/// renamers, the pid-asymmetric deposit layout. Exactly
/// [`explore_pool_reduced`] restricted to `visited = symmetry = false`.
///
/// # Panics
///
/// Panics if `config` requests `visited` or `symmetry`, or if the pool
/// exceeds the 64-process sleep mask.
pub fn explore_pool_sleep<M, B, C>(
    engine: &mut StepEngine<B>,
    pool: &mut MachinePool<M>,
    config: &ReduceConfig,
    check: C,
) -> ExploreReport
where
    M: StepMachine,
    B: RegisterBank,
    C: FnMut(&MachinePool<M>) -> bool,
{
    assert!(
        !config.visited && !config.symmetry,
        "explore_pool_sleep cannot hash state; use explore_pool_reduced"
    );
    run_dfs(engine, pool, config, check, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_pool_with;
    use exsel_shm::{ArcBank, Poll, RegAlloc, RegId, ShmOp, Word};
    use std::collections::BTreeSet;

    /// Write own token into `reg`, then read `reg` back.
    #[derive(Clone)]
    struct WriteRead {
        reg: RegId,
        token: u64,
        wrote: bool,
    }

    impl StepMachine for WriteRead {
        type Output = u64;
        fn op(&self) -> ShmOp {
            if self.wrote {
                ShmOp::Read(self.reg)
            } else {
                ShmOp::Write(self.reg, Word::Int(self.token))
            }
        }
        fn advance(&mut self, input: &Word) -> Poll<u64> {
            if self.wrote {
                Poll::Ready(input.expect_int())
            } else {
                self.wrote = true;
                Poll::Pending
            }
        }
        fn reset(&mut self, _pid: Pid) {
            self.wrote = false;
        }
    }

    impl Fingerprint for WriteRead {
        fn fingerprint(&self, h: &mut StateHasher, map: &TokenMap) {
            h.write_u8(u8::from(self.wrote));
            h.write_u64(self.reg.0 as u64);
            h.write_u64(map.relabel(self.token));
        }
    }

    fn wr_pool(reg: RegId, tokens: &[u64]) -> MachinePool<WriteRead> {
        tokens
            .iter()
            .map(|&token| WriteRead {
                reg,
                token,
                wrote: false,
            })
            .collect()
    }

    /// Distinct-register writers: every interleaving commutes.
    #[derive(Clone)]
    struct SoloWrite {
        reg: RegId,
    }

    impl StepMachine for SoloWrite {
        type Output = u64;
        fn op(&self) -> ShmOp {
            ShmOp::Write(self.reg, Word::Int(1))
        }
        fn advance(&mut self, _input: &Word) -> Poll<u64> {
            Poll::Ready(1)
        }
        fn reset(&mut self, _pid: Pid) {}
    }

    #[test]
    fn disjoint_writers_collapse_to_one_execution() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(3);
        let mut pool: MachinePool<SoloWrite> =
            (0..3).map(|i| SoloWrite { reg: bank.get(i) }).collect();
        let mut engine = StepEngine::reusable(alloc.total());
        let report = explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::sleep_only(1_000),
            |_| true,
        );
        assert!(report.complete);
        assert_eq!(report.executions, 1, "3! schedules are one trace class");
        assert!(report.execs_pruned > 0);
    }

    #[test]
    fn off_config_matches_unreduced_explorer_exactly() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut pool = wr_pool(bank.get(0), &[1, 2]);
        let mut engine = StepEngine::reusable(alloc.total());
        let oracle = explore_pool_with(&mut engine, &mut pool, 10_000, |_| {});
        let reduced =
            explore_pool_sleep(&mut engine, &mut pool, &ReduceConfig::off(10_000), |_| true);
        assert_eq!(oracle.executions, reduced.executions); // C(4,2) = 6
        assert_eq!(oracle.max_depth, reduced.max_depth);
        assert!(reduced.complete);
        assert_eq!(reduced.execs_pruned, 0);
        assert_eq!(reduced.states_canonical, 0);
    }

    /// Terminal signature of a completed WriteRead execution: the sorted
    /// (pid, read-back) pairs.
    fn signature(pool: &MachinePool<WriteRead>) -> Vec<(usize, u64)> {
        let mut sig: Vec<(usize, u64)> = pool.completed().map(|(p, out)| (p.0, *out)).collect();
        sig.sort_unstable();
        sig
    }

    #[test]
    fn sleep_sets_preserve_the_terminal_state_set() {
        // 2 procs on one register: 6 schedules, 4 trace classes. The
        // reduced walk must see exactly the unreduced set of terminal
        // states, once per class.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut pool = wr_pool(bank.get(0), &[1, 2]);
        let mut engine = StepEngine::reusable(alloc.total());
        let mut oracle_sigs = BTreeSet::new();
        let oracle = explore_pool_with(&mut engine, &mut pool, 10_000, |pool| {
            oracle_sigs.insert(signature(pool));
        });
        let mut reduced_sigs = BTreeSet::new();
        let reduced = explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::sleep_only(10_000),
            |pool| {
                reduced_sigs.insert(signature(pool));
                true
            },
        );
        assert_eq!(oracle.executions, 6);
        assert_eq!(reduced.executions, 4, "4 Mazurkiewicz classes");
        assert_eq!(oracle_sigs, reduced_sigs);
        assert!(reduced.complete);
    }

    #[test]
    fn symmetry_canonicalization_prunes_below_sleep_only() {
        // 3 symmetric contenders on one register: pid-permuted branches
        // collapse. Verdict (every process read *some* token) must hold
        // throughout, and the symmetric walk must explore strictly fewer
        // executions than sleep-only.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let tokens = [1u64, 2, 3];
        let mut pool = wr_pool(bank.get(0), &tokens);
        let mut engine = StepEngine::reusable(alloc.total());
        let sleep_only = explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::sleep_only(100_000),
            |pool| pool.completed().count() == 3,
        );
        let full = explore_pool_reduced(
            &mut engine,
            &mut pool,
            &ReduceConfig::full(&tokens, 100_000),
            |pool| pool.completed().count() == 3,
        );
        assert!(sleep_only.complete && full.complete);
        assert!(full.minimized.is_none(), "checker passes everywhere");
        assert!(sleep_only.executions > full.executions);
        assert!(full.states_canonical > 0);
    }

    #[test]
    fn visited_only_matches_symmetry_verdicts() {
        // visited without symmetry: still sound, just less pruning.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let tokens = [1u64, 2, 3];
        let mut pool = wr_pool(bank.get(0), &tokens);
        let mut engine = StepEngine::reusable(alloc.total());
        let cfg = ReduceConfig {
            visited: true,
            ..ReduceConfig::sleep_only(100_000)
        };
        let visited = explore_pool_reduced(&mut engine, &mut pool, &cfg, |pool| {
            pool.completed().count() == 3
        });
        let full = explore_pool_reduced(
            &mut engine,
            &mut pool,
            &ReduceConfig::full(&tokens, 100_000),
            |pool| pool.completed().count() == 3,
        );
        assert!(visited.complete && full.complete);
        assert!(visited.minimized.is_none() && full.minimized.is_none());
        assert!(visited.executions >= full.executions);
    }

    #[test]
    fn shrinker_minimizes_a_failing_schedule() {
        // Known-bad checker: "process 0 never reads its own token" fails
        // exactly on executions where p0's read-back is 1. The shrunk
        // schedule must still fail on replay and be a subsequence of a
        // failing schedule.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut pool = wr_pool(bank.get(0), &[1, 2]);
        let mut engine = StepEngine::reusable(alloc.total());
        let bad_check = |pool: &MachinePool<WriteRead>| !matches!(pool.results()[0], Some(Ok(1)));
        let report = explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::sleep_only(10_000),
            bad_check,
        );
        let minimized = report
            .minimized
            .clone()
            .expect("the bad interleaving exists");
        // (a) still fails on replay.
        replay_pool(&mut engine, &mut pool, &minimized);
        assert!(!bad_check(&pool), "minimized schedule must still fail");
        // (c) deterministic across runs.
        let report2 = explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::sleep_only(10_000),
            bad_check,
        );
        assert_eq!(report2.minimized.as_deref(), Some(&minimized[..]));
        assert_eq!(report.minimized_len(), Some(minimized.len()));
    }

    #[test]
    fn shrink_off_reports_the_raw_failing_schedule() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut pool = wr_pool(bank.get(0), &[1, 2]);
        let mut engine = StepEngine::reusable(alloc.total());
        let cfg = ReduceConfig {
            shrink: false,
            ..ReduceConfig::off(10_000)
        };
        let report = explore_pool_sleep(&mut engine, &mut pool, &cfg, |pool| {
            !matches!(pool.results()[0], Some(Ok(1)))
        });
        let raw = report.minimized.expect("failure found");
        assert_eq!(raw.len(), report.max_depth, "unshrunk = full schedule");
    }

    #[test]
    fn independence_relation() {
        let op = |pid: usize, kind, reg: usize| PendingOp {
            pid: Pid(pid),
            kind,
            reg: RegId(reg),
            step_index: 0,
        };
        let r0 = op(0, OpKind::Read, 0);
        let r1 = op(1, OpKind::Read, 0);
        let w1 = op(1, OpKind::Write, 0);
        let w2 = op(2, OpKind::Write, 1);
        assert!(independent(&r0, &r1), "two reads commute");
        assert!(!independent(&r0, &w1), "read/write on one register");
        assert!(!independent(&w1, &w1), "write/write on one register");
        assert!(independent(&w1, &w2), "disjoint registers");
    }

    #[test]
    fn permutations_enumerate_n_factorial() {
        assert_eq!(permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(permutations(3).len(), 6);
        let unique: BTreeSet<Vec<usize>> = permutations(4).into_iter().collect();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn explicit_bank_type_compiles_with_slab() {
        // The reduced walk is generic over the register bank: SlabBank
        // fingerprints too.
        use exsel_shm::SlabBank;
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let tokens = [1u64, 2];
        let mut pool = wr_pool(bank.get(0), &tokens);
        let mut engine: StepEngine<SlabBank> =
            StepEngine::reusable_with(alloc.total(), SlabBank::new());
        let slab = explore_pool_reduced(
            &mut engine,
            &mut pool,
            &ReduceConfig::full(&tokens, 10_000),
            |_| true,
        );
        let mut arc_engine: StepEngine<ArcBank> = StepEngine::reusable(alloc.total());
        let arc = explore_pool_reduced(
            &mut arc_engine,
            &mut pool,
            &ReduceConfig::full(&tokens, 10_000),
            |_| true,
        );
        assert_eq!(slab.executions, arc.executions);
        assert_eq!(slab.states_canonical, arc.states_canonical);
    }
}
