//! Reusable machine storage for allocation-free trial loops.
//!
//! A [`MachinePool`] owns one [`StepMachine`] per simulated process plus
//! the result and step buffers a trial writes into. Instead of boxing
//! `n` fresh machines per execution — the allocator traffic that
//! dominated seed sweeps and exploration walks — the pool's machines are
//! built **once** and re-initialized in place via [`StepMachine::reset`]
//! at the start of every [`StepEngine::run_pool`] trial. After the first
//! trial has stretched every buffer to capacity, steady-state trials
//! perform no heap allocation at all (verified by the
//! `tests/alloc_free.rs` counting-allocator test for machines whose
//! `reset` is in-place, e.g. the splitter/majority renamers and
//! `Compete-For-Register`).
//!
//! ```
//! use exsel_shm::{Poll, RegAlloc, ShmOp, StepMachine, Word};
//! use exsel_sim::{policy::RoundRobin, MachinePool, StepEngine};
//!
//! /// Write own id, then read the register back.
//! struct WriteThenRead {
//!     reg: exsel_shm::RegId,
//!     id: u64,
//!     wrote: bool,
//! }
//! impl StepMachine for WriteThenRead {
//!     type Output = Word;
//!     fn op(&self) -> ShmOp {
//!         if self.wrote { ShmOp::Read(self.reg) } else { ShmOp::Write(self.reg, Word::Int(self.id)) }
//!     }
//!     fn advance(&mut self, input: &Word) -> Poll<Word> {
//!         if self.wrote { Poll::Ready(input.clone()) } else { self.wrote = true; Poll::Pending }
//!     }
//!     fn reset(&mut self, _pid: exsel_shm::Pid) {
//!         self.wrote = false;
//!     }
//! }
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! let mut pool: MachinePool<WriteThenRead> = (0..3)
//!     .map(|p| WriteThenRead { reg: bank.get(0), id: p, wrote: false })
//!     .collect();
//! let mut engine = StepEngine::reusable(alloc.total());
//! let mut policy = RoundRobin::new();
//! for _trial in 0..10 {
//!     engine.run_pool(&mut policy, &mut pool);
//!     // Round-robin: W0 W1 W2 R0 R1 R2 — everyone reads process 2's write.
//!     for r in pool.results() {
//!         assert_eq!(r.as_ref().unwrap().as_ref().unwrap(), &Word::Int(2));
//!     }
//! }
//! ```

use exsel_shm::{Crash, Pid, StepMachine};

use crate::engine::StepEngine;

/// The engine-facing view of a pool's trial buffers: machines, result
/// slots and step counters, all indexed by pid.
type TrialBuffers<'a, M> = (
    &'a mut [M],
    &'a mut [Option<Result<<M as StepMachine>::Output, Crash>>],
    &'a mut [u64],
);

/// Machine storage re-driven across trials; see the module docs.
///
/// [`StepEngine::run_pool`]: crate::StepEngine::run_pool
#[derive(Debug)]
pub struct MachinePool<M: StepMachine> {
    machines: Vec<M>,
    results: Vec<Option<Result<M::Output, Crash>>>,
    steps: Vec<u64>,
}

impl<M: StepMachine> Default for MachinePool<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: StepMachine> MachinePool<M> {
    /// An empty pool; add processes with [`MachinePool::push`].
    #[must_use]
    pub fn new() -> Self {
        MachinePool {
            machines: Vec::new(),
            results: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// A pool over `machines` (machine `i` is process `Pid(i)`).
    #[must_use]
    pub fn from_machines(machines: Vec<M>) -> Self {
        MachinePool {
            machines,
            results: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Appends the machine of the next process. The machine must be in
    /// its just-constructed state (the pool resets it before every
    /// trial, including the first).
    pub fn push(&mut self, machine: M) {
        self.machines.push(machine);
    }

    /// Drops all machines (e.g. before re-targeting the pool at a
    /// different algorithm instance); buffer capacity is retained.
    pub fn clear(&mut self) {
        self.machines.clear();
        self.results.clear();
        self.steps.clear();
    }

    /// Number of pooled processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the pool has no machines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The pooled machines, indexed by pid.
    #[must_use]
    pub fn machines(&self) -> &[M] {
        &self.machines
    }

    /// Per-process results of the last trial, indexed by pid: `Ok` with
    /// the machine's output, or `Err(Crash)` for processes crashed by the
    /// policy or the operation budget (the engine's crash-cause
    /// iterators tell those apart).
    #[must_use]
    pub fn results(&self) -> &[Option<Result<M::Output, Crash>>] {
        &self.results
    }

    /// Local steps each process took in the last trial, indexed by pid.
    #[must_use]
    pub fn steps(&self) -> &[u64] {
        &self.steps
    }

    /// Outputs of the processes that completed the last trial, with
    /// their pids.
    pub fn completed(&self) -> impl Iterator<Item = (Pid, &M::Output)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(pid, r)| match r {
                Some(Ok(out)) => Some((Pid(pid), out)),
                _ => None,
            })
    }

    /// Re-initializes every machine and clears the trial buffers in
    /// place — no allocation once capacities are established.
    ///
    /// # Panics
    ///
    /// Panics if a pooled machine does not implement
    /// [`StepMachine::reset`].
    pub(crate) fn begin_trial(&mut self) {
        let n = self.machines.len();
        for (pid, machine) in self.machines.iter_mut().enumerate() {
            machine.reset(Pid(pid));
        }
        self.results.clear();
        for _ in 0..n {
            self.results.push(None);
        }
        self.steps.clear();
        self.steps.resize(n, 0);
    }

    /// The mutable trial buffers for the engine's grant loop.
    pub(crate) fn trial_buffers(&mut self) -> TrialBuffers<'_, M> {
        (&mut self.machines, &mut self.results, &mut self.steps)
    }

    /// Convenience: runs one pooled trial on `engine` under `policy`.
    /// Identical to [`StepEngine::run_pool`] with the arguments flipped.
    ///
    /// [`StepEngine::run_pool`]: crate::StepEngine::run_pool
    pub fn run_trial<B: exsel_shm::RegisterBank>(
        &mut self,
        engine: &mut StepEngine<B>,
        policy: &mut dyn crate::Policy,
    ) {
        engine.run_pool(policy, self);
    }
}

impl<M: StepMachine> FromIterator<M> for MachinePool<M> {
    fn from_iter<I: IntoIterator<Item = M>>(iter: I) -> Self {
        Self::from_machines(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RandomPolicy, RoundRobin};
    use exsel_shm::{Poll, RegAlloc, RegId, ShmOp, Word};

    /// A machine performing `rounds` write/read pairs on one register.
    struct Hammer {
        reg: RegId,
        id: u64,
        rounds: u64,
        done_ops: u64,
        last_read: Word,
    }

    impl StepMachine for Hammer {
        type Output = Word;
        fn op(&self) -> ShmOp {
            if self.done_ops.is_multiple_of(2) {
                ShmOp::Write(self.reg, Word::Int(self.id))
            } else {
                ShmOp::Read(self.reg)
            }
        }
        fn advance(&mut self, input: &Word) -> Poll<Word> {
            if !self.done_ops.is_multiple_of(2) {
                self.last_read = input.clone();
            }
            self.done_ops += 1;
            if self.done_ops == 2 * self.rounds {
                Poll::Ready(self.last_read.clone())
            } else {
                Poll::Pending
            }
        }
        fn reset(&mut self, pid: Pid) {
            self.id = pid.0 as u64;
            self.done_ops = 0;
            self.last_read = Word::Null;
        }
    }

    fn pool(reg: RegId, n: usize, rounds: u64) -> MachinePool<Hammer> {
        (0..n)
            .map(|p| Hammer {
                reg,
                id: p as u64,
                rounds,
                done_ops: 0,
                last_read: Word::Null,
            })
            .collect()
    }

    #[test]
    fn pooled_trials_match_boxed_trials() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut engine = StepEngine::reusable(alloc.total()).record_trace(true);
        let mut pool = pool(bank.get(0), 4, 3);
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            let pooled_trace: Vec<_> = engine.trace().unwrap().to_vec();
            let pooled_steps = pool.steps().to_vec();
            let pooled: Vec<Word> = pool.completed().map(|(_, w)| w.clone()).collect();

            let mut policy = RandomPolicy::new(seed);
            let boxed = engine.run_trial(
                &mut policy,
                (0..4)
                    .map(|p| -> Box<dyn StepMachine<Output = Word>> {
                        Box::new(Hammer {
                            reg: bank.get(0),
                            id: p as u64,
                            rounds: 3,
                            done_ops: 0,
                            last_read: Word::Null,
                        })
                    })
                    .collect(),
            );
            assert_eq!(Some(pooled_trace), boxed.trace, "seed {seed}");
            assert_eq!(pooled_steps, boxed.steps, "seed {seed}");
            let fresh: Vec<Word> = boxed.completed().cloned().collect();
            assert_eq!(pooled, fresh, "seed {seed}");
        }
    }

    #[test]
    fn pool_buffers_are_rebuilt_every_trial() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut engine = StepEngine::reusable(alloc.total());
        let mut pool = pool(bank.get(0), 3, 2);
        let mut policy = RoundRobin::new();
        engine.run_pool(&mut policy, &mut pool);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.results().len(), 3);
        assert_eq!(pool.completed().count(), 3);
        assert!(pool.steps().iter().all(|&s| s == 4));
        // A second trial starts from reset machines, not finished ones.
        engine.run_pool(&mut policy, &mut pool);
        assert_eq!(pool.completed().count(), 3);
    }

    #[test]
    fn clear_retargets_the_pool() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut p = pool(bank.get(0), 2, 1);
        assert_eq!(p.len(), 2);
        p.clear();
        assert!(p.is_empty());
        p.push(Hammer {
            reg: bank.get(0),
            id: 0,
            rounds: 1,
            done_ops: 0,
            last_read: Word::Null,
        });
        assert_eq!(p.len(), 1);
        assert_eq!(p.machines().len(), 1);
    }
}
