//! Exhaustive schedule exploration — stateless model checking for small
//! programs.
//!
//! Because lock-step executions are a pure function of the grant
//! sequence, the complete schedule space of a (small, deterministic,
//! crash-free) program is a tree: each node is a scheduling decision, its
//! branches the processes pending there. [`explore`] walks that tree
//! depth-first by replaying prefixes — every leaf is one complete
//! execution handed to the caller's checker. This is the `loom` role in
//! this stack (see DESIGN.md substitutions): exhaustive verification of
//! the fine-grained primitives (`Compete-For-Register`, splitters,
//! snapshot) at small sizes, complementing seeded-random exploration at
//! large ones.
//!
//! The state space is exponential in the total operation count; intended
//! for programs of ≤ ~15 total operations (hundreds of thousands of
//! executions). `max_executions` truncates the walk gracefully.
//!
//! ```
//! use exsel_shm::{RegAlloc, Word};
//! use exsel_sim::explore;
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! // Two writers + readback: every interleaving sees *some* write.
//! let report = explore(alloc.total(), 2, 10_000, |ctx| {
//!     ctx.write(bank.get(0), ctx.pid().0 as u64)?;
//!     ctx.read(bank.get(0))
//! }, |outcome| {
//!     for r in &outcome.results {
//!         assert!(r.as_ref().unwrap().as_int().is_some());
//!     }
//! });
//! assert!(report.complete);
//! assert_eq!(report.executions, 6); // interleavings of (W0 R0 | W1 R1)
//! ```

use std::sync::{Arc, Mutex};

use exsel_shm::{Ctx, Pid, Step, StepMachine};

use crate::engine::StepEngine;
use crate::policy::{Action, PendingOp, Policy};
use crate::pool::MachinePool;
use crate::runner::{SimBuilder, SimOutcome};

/// Outcome of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Complete executions checked (`execs_explored` in bench output).
    pub executions: u64,
    /// Whether the whole schedule tree was covered (false if
    /// `max_executions` truncated the walk).
    pub complete: bool,
    /// The deepest decision point seen (total operations of the longest
    /// execution).
    pub max_depth: usize,
    /// Branches the reduced explorer (`crate::reduce`) suppressed:
    /// sleep-set–blocked grants plus visited-state subtree cuts. Always 0
    /// for the unreduced explorers.
    pub execs_pruned: u64,
    /// Distinct canonical state fingerprints recorded by the reduced
    /// explorer's visited set. 0 when visited-state hashing is off.
    pub states_canonical: u64,
    /// The minimized failing schedule, when a `check` failed and the
    /// shrinker ran: a grant sequence (pids in grant order) that still
    /// fails on replay. `None` when every execution passed or shrinking
    /// was disabled.
    pub minimized: Option<Vec<Pid>>,
}

impl ExploreReport {
    /// A report of an unreduced walk: no pruning, no canonical states,
    /// no counterexample.
    #[must_use]
    pub(crate) fn unreduced(executions: u64, complete: bool, max_depth: usize) -> Self {
        ExploreReport {
            executions,
            complete,
            max_depth,
            execs_pruned: 0,
            states_canonical: 0,
            minimized: None,
        }
    }

    /// Length of the minimized failing schedule, if one was produced.
    #[must_use]
    pub fn minimized_len(&self) -> Option<usize> {
        self.minimized.as_ref().map(Vec::len)
    }
}

/// Shared between the driver and the policy instances it plants in each
/// run: the prefix of branch choices to replay, and the branching degree
/// observed at every decision of the last run.
#[derive(Debug, Default)]
struct Cursor {
    /// Branch index to take at decision `i`.
    prefix: Vec<usize>,
    /// Number of pending processes observed at decision `i` in the last
    /// run (its branching degree).
    degrees: Vec<usize>,
}

impl Cursor {
    /// One scheduling decision at `depth` following the prefix
    /// (0-extended past its end), recording the branching degree.
    fn decide(&mut self, depth: usize, pending: &[PendingOp]) -> Action {
        let choice = if depth < self.prefix.len() {
            self.prefix[depth]
        } else {
            self.prefix.push(0);
            0
        };
        if depth < self.degrees.len() {
            self.degrees[depth] = pending.len();
        } else {
            self.degrees.push(pending.len());
        }
        Action::Grant(pending[choice.min(pending.len() - 1)].pid)
    }

    /// Advances the odometer to the next unexplored schedule: finds the
    /// deepest decision with an untried branch, increments it, truncates
    /// everything below. Returns `false` when the tree is exhausted.
    fn advance(&mut self) -> bool {
        for i in (0..self.prefix.len()).rev() {
            if self.prefix[i] + 1 < self.degrees[i] {
                self.prefix[i] += 1;
                self.prefix.truncate(i + 1);
                self.degrees.truncate(i + 1);
                return true;
            }
        }
        false
    }
}

/// The thread-backed explorer policy: the cursor is shared with the
/// driver across the scheduler's thread boundary, so it sits behind a
/// mutex.
struct ExplorerPolicy {
    cursor: Arc<Mutex<Cursor>>,
    depth: usize,
}

impl Policy for ExplorerPolicy {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        let mut cur = self.cursor.lock().expect("cursor lock");
        let action = cur.decide(self.depth, pending);
        self.depth += 1;
        action
    }
}

/// The engine-side explorer policy: the driver hands the cursor in and
/// takes it back between runs, so decisions are lock-free and the
/// prefix/degree buffers are reused across the whole walk.
struct OwnedExplorer {
    cursor: Cursor,
    depth: usize,
}

impl Policy for OwnedExplorer {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        let action = self.cursor.decide(self.depth, pending);
        self.depth += 1;
        action
    }
}

/// Runs `body` on `num_procs` simulated processes under **every**
/// schedule (up to `max_executions`), invoking `check` on each complete
/// execution. `check` signals violations by panicking (e.g. with
/// `assert!`), which surfaces with the standard test machinery.
///
/// `body` must be deterministic given the schedule (no randomness keyed
/// off anything but `ctx.pid()` and register contents).
///
/// # Panics
///
/// Propagates panics from `body` and `check`.
pub fn explore<T, F, C>(
    num_registers: usize,
    num_procs: usize,
    max_executions: u64,
    body: F,
    check: C,
) -> ExploreReport
where
    T: Send,
    F: Fn(Ctx<'_>) -> Step<T> + Sync,
    C: Fn(&SimOutcome<T>),
{
    explore_driver_threaded(max_executions, |policy| {
        let outcome = SimBuilder::new(num_registers, Box::new(policy)).run(num_procs, &body);
        check(&outcome);
    })
}

/// [`explore`] on the single-threaded [`StepEngine`]: identical schedule
/// tree, identical checker interface, no thread spawns — typically an
/// order of magnitude faster, which buys exhaustive coverage of deeper
/// programs. `factory(pid)` builds the step machine of process `pid`; it
/// is invoked afresh for every execution. One reusable engine serves the
/// whole walk ([`StepEngine::run_trial`]), so exploring a tree of
/// thousands of executions reallocates nothing but the machines.
///
/// # Panics
///
/// Propagates panics from the machines and `check`.
pub fn explore_engine<'a, T, F, C>(
    num_registers: usize,
    num_procs: usize,
    max_executions: u64,
    factory: F,
    check: C,
) -> ExploreReport
where
    F: Fn(Pid) -> Box<dyn StepMachine<Output = T> + 'a>,
    C: Fn(&SimOutcome<T>),
{
    let mut engine = StepEngine::reusable(num_registers);
    explore_engine_with(&mut engine, num_procs, max_executions, factory, check)
}

/// [`explore_engine`] over a caller-configured reusable engine (e.g.
/// one with [`StepEngine::pending_rebuild`] on, for A/B measurements of
/// the grant loop itself).
///
/// # Panics
///
/// As [`explore_engine`].
pub fn explore_engine_with<'a, T, F, C>(
    engine: &mut StepEngine,
    num_procs: usize,
    max_executions: u64,
    factory: F,
    check: C,
) -> ExploreReport
where
    F: Fn(Pid) -> Box<dyn StepMachine<Output = T> + 'a>,
    C: Fn(&SimOutcome<T>),
{
    explore_driver_engine(max_executions, |policy| {
        let outcome = engine.run_trial(policy, (0..num_procs).map(Pid).map(&factory).collect());
        check(&outcome);
    })
}

/// [`explore_engine`] over a caller-built [`MachinePool`]: the machines
/// are built **once** and reset in place for every execution of the
/// walk, so the only remaining per-execution work is the grant loop
/// itself — the allocation-free form of exhaustive exploration. `check`
/// reads each complete execution back through the pool's accessors.
///
/// # Panics
///
/// Propagates panics from the machines and `check`; panics if a pooled
/// machine does not implement [`StepMachine::reset`].
pub fn explore_pool<M, C>(
    num_registers: usize,
    pool: &mut MachinePool<M>,
    max_executions: u64,
    check: C,
) -> ExploreReport
where
    M: StepMachine,
    C: FnMut(&MachinePool<M>),
{
    let mut engine = StepEngine::reusable(num_registers);
    explore_pool_with(&mut engine, pool, max_executions, check)
}

/// [`explore_pool`] over a caller-configured reusable engine.
///
/// # Panics
///
/// As [`explore_pool`].
pub fn explore_pool_with<M, C>(
    engine: &mut StepEngine,
    pool: &mut MachinePool<M>,
    max_executions: u64,
    mut check: C,
) -> ExploreReport
where
    M: StepMachine,
    C: FnMut(&MachinePool<M>),
{
    explore_driver_engine(max_executions, |policy| {
        engine.run_pool(policy, pool);
        check(pool);
    })
}

/// The depth-first odometer driving the thread-backed explorer: the
/// cursor crosses the scheduler's thread boundary, so it is shared
/// behind a mutex. `run_and_check` executes one run under the given
/// policy and applies the caller's checker to it.
fn explore_driver_threaded<R>(max_executions: u64, mut run_and_check: R) -> ExploreReport
where
    R: FnMut(ExplorerPolicy),
{
    let cursor = Arc::new(Mutex::new(Cursor::default()));
    let mut executions = 0;
    let mut max_depth = 0;
    loop {
        if executions >= max_executions {
            return ExploreReport::unreduced(executions, false, max_depth);
        }
        // One run following the current prefix (0-extended past its end).
        run_and_check(ExplorerPolicy {
            cursor: Arc::clone(&cursor),
            depth: 0,
        });
        executions += 1;

        let mut cur = cursor.lock().expect("cursor lock");
        max_depth = max_depth.max(cur.prefix.len());
        if !cur.advance() {
            return ExploreReport::unreduced(executions, true, max_depth);
        }
    }
}

/// The same odometer for the single-threaded engine backends: the
/// cursor lives in an [`OwnedExplorer`] the driver keeps between runs —
/// no locks on the decision path, and the prefix/degree buffers are
/// reused across the entire walk.
fn explore_driver_engine<R>(max_executions: u64, mut run_one: R) -> ExploreReport
where
    R: FnMut(&mut OwnedExplorer),
{
    let mut policy = OwnedExplorer {
        cursor: Cursor::default(),
        depth: 0,
    };
    let mut executions = 0;
    let mut max_depth = 0;
    loop {
        if executions >= max_executions {
            return ExploreReport::unreduced(executions, false, max_depth);
        }
        policy.depth = 0;
        run_one(&mut policy);
        executions += 1;

        max_depth = max_depth.max(policy.cursor.prefix.len());
        if !policy.cursor.advance() {
            return ExploreReport::unreduced(executions, true, max_depth);
        }
    }
}

/// Convenience: pids of processes, for checkers that need them.
#[must_use]
pub fn all_pids(n: usize) -> Vec<Pid> {
    (0..n).map(Pid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{RegAlloc, Word};

    #[test]
    fn counts_interleavings_of_independent_ops() {
        // Two processes, one op each: exactly C(2,1) = 2 schedules.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(2);
        let report = explore(
            alloc.total(),
            2,
            100,
            |ctx| ctx.write(bank.get(ctx.pid().0), 1u64),
            |outcome| {
                assert!(outcome.results.iter().all(Result::is_ok));
            },
        );
        assert!(report.complete);
        assert_eq!(report.executions, 2);
        assert_eq!(report.max_depth, 2);
    }

    #[test]
    fn counts_interleavings_two_ops_each() {
        // Two processes, two ops each: C(4,2) = 6 schedules.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let report = explore(
            alloc.total(),
            2,
            100,
            |ctx| {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                ctx.read(bank.get(0))
            },
            |_| {},
        );
        assert!(report.complete);
        assert_eq!(report.executions, 6);
    }

    #[test]
    fn finds_the_racy_interleaving() {
        // Classic lost-update shape: read-modify-write without atomicity.
        // Exploration must witness an execution where both processes read
        // 0 (the race), proving coverage beats luck.
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let saw_race = AtomicBool::new(false);
        let report = explore(
            alloc.total(),
            2,
            1000,
            |ctx| {
                let v = ctx.read(bank.get(0))?.as_int().unwrap_or(0);
                ctx.write(bank.get(0), v + 1)?;
                Ok(v)
            },
            |outcome| {
                let reads: Vec<u64> = outcome
                    .results
                    .iter()
                    .map(|r| *r.as_ref().unwrap())
                    .collect();
                if reads == [0, 0] {
                    saw_race.store(true, Ordering::SeqCst);
                }
            },
        );
        assert!(report.complete);
        assert!(
            saw_race.load(Ordering::SeqCst),
            "exploration missed the race"
        );
    }

    #[test]
    fn truncation_reports_incomplete() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let report = explore(
            alloc.total(),
            3,
            4,
            |ctx| {
                ctx.write(bank.get(0), 1u64)?;
                ctx.read(bank.get(0))?;
                ctx.write(bank.get(0), Word::Null)
            },
            |_| {},
        );
        assert!(!report.complete);
        assert_eq!(report.executions, 4);
    }

    #[test]
    fn all_pids_helper() {
        assert_eq!(all_pids(3), vec![Pid(0), Pid(1), Pid(2)]);
    }

    /// Write own id then read back, as a step machine.
    struct WriteRead {
        reg: exsel_shm::RegId,
        id: u64,
        wrote: bool,
    }

    impl StepMachine for WriteRead {
        type Output = u64;
        fn op(&self) -> exsel_shm::ShmOp {
            if self.wrote {
                exsel_shm::ShmOp::Read(self.reg)
            } else {
                exsel_shm::ShmOp::Write(self.reg, Word::Int(self.id))
            }
        }
        fn advance(&mut self, input: &Word) -> exsel_shm::Poll<u64> {
            if self.wrote {
                exsel_shm::Poll::Ready(input.expect_int())
            } else {
                self.wrote = true;
                exsel_shm::Poll::Pending
            }
        }
        fn reset(&mut self, _pid: Pid) {
            self.wrote = false;
        }
    }

    #[test]
    fn engine_explore_counts_match_thread_backed_explore() {
        // The same two-process write-then-read program on both backends:
        // identical schedule trees, identical counts (C(4,2) = 6).
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let threaded = explore(
            alloc.total(),
            2,
            100,
            |ctx| {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                ctx.read(bank.get(0)).map(|w| w.expect_int())
            },
            |_| {},
        );
        let engine = explore_engine(
            alloc.total(),
            2,
            100,
            |pid| {
                Box::new(WriteRead {
                    reg: bank.get(0),
                    id: pid.0 as u64,
                    wrote: false,
                })
            },
            |_| {},
        );
        assert!(threaded.complete && engine.complete);
        assert_eq!(threaded.executions, engine.executions);
        assert_eq!(threaded.max_depth, engine.max_depth);
    }

    #[test]
    fn engine_explore_finds_the_racy_interleaving() {
        /// Read-modify-write without atomicity, as a step machine.
        struct Incr {
            reg: exsel_shm::RegId,
            seen: Option<u64>,
        }
        impl StepMachine for Incr {
            type Output = u64;
            fn op(&self) -> exsel_shm::ShmOp {
                match self.seen {
                    None => exsel_shm::ShmOp::Read(self.reg),
                    Some(v) => exsel_shm::ShmOp::Write(self.reg, Word::Int(v + 1)),
                }
            }
            fn advance(&mut self, input: &Word) -> exsel_shm::Poll<u64> {
                match self.seen {
                    None => {
                        self.seen = Some(input.as_int().unwrap_or(0));
                        exsel_shm::Poll::Pending
                    }
                    Some(v) => exsel_shm::Poll::Ready(v),
                }
            }
            fn reset(&mut self, _pid: Pid) {
                self.seen = None;
            }
        }
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let saw_race = AtomicBool::new(false);
        let report = explore_engine(
            alloc.total(),
            2,
            1000,
            |_pid| {
                Box::new(Incr {
                    reg: bank.get(0),
                    seen: None,
                })
            },
            |outcome| {
                let reads: Vec<u64> = outcome
                    .results
                    .iter()
                    .map(|r| *r.as_ref().unwrap())
                    .collect();
                if reads == [0, 0] {
                    saw_race.store(true, Ordering::SeqCst);
                }
            },
        );
        assert!(report.complete);
        assert!(
            saw_race.load(Ordering::SeqCst),
            "exploration missed the race"
        );
    }

    #[test]
    fn pooled_explore_matches_factory_explore() {
        // The same program explored with per-execution boxed machines
        // and with one reset-in-place pool: identical tree walks.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let factory = explore_engine(
            alloc.total(),
            2,
            10_000,
            |pid| {
                Box::new(WriteRead {
                    reg: bank.get(0),
                    id: pid.0 as u64,
                    wrote: false,
                })
            },
            |_| {},
        );
        let mut pool: MachinePool<WriteRead> = (0..2)
            .map(|p| WriteRead {
                reg: bank.get(0),
                id: p,
                wrote: false,
            })
            .collect();
        let mut sum_of_reads = 0u64;
        let pooled = explore_pool(alloc.total(), &mut pool, 10_000, |pool| {
            for (_, out) in pool.completed() {
                sum_of_reads = sum_of_reads.wrapping_add(*out);
            }
        });
        assert!(factory.complete && pooled.complete);
        assert_eq!(factory.executions, pooled.executions);
        assert_eq!(factory.max_depth, pooled.max_depth);
        assert!(sum_of_reads > 0);
    }
}
