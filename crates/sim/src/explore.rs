//! Exhaustive schedule exploration — stateless model checking for small
//! programs.
//!
//! Because lock-step executions are a pure function of the grant
//! sequence, the complete schedule space of a (small, deterministic,
//! crash-free) program is a tree: each node is a scheduling decision, its
//! branches the processes pending there. [`explore`] walks that tree
//! depth-first by replaying prefixes — every leaf is one complete
//! execution handed to the caller's checker. This is the `loom` role in
//! this stack (see DESIGN.md substitutions): exhaustive verification of
//! the fine-grained primitives (`Compete-For-Register`, splitters,
//! snapshot) at small sizes, complementing seeded-random exploration at
//! large ones.
//!
//! The state space is exponential in the total operation count; intended
//! for programs of ≤ ~15 total operations (hundreds of thousands of
//! executions). `max_executions` truncates the walk gracefully.
//!
//! ```
//! use exsel_shm::{RegAlloc, Word};
//! use exsel_sim::explore;
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! // Two writers + readback: every interleaving sees *some* write.
//! let report = explore(alloc.total(), 2, 10_000, |ctx| {
//!     ctx.write(bank.get(0), ctx.pid().0 as u64)?;
//!     ctx.read(bank.get(0))
//! }, |outcome| {
//!     for r in &outcome.results {
//!         assert!(r.as_ref().unwrap().as_int().is_some());
//!     }
//! });
//! assert!(report.complete);
//! assert_eq!(report.executions, 6); // interleavings of (W0 R0 | W1 R1)
//! ```

use std::sync::{Arc, Mutex};

use exsel_shm::{Ctx, Pid, Step, StepMachine};

use crate::engine::StepEngine;
use crate::policy::{Action, PendingOp, Policy};
use crate::runner::{SimBuilder, SimOutcome};

/// Outcome of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Complete executions checked.
    pub executions: u64,
    /// Whether the whole schedule tree was covered (false if
    /// `max_executions` truncated the walk).
    pub complete: bool,
    /// The deepest decision point seen (total operations of the longest
    /// execution).
    pub max_depth: usize,
}

/// Shared between the driver and the policy instances it plants in each
/// run: the prefix of branch choices to replay, and the branching degree
/// observed at every decision of the last run.
#[derive(Debug, Default)]
struct Cursor {
    /// Branch index to take at decision `i`.
    prefix: Vec<usize>,
    /// Number of pending processes observed at decision `i` in the last
    /// run (its branching degree).
    degrees: Vec<usize>,
}

struct ExplorerPolicy {
    cursor: Arc<Mutex<Cursor>>,
    depth: usize,
}

impl Policy for ExplorerPolicy {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        let mut cur = self.cursor.lock().expect("cursor lock");
        let choice = if self.depth < cur.prefix.len() {
            cur.prefix[self.depth]
        } else {
            cur.prefix.push(0);
            0
        };
        if self.depth < cur.degrees.len() {
            cur.degrees[self.depth] = pending.len();
        } else {
            cur.degrees.push(pending.len());
        }
        let pid = pending[choice.min(pending.len() - 1)].pid;
        self.depth += 1;
        Action::Grant(pid)
    }
}

/// Runs `body` on `num_procs` simulated processes under **every**
/// schedule (up to `max_executions`), invoking `check` on each complete
/// execution. `check` signals violations by panicking (e.g. with
/// `assert!`), which surfaces with the standard test machinery.
///
/// `body` must be deterministic given the schedule (no randomness keyed
/// off anything but `ctx.pid()` and register contents).
///
/// # Panics
///
/// Propagates panics from `body` and `check`.
pub fn explore<T, F, C>(
    num_registers: usize,
    num_procs: usize,
    max_executions: u64,
    body: F,
    check: C,
) -> ExploreReport
where
    T: Send,
    F: Fn(Ctx<'_>) -> Step<T> + Sync,
    C: Fn(&SimOutcome<T>),
{
    explore_driver(max_executions, check, |policy| {
        SimBuilder::new(num_registers, policy).run(num_procs, &body)
    })
}

/// [`explore`] on the single-threaded [`StepEngine`]: identical schedule
/// tree, identical checker interface, no thread spawns — typically an
/// order of magnitude faster, which buys exhaustive coverage of deeper
/// programs. `factory(pid)` builds the step machine of process `pid`; it
/// is invoked afresh for every execution. One reusable engine serves the
/// whole walk ([`StepEngine::run_trial`]), so exploring a tree of
/// thousands of executions reallocates nothing but the machines.
///
/// # Panics
///
/// Propagates panics from the machines and `check`.
pub fn explore_engine<'a, T, F, C>(
    num_registers: usize,
    num_procs: usize,
    max_executions: u64,
    factory: F,
    check: C,
) -> ExploreReport
where
    F: Fn(Pid) -> Box<dyn StepMachine<Output = T> + 'a>,
    C: Fn(&SimOutcome<T>),
{
    let mut engine = StepEngine::reusable(num_registers);
    explore_driver(max_executions, check, |mut policy| {
        engine.run_trial(
            policy.as_mut(),
            (0..num_procs).map(Pid).map(&factory).collect(),
        )
    })
}

/// The depth-first odometer shared by both explore backends: re-runs the
/// program under [`ExplorerPolicy`] prefixes until the whole schedule
/// tree is covered (or `max_executions` truncates the walk).
fn explore_driver<T, C, R>(max_executions: u64, check: C, mut run_one: R) -> ExploreReport
where
    C: Fn(&SimOutcome<T>),
    R: FnMut(Box<dyn Policy>) -> SimOutcome<T>,
{
    let cursor = Arc::new(Mutex::new(Cursor::default()));
    let mut executions = 0;
    let mut max_depth = 0;
    loop {
        if executions >= max_executions {
            return ExploreReport {
                executions,
                complete: false,
                max_depth,
            };
        }
        // One run following the current prefix (0-extended past its end).
        let policy = ExplorerPolicy {
            cursor: Arc::clone(&cursor),
            depth: 0,
        };
        let outcome = run_one(Box::new(policy));
        executions += 1;
        check(&outcome);

        // Advance the odometer: find the deepest decision with an untried
        // branch, increment it, truncate everything below.
        let mut cur = cursor.lock().expect("cursor lock");
        max_depth = max_depth.max(cur.prefix.len());
        let mut next = None;
        for i in (0..cur.prefix.len()).rev() {
            if cur.prefix[i] + 1 < cur.degrees[i] {
                next = Some(i);
                break;
            }
        }
        match next {
            Some(i) => {
                cur.prefix[i] += 1;
                cur.prefix.truncate(i + 1);
                cur.degrees.truncate(i + 1);
            }
            None => {
                return ExploreReport {
                    executions,
                    complete: true,
                    max_depth,
                };
            }
        }
    }
}

/// Convenience: pids of processes, for checkers that need them.
#[must_use]
pub fn all_pids(n: usize) -> Vec<Pid> {
    (0..n).map(Pid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{RegAlloc, Word};

    #[test]
    fn counts_interleavings_of_independent_ops() {
        // Two processes, one op each: exactly C(2,1) = 2 schedules.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(2);
        let report = explore(
            alloc.total(),
            2,
            100,
            |ctx| ctx.write(bank.get(ctx.pid().0), 1u64),
            |outcome| {
                assert!(outcome.results.iter().all(Result::is_ok));
            },
        );
        assert!(report.complete);
        assert_eq!(report.executions, 2);
        assert_eq!(report.max_depth, 2);
    }

    #[test]
    fn counts_interleavings_two_ops_each() {
        // Two processes, two ops each: C(4,2) = 6 schedules.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let report = explore(
            alloc.total(),
            2,
            100,
            |ctx| {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                ctx.read(bank.get(0))
            },
            |_| {},
        );
        assert!(report.complete);
        assert_eq!(report.executions, 6);
    }

    #[test]
    fn finds_the_racy_interleaving() {
        // Classic lost-update shape: read-modify-write without atomicity.
        // Exploration must witness an execution where both processes read
        // 0 (the race), proving coverage beats luck.
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let saw_race = AtomicBool::new(false);
        let report = explore(
            alloc.total(),
            2,
            1000,
            |ctx| {
                let v = ctx.read(bank.get(0))?.as_int().unwrap_or(0);
                ctx.write(bank.get(0), v + 1)?;
                Ok(v)
            },
            |outcome| {
                let reads: Vec<u64> = outcome
                    .results
                    .iter()
                    .map(|r| *r.as_ref().unwrap())
                    .collect();
                if reads == [0, 0] {
                    saw_race.store(true, Ordering::SeqCst);
                }
            },
        );
        assert!(report.complete);
        assert!(
            saw_race.load(Ordering::SeqCst),
            "exploration missed the race"
        );
    }

    #[test]
    fn truncation_reports_incomplete() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let report = explore(
            alloc.total(),
            3,
            4,
            |ctx| {
                ctx.write(bank.get(0), 1u64)?;
                ctx.read(bank.get(0))?;
                ctx.write(bank.get(0), Word::Null)
            },
            |_| {},
        );
        assert!(!report.complete);
        assert_eq!(report.executions, 4);
    }

    #[test]
    fn all_pids_helper() {
        assert_eq!(all_pids(3), vec![Pid(0), Pid(1), Pid(2)]);
    }

    /// Write own id then read back, as a step machine.
    struct WriteRead {
        reg: exsel_shm::RegId,
        id: u64,
        wrote: bool,
    }

    impl StepMachine for WriteRead {
        type Output = u64;
        fn op(&self) -> exsel_shm::ShmOp {
            if self.wrote {
                exsel_shm::ShmOp::Read(self.reg)
            } else {
                exsel_shm::ShmOp::Write(self.reg, Word::Int(self.id))
            }
        }
        fn advance(&mut self, input: Word) -> exsel_shm::Poll<u64> {
            if self.wrote {
                exsel_shm::Poll::Ready(input.expect_int())
            } else {
                self.wrote = true;
                exsel_shm::Poll::Pending
            }
        }
    }

    #[test]
    fn engine_explore_counts_match_thread_backed_explore() {
        // The same two-process write-then-read program on both backends:
        // identical schedule trees, identical counts (C(4,2) = 6).
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let threaded = explore(
            alloc.total(),
            2,
            100,
            |ctx| {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                ctx.read(bank.get(0)).map(|w| w.expect_int())
            },
            |_| {},
        );
        let engine = explore_engine(
            alloc.total(),
            2,
            100,
            |pid| {
                Box::new(WriteRead {
                    reg: bank.get(0),
                    id: pid.0 as u64,
                    wrote: false,
                })
            },
            |_| {},
        );
        assert!(threaded.complete && engine.complete);
        assert_eq!(threaded.executions, engine.executions);
        assert_eq!(threaded.max_depth, engine.max_depth);
    }

    #[test]
    fn engine_explore_finds_the_racy_interleaving() {
        /// Read-modify-write without atomicity, as a step machine.
        struct Incr {
            reg: exsel_shm::RegId,
            seen: Option<u64>,
        }
        impl StepMachine for Incr {
            type Output = u64;
            fn op(&self) -> exsel_shm::ShmOp {
                match self.seen {
                    None => exsel_shm::ShmOp::Read(self.reg),
                    Some(v) => exsel_shm::ShmOp::Write(self.reg, Word::Int(v + 1)),
                }
            }
            fn advance(&mut self, input: Word) -> exsel_shm::Poll<u64> {
                match self.seen {
                    None => {
                        self.seen = Some(input.as_int().unwrap_or(0));
                        exsel_shm::Poll::Pending
                    }
                    Some(v) => exsel_shm::Poll::Ready(v),
                }
            }
        }
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let saw_race = AtomicBool::new(false);
        let report = explore_engine(
            alloc.total(),
            2,
            1000,
            |_pid| {
                Box::new(Incr {
                    reg: bank.get(0),
                    seen: None,
                })
            },
            |outcome| {
                let reads: Vec<u64> = outcome
                    .results
                    .iter()
                    .map(|r| *r.as_ref().unwrap())
                    .collect();
                if reads == [0, 0] {
                    saw_race.store(true, Ordering::SeqCst);
                }
            },
        );
        assert!(report.complete);
        assert!(
            saw_race.load(Ordering::SeqCst),
            "exploration missed the race"
        );
    }
}
