//! Open-loop service harness: client sessions over the paper's objects,
//! with fault injection, admission control and retry/backoff.
//!
//! The closed-loop trial drivers ([`StepEngine`](crate::StepEngine))
//! run a *fixed* contender set to quiescence. This module models the
//! "repository as a service" view instead: clients **arrive** by a
//! pluggable process ([`Arrivals`] — Poisson, bursty, diurnal ramp),
//! are **admitted** against an in-flight bound (or queued, or shed into
//! jittered exponential backoff — [`Admission`]), run one
//! acquire → store → collect → deposit **session** across the unbounded
//! naming object, a store&collect object and the wait-free altruistic
//! repository, and **depart** — while a fault injector crashes in-flight
//! sessions by a configurable per-step hazard and forces the client to
//! re-enter as a fresh contender.
//!
//! The harness is built from the same parts as the engine — pooled
//! [`StepMachine`]s over a [`RegisterBank`], one shared-memory operation
//! per granted step, every random choice drawn from seeded [`SmallRng`]
//! streams (the policy RNG discipline) — but owns its own grant loop,
//! because open-loop membership (slots bind, free, and re-bind clients
//! mid-run) is exactly what the engine's closed trial cannot express.
//! All machines are built once per slot and re-armed in place, so the
//! steady state performs **zero heap allocations**; telemetry is plain
//! `u64` rows ([`WindowRow`]) pushed into a pre-sized buffer, so a run
//! is bit-identical per seed.
//!
//! # Crash–re-entry semantics
//!
//! A crash kills the *incarnation*, not the slot: the slot's machines
//! stay mid-flight, and when the client re-enters (through admission,
//! after backoff) the naming and deposit machines are re-entered as
//! fresh contenders with their suites republished
//! ([`exsel_unbounded::NamingMachine::reenter`]) — local claim state is
//! kept, so integers claimed by dead incarnations stay claimed (wasted,
//! per the paper's crash budget) and **completed sessions' tickets are
//! pairwise exclusive**. A first store interrupted mid-rename is
//! *resumed* (slot registration is infrastructure, not client state);
//! collects restart from scratch (reads only).
//!
//! # Example
//!
//! ```
//! use exsel_sim::service::{Admission, Arrivals, ServiceConfig, ServiceHarness, ServiceWorld};
//!
//! let cfg = ServiceConfig {
//!     seed: 7,
//!     slots: 4,
//!     target_sessions: 200,
//!     // The in-flight bound may not exceed the slot count.
//!     admission: Admission {
//!         max_inflight: 4,
//!         ..ServiceConfig::default().admission
//!     },
//!     ..ServiceConfig::default()
//! };
//! let world = ServiceWorld::new(&cfg);
//! let report = ServiceHarness::new(&world, &cfg).run();
//! assert!(report.totals.completed >= 200);
//! // Completed sessions hold pairwise-distinct tickets.
//! let mut names = report.names.clone();
//! names.sort_unstable();
//! names.dedup();
//! assert_eq!(names.len() as u64, report.totals.completed);
//! ```

pub mod mega;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use exsel_core::RenameConfig;
use exsel_shm::{ArcBank, Pid, Poll, RegAlloc, RegisterBank, ShmOp, StepMachine, Word};
use exsel_storecollect::StoreCollect;
use exsel_unbounded::{AltruisticDeposit, UnboundedNaming};
use rand::{rngs::SmallRng, Rng, RngCore, SeedableRng};

use crate::machines::SessionMachines;

/// How clients arrive, in service-clock steps. Every process is driven
/// by its own seeded RNG stream, so the arrival schedule is a pure
/// function of the configuration.
#[derive(Clone, Copy, Debug)]
pub enum Arrivals {
    /// Poisson arrivals: exponential inter-arrival gaps with the given
    /// mean (steps).
    Poisson {
        /// Mean inter-arrival gap in steps.
        mean_gap: f64,
    },
    /// Bursty on/off arrivals: Poisson with `mean_gap` during a burst of
    /// `burst` steps, silence for `lull` steps, repeating.
    Bursty {
        /// Mean inter-arrival gap during a burst.
        mean_gap: f64,
        /// Burst length in steps.
        burst: u64,
        /// Silence length in steps.
        lull: u64,
    },
    /// Diurnal ramp: Poisson whose mean gap sweeps between `peak_gap`
    /// (mid-cycle, busiest) and `trough_gap` (cycle edges, quietest)
    /// along a triangular profile of the given period.
    Diurnal {
        /// Mean gap at the daily peak (smallest).
        peak_gap: f64,
        /// Mean gap at the daily trough (largest).
        trough_gap: f64,
        /// Cycle length in steps.
        period: u64,
    },
}

impl Arrivals {
    /// Steps from `now` to the next arrival (≥ 1).
    fn next_gap(&self, now: u64, rng: &mut SmallRng) -> u64 {
        match *self {
            Arrivals::Poisson { mean_gap } => exp_gap(mean_gap, rng),
            Arrivals::Bursty {
                mean_gap,
                burst,
                lull,
            } => {
                let cycle = burst + lull;
                let pos = if cycle == 0 { 0 } else { now % cycle };
                // If we sit in the lull, first jump to the next burst.
                let skip = if pos >= burst { cycle - pos } else { 0 };
                skip + exp_gap(mean_gap, rng)
            }
            Arrivals::Diurnal {
                peak_gap,
                trough_gap,
                period,
            } => {
                let phase = if period == 0 {
                    0.0
                } else {
                    (now % period) as f64 / period as f64
                };
                // Triangular: 1 at the cycle edges (trough), 0 mid-cycle.
                let tri = 2.0 * (phase - 0.5).abs();
                exp_gap(peak_gap + (trough_gap - peak_gap) * tri, rng)
            }
        }
    }
}

/// One exponential gap with the given mean, floored at one step (and
/// capped defensively — a `mean_gap` of hours must not overflow the
/// clock).
fn exp_gap(mean: f64, rng: &mut SmallRng) -> u64 {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let gap = -mean * (1.0 - u).ln();
    gap.min(1e15).ceil().max(1.0) as u64
}

/// The admission-control policy: how much in-flight contention the
/// service accepts, and what happens to the overflow.
///
/// An arriving (or re-entering) client is **admitted** when in-flight
/// sessions sit below `max_inflight` and a slot is free; otherwise it
/// **queues** FIFO while the waiting room has space; otherwise it is
/// **shed** into exponential backoff — retrying after
/// `base << attempt` steps (capped, plus uniform jitter of up to half
/// the delay) — until `max_retries` attempts are spent or the backoff
/// population itself overflows `waiting_capacity`, at which point the
/// client is cleanly **rejected**.
#[derive(Clone, Copy, Debug)]
pub struct Admission {
    /// Sessions allowed in flight simultaneously (≤ slots).
    pub max_inflight: usize,
    /// FIFO waiting-room capacity; 0 disables queueing.
    pub queue_capacity: usize,
    /// Base backoff delay in steps (attempt 0).
    pub backoff_base: u64,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: u64,
    /// Backoff attempts before a client is rejected for good.
    pub max_retries: u32,
    /// Bound on clients simultaneously in backoff; overflow is rejected
    /// outright (hard load shedding).
    pub waiting_capacity: usize,
}

impl Admission {
    /// The jittered exponential backoff delay for the given attempt.
    fn delay(&self, attempt: u32, rng: &mut SmallRng) -> u64 {
        let base = self
            .backoff_base
            .max(1)
            .checked_shl(attempt)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap.max(1));
        base + rng.gen_range(0..=base / 2)
    }
}

/// Full configuration of a service run. Everything is in **service
/// steps** (one granted shared-memory operation; idle gaps fast-forward
/// the clock), so a run is a pure function of this struct.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Seed for every RNG stream (scheduler, arrivals, hazard, jitter).
    pub seed: u64,
    /// Client slots = the `n` the shared objects are built for (max
    /// concurrent sessions).
    pub slots: usize,
    /// Stop after completing this many sessions (0: run to the horizon
    /// or until drained).
    pub target_sessions: u64,
    /// Stop generating arrivals after this many clients (0: unbounded).
    /// With a bound, the run continues until the system drains.
    pub max_clients: u64,
    /// Hard cap on the service clock.
    pub horizon: u64,
    /// Telemetry window length in steps.
    pub window: u64,
    /// The arrival process.
    pub arrivals: Arrivals,
    /// Per-granted-step crash probability of the in-flight session
    /// (the fault injector's hazard; 0 disables).
    pub crash_hazard: f64,
    /// Admission control.
    pub admission: Admission,
    /// Deposit-arena registers; 0 auto-sizes from the session target.
    pub arena_capacity: usize,
    /// Record every completed session's ticket (for exclusivity audits;
    /// costs 8 bytes per session).
    pub record_names: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 0,
            slots: 8,
            target_sessions: 0,
            max_clients: 0,
            horizon: u64::MAX / 4,
            window: 1 << 14,
            arrivals: Arrivals::Poisson { mean_gap: 40.0 },
            crash_hazard: 0.0,
            admission: Admission {
                max_inflight: 8,
                queue_capacity: 16,
                backoff_base: 64,
                backoff_cap: 1 << 14,
                max_retries: 8,
                waiting_capacity: 256,
            },
            arena_capacity: 0,
            record_names: true,
        }
    }
}

impl ServiceConfig {
    /// The deposit-arena size this configuration implies: the explicit
    /// capacity, or twice the expected session count plus crash/park
    /// slack.
    #[must_use]
    pub fn arena(&self) -> usize {
        if self.arena_capacity > 0 {
            return self.arena_capacity;
        }
        let expected = self.target_sessions.max(self.max_clients).max(1 << 12) as usize;
        2 * expected + 4 * self.slots * self.slots + 256
    }
}

/// The shared-memory world a service run executes against: one
/// unbounded-naming object (session tickets), one adaptive store&collect
/// object and one altruistic repository, all sized for `slots`
/// concurrent clients on a single register address space.
#[derive(Debug)]
pub struct ServiceWorld {
    naming: UnboundedNaming,
    sc: StoreCollect,
    repo: AltruisticDeposit,
    registers: usize,
}

impl ServiceWorld {
    /// Builds the world for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.slots == 0`.
    #[must_use]
    pub fn new(cfg: &ServiceConfig) -> Self {
        assert!(cfg.slots > 0, "need at least one client slot");
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, cfg.slots);
        let sc = StoreCollect::adaptive(&mut alloc, cfg.slots, &RenameConfig::default());
        let repo = AltruisticDeposit::new(&mut alloc, cfg.slots, cfg.arena().max(2 * cfg.slots));
        // Pre-seed the snapshot recycling arenas past any live-buffer
        // high-water a `slots`-bounded run can reach: each component
        // register pins one record, every scanner's collect cache pins
        // up to `slots` more, and rare interleavings stack generations —
        // so even the first contention excursion deep into a run stays
        // allocation-free, where warm-up alone only covers the
        // high-water it happened to visit (O(slots²) small buffers;
        // ~1 MiB at the default 8 slots).
        let reserve = 32 * cfg.slots * cfg.slots + 64;
        naming.snapshot().arena().reserve(reserve, reserve);
        repo.naming().snapshot().arena().reserve(reserve, reserve);
        ServiceWorld {
            naming,
            sc,
            repo,
            registers: alloc.total(),
        }
    }

    /// Total registers the world occupies.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.registers
    }
}

impl exsel_shm::Footprint for ServiceWorld {
    /// A session slot's full access contract: the union of the three
    /// component footprints for the slot's pid. The harness's direct
    /// registered-store write lands in the store&collect value bank,
    /// which the component already declares shared, so no extra extent
    /// is needed for it.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        exsel_shm::Footprint::footprint(&self.naming, pid, spec);
        exsel_shm::Footprint::footprint(&self.sc, pid, spec);
        exsel_shm::Footprint::footprint(&self.repo, pid, spec);
    }
}

/// Where a bound session currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// No client bound.
    Free,
    /// Driving the unbounded-naming acquire (the session ticket).
    Acquire,
    /// Driving the slot's first store (rename + controls + value write),
    /// or — once registered — performing the session's one-write store.
    Store,
    /// Driving the prefix-read collect.
    Collect,
    /// Driving one wait-free deposit round.
    Deposit,
}

/// The per-op latency families a service run measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
enum OpFamily {
    Acquire = 0,
    Store = 1,
    Collect = 2,
    Deposit = 3,
    /// Admission → departure.
    Session = 4,
    /// Arrival → departure (includes queue and backoff time).
    Sojourn = 5,
}

const FAMILIES: usize = 6;

/// A fixed-size log-bucketed step-latency histogram: values 0–7 exact,
/// then four sub-buckets per octave (≈ ±12% resolution) up to `u64::MAX`
/// — 256 buckets total, recording and quantile extraction both
/// allocation-free.
#[derive(Clone, Debug)]
pub struct StepHistogram {
    counts: [u64; 256],
    total: u64,
}

impl Default for StepHistogram {
    fn default() -> Self {
        StepHistogram {
            counts: [0; 256],
            total: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let lg = 63 - v.leading_zeros() as usize; // ≥ 3
        let sub = ((v >> (lg - 2)) & 3) as usize;
        8 + (lg - 3) * 4 + sub
    }
}

fn bucket_low(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let lg = 3 + (idx - 8) / 4;
        let sub = ((idx - 8) % 4) as u64;
        (1u64 << lg) + (sub << (lg - 2))
    }
}

impl StepHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `num/den` quantile (lower bound of its bucket, in steps);
    /// 0 when empty.
    #[must_use]
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (self.total * num).div_ceil(den).max(1);
        let mut cum = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_low(idx);
            }
        }
        bucket_low(255)
    }

    /// Clears all buckets in place.
    pub fn clear(&mut self) {
        self.counts = [0; 256];
        self.total = 0;
    }
}

/// Counter deltas and end-of-window gauges for one telemetry window —
/// all `u64`, so rendering them (JSON Lines in exsel-bench) is
/// bit-identical per seed. Latency quantiles are *within-window*, in
/// steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowRow {
    /// Window index.
    pub window: u64,
    /// First step of the window.
    pub start: u64,
    /// First step past the window.
    pub end: u64,
    /// Clients arriving in the window.
    pub arrivals: u64,
    /// Session starts (binds), including retries and re-entries.
    pub admitted: u64,
    /// Sessions completed (windowed throughput).
    pub completed: u64,
    /// Fault-injector crashes.
    pub crashes: u64,
    /// Re-entries of previously crashed clients.
    pub reentries: u64,
    /// Backoff retries (shed clients re-arriving).
    pub retries: u64,
    /// Admission refusals shed into backoff.
    pub shed: u64,
    /// Clients rejected for good.
    pub rejected: u64,
    /// Sessions in flight at window end.
    pub inflight: u64,
    /// Waiting-room depth at window end.
    pub queued: u64,
    /// Backoff population at window end.
    pub waiting: u64,
    /// Session (admission → departure) latency quantiles.
    pub session_p50: u64,
    /// See [`WindowRow::session_p50`].
    pub session_p99: u64,
    /// See [`WindowRow::session_p50`].
    pub session_p999: u64,
    /// Sojourn (arrival → departure) p99.
    pub sojourn_p99: u64,
    /// Acquire-phase latency quantiles.
    pub acquire_p50: u64,
    /// See [`WindowRow::acquire_p50`].
    pub acquire_p99: u64,
    /// See [`WindowRow::acquire_p50`].
    pub acquire_p999: u64,
    /// Store-phase latency quantiles.
    pub store_p50: u64,
    /// See [`WindowRow::store_p50`].
    pub store_p99: u64,
    /// See [`WindowRow::store_p50`].
    pub store_p999: u64,
    /// Collect-phase latency quantiles.
    pub collect_p50: u64,
    /// See [`WindowRow::collect_p50`].
    pub collect_p99: u64,
    /// See [`WindowRow::collect_p50`].
    pub collect_p999: u64,
    /// Deposit-phase latency quantiles.
    pub deposit_p50: u64,
    /// See [`WindowRow::deposit_p50`].
    pub deposit_p99: u64,
    /// See [`WindowRow::deposit_p50`].
    pub deposit_p999: u64,
}

/// Whole-run totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Clients that arrived.
    pub arrivals: u64,
    /// Session starts (binds), including retries and re-entries.
    pub admitted: u64,
    /// Sessions completed.
    pub completed: u64,
    /// Fault-injector crashes.
    pub crashes: u64,
    /// Re-entries of crashed clients.
    pub reentries: u64,
    /// Backoff retries.
    pub retries: u64,
    /// Admission refusals shed into backoff.
    pub shed: u64,
    /// Clients rejected for good.
    pub rejected: u64,
    /// Granted shared-memory operations.
    pub ops: u64,
    /// Final service clock.
    pub steps: u64,
}

/// The result of a service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Whole-run totals.
    pub totals: Totals,
    /// The telemetry time series, one row per window.
    pub windows: Vec<WindowRow>,
    /// Whole-run per-op latency histograms, indexable by the same
    /// order as the window quantiles: acquire, store, collect, deposit,
    /// session, sojourn.
    pub cumulative: Vec<StepHistogram>,
    /// Tickets of completed sessions, in completion order (empty unless
    /// [`ServiceConfig::record_names`]).
    pub names: Vec<u64>,
    /// Clients still in the system at the end (in flight + queued +
    /// backing off). 0 means the run drained cleanly.
    pub in_system: u64,
}

impl ServiceReport {
    /// The accounting identity every run satisfies: every arrival is
    /// completed, cleanly rejected, or still in the system.
    #[must_use]
    pub fn accounted(&self) -> bool {
        self.totals.arrivals == self.totals.completed + self.totals.rejected + self.in_system
    }
}

/// A client's journey record while waiting (queue or backoff).
#[derive(Clone, Copy, Debug)]
struct Client {
    id: u64,
    arrival: u64,
    attempt: u32,
    crashed: bool,
}

/// One client slot: the pooled session-machine bundle of its pid
/// ([`SessionMachines`]) plus the bound session's bookkeeping.
struct Slot<'w> {
    machines: SessionMachines<'w>,
    phase: Phase,
    client: Client,
    ticket: u64,
    session_start: u64,
    phase_start: u64,
    original: u64,
}

/// The telemetry sink of a service run: global counter totals, the
/// current window's histograms and counter deltas, the emitted window
/// rows, the whole-run histograms and the ticket audit. The unsharded
/// harness owns exactly one; a sharded run ([`mega`]) aggregates every
/// shard into one shared sink, which is what makes its windows and
/// totals a *global roll-up* rather than per-shard fragments.
struct Telemetry {
    /// Window length in steps ([`ServiceConfig::window`]).
    window: u64,
    window_hists: Vec<StepHistogram>,
    cumulative: Vec<StepHistogram>,
    window_counts: WindowRow,
    windows: Vec<WindowRow>,
    window_end: u64,
    totals: Totals,
    names: Vec<u64>,
    record_names: bool,
}

impl Telemetry {
    /// Builds the sink for `cfg`, pre-sizing the window and audit
    /// buffers so a bounded run records into them allocation-free.
    fn new(cfg: &ServiceConfig) -> Self {
        // Cap the pre-reservation: an open-ended horizon (the default is
        // u64::MAX / 4) would otherwise ask for gigabytes of window rows.
        // 2^18 windows is orders of magnitude beyond any bounded run; a
        // run that outlives the reservation reallocates amortized, which
        // only the zero-alloc gate (bounded scenarios) would notice.
        let est_windows =
            usize::try_from((cfg.horizon / cfg.window).min(1 << 18).saturating_add(2)).unwrap_or(2);
        let expected_names = if cfg.record_names {
            usize::try_from(cfg.target_sessions.max(cfg.max_clients))
                .unwrap_or(0)
                .saturating_add(64)
        } else {
            0
        };
        Telemetry {
            window: cfg.window,
            window_hists: vec![StepHistogram::default(); FAMILIES],
            cumulative: vec![StepHistogram::default(); FAMILIES],
            window_counts: WindowRow::default(),
            windows: Vec::with_capacity(est_windows),
            window_end: cfg.window,
            totals: Totals::default(),
            names: Vec::with_capacity(expected_names),
            record_names: cfg.record_names,
        }
    }

    /// Records a completed phase's latency.
    fn record(&mut self, family: OpFamily, sample: u64) {
        self.window_hists[family as usize].record(sample);
        self.cumulative[family as usize].record(sample);
    }

    /// Emits window rows for every boundary at or before `now`. The
    /// gauges are the run's current `(inflight, queued, waiting)` —
    /// summed across shards by a sharded caller — and are constant
    /// across the (idle) span a multi-boundary roll covers.
    fn roll(&mut self, now: u64, gauges: (u64, u64, u64)) {
        while now >= self.window_end {
            self.emit(gauges);
        }
    }

    fn emit(&mut self, (inflight, queued, waiting): (u64, u64, u64)) {
        let mut row = self.window_counts;
        row.window = self.windows.len() as u64;
        row.start = self.window_end - self.window;
        row.end = self.window_end;
        row.inflight = inflight;
        row.queued = queued;
        row.waiting = waiting;
        let q = |h: &StepHistogram, n: u64, d: u64| h.quantile(n, d);
        let h = &self.window_hists;
        row.session_p50 = q(&h[OpFamily::Session as usize], 1, 2);
        row.session_p99 = q(&h[OpFamily::Session as usize], 99, 100);
        row.session_p999 = q(&h[OpFamily::Session as usize], 999, 1000);
        row.sojourn_p99 = q(&h[OpFamily::Sojourn as usize], 99, 100);
        row.acquire_p50 = q(&h[OpFamily::Acquire as usize], 1, 2);
        row.acquire_p99 = q(&h[OpFamily::Acquire as usize], 99, 100);
        row.acquire_p999 = q(&h[OpFamily::Acquire as usize], 999, 1000);
        row.store_p50 = q(&h[OpFamily::Store as usize], 1, 2);
        row.store_p99 = q(&h[OpFamily::Store as usize], 99, 100);
        row.store_p999 = q(&h[OpFamily::Store as usize], 999, 1000);
        row.collect_p50 = q(&h[OpFamily::Collect as usize], 1, 2);
        row.collect_p99 = q(&h[OpFamily::Collect as usize], 99, 100);
        row.collect_p999 = q(&h[OpFamily::Collect as usize], 999, 1000);
        row.deposit_p50 = q(&h[OpFamily::Deposit as usize], 1, 2);
        row.deposit_p99 = q(&h[OpFamily::Deposit as usize], 99, 100);
        row.deposit_p999 = q(&h[OpFamily::Deposit as usize], 999, 1000);
        self.windows.push(row);
        self.window_counts = WindowRow::default();
        for hist in &mut self.window_hists {
            hist.clear();
        }
        self.window_end += self.window;
    }

    /// Whether the current partial window holds anything.
    fn pending(&self) -> bool {
        self.window_counts != WindowRow::default()
            || self.window_hists.iter().any(|h| h.total() > 0)
    }

    /// The final flush: emits boundaries crossed by the last
    /// fast-forward plus the partial window if it holds anything, stamps
    /// the clock, and assembles the report.
    fn finish(mut self, now: u64, gauges: (u64, u64, u64), in_system: u64) -> ServiceReport {
        self.roll(now, gauges);
        if self.pending() {
            self.emit(gauges);
        }
        self.totals.steps = now;
        ServiceReport {
            totals: self.totals,
            windows: self.windows,
            cumulative: self.cumulative,
            names: self.names,
            in_system,
        }
    }
}

/// The per-shard control plane of a service run: the slot slab, the
/// free/active lists, the admission queue, the backoff timer heap, the
/// four seeded RNG streams and the shard's own counter totals. The
/// unsharded [`ServiceHarness`] is exactly one of these driven by its
/// own clock; [`mega::MegaServiceHarness`] drives a vector of them in
/// lock-step against one shared [`Telemetry`] sink and one global
/// clock. Every counter increments both the shard's [`Totals`] and the
/// sink's, so per-shard accounting provably sums to the roll-up.
struct ShardState<'w, B: RegisterBank> {
    cfg: ServiceConfig,
    bank: B,
    slots: Vec<Slot<'w>>,
    free: Vec<usize>,
    active: Vec<usize>,
    /// `active_pos[slot]` is the slot's index in `active`
    /// (`usize::MAX` when inactive).
    active_pos: Vec<usize>,
    queue: VecDeque<Client>,
    timers: BinaryHeap<Reverse<(u64, u64, ClientBits)>>,
    timer_seq: u64,
    sched_rng: SmallRng,
    arrival_rng: SmallRng,
    hazard_rng: SmallRng,
    jitter_rng: SmallRng,
    next_arrival: u64,
    next_client: u64,
    waiting: usize,
    totals: Totals,
    /// Completed tickets are published to the audit as
    /// `ticket * ticket_step + ticket_base` — the identity map for the
    /// unsharded harness (step 1, base 0), shard-namespaced for mega
    /// runs so tickets stay globally exclusive across the shards'
    /// independent naming objects.
    ticket_step: u64,
    ticket_base: u64,
    /// The shard's dynamic footprint checker, if one is installed —
    /// consulted on every granted (and priming) operation. Sharded
    /// worlds get one checker per shard: each shard's world and bank
    /// are register-disjoint, so per-shard checking is exactly whole-
    /// run checking.
    #[cfg(feature = "check")]
    checker: Option<exsel_analysis::AccessChecker>,
}

/// The open-loop service harness; see the module docs. Borrows the
/// world (machines hold references into the shared objects) and owns
/// the register bank, the clock, and every waiting-room structure.
pub struct ServiceHarness<'w, B: RegisterBank = ArcBank> {
    cfg: ServiceConfig,
    shard: ShardState<'w, B>,
    tel: Telemetry,
    now: u64,
}

/// A [`Client`] packed into plain integers so the timer heap's ordering
/// is a pure `(due, seq)` comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ClientBits {
    id: u64,
    arrival: u64,
    attempt: u32,
    crashed: bool,
}

const NOT_ACTIVE: usize = usize::MAX;

impl<'w, B: RegisterBank> ShardState<'w, B> {
    /// Builds one shard over `world` with its own register bank.
    /// Completed tickets are published as
    /// `ticket * ticket_step + ticket_base`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (no slots, a zero
    /// window, or an in-flight bound above the slot count).
    fn new(
        world: &'w ServiceWorld,
        cfg: &ServiceConfig,
        mut bank: B,
        ticket_base: u64,
        ticket_step: u64,
    ) -> Self {
        assert!(cfg.slots > 0, "need at least one client slot");
        assert!(cfg.window > 0, "telemetry window must be positive");
        assert!(
            cfg.admission.max_inflight <= cfg.slots,
            "in-flight bound {} above the {} slots",
            cfg.admission.max_inflight,
            cfg.slots
        );
        bank.reset(world.registers);
        let slots: Vec<Slot<'w>> = (0..cfg.slots)
            .map(|p| Slot {
                machines: SessionMachines::new(
                    &world.naming,
                    &world.sc,
                    &world.repo,
                    Pid(p),
                    p as u64 + 1,
                ),
                phase: Phase::Free,
                client: Client {
                    id: 0,
                    arrival: 0,
                    attempt: 0,
                    crashed: false,
                },
                ticket: 0,
                session_start: 0,
                phase_start: 0,
                original: p as u64 + 1,
            })
            .collect();
        let mut arrival_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xA221_55A1);
        let first_arrival = cfg.arrivals.next_gap(0, &mut arrival_rng);
        ShardState {
            cfg: *cfg,
            bank,
            free: (0..cfg.slots).rev().collect(),
            active: Vec::with_capacity(cfg.slots),
            active_pos: vec![NOT_ACTIVE; cfg.slots],
            slots,
            queue: VecDeque::with_capacity(cfg.admission.queue_capacity.saturating_add(1)),
            timers: BinaryHeap::with_capacity(cfg.admission.waiting_capacity.saturating_add(1)),
            timer_seq: 0,
            sched_rng: SmallRng::seed_from_u64(cfg.seed),
            arrival_rng,
            hazard_rng: SmallRng::seed_from_u64(cfg.seed ^ 0x4A5A_12D0_FFB3),
            jitter_rng: SmallRng::seed_from_u64(cfg.seed ^ 0xB0FF_0FF5),
            next_arrival: first_arrival,
            next_client: 0,
            waiting: 0,
            totals: Totals::default(),
            ticket_step,
            ticket_base,
            #[cfg(feature = "check")]
            checker: None,
        }
    }

    /// The `(kind, register)` of the operation the slot's current phase
    /// is about to perform — the checker's view of a grant, derived the
    /// same way [`ShardState::grant`] dispatches it.
    #[cfg(feature = "check")]
    fn peek_slot(s: &Slot<'w>) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        let m = &s.machines;
        match s.phase {
            Phase::Free => unreachable!("peeked a free slot"),
            Phase::Acquire => m.naming.peek(),
            Phase::Store => m.registered.map_or_else(
                || m.first_store.peek(),
                |reg| (exsel_shm::OpKind::Write, reg),
            ),
            Phase::Collect => m.collect.peek(),
            Phase::Deposit => m.deposit.peek(),
        }
    }

    /// Whether no further arrivals will be generated on this shard.
    fn arrivals_exhausted(&self) -> bool {
        self.cfg.max_clients > 0 && self.totals.arrivals >= self.cfg.max_clients
    }

    fn inflight(&self) -> usize {
        self.cfg.slots - self.free.len()
    }

    /// The shard's `(inflight, queued, waiting)` gauges.
    fn gauges(&self) -> (u64, u64, u64) {
        (
            self.inflight() as u64,
            self.queue.len() as u64,
            self.waiting as u64,
        )
    }

    /// Clients currently in the shard (in flight + queued + backing
    /// off).
    fn in_system(&self) -> u64 {
        self.inflight() as u64 + self.queue.len() as u64 + self.waiting as u64
    }

    /// Fires every backoff/re-entry timer due at or before `now`.
    fn fire_due_timers(&mut self, now: u64, tel: &mut Telemetry) {
        while let Some(Reverse((due, _, bits))) = self.timers.peek().copied() {
            if due > now {
                break;
            }
            self.timers.pop();
            self.waiting -= 1;
            let client = Client {
                id: bits.id,
                arrival: bits.arrival,
                attempt: bits.attempt,
                crashed: bits.crashed,
            };
            if client.crashed {
                self.totals.reentries += 1;
                tel.totals.reentries += 1;
                tel.window_counts.reentries += 1;
            } else {
                self.totals.retries += 1;
                tel.totals.retries += 1;
                tel.window_counts.retries += 1;
            }
            self.admit(client, now, tel);
        }
    }

    /// Generates every arrival due at or before `now`.
    fn generate_arrivals(&mut self, now: u64, tel: &mut Telemetry) {
        while self.next_arrival <= now && !self.arrivals_exhausted() {
            self.totals.arrivals += 1;
            tel.totals.arrivals += 1;
            tel.window_counts.arrivals += 1;
            let client = Client {
                id: self.next_client,
                arrival: self.next_arrival,
                attempt: 0,
                crashed: false,
            };
            self.next_client += 1;
            let gap = self
                .cfg
                .arrivals
                .next_gap(self.next_arrival, &mut self.arrival_rng);
            self.next_arrival += gap;
            self.admit(client, now, tel);
        }
    }

    /// Admission control: bind, queue, shed into backoff, or reject.
    fn admit(&mut self, client: Client, now: u64, tel: &mut Telemetry) {
        if self.inflight() < self.cfg.admission.max_inflight && !self.free.is_empty() {
            let slot = self.free.pop().expect("checked non-empty");
            self.bind(slot, client, now, tel);
        } else if self.queue.len() < self.cfg.admission.queue_capacity {
            self.queue.push_back(client);
        } else {
            self.totals.shed += 1;
            tel.totals.shed += 1;
            tel.window_counts.shed += 1;
            self.backoff_or_reject(client, now, tel);
        }
    }

    /// Sheds `client` into jittered exponential backoff, or rejects it
    /// for good once its attempts or the waiting room are exhausted.
    fn backoff_or_reject(&mut self, mut client: Client, now: u64, tel: &mut Telemetry) {
        if client.attempt >= self.cfg.admission.max_retries
            || self.waiting >= self.cfg.admission.waiting_capacity
        {
            self.totals.rejected += 1;
            tel.totals.rejected += 1;
            tel.window_counts.rejected += 1;
            return;
        }
        let delay = self
            .cfg
            .admission
            .delay(client.attempt, &mut self.jitter_rng);
        client.attempt += 1;
        self.timer_seq += 1;
        self.timers.push(Reverse((
            now + delay,
            self.timer_seq,
            ClientBits {
                id: client.id,
                arrival: client.arrival,
                attempt: client.attempt,
                crashed: client.crashed,
            },
        )));
        self.waiting += 1;
    }

    /// Binds `client` to `slot` and starts its session at the acquire
    /// phase.
    fn bind(&mut self, slot: usize, client: Client, now: u64, tel: &mut Telemetry) {
        self.totals.admitted += 1;
        tel.totals.admitted += 1;
        tel.window_counts.admitted += 1;
        let s = &mut self.slots[slot];
        s.client = client;
        s.phase = Phase::Acquire;
        s.session_start = now;
        s.phase_start = now;
        s.machines.begin_acquire();
        debug_assert_eq!(self.active_pos[slot], NOT_ACTIVE);
        self.active_pos[slot] = self.active.len();
        self.active.push(slot);
    }

    /// Removes `slot` from the active set.
    fn deactivate(&mut self, slot: usize) {
        let pos = self.active_pos[slot];
        debug_assert_ne!(pos, NOT_ACTIVE);
        self.active.swap_remove(pos);
        if pos < self.active.len() {
            self.active_pos[self.active[pos]] = pos;
        }
        self.active_pos[slot] = NOT_ACTIVE;
    }

    /// Crashes the in-flight session on `slot`: the incarnation dies
    /// mid-operation, the slot frees, and the client is scheduled to
    /// re-enter as a fresh contender (or rejected once its attempts are
    /// spent).
    fn crash(&mut self, slot: usize, now: u64, tel: &mut Telemetry) {
        self.totals.crashes += 1;
        tel.totals.crashes += 1;
        tel.window_counts.crashes += 1;
        let s = &mut self.slots[slot];
        match s.phase {
            Phase::Acquire => s.machines.naming_dirty = true,
            Phase::Deposit => s.machines.deposit_dirty = true,
            // A first store interrupted mid-flight resumes on the next
            // session (slot infrastructure); collects restart; a
            // registered store's single write needs nothing.
            Phase::Store | Phase::Collect => {}
            Phase::Free => unreachable!("crashed a free slot"),
        }
        let mut client = s.client;
        client.crashed = true;
        s.phase = Phase::Free;
        self.deactivate(slot);
        self.free.push(slot);
        self.backoff_or_reject(client, now, tel);
        self.drain_queue(now, tel);
    }

    /// Moves queued clients onto freed slots.
    fn drain_queue(&mut self, now: u64, tel: &mut Telemetry) {
        while !self.queue.is_empty()
            && self.inflight() < self.cfg.admission.max_inflight
            && !self.free.is_empty()
        {
            let client = self.queue.pop_front().expect("checked non-empty");
            let slot = self.free.pop().expect("checked non-empty");
            self.bind(slot, client, now, tel);
        }
    }

    /// Grants one shared-memory operation to the session on `slot` and
    /// advances its state machine.
    fn grant(&mut self, slot: usize, now: u64, tel: &mut Telemetry) {
        self.totals.ops += 1;
        tel.totals.ops += 1;
        let s = &mut self.slots[slot];
        #[cfg(feature = "check")]
        if let Some(c) = &mut self.checker {
            let (kind, reg) = Self::peek_slot(s);
            c.observe(Pid(slot), kind, reg, self.totals.ops);
        }
        let m = &mut s.machines;
        match s.phase {
            Phase::Free => unreachable!("granted a free slot"),
            Phase::Acquire => {
                if let Poll::Ready(name) = step_machine(&mut self.bank, &mut m.naming) {
                    s.ticket = name;
                    let lat = now + 1 - s.phase_start;
                    s.phase = Phase::Store;
                    s.phase_start = now + 1;
                    tel.record(OpFamily::Acquire, lat);
                }
            }
            Phase::Store => {
                if let Some(reg) = m.registered {
                    self.bank.write(reg, Word::Pair(s.original, s.client.id));
                    let lat = now + 1 - s.phase_start;
                    m.collect.rearm();
                    s.phase = Phase::Collect;
                    s.phase_start = now + 1;
                    tel.record(OpFamily::Store, lat);
                } else if let Poll::Ready(res) = step_machine(&mut self.bank, &mut m.first_store) {
                    let reg = res.expect("store&collect sized for every slot");
                    m.registered = Some(reg);
                    // Stay in Store: the next grant performs the
                    // session's own value write.
                }
            }
            Phase::Collect => {
                if let Poll::Ready(_len) = step_machine(&mut self.bank, &mut m.collect) {
                    let lat = now + 1 - s.phase_start;
                    m.begin_deposit(s.client.id);
                    s.phase = Phase::Deposit;
                    s.phase_start = now + 1;
                    tel.record(OpFamily::Collect, lat);
                }
            }
            Phase::Deposit => {
                if let Poll::Ready(out) = step_machine(&mut self.bank, &mut m.deposit) {
                    debug_assert!(out.is_some(), "depositors always claim");
                    let lat = now + 1 - s.phase_start;
                    let session = now + 1 - s.session_start;
                    let sojourn = now + 1 - s.client.arrival;
                    let ticket = s.ticket;
                    s.phase = Phase::Free;
                    tel.record(OpFamily::Deposit, lat);
                    tel.record(OpFamily::Session, session);
                    tel.record(OpFamily::Sojourn, sojourn);
                    self.totals.completed += 1;
                    tel.totals.completed += 1;
                    tel.window_counts.completed += 1;
                    if tel.record_names {
                        tel.names.push(ticket * self.ticket_step + self.ticket_base);
                    }
                    self.deactivate(slot);
                    self.free.push(slot);
                    self.drain_queue(now, tel);
                }
            }
        }
    }

    /// Pre-registers every slot's store&collect infrastructure: drives
    /// each slot's first store to registration, then one throwaway
    /// collect per slot over the fully registered shard, so the slot
    /// machinery's one-time buffer growth (rename scratch, collect
    /// caches, view slices) happens here rather than inside measured
    /// sessions. Infrastructure only — slot registration is explicitly
    /// not client state — so naming and deposit objects are untouched,
    /// nothing is recorded, and no ops are counted; but the register
    /// writes are real, so a primed run is *not* bit-identical to an
    /// unprimed one.
    fn prime(&mut self) {
        #[cfg(feature = "check")]
        let mut prime_ops: u64 = 0;
        #[cfg_attr(not(feature = "check"), allow(clippy::unused_enumerate_index))]
        for (_slot, s) in self.slots.iter_mut().enumerate() {
            let m = &mut s.machines;
            while m.registered.is_none() {
                #[cfg(feature = "check")]
                if let Some(c) = &mut self.checker {
                    let (kind, reg) = m.first_store.peek();
                    prime_ops += 1;
                    c.observe(Pid(_slot), kind, reg, prime_ops);
                }
                if let Poll::Ready(res) = step_machine(&mut self.bank, &mut m.first_store) {
                    m.registered = Some(res.expect("store&collect sized for every slot"));
                }
            }
        }
        #[cfg_attr(not(feature = "check"), allow(clippy::unused_enumerate_index))]
        for (_slot, s) in self.slots.iter_mut().enumerate() {
            let m = &mut s.machines;
            m.collect.rearm();
            loop {
                #[cfg(feature = "check")]
                if let Some(c) = &mut self.checker {
                    let (kind, reg) = m.collect.peek();
                    prime_ops += 1;
                    c.observe(Pid(_slot), kind, reg, prime_ops);
                }
                if step_machine(&mut self.bank, &mut m.collect)
                    .ready()
                    .is_some()
                {
                    break;
                }
            }
        }
    }

    /// One scheduling step of this shard: picks an active slot under the
    /// shard's scheduler stream, draws the crash hazard, and grants (or
    /// crashes) one shared-memory operation. Returns `false` when the
    /// shard has no active session to drive.
    fn step(&mut self, now: u64, tel: &mut Telemetry) -> bool {
        if self.active.is_empty() {
            return false;
        }
        let pick = self.sched_rng.gen_range(0..self.active.len());
        let slot = self.active[pick];
        let crash = self.cfg.crash_hazard > 0.0 && self.hazard_rng.gen_bool(self.cfg.crash_hazard);
        if crash {
            self.crash(slot, now, tel);
        } else {
            self.grant(slot, now, tel);
        }
        true
    }

    /// Whether this shard can never produce another event: arrivals
    /// exhausted, nothing queued, nothing backing off. (Active
    /// emptiness is the caller's check.)
    fn drained(&self) -> bool {
        self.arrivals_exhausted() && self.queue.is_empty() && self.timers.is_empty()
    }

    /// The shard's next scheduled event (arrival or timer);
    /// `u64::MAX` when it has none.
    fn next_event(&self) -> u64 {
        let mut next = u64::MAX;
        if !self.arrivals_exhausted() {
            next = next.min(self.next_arrival);
        }
        if let Some(Reverse((due, _, _))) = self.timers.peek() {
            next = next.min(*due);
        }
        next
    }
}

impl<'w> ServiceHarness<'w, ArcBank> {
    /// Builds a harness over the default [`ArcBank`] backend.
    #[must_use]
    pub fn new(world: &'w ServiceWorld, cfg: &ServiceConfig) -> Self {
        ServiceHarness::with_bank(world, cfg, ArcBank::new())
    }
}

impl<'w, B: RegisterBank> ServiceHarness<'w, B> {
    /// Builds a harness over a caller-chosen register-bank backend
    /// (`SlabBank` for mega runs).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (no slots, a zero
    /// window, or an in-flight bound above the slot count).
    #[must_use]
    pub fn with_bank(world: &'w ServiceWorld, cfg: &ServiceConfig, bank: B) -> Self {
        ServiceHarness {
            cfg: *cfg,
            shard: ShardState::new(world, cfg, bank, 0, 1),
            tel: Telemetry::new(cfg),
            now: 0,
        }
    }

    /// Pre-registers every slot's store&collect infrastructure (slot
    /// rename, controls, collect caches) before the run, so the slot
    /// machinery's one-time buffer growth cannot land inside a measured
    /// steady-state segment. Optional: an unprimed run warms the same
    /// state lazily across its first sessions. Priming performs real
    /// register writes, so a primed run is **not** bit-identical to an
    /// unprimed one; it is infrastructure only — no arrivals, ops,
    /// telemetry or ticket state.
    pub fn prime(&mut self) {
        self.shard.prime();
    }

    /// Installs a dynamic footprint checker over this harness's shard:
    /// every subsequently granted (or primed) operation is validated
    /// against the world's declared footprint. Build the checker from
    /// the same world with [`exsel_analysis::AccessChecker::for_instance`]
    /// (`n` = slot count, `num_registers` = the world's register count).
    #[cfg(feature = "check")]
    pub fn install_checker(&mut self, mut checker: exsel_analysis::AccessChecker) {
        checker.begin_trial();
        self.shard.checker = Some(checker);
    }

    /// Shared access to the installed checker (violation reports,
    /// op counts); `None` when no checker is installed.
    #[cfg(feature = "check")]
    #[must_use]
    pub fn checker(&self) -> Option<&exsel_analysis::AccessChecker> {
        self.shard.checker.as_ref()
    }

    /// Total footprint violations observed since the checker was
    /// installed; 0 when no checker is installed.
    #[cfg(feature = "check")]
    #[must_use]
    pub fn checker_violations(&self) -> u64 {
        self.shard
            .checker
            .as_ref()
            .map_or(0, exsel_analysis::AccessChecker::trial_violations)
    }

    /// Runs the configured service to its stopping condition (session
    /// target reached, arrivals exhausted and system drained, or
    /// horizon) and returns the report.
    pub fn run(mut self) -> ServiceReport {
        loop {
            if self.cfg.target_sessions > 0 && self.tel.totals.completed >= self.cfg.target_sessions
            {
                break;
            }
            if !self.advance() {
                break;
            }
        }
        self.finish()
    }

    /// Drives the service until `sessions` sessions have completed (an
    /// absolute count, not a delta). Returns `false` when the run ended
    /// first — horizon reached, or arrivals exhausted and the system
    /// drained. Benchmarks use this to separate a warm-up segment from
    /// a measured steady-state segment before calling
    /// [`ServiceHarness::finish`].
    pub fn run_until(&mut self, sessions: u64) -> bool {
        while self.tel.totals.completed < sessions {
            if !self.advance() {
                return false;
            }
        }
        true
    }

    /// Sessions completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.tel.totals.completed
    }

    /// Granted shared-memory operations so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.tel.totals.ops
    }

    /// One iteration of the open-loop grant cycle: roll telemetry
    /// windows, fire due timers, generate due arrivals, then grant one
    /// shared-memory operation (or crash the picked session, or
    /// fast-forward an idle gap). Returns `false` when the run cannot
    /// continue.
    fn advance(&mut self) -> bool {
        if self.now >= self.cfg.horizon {
            return false;
        }
        self.tel.roll(self.now, self.shard.gauges());
        self.shard.fire_due_timers(self.now, &mut self.tel);
        self.shard.generate_arrivals(self.now, &mut self.tel);
        if !self.shard.step(self.now, &mut self.tel) {
            if self.shard.drained() {
                return false; // drained
            }
            self.fast_forward();
            return true;
        }
        self.now += 1;
        true
    }

    /// Advances the clock over an idle gap to the next event (arrival,
    /// timer, window boundary or horizon).
    fn fast_forward(&mut self) {
        let next = self
            .cfg
            .horizon
            .min(self.tel.window_end)
            .min(self.shard.next_event());
        self.now = next.max(self.now + 1);
    }

    /// Emits the final partial window and assembles the report.
    pub fn finish(self) -> ServiceReport {
        let gauges = self.shard.gauges();
        self.tel.finish(self.now, gauges, self.shard.in_system())
    }
}

/// One grant: perform the machine's pending operation against `bank`
/// and advance it — the service-harness form of the engine's grant.
fn step_machine<B: RegisterBank, M: StepMachine>(bank: &mut B, m: &mut M) -> Poll<M::Output> {
    match m.op() {
        ShmOp::Read(reg) => {
            let word = bank.read(reg);
            m.advance(word)
        }
        ShmOp::Write(reg, word) => {
            bank.write(reg, word);
            m.advance(&Word::Null)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn small_cfg(seed: u64) -> ServiceConfig {
        ServiceConfig {
            seed,
            slots: 4,
            target_sessions: 300,
            window: 1 << 10,
            arrivals: Arrivals::Poisson { mean_gap: 25.0 },
            admission: Admission {
                max_inflight: 4,
                queue_capacity: 8,
                backoff_base: 32,
                backoff_cap: 4096,
                max_retries: 6,
                waiting_capacity: 64,
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn completes_target_sessions_with_exclusive_tickets() {
        let cfg = small_cfg(3);
        let world = ServiceWorld::new(&cfg);
        let report = ServiceHarness::new(&world, &cfg).run();
        assert!(report.totals.completed >= 300);
        assert!(report.accounted(), "{:?}", report.totals);
        let set: BTreeSet<u64> = report.names.iter().copied().collect();
        assert_eq!(
            set.len() as u64,
            report.totals.completed,
            "duplicate tickets"
        );
        assert!(!report.windows.is_empty());
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = small_cfg(11);
        let world_a = ServiceWorld::new(&cfg);
        let a = ServiceHarness::new(&world_a, &cfg).run();
        let world_b = ServiceWorld::new(&cfg);
        let b = ServiceHarness::new(&world_b, &cfg).run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.names, b.names);
    }

    #[test]
    fn different_seeds_diverge() {
        let world = ServiceWorld::new(&small_cfg(0));
        let a = ServiceHarness::new(&world, &small_cfg(0)).run();
        let world_b = ServiceWorld::new(&small_cfg(1));
        let b = ServiceHarness::new(&world_b, &small_cfg(1)).run();
        assert_ne!(a.windows, b.windows);
    }

    #[test]
    fn crash_storm_sheds_but_keeps_tickets_exclusive() {
        let mut cfg = small_cfg(5);
        cfg.crash_hazard = 0.01;
        cfg.arrivals = Arrivals::Poisson { mean_gap: 6.0 };
        cfg.target_sessions = 200;
        let world = ServiceWorld::new(&cfg);
        let report = ServiceHarness::new(&world, &cfg).run();
        assert!(report.totals.crashes > 0, "hazard never fired");
        assert!(report.totals.reentries > 0, "no crashed client re-entered");
        assert!(report.accounted(), "{:?}", report.totals);
        let set: BTreeSet<u64> = report.names.iter().copied().collect();
        assert_eq!(
            set.len() as u64,
            report.totals.completed,
            "crash re-entry broke ticket exclusivity"
        );
    }

    #[test]
    fn bounded_arrivals_drain_cleanly() {
        let mut cfg = small_cfg(9);
        cfg.target_sessions = 0;
        cfg.max_clients = 150;
        cfg.crash_hazard = 0.005;
        let world = ServiceWorld::new(&cfg);
        let report = ServiceHarness::new(&world, &cfg).run();
        assert_eq!(report.totals.arrivals, 150);
        assert_eq!(report.in_system, 0, "did not drain: {:?}", report.totals);
        assert_eq!(
            report.totals.completed + report.totals.rejected,
            150,
            "{:?}",
            report.totals
        );
    }

    #[test]
    fn overload_sheds_and_rejects() {
        let mut cfg = small_cfg(13);
        cfg.arrivals = Arrivals::Poisson { mean_gap: 1.5 };
        cfg.admission.max_inflight = 2;
        cfg.admission.queue_capacity = 2;
        cfg.admission.waiting_capacity = 8;
        cfg.admission.max_retries = 2;
        cfg.target_sessions = 150;
        let world = ServiceWorld::new(&cfg);
        let report = ServiceHarness::new(&world, &cfg).run();
        assert!(report.totals.shed > 0, "overload never shed");
        assert!(report.totals.rejected > 0, "no client was rejected");
        assert!(report.accounted());
    }

    #[test]
    fn bursty_and_diurnal_arrivals_run() {
        for arrivals in [
            Arrivals::Bursty {
                mean_gap: 8.0,
                burst: 2000,
                lull: 3000,
            },
            Arrivals::Diurnal {
                peak_gap: 10.0,
                trough_gap: 200.0,
                period: 1 << 13,
            },
        ] {
            let mut cfg = small_cfg(21);
            cfg.arrivals = arrivals;
            cfg.target_sessions = 100;
            let world = ServiceWorld::new(&cfg);
            let report = ServiceHarness::new(&world, &cfg).run();
            assert!(report.totals.completed >= 100, "{arrivals:?}");
            assert!(report.accounted(), "{arrivals:?}");
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bucketed() {
        let mut h = StepHistogram::default();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(1, 2);
        let p99 = h.quantile(99, 100);
        let p999 = h.quantile(999, 1000);
        assert!(p50 <= p99 && p99 <= p999);
        assert!((416..=512).contains(&p50), "p50 = {p50}");
        assert!(p999 >= 896, "p999 = {p999}");
        // Bucket mapping is monotone and lower bounds are exact.
        let mut last = 0;
        for v in [0u64, 1, 7, 8, 9, 100, 1023, 1024, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            last = b;
            assert!(bucket_low(b) <= v, "lower bound above sample at {v}");
        }
    }

    #[test]
    fn windows_tile_the_clock() {
        let cfg = small_cfg(2);
        let world = ServiceWorld::new(&cfg);
        let report = ServiceHarness::new(&world, &cfg).run();
        for (i, w) in report.windows.iter().enumerate() {
            assert_eq!(w.window, i as u64);
            if i > 0 {
                assert_eq!(w.start, report.windows[i - 1].end);
            }
        }
    }
}
