//! Mega-scale sharded service: per-shard admission controllers with a
//! global telemetry roll-up, slab-backed for 10⁴+ concurrent slots.
//!
//! The unsharded [`ServiceHarness`](super::ServiceHarness) drives one
//! internal `ShardState` — one world, one admission controller, one
//! arrival stream. This module scales the serving layer the way a real
//! fleet does: `shards` independent admission controllers, each with
//! its own shared-memory world ([`ServiceWorld`] per shard), its own
//! [`SlabBank`] register file, its own bounded queue, backoff heap and
//! fault injector, all driven in lock-step on **one global clock**. An
//! arriving client belongs to exactly one shard (each shard draws its
//! own seeded arrival stream — see below), contends only against that
//! shard's slots, and every counter lands twice: in the shard's own
//! [`Totals`] and in the shared telemetry sink — so per-shard
//! accounting provably sums to the global roll-up, and windows and
//! quantiles are fleet-wide, not per-shard fragments.
//!
//! # Clock and scheduling
//!
//! One global tick = one parallel grant round: every shard with an
//! active session grants (or crashes) exactly one shared-memory
//! operation. Shards never touch each other's registers, so the round
//! is embarrassingly parallel in structure even though the harness is
//! single-threaded; `totals.ops / totals.steps` approaches the shard
//! count under load. When **no** shard has an active session the clock
//! fast-forwards to the earliest next event across the fleet.
//!
//! # Arrival sharding
//!
//! Rather than hashing a single arrival stream (which would serialize
//! every shard on one RNG), each shard superposes its own thinned
//! stream: shard `s` draws inter-arrival gaps with mean
//! `shards × mean_gap` from its own salted seed, so the fleet-wide rate
//! matches the base configuration exactly while gap flooring (gaps are
//! ≥ 1 step) distorts *less* than the unsharded stream — and the fleet
//! can absorb up to `shards` arrivals per tick where one stream is
//! capped at one. With `shards = 1` the thinning factor is ×1.0 and the
//! seed salt is 0, so the mega harness reproduces the unsharded run
//! **bit-identically** — totals, every window row, every ticket
//! (`tests/crash_semantics.rs` proves this differentially).
//!
//! # Ticket namespacing
//!
//! Each shard's naming object hands out tickets from its own unbounded
//! space, so raw tickets collide across shards. Completed tickets are
//! published to the audit as `ticket * shards + shard`, which is a
//! bijection per shard onto disjoint residue classes: fleet-wide
//! exclusivity follows from per-shard exclusivity, and `shards = 1` is
//! the identity map.
//!
//! # Example
//!
//! ```
//! use exsel_sim::service::mega::{MegaServiceConfig, MegaServiceHarness, MegaServiceWorld};
//! use exsel_sim::service::{Admission, Arrivals, ServiceConfig};
//!
//! let cfg = MegaServiceConfig {
//!     base: ServiceConfig {
//!         seed: 7,
//!         slots: 4, // per shard: 16 concurrent slots fleet-wide
//!         max_clients: 400,
//!         arrivals: Arrivals::Poisson { mean_gap: 3.0 },
//!         crash_hazard: 0.002,
//!         // The per-shard in-flight bound may not exceed its slots.
//!         admission: Admission {
//!             max_inflight: 4,
//!             ..ServiceConfig::default().admission
//!         },
//!         ..ServiceConfig::default()
//!     },
//!     shards: 4,
//! };
//! let world = MegaServiceWorld::new(&cfg);
//! let mega = MegaServiceHarness::new(&world, &cfg).run();
//! assert_eq!(mega.report.totals.arrivals, 400);
//! assert!(mega.report.accounted());
//! assert!(mega.rolled_up());
//! ```

use exsel_shm::{RegisterBank, SlabBank};

use super::{Arrivals, ServiceConfig, ServiceReport, ServiceWorld, ShardState, Telemetry, Totals};

/// Salt multiplier deriving per-shard RNG seeds (the 64-bit golden
/// ratio, as in the engine's pid-mixing); shard 0's salt is 0 so the
/// single-shard configuration keeps the base seed exactly.
const SHARD_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of a sharded service run: the per-shard base
/// configuration plus the shard count.
///
/// `base.slots` and `base.admission` are **per shard** (the fleet holds
/// `slots × shards` concurrent slots); `base.target_sessions`,
/// `base.max_clients` and the arrival rate are **fleet-wide** (arrivals
/// are thinned and client budgets split across shards — see the module
/// docs).
#[derive(Clone, Copy, Debug)]
pub struct MegaServiceConfig {
    /// Per-shard base configuration (fleet-wide arrival rate and client
    /// budgets).
    pub base: ServiceConfig,
    /// Number of independent admission shards (≥ 1).
    pub shards: usize,
}

impl MegaServiceConfig {
    /// Concurrent slots fleet-wide.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.base.slots * self.shards
    }

    /// Shard `s`'s slice of a fleet-wide client budget: an even split
    /// with the remainder spread over the lowest shards, so the slices
    /// sum exactly to `total` and shard 0 of a single-shard fleet gets
    /// everything.
    fn share(total: u64, s: usize, shards: usize) -> u64 {
        total / shards as u64 + u64::from((s as u64) < total % shards as u64)
    }

    /// The [`ServiceConfig`] shard `s` runs: salted seed, thinned
    /// arrivals, split client budgets, everything else inherited. With
    /// `shards = 1` this is the base configuration bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn shard_cfg(&self, s: usize) -> ServiceConfig {
        assert!(s < self.shards, "shard {s} out of {} shards", self.shards);
        let k = self.shards as f64;
        let arrivals = match self.base.arrivals {
            Arrivals::Poisson { mean_gap } => Arrivals::Poisson {
                mean_gap: mean_gap * k,
            },
            Arrivals::Bursty {
                mean_gap,
                burst,
                lull,
            } => Arrivals::Bursty {
                mean_gap: mean_gap * k,
                burst,
                lull,
            },
            Arrivals::Diurnal {
                peak_gap,
                trough_gap,
                period,
            } => Arrivals::Diurnal {
                peak_gap: peak_gap * k,
                trough_gap: trough_gap * k,
                period,
            },
        };
        ServiceConfig {
            seed: self.base.seed ^ (s as u64).wrapping_mul(SHARD_SALT),
            target_sessions: Self::share(self.base.target_sessions, s, self.shards),
            max_clients: Self::share(self.base.max_clients, s, self.shards),
            arrivals,
            ..self.base
        }
    }
}

/// The shared-memory worlds of a sharded run: one independent
/// [`ServiceWorld`] per shard (shards never share registers), each
/// sized for its own slice of the client budget.
#[derive(Debug)]
pub struct MegaServiceWorld {
    worlds: Vec<ServiceWorld>,
}

impl MegaServiceWorld {
    /// Builds every shard's world.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards == 0` or `cfg.base.slots == 0`.
    #[must_use]
    pub fn new(cfg: &MegaServiceConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        MegaServiceWorld {
            worlds: (0..cfg.shards)
                .map(|s| ServiceWorld::new(&cfg.shard_cfg(s)))
                .collect(),
        }
    }

    /// Total registers across every shard's world.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.worlds.iter().map(ServiceWorld::num_registers).sum()
    }

    /// The per-shard worlds, in shard order. Each shard's world owns a
    /// disjoint register space starting at 0, so a per-shard footprint
    /// checker built from `shard_worlds()[s]` is exact for shard `s`.
    #[must_use]
    pub fn shard_worlds(&self) -> &[ServiceWorld] {
        &self.worlds
    }
}

/// The result of a sharded run: the global roll-up (identical in shape
/// to an unsharded report) plus every shard's own totals.
#[derive(Clone, Debug)]
pub struct MegaServiceReport {
    /// The fleet-wide roll-up: global totals, global windows (gauges
    /// summed across shards, quantiles over the merged samples), the
    /// namespaced ticket audit.
    pub report: ServiceReport,
    /// Each shard's own counter totals (`steps` is the shared global
    /// clock).
    pub shard_totals: Vec<Totals>,
}

impl MegaServiceReport {
    /// The roll-up identity every sharded run satisfies: each counter
    /// summed over `shard_totals` equals the global total, and every
    /// shard stamps the same clock.
    #[must_use]
    pub fn rolled_up(&self) -> bool {
        let g = self.report.totals;
        let sum = |f: fn(&Totals) -> u64| self.shard_totals.iter().map(f).sum::<u64>();
        sum(|t| t.arrivals) == g.arrivals
            && sum(|t| t.admitted) == g.admitted
            && sum(|t| t.completed) == g.completed
            && sum(|t| t.crashes) == g.crashes
            && sum(|t| t.reentries) == g.reentries
            && sum(|t| t.retries) == g.retries
            && sum(|t| t.shed) == g.shed
            && sum(|t| t.rejected) == g.rejected
            && sum(|t| t.ops) == g.ops
            && self.shard_totals.iter().all(|t| t.steps == g.steps)
    }
}

/// The sharded open-loop harness; see the module docs. Defaults to the
/// [`SlabBank`] backend — the mega scale is exactly what the slab
/// register file exists for.
pub struct MegaServiceHarness<'w, B: RegisterBank = SlabBank> {
    cfg: MegaServiceConfig,
    shards: Vec<ShardState<'w, B>>,
    tel: Telemetry,
    now: u64,
}

impl<'w> MegaServiceHarness<'w, SlabBank> {
    /// Builds a harness over per-shard [`SlabBank`]s, pre-seeding each
    /// slab's snapshot slots past the shard's live-buffer high-water
    /// (the same O(slots²) bound the world's snapshot arenas reserve)
    /// so steady state stays allocation-free from the first session.
    #[must_use]
    pub fn new(world: &'w MegaServiceWorld, cfg: &MegaServiceConfig) -> Self {
        let banks = (0..cfg.shards)
            .map(|_| {
                let mut bank = SlabBank::new();
                bank.reserve_slots(32 * cfg.base.slots * cfg.base.slots + 64);
                bank
            })
            .collect();
        MegaServiceHarness::with_banks(world, cfg, banks)
    }
}

impl<'w, B: RegisterBank> MegaServiceHarness<'w, B> {
    /// Builds a harness over caller-chosen register banks, one per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards == 0`, the world or bank count disagrees
    /// with the shard count, or any shard configuration is inconsistent
    /// (see [`super::ServiceHarness::with_bank`]).
    #[must_use]
    pub fn with_banks(world: &'w MegaServiceWorld, cfg: &MegaServiceConfig, banks: Vec<B>) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert_eq!(
            world.worlds.len(),
            cfg.shards,
            "world built for a different shard count"
        );
        assert_eq!(banks.len(), cfg.shards, "need one register bank per shard");
        let step = cfg.shards as u64;
        let shards = world
            .worlds
            .iter()
            .zip(banks)
            .enumerate()
            .map(|(s, (w, bank))| ShardState::new(w, &cfg.shard_cfg(s), bank, s as u64, step))
            .collect();
        MegaServiceHarness {
            cfg: *cfg,
            shards,
            tel: Telemetry::new(&cfg.base),
            now: 0,
        }
    }

    /// Pre-registers every slot of every shard (see
    /// [`super::ServiceHarness::prime`]): at mega scale slots keep
    /// being first-touched deep into a run — a concurrency excursion
    /// binding shard 900's third slot an hour in would otherwise pay
    /// that slot's one-time registration buffers mid-measurement — so
    /// zero-alloc gates prime the fleet before warm-up.
    pub fn prime(&mut self) {
        for shard in &mut self.shards {
            shard.prime();
        }
    }

    /// Installs one dynamic footprint checker per shard (shards never
    /// share registers, so per-shard checkers are exact). Build each
    /// checker from the matching [`MegaServiceWorld`] shard world.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one checker per shard is supplied.
    #[cfg(feature = "check")]
    pub fn install_checkers(&mut self, checkers: Vec<exsel_analysis::AccessChecker>) {
        assert_eq!(
            checkers.len(),
            self.shards.len(),
            "need one checker per shard"
        );
        for (shard, mut checker) in self.shards.iter_mut().zip(checkers) {
            checker.begin_trial();
            shard.checker = Some(checker);
        }
    }

    /// Total footprint violations observed across all shards since
    /// their checkers were installed; 0 when none are installed.
    #[cfg(feature = "check")]
    #[must_use]
    pub fn checker_violations(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.checker.as_ref())
            .map(exsel_analysis::AccessChecker::trial_violations)
            .sum()
    }

    /// Runs the fleet to its stopping condition (fleet-wide session
    /// target reached, every shard drained, or horizon) and returns the
    /// report.
    pub fn run(mut self) -> MegaServiceReport {
        loop {
            if self.cfg.base.target_sessions > 0
                && self.tel.totals.completed >= self.cfg.base.target_sessions
            {
                break;
            }
            if !self.advance() {
                break;
            }
        }
        self.finish()
    }

    /// Drives the fleet until `sessions` sessions have completed
    /// fleet-wide (an absolute count). Returns `false` when the run
    /// ended first. Benchmarks use this to separate warm-up from the
    /// measured steady state before calling
    /// [`MegaServiceHarness::finish`].
    pub fn run_until(&mut self, sessions: u64) -> bool {
        while self.tel.totals.completed < sessions {
            if !self.advance() {
                return false;
            }
        }
        true
    }

    /// Sessions completed fleet-wide so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.tel.totals.completed
    }

    /// Granted shared-memory operations fleet-wide so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.tel.totals.ops
    }

    /// Fleet-wide `(inflight, queued, waiting)` gauges.
    fn gauges(&self) -> (u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0), |acc, s| {
            let (i, q, w) = s.gauges();
            (acc.0 + i, acc.1 + q, acc.2 + w)
        })
    }

    /// One global tick: roll telemetry windows, fire every shard's due
    /// timers and arrivals, then run one parallel grant round (each
    /// shard with an active session grants or crashes one operation).
    /// Fast-forwards idle gaps; returns `false` when the run cannot
    /// continue.
    fn advance(&mut self) -> bool {
        if self.now >= self.cfg.base.horizon {
            return false;
        }
        self.tel.roll(self.now, self.gauges());
        for shard in &mut self.shards {
            shard.fire_due_timers(self.now, &mut self.tel);
            shard.generate_arrivals(self.now, &mut self.tel);
        }
        let mut granted = false;
        for shard in &mut self.shards {
            granted |= shard.step(self.now, &mut self.tel);
        }
        if !granted {
            if self.shards.iter().all(ShardState::drained) {
                return false; // every shard drained
            }
            self.fast_forward();
            return true;
        }
        self.now += 1;
        true
    }

    /// Advances the clock over a fleet-wide idle gap to the earliest
    /// next event (any shard's arrival or timer, a window boundary, or
    /// the horizon).
    fn fast_forward(&mut self) {
        let next = self
            .shards
            .iter()
            .map(ShardState::next_event)
            .fold(self.cfg.base.horizon.min(self.tel.window_end), u64::min);
        self.now = next.max(self.now + 1);
    }

    /// Emits the final partial window and assembles the report.
    pub fn finish(self) -> MegaServiceReport {
        let gauges = self.gauges();
        let in_system = self.shards.iter().map(ShardState::in_system).sum();
        let now = self.now;
        let shard_totals = self
            .shards
            .iter()
            .map(|s| {
                let mut t = s.totals;
                t.steps = now;
                t
            })
            .collect();
        MegaServiceReport {
            report: self.tel.finish(now, gauges, in_system),
            shard_totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Admission, ServiceHarness};
    use super::*;
    use std::collections::BTreeSet;

    fn base_cfg(seed: u64, clients: u64, hazard: f64) -> ServiceConfig {
        ServiceConfig {
            seed,
            slots: 4,
            target_sessions: 0,
            max_clients: clients,
            window: 1 << 11,
            arrivals: Arrivals::Poisson { mean_gap: 5.0 },
            crash_hazard: hazard,
            admission: Admission {
                max_inflight: 4,
                queue_capacity: 8,
                backoff_base: 32,
                backoff_cap: 1 << 10,
                max_retries: 4,
                waiting_capacity: 32,
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn single_shard_matches_unsharded_bit_for_bit() {
        let base = base_cfg(17, 400, 0.004);
        let cfg = MegaServiceConfig { base, shards: 1 };
        let mega_world = MegaServiceWorld::new(&cfg);
        let mega = MegaServiceHarness::new(&mega_world, &cfg).run();
        let world = ServiceWorld::new(&base);
        let flat = ServiceHarness::new(&world, &base).run();
        assert_eq!(mega.report.totals, flat.totals);
        assert_eq!(mega.report.windows, flat.windows);
        assert_eq!(mega.report.names, flat.names);
        assert_eq!(mega.report.in_system, flat.in_system);
        assert_eq!(mega.shard_totals, vec![flat.totals]);
    }

    #[test]
    fn sharded_run_drains_accounts_and_rolls_up() {
        let cfg = MegaServiceConfig {
            base: base_cfg(3, 600, 0.003),
            shards: 4,
        };
        let world = MegaServiceWorld::new(&cfg);
        let mega = MegaServiceHarness::new(&world, &cfg).run();
        assert_eq!(mega.report.totals.arrivals, 600);
        assert!(mega.report.accounted(), "{:?}", mega.report.totals);
        assert_eq!(mega.report.in_system, 0, "fleet did not drain");
        assert!(mega.rolled_up(), "shard totals diverge from roll-up");
        assert!(
            mega.shard_totals.iter().all(|t| t.completed > 0),
            "a shard sat idle: {:?}",
            mega.shard_totals
        );
    }

    #[test]
    fn namespaced_tickets_stay_exclusive_across_shards() {
        let cfg = MegaServiceConfig {
            base: base_cfg(29, 500, 0.01),
            shards: 5,
        };
        let world = MegaServiceWorld::new(&cfg);
        let mega = MegaServiceHarness::new(&world, &cfg).run();
        assert!(mega.report.totals.crashes > 0, "hazard never fired");
        let set: BTreeSet<u64> = mega.report.names.iter().copied().collect();
        assert_eq!(
            set.len() as u64,
            mega.report.totals.completed,
            "duplicate tickets across shards"
        );
        // Namespacing maps each shard onto its own residue class, and
        // every class with a client budget actually completed sessions.
        let classes: BTreeSet<u64> = set.iter().map(|t| t % cfg.shards as u64).collect();
        assert_eq!(classes.len(), cfg.shards);
    }

    #[test]
    fn same_seed_is_bit_identical_across_builds() {
        let cfg = MegaServiceConfig {
            base: base_cfg(11, 400, 0.005),
            shards: 3,
        };
        let world_a = MegaServiceWorld::new(&cfg);
        let a = MegaServiceHarness::new(&world_a, &cfg).run();
        let world_b = MegaServiceWorld::new(&cfg);
        let b = MegaServiceHarness::new(&world_b, &cfg).run();
        assert_eq!(a.report.totals, b.report.totals);
        assert_eq!(a.report.windows, b.report.windows);
        assert_eq!(a.report.names, b.report.names);
        assert_eq!(a.shard_totals, b.shard_totals);
    }

    #[test]
    fn client_budget_shares_sum_exactly() {
        for (total, shards) in [(0u64, 3usize), (7, 3), (1_000_000, 1250), (5, 8)] {
            let sum: u64 = (0..shards)
                .map(|s| MegaServiceConfig::share(total, s, shards))
                .sum();
            assert_eq!(sum, total, "split of {total} over {shards}");
        }
    }
}
