//! Scheduling policies: the executable adversary.

use exsel_shm::{OpKind, Pid, RegId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One enabled shared-memory operation, exposed to the policy before it is
/// granted. This is the adversary's view of the configuration: *who* wants
/// to do *what* to *which* register — but not the value involved, matching
/// the information the pigeonhole adversary of Theorem 6 uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PendingOp {
    /// The process wanting to take a step.
    pub pid: Pid,
    /// Read or write.
    pub kind: OpKind,
    /// The target register.
    pub reg: RegId,
    /// How many local steps the process has already taken.
    pub step_index: u64,
}

/// The adversary's decision at a scheduling point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Let this process perform its pending operation.
    Grant(Pid),
    /// Crash this process; its pending operation fails and it takes no
    /// further steps.
    Crash(Pid),
}

/// A scheduling policy — the executable form of the paper's asynchronous
/// adversary. `decide` is called whenever every live process has an
/// operation pending (`pending` is nonempty and sorted by pid) and must
/// name one of them.
pub trait Policy: Send {
    /// Chooses the next action given all enabled operations.
    fn decide(&mut self, pending: &[PendingOp]) -> Action;
}

/// Grants processes cyclically in pid order — the "fair" schedule.
///
/// ```
/// use exsel_sim::policy::{Policy, RoundRobin};
/// # use exsel_sim::policy::{Action, PendingOp};
/// # use exsel_shm::{OpKind, Pid, RegId};
/// let mut p = RoundRobin::new();
/// let pending = [
///     PendingOp { pid: Pid(0), kind: OpKind::Read, reg: RegId(0), step_index: 0 },
///     PendingOp { pid: Pid(2), kind: OpKind::Read, reg: RegId(0), step_index: 0 },
/// ];
/// assert_eq!(p.decide(&pending), Action::Grant(Pid(0)));
/// assert_eq!(p.decide(&pending), Action::Grant(Pid(2)));
/// assert_eq!(p.decide(&pending), Action::Grant(Pid(0)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin policy starting at pid 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for RoundRobin {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        let chosen = pending
            .iter()
            .find(|op| op.pid.0 >= self.cursor)
            .unwrap_or(&pending[0]);
        self.cursor = chosen.pid.0 + 1;
        Action::Grant(chosen.pid)
    }
}

/// Grants a uniformly random pending process, reproducibly from a seed.
/// Thousands of seeds give systematic interleaving coverage — our stand-in
/// for `loom`-style exploration at this scale of state space.
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates a random policy from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        Action::Grant(pending[self.rng.gen_range(0..pending.len())].pid)
    }
}

/// Runs one distinguished process to completion while everyone else is
/// suspended, then falls back to round-robin. A wait-free operation must
/// complete under this policy — it models "all other processes have
/// crashed" without actually crashing them.
#[derive(Clone, Debug)]
pub struct Solo {
    hero: Pid,
    fallback: RoundRobin,
}

impl Solo {
    /// Creates a solo policy favouring `hero`.
    #[must_use]
    pub fn new(hero: Pid) -> Self {
        Solo {
            hero,
            fallback: RoundRobin::new(),
        }
    }
}

impl Policy for Solo {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if pending.iter().any(|op| op.pid == self.hero) {
            Action::Grant(self.hero)
        } else {
            self.fallback.decide(pending)
        }
    }
}

/// Wraps another policy and crashes processes at random decision points,
/// up to a budget — the "crash storm" adversary. With `max_crashes = n-1`
/// it exercises the maximum failure pattern the model allows.
pub struct CrashStorm {
    inner: Box<dyn Policy>,
    rng: SmallRng,
    crash_probability: f64,
    remaining_crashes: usize,
    /// Processes that must never be crashed (e.g. the one whose
    /// wait-freedom is being verified).
    protected: Vec<Pid>,
}

impl CrashStorm {
    /// Wraps `inner`, crashing a random pending process with probability
    /// `crash_probability` at each decision, at most `max_crashes` times.
    #[must_use]
    pub fn new(
        inner: Box<dyn Policy>,
        seed: u64,
        crash_probability: f64,
        max_crashes: usize,
    ) -> Self {
        CrashStorm {
            inner,
            rng: SmallRng::seed_from_u64(seed),
            crash_probability,
            remaining_crashes: max_crashes,
            protected: Vec::new(),
        }
    }

    /// Marks processes that must never be crashed.
    #[must_use]
    pub fn protect(mut self, pids: impl IntoIterator<Item = Pid>) -> Self {
        self.protected.extend(pids);
        self
    }
}

impl Policy for CrashStorm {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if self.remaining_crashes > 0 && self.rng.gen_bool(self.crash_probability) {
            let victims: Vec<Pid> = pending
                .iter()
                .map(|op| op.pid)
                .filter(|pid| !self.protected.contains(pid))
                .collect();
            if !victims.is_empty() {
                self.remaining_crashes -= 1;
                return Action::Crash(victims[self.rng.gen_range(0..victims.len())]);
            }
        }
        self.inner.decide(pending)
    }
}

/// Wraps another policy and crashes one specific process exactly when it
/// is about to take its `crash_at`-th local step (0-based). Used to place
/// a crash at a precise point in an algorithm — e.g. freezing a depositor
/// between its reservation and its write (Corollary 2's construction).
pub struct CrashAtStep {
    inner: Box<dyn Policy>,
    victim: Pid,
    crash_at: u64,
    done: bool,
}

impl CrashAtStep {
    /// Crashes `victim` when its pending operation would be local step
    /// number `crash_at` (0-based), delegating to `inner` otherwise.
    #[must_use]
    pub fn new(inner: Box<dyn Policy>, victim: Pid, crash_at: u64) -> Self {
        CrashAtStep {
            inner,
            victim,
            crash_at,
            done: false,
        }
    }
}

impl Policy for CrashAtStep {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if !self.done {
            if let Some(op) = pending.iter().find(|op| op.pid == self.victim) {
                if op.step_index >= self.crash_at {
                    self.done = true;
                    return Action::Crash(self.victim);
                }
            }
        }
        // Avoid granting the victim past its crash point before the crash
        // fires: prefer it while it is still before the point.
        self.inner.decide(pending)
    }
}

/// Wraps another policy and crashes processes the moment they reach
/// their `after`-th local step (0-based), up to a crash budget — the
/// "you may run this far and no further" adversary. Unlike
/// [`CrashAtStep`] it needs no victim named in advance: every
/// unprotected process that survives to the threshold is culled, which
/// stresses an algorithm's late, commitment-heavy phases.
pub struct CrashAfter {
    inner: Box<dyn Policy>,
    after: u64,
    remaining_crashes: usize,
    protected: Vec<Pid>,
}

impl CrashAfter {
    /// Wraps `inner`, crashing any process about to take local step
    /// number `after` (0-based), at most `max_crashes` times.
    #[must_use]
    pub fn new(inner: Box<dyn Policy>, after: u64, max_crashes: usize) -> Self {
        CrashAfter {
            inner,
            after,
            remaining_crashes: max_crashes,
            protected: Vec::new(),
        }
    }

    /// Marks processes that must never be crashed.
    #[must_use]
    pub fn protect(mut self, pids: impl IntoIterator<Item = Pid>) -> Self {
        self.protected.extend(pids);
        self
    }
}

impl Policy for CrashAfter {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if self.remaining_crashes > 0 {
            if let Some(op) = pending
                .iter()
                .find(|op| op.step_index >= self.after && !self.protected.contains(&op.pid))
            {
                self.remaining_crashes -= 1;
                return Action::Crash(op.pid);
            }
        }
        self.inner.decide(pending)
    }
}

/// The Theorem 6 pigeonhole schedule as a reusable adversary. At every
/// decision it finds the largest group of pending operations that look
/// identical to the adversary — same kind (read/write) and same target
/// register, the paper's indistinguishability classes — and marches that
/// group in lock-step, granting its least-advanced member first so
/// nobody escapes the pack; processes outside the group are starved
/// until the group disperses. With [`Pigeonhole::crash_leaders`], it additionally
/// **targets the most-advanced process**: whenever some process has
/// pulled more than `lead` local steps ahead of the slowest pending one,
/// it is crashed (budget permitting) — the adaptive "kill whoever is
/// about to decide" behaviour of the lower-bound construction.
///
/// Decisions are a pure function of the pending set and the seed, so
/// executions are trace-deterministic and replayable.
pub struct Pigeonhole {
    rng: SmallRng,
    crash_lead: Option<u64>,
    remaining_crashes: usize,
    // Per-decision scratch, reused so the grant loop stays
    // allocation-free: (kind, register) group sizes in first-appearance
    // (= pid) order, and the equally-large groups of the round.
    groups: Vec<((OpKind, RegId), usize)>,
    tied: Vec<(OpKind, RegId)>,
}

impl Pigeonhole {
    /// A pigeonhole schedule; `seed` breaks ties among equally-large
    /// groups reproducibly.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Pigeonhole {
            rng: SmallRng::seed_from_u64(seed),
            crash_lead: None,
            remaining_crashes: 0,
            groups: Vec::new(),
            tied: Vec::new(),
        }
    }

    /// Crashes the most-advanced pending process whenever it leads the
    /// least-advanced by more than `lead` local steps, at most
    /// `max_crashes` times.
    #[must_use]
    pub fn crash_leaders(mut self, lead: u64, max_crashes: usize) -> Self {
        self.crash_lead = Some(lead);
        self.remaining_crashes = max_crashes;
        self
    }
}

impl Policy for Pigeonhole {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if let Some(lead) = self.crash_lead {
            if self.remaining_crashes > 0 && pending.len() > 1 {
                let slowest = pending.iter().map(|op| op.step_index).min().unwrap();
                let leader = pending
                    .iter()
                    .max_by_key(|op| (op.step_index, usize::MAX - op.pid.0))
                    .unwrap();
                if leader.step_index > slowest + lead {
                    self.remaining_crashes -= 1;
                    return Action::Crash(leader.pid);
                }
            }
        }
        // Largest (kind, register) group, in one counting pass over the
        // pid-sorted pending set — group order is deterministic, so the
        // uniform seeded tie-break over the equally-large ones is
        // reproducible.
        self.groups.clear();
        for op in pending {
            let key = (op.kind, op.reg);
            match self.groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, size)) => *size += 1,
                None => self.groups.push((key, 1)),
            }
        }
        let largest = self
            .groups
            .iter()
            .map(|&(_, size)| size)
            .max()
            .expect("pending nonempty");
        self.tied.clear();
        self.tied.extend(
            self.groups
                .iter()
                .filter_map(|&(key, size)| (size == largest).then_some(key)),
        );
        let key = self.tied[self.rng.gen_range(0..self.tied.len())];
        // Least-advanced member first: the group advances together, so
        // the policy never manufactures the leads it would then punish.
        let chosen = pending
            .iter()
            .filter(|op| (op.kind, op.reg) == key)
            .min_by_key(|op| (op.step_index, op.pid.0))
            .expect("group nonempty");
        Action::Grant(chosen.pid)
    }
}

/// Grants one process a burst of consecutive steps before switching to a
/// randomly chosen next process — the antithesis of round-robin
/// fairness. Bursts model a scheduler that parks everyone else while one
/// process runs hot, which is exactly where splitter-based algorithms
/// see their worst contention patterns. Seedable and trace-deterministic.
#[derive(Clone, Debug)]
pub struct Bursty {
    rng: SmallRng,
    burst: u64,
    current: Option<Pid>,
    remaining: u64,
}

impl Bursty {
    /// A bursty schedule granting `burst` consecutive steps per process,
    /// choosing the next process with `seed`'s generator.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    #[must_use]
    pub fn new(seed: u64, burst: u64) -> Self {
        assert!(burst > 0, "burst length must be positive");
        Bursty {
            rng: SmallRng::seed_from_u64(seed),
            burst,
            current: None,
            remaining: 0,
        }
    }
}

impl Policy for Bursty {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        if self.remaining > 0 {
            if let Some(cur) = self.current {
                if pending.iter().any(|op| op.pid == cur) {
                    self.remaining -= 1;
                    return Action::Grant(cur);
                }
            }
        }
        let chosen = pending[self.rng.gen_range(0..pending.len())].pid;
        self.current = Some(chosen);
        self.remaining = self.burst - 1;
        Action::Grant(chosen)
    }
}

/// Replays a recorded schedule: grants processes in exactly the order of
/// a trace captured with `SimBuilder::record_trace`, then falls back to
/// round-robin once the script is exhausted. Replaying a deterministic
/// program's own trace reproduces the execution bit-for-bit — the
/// debugging workflow for any interleaving found by random exploration.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: std::collections::VecDeque<Pid>,
    fallback: RoundRobin,
    /// Grants that could not be honored because the scripted process was
    /// not pending (the program under replay diverged from the recording).
    diverged: usize,
}

impl Scripted {
    /// A policy replaying the pids of `trace` in order.
    #[must_use]
    pub fn new(trace: impl IntoIterator<Item = Pid>) -> Self {
        Scripted {
            script: trace.into_iter().collect(),
            fallback: RoundRobin::new(),
            diverged: 0,
        }
    }

    /// Builds the script from a recorded trace of operations.
    #[must_use]
    pub fn from_trace(trace: &[PendingOp]) -> Self {
        Self::new(trace.iter().map(|op| op.pid))
    }

    /// How many scripted grants did not match a pending process.
    #[must_use]
    pub fn divergences(&self) -> usize {
        self.diverged
    }
}

impl Policy for Scripted {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        while let Some(pid) = self.script.pop_front() {
            if pending.iter().any(|op| op.pid == pid) {
                return Action::Grant(pid);
            }
            self.diverged += 1;
        }
        self.fallback.decide(pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(pid: usize, step: u64) -> PendingOp {
        PendingOp {
            pid: Pid(pid),
            kind: OpKind::Read,
            reg: RegId(0),
            step_index: step,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::new();
        let pending = [op(1, 0), op(3, 0), op(5, 0)];
        assert_eq!(p.decide(&pending), Action::Grant(Pid(1)));
        assert_eq!(p.decide(&pending), Action::Grant(Pid(3)));
        assert_eq!(p.decide(&pending), Action::Grant(Pid(5)));
        assert_eq!(p.decide(&pending), Action::Grant(Pid(1)));
    }

    #[test]
    fn random_is_reproducible() {
        let pending: Vec<_> = (0..10).map(|i| op(i, 0)).collect();
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            (0..50).map(|_| p.decide(&pending)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn solo_prefers_hero() {
        let mut p = Solo::new(Pid(2));
        assert_eq!(p.decide(&[op(0, 0), op(2, 0)]), Action::Grant(Pid(2)));
        assert_eq!(p.decide(&[op(0, 0), op(1, 0)]), Action::Grant(Pid(0)));
    }

    #[test]
    fn crash_storm_respects_budget_and_protection() {
        let mut p = CrashStorm::new(Box::new(RoundRobin::new()), 1, 1.0, 2).protect([Pid(0)]);
        let pending = [op(0, 0), op(1, 0), op(2, 0), op(3, 0)];
        let mut crashes = 0;
        for _ in 0..10 {
            if let Action::Crash(victim) = p.decide(&pending) {
                assert_ne!(victim, Pid(0), "protected process crashed");
                crashes += 1;
            }
        }
        assert_eq!(crashes, 2);
    }

    #[test]
    fn scripted_replays_and_falls_back() {
        let mut p = Scripted::new([Pid(2), Pid(0), Pid(7)]);
        let pending = [op(0, 0), op(2, 0)];
        assert_eq!(p.decide(&pending), Action::Grant(Pid(2)));
        assert_eq!(p.decide(&pending), Action::Grant(Pid(0)));
        // Pid 7 is never pending: skipped, fallback takes over.
        assert_eq!(p.decide(&pending), Action::Grant(Pid(0)));
        assert_eq!(p.divergences(), 1);
    }

    #[test]
    fn crash_after_culls_each_process_at_the_threshold() {
        let mut p = CrashAfter::new(Box::new(RoundRobin::new()), 2, 2).protect([Pid(0)]);
        // Nobody at the threshold yet: fair grants.
        assert_eq!(p.decide(&[op(0, 0), op(1, 1)]), Action::Grant(Pid(0)));
        // Pid 1 reaches step 2: crashed. Pid 0 is protected at any step.
        assert_eq!(p.decide(&[op(0, 5), op(1, 2)]), Action::Crash(Pid(1)));
        assert_eq!(p.decide(&[op(0, 5), op(2, 3)]), Action::Crash(Pid(2)));
        // Budget (2) exhausted: further stragglers survive.
        assert!(matches!(p.decide(&[op(0, 6), op(3, 9)]), Action::Grant(_)));
    }

    #[test]
    fn pigeonhole_marches_the_largest_identical_group() {
        let mut p = Pigeonhole::new(7);
        // 3 readers of R0 vs 1 reader of R1 vs 1 writer: the R0 group
        // wins; its least advanced member (pid 0, step 1) goes first so
        // the group stays in lock-step.
        let pending = [
            PendingOp {
                pid: Pid(0),
                kind: OpKind::Read,
                reg: RegId(0),
                step_index: 1,
            },
            PendingOp {
                pid: Pid(1),
                kind: OpKind::Read,
                reg: RegId(0),
                step_index: 2,
            },
            PendingOp {
                pid: Pid(2),
                kind: OpKind::Read,
                reg: RegId(0),
                step_index: 4,
            },
            PendingOp {
                pid: Pid(3),
                kind: OpKind::Read,
                reg: RegId(1),
                step_index: 9,
            },
            PendingOp {
                pid: Pid(4),
                kind: OpKind::Write,
                reg: RegId(0),
                step_index: 0,
            },
        ];
        assert_eq!(p.decide(&pending), Action::Grant(Pid(0)));
    }

    #[test]
    fn pigeonhole_is_deterministic_per_seed() {
        let pending: Vec<_> = (0..8).map(|i| op(i, (i % 3) as u64)).collect();
        let run = |seed| {
            let mut p = Pigeonhole::new(seed);
            (0..30).map(|_| p.decide(&pending)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn pigeonhole_crashes_the_leader_when_it_pulls_ahead() {
        let mut p = Pigeonhole::new(0).crash_leaders(3, 1);
        // Leader pid 1 at step 10 vs slowest at step 0: lead 10 > 3.
        assert_eq!(p.decide(&[op(0, 0), op(1, 10)]), Action::Crash(Pid(1)));
        // Budget spent: no further crashes.
        assert!(matches!(p.decide(&[op(0, 0), op(2, 20)]), Action::Grant(_)));
    }

    #[test]
    fn bursty_grants_runs_of_the_same_process() {
        let mut p = Bursty::new(11, 4);
        let pending: Vec<_> = (0..5).map(|i| op(i, 0)).collect();
        let grants: Vec<Pid> = (0..12)
            .map(|_| match p.decide(&pending) {
                Action::Grant(pid) => pid,
                Action::Crash(_) => unreachable!("bursty never crashes"),
            })
            .collect();
        for chunk in grants.chunks(4) {
            assert!(chunk.iter().all(|&pid| pid == chunk[0]), "{grants:?}");
        }
        // Reproducible per seed.
        let mut q = Bursty::new(11, 4);
        let again: Vec<_> = (0..12).map(|_| q.decide(&pending)).collect();
        assert_eq!(
            again,
            grants.iter().map(|&g| Action::Grant(g)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bursty_switches_when_the_current_process_finishes() {
        let mut p = Bursty::new(2, 8);
        let first = match p.decide(&[op(0, 0), op(1, 0)]) {
            Action::Grant(pid) => pid,
            Action::Crash(_) => unreachable!(),
        };
        // The granted process vanishes (finished): the burst must move on.
        let other = [op(if first.0 == 0 { 1 } else { 0 }, 1)];
        assert_eq!(p.decide(&other), Action::Grant(other[0].pid));
    }

    #[test]
    fn crash_at_step_fires_once_at_threshold() {
        let mut p = CrashAtStep::new(Box::new(RoundRobin::new()), Pid(1), 3);
        assert_eq!(p.decide(&[op(1, 2)]), Action::Grant(Pid(1)));
        assert_eq!(p.decide(&[op(1, 3), op(2, 0)]), Action::Crash(Pid(1)));
        assert_eq!(p.decide(&[op(2, 0)]), Action::Grant(Pid(2)));
    }
}
