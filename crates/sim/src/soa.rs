//! Struct-of-arrays machine storage for mega-scale pooled trials.
//!
//! [`MachineBank`] is the engine-facing storage abstraction behind
//! [`crate::StepEngine::run_bank`]: pid-indexed machines exposing the
//! same peek/operand/advance protocol as [`exsel_shm::StepMachine`],
//! without committing to one-struct-per-machine layout. The engine's
//! slice of boxed or pooled machines is one implementation (an internal
//! adapter); [`MajoritySoa`] here is the other — the `Majority`
//! expander-walk family laid out **struct-of-arrays**: phase tags,
//! walk positions and slot numbers in parallel vectors instead of an
//! array of enum-bearing structs. At n ≈ 10⁶ this keeps the grant
//! loop's per-machine state in a handful of dense, prefetchable
//! vectors (5 + 8 + 4 + 4 + 1 bytes per process) instead of 56-byte
//! `MajorityOp` structs, and re-arming a trial is five `fill`-style
//! sweeps.
//!
//! `MajoritySoa` mirrors `MajorityOp`/`CompeteOp` **exactly** — same
//! phase progression (Figure 1's read HR / write HR / read R / write R
//! / verify-read HR), same lose-and-rearm walk — so a shards=1 trial
//! is bit-identical to the boxed and pooled paths (tested below).

use exsel_core::{Majority, Outcome};
use exsel_shm::{Crash, OpKind, Poll, RegId, RegisterBank, Word};

use crate::engine::StepEngine;
use crate::policy::Policy;

/// Pid-indexed machine storage drivable by
/// [`crate::StepEngine::run_bank`]: the per-machine protocol of
/// [`exsel_shm::StepMachine`] (pure peek, operand materialized once at
/// the grant, advance with the read word) addressed by process id, so
/// implementations are free to lay machine state out however the scale
/// demands.
pub trait MachineBank {
    /// Per-process output type.
    type Output;

    /// Number of processes; machine `i` is process `Pid(i)`.
    fn len(&self) -> usize;

    /// Whether the bank holds no machines.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Machine `pid`'s pending operation, without performing it. Pure:
    /// must return the same answer until the next `advance(pid, ..)`.
    fn peek(&self, pid: usize) -> (OpKind, RegId);

    /// Materializes the operand of machine `pid`'s pending **write** —
    /// called exactly once, at the grant.
    ///
    /// # Panics
    ///
    /// Implementations panic if `pid`'s pending operation is a read.
    fn write_operand(&mut self, pid: usize) -> Word;

    /// Performs machine `pid`'s pending operation: for a read, `input`
    /// is the register's word; for a write, [`Word::Null`] (the operand
    /// was already taken via [`MachineBank::write_operand`]).
    fn advance(&mut self, pid: usize, input: &Word) -> Poll<Self::Output>;
}

// Phase tags of the compete state machine (Figure 1), one byte each.
const READ_HR: u8 = 0;
const WRITE_HR: u8 = 1;
const READ_R: u8 = 2;
const WRITE_R: u8 = 3;
const VERIFY: u8 = 4;

/// The `Majority` expander-walk family as a struct-of-arrays machine
/// pool: one entry per contender across five parallel vectors, built
/// once and re-armed in place per trial ([`MajoritySoa::run`] — zero
/// steady-state allocations, like [`crate::MachinePool`]). Drive it
/// with any shard count; results and step counts land in the pool's
/// own buffers.
///
/// ```
/// use exsel_core::{Majority, RenameConfig};
/// use exsel_shm::RegAlloc;
/// use exsel_sim::policy::RoundRobin;
/// use exsel_sim::{MajoritySoa, StepEngine};
///
/// let mut alloc = RegAlloc::new();
/// let algo = Majority::new(&mut alloc, 64, 4, &RenameConfig::default());
/// let originals: Vec<u64> = (0..4).map(|i| i * 13 + 2).collect();
/// let mut pool = MajoritySoa::new(&algo, &originals);
/// let mut engine = StepEngine::reusable(alloc.total());
/// pool.run(&mut engine, &mut RoundRobin::new(), 1);
/// assert!(pool.results().iter().all(|r| r.is_some()));
/// ```
#[derive(Debug)]
pub struct MajoritySoa<'a> {
    state: SoaState<'a>,
    results: Vec<Option<Result<Outcome, Crash>>>,
    steps: Vec<u64>,
}

/// The parallel vectors themselves, split out so [`MajoritySoa::run`]
/// can lend the engine the machine state and the result buffers as
/// disjoint borrows.
#[derive(Debug)]
struct SoaState<'a> {
    algo: &'a Majority,
    /// Original name of each contender (the compete token).
    originals: Vec<u64>,
    /// Input node of each walk (`original − 1`).
    v: Vec<u32>,
    /// Position in the adjacency list.
    idx: Vec<u32>,
    /// Output node (slot) currently competed for.
    slot: Vec<u32>,
    /// Compete phase tag ([`READ_HR`]..[`VERIFY`]).
    phase: Vec<u8>,
}

impl<'a> MajoritySoa<'a> {
    /// Builds the pool over `algo` for the given contenders — the only
    /// allocation point; trials re-arm in place.
    ///
    /// # Panics
    ///
    /// Panics if any original name is outside `[1, algo.num_names()]`.
    #[must_use]
    pub fn new(algo: &'a Majority, originals: &[u64]) -> Self {
        let n = originals.len();
        let mut state = SoaState {
            algo,
            originals: originals.to_vec(),
            v: Vec::with_capacity(n),
            idx: vec![0; n],
            slot: Vec::with_capacity(n),
            phase: vec![READ_HR; n],
        };
        for &original in originals {
            let v = usize::try_from(original.checked_sub(1).expect("names are 1-based"))
                .expect("original name fits usize");
            assert!(
                v < algo.num_names(),
                "original name {original} outside [1, {}]",
                algo.num_names()
            );
            state.v.push(u32::try_from(v).expect("input node fits u32"));
            state.slot.push(algo.graph().neighbors(v)[0]);
        }
        MajoritySoa {
            state,
            results: vec![None; n],
            steps: vec![0; n],
        }
    }

    /// Number of contenders.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.originals.len()
    }

    /// Whether the pool holds no contenders.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.originals.is_empty()
    }

    /// Re-arms every walk to its first neighbour's slot, phase read-HR.
    fn begin_trial(&mut self) {
        let s = &mut self.state;
        for i in 0..s.originals.len() {
            s.idx[i] = 0;
            s.slot[i] = s.algo.graph().neighbors(s.v[i] as usize)[0];
            s.phase[i] = READ_HR;
        }
    }

    /// Runs one trial on `engine` under `policy` with `shards` register
    /// shards (1 = the standard grant loop), re-arming the pool first.
    /// Read the trial back via [`MajoritySoa::results`] and
    /// [`MajoritySoa::steps`].
    ///
    /// # Panics
    ///
    /// As [`StepEngine::run_bank`].
    pub fn run<B: RegisterBank>(
        &mut self,
        engine: &mut StepEngine<B>,
        policy: &mut dyn Policy,
        shards: usize,
    ) {
        self.begin_trial();
        engine.run_bank(
            policy,
            &mut self.state,
            &mut self.results,
            &mut self.steps,
            shards,
        );
    }

    /// Per-pid outcomes of the last trial (`None` only before any).
    #[must_use]
    pub fn results(&self) -> &[Option<Result<Outcome, Crash>>] {
        &self.results
    }

    /// Per-pid local step counts of the last trial.
    #[must_use]
    pub fn steps(&self) -> &[u64] {
        &self.steps
    }
}

impl SoaState<'_> {
    /// The HR/R register pair of `pid`'s current slot.
    fn regs(&self, pid: usize) -> (RegId, RegId) {
        let bank = self.algo.slots().registers();
        let slot = self.slot[pid] as usize;
        (bank.get(2 * slot), bank.get(2 * slot + 1))
    }

    /// Compete lost: advance the walk to the next neighbour, or fail
    /// out of names — `MajorityOp::advance`'s `Ready(false)` arm.
    fn lose(&mut self, pid: usize) -> Poll<Outcome> {
        self.idx[pid] += 1;
        let neighbors = self.algo.graph().neighbors(self.v[pid] as usize);
        match neighbors.get(self.idx[pid] as usize) {
            Some(&w) => {
                self.slot[pid] = w;
                self.phase[pid] = READ_HR;
                Poll::Pending
            }
            None => Poll::Ready(Outcome::Failed),
        }
    }
}

impl MachineBank for SoaState<'_> {
    type Output = Outcome;

    fn len(&self) -> usize {
        self.originals.len()
    }

    fn peek(&self, pid: usize) -> (OpKind, RegId) {
        let (hr, r) = self.regs(pid);
        match self.phase[pid] {
            READ_HR | VERIFY => (OpKind::Read, hr),
            WRITE_HR => (OpKind::Write, hr),
            READ_R => (OpKind::Read, r),
            WRITE_R => (OpKind::Write, r),
            p => unreachable!("corrupt phase tag {p}"),
        }
    }

    fn write_operand(&mut self, pid: usize) -> Word {
        match self.phase[pid] {
            WRITE_HR | WRITE_R => Word::Int(self.originals[pid]),
            _ => panic!("machine peek/op disagree on pending operation"),
        }
    }

    fn advance(&mut self, pid: usize, input: &Word) -> Poll<Outcome> {
        match self.phase[pid] {
            READ_HR => {
                if input.is_null() {
                    self.phase[pid] = WRITE_HR;
                    Poll::Pending
                } else {
                    self.lose(pid)
                }
            }
            WRITE_HR => {
                self.phase[pid] = READ_R;
                Poll::Pending
            }
            READ_R => {
                if input.is_null() {
                    self.phase[pid] = WRITE_R;
                    Poll::Pending
                } else {
                    self.lose(pid)
                }
            }
            WRITE_R => {
                self.phase[pid] = VERIFY;
                Poll::Pending
            }
            VERIFY => {
                if *input == Word::Int(self.originals[pid]) {
                    Poll::Ready(Outcome::Named(u64::from(self.slot[pid]) + 1))
                } else {
                    self.lose(pid)
                }
            }
            p => unreachable!("corrupt phase tag {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CrashStorm, RandomPolicy, RoundRobin};
    use exsel_core::RenameConfig;
    use exsel_shm::{Pid, RegAlloc, SlabBank, StepMachine};
    use std::collections::BTreeSet;

    fn setup(k: usize) -> (RegAlloc, Majority, Vec<u64>) {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 128, k, &RenameConfig::default());
        let originals: Vec<u64> = (0..k as u64).map(|i| i * 13 + 2).collect();
        (alloc, algo, originals)
    }

    fn policies(seed: u64, k: usize) -> Vec<(&'static str, Box<dyn Policy>)> {
        vec![
            ("round-robin", Box::new(RoundRobin::new())),
            ("random", Box::new(RandomPolicy::new(seed))),
            (
                "crash-storm",
                Box::new(CrashStorm::new(
                    Box::new(RandomPolicy::new(seed)),
                    !seed,
                    0.05,
                    k - 1,
                )),
            ),
        ]
    }

    #[test]
    fn soa_is_bit_identical_to_boxed_majority_machines_unsharded() {
        let (alloc, algo, originals) = setup(6);
        let mut boxed_engine = StepEngine::reusable(alloc.total())
            .record_trace(true)
            .panic_on_budget(false);
        let mut soa_engine = StepEngine::reusable(alloc.total())
            .record_trace(true)
            .panic_on_budget(false);
        let mut pool = MajoritySoa::new(&algo, &originals);
        for seed in 0..4u64 {
            for (label, mut policy) in policies(seed, originals.len()) {
                let boxed = boxed_engine.run_trial(
                    policy.as_mut(),
                    originals
                        .iter()
                        .map(|&orig| {
                            Box::new(algo.begin_walk(orig))
                                as Box<dyn StepMachine<Output = Outcome>>
                        })
                        .collect(),
                );
                let (_, mut policy) = policies(seed, originals.len())
                    .into_iter()
                    .find(|(l, _)| *l == label)
                    .unwrap();
                pool.run(&mut soa_engine, policy.as_mut(), 1);

                let tag = format!("{label} × seed {seed}");
                assert_eq!(boxed.trace.as_deref(), soa_engine.trace(), "{tag}: trace");
                assert_eq!(boxed.steps, pool.steps(), "{tag}: steps");
                let soa_results: Vec<Result<Outcome, Crash>> = pool
                    .results()
                    .iter()
                    .map(|r| (*r).expect("result recorded"))
                    .collect();
                assert_eq!(boxed.results, soa_results, "{tag}: results");
            }
        }
    }

    #[test]
    fn sharded_soa_names_are_exclusive_on_both_banks() {
        // Sharding is a different (legal) adversary, so only the
        // algorithm's guarantees are asserted — exclusive names, at
        // least half named — plus slab/Arc agreement on the outcome.
        let (alloc, algo, originals) = setup(8);
        let mut arc_engine = StepEngine::reusable(alloc.total());
        let mut slab_engine = StepEngine::reusable_with(alloc.total(), SlabBank::new());
        for shards in [2usize, 3, 8] {
            let mut pool = MajoritySoa::new(&algo, &originals);
            pool.run(&mut arc_engine, &mut RoundRobin::new(), shards);
            let arc_results: Vec<_> = pool.results().to_vec();
            let names: Vec<u64> = arc_results
                .iter()
                .filter_map(|r| r.as_ref().unwrap().as_ref().ok().and_then(|o| o.name()))
                .collect();
            let set: BTreeSet<u64> = names.iter().copied().collect();
            assert_eq!(set.len(), names.len(), "shards={shards}: duplicate names");
            assert!(
                names.len() * 2 >= originals.len(),
                "shards={shards}: fewer than half named"
            );

            pool.run(&mut slab_engine, &mut RoundRobin::new(), shards);
            assert_eq!(
                arc_results,
                pool.results(),
                "shards={shards}: slab bank diverged from Arc bank"
            );
            let shard_ops = &slab_engine.metrics().shard_ops;
            assert_eq!(shard_ops.len(), shards, "shards={shards}: shard_ops width");
            assert_eq!(
                shard_ops.iter().sum::<u64>(),
                slab_engine.metrics().total_ops,
                "shards={shards}: shard_ops must partition total_ops"
            );
        }
    }

    #[test]
    fn one_shard_run_bank_equals_run_pool_semantics() {
        // shards == 1 routes through the standard incremental loop, so
        // the sharded entry point with one shard is the plain trial.
        let (alloc, algo, originals) = setup(5);
        let mut engine = StepEngine::reusable(alloc.total()).record_trace(true);
        let mut pool = MajoritySoa::new(&algo, &originals);
        pool.run(&mut engine, &mut RandomPolicy::new(7), 1);
        let first_trace: Vec<_> = engine.trace().unwrap().to_vec();
        let first_results = pool.results().to_vec();
        // Re-running re-arms in place and reproduces the trial exactly.
        pool.run(&mut engine, &mut RandomPolicy::new(7), 1);
        assert_eq!(engine.trace().unwrap(), first_trace);
        assert_eq!(pool.results(), first_results);
        assert!(engine.metrics().shard_ops.is_empty());
        let _ = Pid(0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_original() {
        let (_, algo, _) = setup(2);
        let _ = MajoritySoa::new(&algo, &[129]);
    }
}
