//! Deterministic asynchronous execution of shared-memory algorithms.
//!
//! The paper's adversary controls the interleaving of processes' local steps
//! and may crash any of them at any point. This crate realizes that
//! adversary executably: each simulated process runs on its own OS thread,
//! but every shared-memory operation must first be *granted* by a
//! [`Policy`]. The scheduler runs in **lock-step**: the policy is consulted
//! only when every live process has an operation pending, so — because the
//! policy then sees the complete set of enabled operations — executions are
//! fully deterministic given the policy (and any seed it embeds).
//!
//! Lock-step does not restrict the reachable interleavings: any sequence of
//! operations can be produced by granting accordingly, including fully
//! sequential ("solo") executions and starvation of arbitrary subsets,
//! which is how wait-freedom is exercised. Crashes are [`Action::Crash`]
//! decisions; the victim's pending operation fails with
//! [`exsel_shm::Crash`] and the algorithm unwinds.
//!
//! The pending set exposes `(pid, read/write, register)` *before* the grant
//! — exactly the information the pigeonhole adversary of Theorem 6 needs
//! (see the `exsel-lowerbound` crate).
//!
//! # Example
//!
//! ```
//! use exsel_shm::{RegAlloc, Word};
//! use exsel_sim::{policy::RoundRobin, SimBuilder};
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! let outcome = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
//!     .run(3, |ctx| {
//!         ctx.write(bank.get(0), ctx.pid().0 as u64)?;
//!         ctx.read(bank.get(0))
//!     });
//! // Round-robin is deterministic: the interleaving is W0 W1 W2 R0 R1 R2,
//! // so every process reads process 2's write.
//! for r in &outcome.results {
//!     assert_eq!(*r.as_ref().unwrap(), Word::Int(2));
//! }
//! assert_eq!(outcome.steps, vec![2, 2, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod policy;
mod runner;
mod sched;
pub mod trace_view;

pub use explore::{explore, ExploreReport};
pub use policy::{Action, PendingOp, Policy};
pub use runner::{SimBuilder, SimOutcome};
pub use sched::SimMemory;
