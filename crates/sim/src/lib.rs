//! Deterministic asynchronous execution of shared-memory algorithms.
//!
//! The paper's adversary controls the interleaving of processes' local steps
//! and may crash any of them at any point. This crate realizes that
//! adversary executably, with **two interchangeable backends** sharing the
//! [`Policy`] trait and the [`SimOutcome`] result type:
//!
//! * [`SimBuilder`] — the thread-backed scheduler: each simulated process
//!   runs a blocking closure on its own OS thread, and every shared-memory
//!   operation parks until a [`Policy`] grants it. Use it for closure-style
//!   process bodies and for code without a step-machine form.
//! * [`StepEngine`] — the single-threaded step-machine engine: processes
//!   are `exsel_shm::StepMachine`s, so their pending operations are visible
//!   without parking and the whole execution is a loop over a vector — no
//!   thread spawns, no locks, no stacks. Same policy ⇒ same trace, steps
//!   and results as the thread-backed runner (the blocking algorithm APIs
//!   are `drive` adapters over the same machines), at orders-of-magnitude
//!   higher execution rates. Use it for exhaustive exploration
//!   ([`explore_engine`], [`explore_pool`]), adversary searches and
//!   large crash storms. Hot trial loops drive a [`MachinePool`] of
//!   concrete [`MachineSet`] machines ([`StepEngine::run_pool`]): built
//!   once, reset in place, enum-dispatched — zero steady-state heap
//!   allocations.
//!
//! Both run in **lock-step**: the policy is consulted only when every live
//! process has an operation pending, so — because the policy then sees the
//! complete set of enabled operations — executions are fully deterministic
//! given the policy (and any seed it embeds).
//!
//! Lock-step does not restrict the reachable interleavings: any sequence of
//! operations can be produced by granting accordingly, including fully
//! sequential ("solo") executions and starvation of arbitrary subsets,
//! which is how wait-freedom is exercised. Crashes are [`Action::Crash`]
//! decisions; the victim's pending operation fails with
//! [`exsel_shm::Crash`] and the algorithm unwinds.
//!
//! The pending set exposes `(pid, read/write, register)` *before* the grant
//! — exactly the information the pigeonhole adversary of Theorem 6 needs
//! (see the `exsel-lowerbound` crate).
//!
//! # Example
//!
//! ```
//! use exsel_shm::{RegAlloc, Word};
//! use exsel_sim::{policy::RoundRobin, SimBuilder};
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! let outcome = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
//!     .run(3, |ctx| {
//!         ctx.write(bank.get(0), ctx.pid().0 as u64)?;
//!         ctx.read(bank.get(0))
//!     });
//! // Round-robin is deterministic: the interleaving is W0 W1 W2 R0 R1 R2,
//! // so every process reads process 2's write.
//! for r in &outcome.results {
//!     assert_eq!(*r.as_ref().unwrap(), Word::Int(2));
//! }
//! assert_eq!(outcome.steps, vec![2, 2, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod explore;
pub mod machines;
pub mod policy;
mod pool;
pub mod reduce;
mod runner;
mod sched;
pub mod service;
pub mod soa;
pub mod trace_view;

pub use engine::{Metrics, StepEngine};
pub use explore::{
    explore, explore_engine, explore_engine_with, explore_pool, explore_pool_with, ExploreReport,
};
#[cfg(feature = "check")]
pub use exsel_analysis::{
    collect_specs, non_interference, AccessChecker, StaticError, Violation, ViolationKind,
};
pub use machines::{AlgoSet, MachineSet, SetOutput};
pub use policy::{Action, PendingOp, Policy};
pub use pool::MachinePool;
#[cfg(feature = "check")]
pub use reduce::shrink_violation;
pub use reduce::{
    explore_pool_reduced, explore_pool_sleep, independent, replay_pool, ReduceConfig,
};
pub use runner::{SimBuilder, SimOutcome};
pub use sched::{CrashCause, SimMemory};
pub use service::mega::{
    MegaServiceConfig, MegaServiceHarness, MegaServiceReport, MegaServiceWorld,
};
pub use service::{
    Admission, Arrivals, ServiceConfig, ServiceHarness, ServiceReport, ServiceWorld, StepHistogram,
    Totals, WindowRow,
};
pub use soa::{MachineBank, MajoritySoa};
