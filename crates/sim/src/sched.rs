//! The lock-step scheduler and its `Memory` implementation.

use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;

use exsel_shm::{Crash, Memory, OpKind, Pid, RegId, Step, Word};

use crate::policy::{Action, PendingOp, Policy};

/// Why [`SimMemory`] crashed a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashCause {
    /// The policy decided [`Action::Crash`].
    Adversary,
    /// The execution exceeded its operation budget and all live
    /// processes were crashed to terminate the run.
    Budget,
}

/// Shared memory whose every access is granted by a [`Policy`].
///
/// Each process runs on its own thread; an access parks the thread until
/// the policy grants it (or crashes the process). The policy is consulted
/// only when **all** live processes have an access pending ("lock-step"),
/// making executions deterministic given the policy.
///
/// Prefer driving this through [`crate::SimBuilder`], which handles thread
/// spawning, registration and result collection.
pub struct SimMemory {
    state: Mutex<SimState>,
    cv: Condvar,
}

struct SimState {
    regs: Vec<Word>,
    /// Live processes: registered, neither finished nor crashed.
    live: Vec<bool>,
    live_count: usize,
    /// Pending operations keyed by pid.
    pending: BTreeMap<usize, (OpKind, RegId)>,
    /// The pid currently allowed to perform its operation, if any.
    granted: Option<usize>,
    crashed: Vec<Option<CrashCause>>,
    steps: Vec<u64>,
    policy: Box<dyn Policy>,
    total_ops: u64,
    max_total_ops: u64,
    /// Set when the op budget is blown: everyone gets crashed so the run
    /// terminates and the runner can report the overflow.
    budget_exhausted: bool,
    trace: Option<Vec<PendingOp>>,
}

impl SimMemory {
    /// Creates a simulated memory with `num_registers` registers for
    /// `num_processes` processes, scheduled by `policy`.
    ///
    /// `max_total_ops` is a safety valve: if the execution exceeds it, all
    /// processes are crashed and [`SimMemory::budget_exhausted`] reports
    /// true (the [`crate::SimBuilder`] runner turns that into a panic).
    #[must_use]
    pub fn new(
        num_registers: usize,
        num_processes: usize,
        policy: Box<dyn Policy>,
        max_total_ops: u64,
        record_trace: bool,
    ) -> Self {
        SimMemory {
            state: Mutex::new(SimState {
                regs: vec![Word::Null; num_registers],
                live: vec![true; num_processes],
                live_count: num_processes,
                pending: BTreeMap::new(),
                granted: None,
                crashed: vec![None; num_processes],
                steps: vec![0; num_processes],
                policy,
                total_ops: 0,
                max_total_ops,
                budget_exhausted: false,
                trace: record_trace.then(Vec::new),
            }),
            cv: Condvar::new(),
        }
    }

    /// Marks a process finished (its closure returned). Called by the
    /// runner; unblocks the scheduler for the remaining processes.
    pub fn finish(&self, pid: Pid) {
        let mut st = self.state.lock();
        if st.live[pid.0] {
            st.live[pid.0] = false;
            st.live_count -= 1;
        }
        st.pending.remove(&pid.0);
        Self::dispatch(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    /// Whether the run exceeded its operation budget.
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        self.state.lock().budget_exhausted
    }

    /// Total operations granted so far.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.state.lock().total_ops
    }

    /// Which processes were crashed by the policy's `Action::Crash`
    /// decisions (budget-exhaustion crashes are reported separately by
    /// [`SimMemory::budget_crashed_set`]).
    #[must_use]
    pub fn crashed_set(&self) -> Vec<Pid> {
        self.crashed_by(CrashCause::Adversary)
    }

    /// Which processes were crashed because the run exceeded its
    /// operation budget.
    #[must_use]
    pub fn budget_crashed_set(&self) -> Vec<Pid> {
        self.crashed_by(CrashCause::Budget)
    }

    /// Why `pid` crashed, if it did.
    #[must_use]
    pub fn crash_cause(&self, pid: Pid) -> Option<CrashCause> {
        self.state.lock().crashed[pid.0]
    }

    fn crashed_by(&self, cause: CrashCause) -> Vec<Pid> {
        let st = self.state.lock();
        st.crashed
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == Some(cause)).then_some(Pid(i)))
            .collect()
    }

    /// The recorded schedule (granted operations in order), if tracing was
    /// enabled.
    #[must_use]
    pub fn trace(&self) -> Option<Vec<PendingOp>> {
        self.state.lock().trace.clone()
    }

    /// Consults the policy while the lock-step condition holds and no grant
    /// is outstanding.
    fn dispatch(st: &mut SimState) {
        while st.granted.is_none() && st.live_count > 0 && st.pending.len() == st.live_count {
            if st.total_ops >= st.max_total_ops {
                st.budget_exhausted = true;
                for pid in 0..st.live.len() {
                    if st.live[pid] {
                        st.crashed[pid] = Some(CrashCause::Budget);
                        st.live[pid] = false;
                    }
                }
                st.live_count = 0;
                st.pending.clear();
                return;
            }
            let ops: Vec<PendingOp> = st
                .pending
                .iter()
                .map(|(&pid, &(kind, reg))| PendingOp {
                    pid: Pid(pid),
                    kind,
                    reg,
                    step_index: st.steps[pid],
                })
                .collect();
            match st.policy.decide(&ops) {
                Action::Grant(pid) => {
                    assert!(
                        st.pending.contains_key(&pid.0),
                        "policy granted non-pending process {pid}"
                    );
                    st.granted = Some(pid.0);
                }
                Action::Crash(pid) => {
                    assert!(st.live[pid.0], "policy crashed non-live process {pid}");
                    st.crashed[pid.0] = Some(CrashCause::Adversary);
                    st.live[pid.0] = false;
                    st.live_count -= 1;
                    st.pending.remove(&pid.0);
                    // Loop: the lock-step condition may still hold.
                }
            }
        }
    }

    /// The grant protocol for one operation. Returns the read value for
    /// reads.
    fn operate(&self, pid: Pid, kind: OpKind, reg: RegId, word: Option<Word>) -> Step<Word> {
        let mut st = self.state.lock();
        assert!(
            reg.0 < st.regs.len(),
            "register {reg} out of range ({} registers)",
            st.regs.len()
        );
        if st.crashed[pid.0].is_some() {
            return Err(Crash);
        }
        assert!(st.live[pid.0], "operation from finished process {pid}");
        let prev = st.pending.insert(pid.0, (kind, reg));
        assert!(prev.is_none(), "process {pid} has two pending operations");
        Self::dispatch(&mut st);
        self.cv.notify_all();
        loop {
            if st.crashed[pid.0].is_some() {
                return Err(Crash);
            }
            if st.granted == Some(pid.0) {
                break;
            }
            self.cv.wait(&mut st);
        }
        // Perform the granted operation atomically (under the state lock).
        let result = match word {
            Some(w) => {
                st.regs[reg.0] = w;
                Word::Null
            }
            None => st.regs[reg.0].clone(),
        };
        st.steps[pid.0] += 1;
        st.total_ops += 1;
        let step_index = st.steps[pid.0] - 1;
        if let Some(trace) = &mut st.trace {
            trace.push(PendingOp {
                pid,
                kind,
                reg,
                step_index,
            });
        }
        st.granted = None;
        st.pending.remove(&pid.0);
        Self::dispatch(&mut st);
        drop(st);
        self.cv.notify_all();
        Ok(result)
    }
}

impl Memory for SimMemory {
    fn read(&self, pid: Pid, reg: RegId) -> Step<Word> {
        self.operate(pid, OpKind::Read, reg, None)
    }

    fn write(&self, pid: Pid, reg: RegId, word: Word) -> Step<()> {
        self.operate(pid, OpKind::Write, reg, Some(word))?;
        Ok(())
    }

    fn num_registers(&self) -> usize {
        self.state.lock().regs.len()
    }

    fn num_processes(&self) -> usize {
        self.state.lock().live.len()
    }

    fn steps(&self, pid: Pid) -> u64 {
        self.state.lock().steps[pid.0]
    }
}
