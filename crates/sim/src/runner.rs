//! Convenience runner: spawn processes, execute to quiescence, collect
//! results and statistics.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use exsel_shm::{Ctx, Pid, Step};

use crate::policy::{PendingOp, Policy};
use crate::sched::SimMemory;

/// Builder for one simulated execution.
///
/// ```
/// use exsel_shm::RegAlloc;
/// use exsel_sim::{policy::RandomPolicy, SimBuilder};
///
/// let mut alloc = RegAlloc::new();
/// let bank = alloc.reserve(1);
/// let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(42)))
///     .run(4, |ctx| ctx.write(bank.get(0), ctx.pid().0 as u64));
/// assert!(outcome.results.iter().all(Result::is_ok));
/// ```
pub struct SimBuilder {
    num_registers: usize,
    policy: Box<dyn Policy>,
    max_total_ops: u64,
    record_trace: bool,
    stack_size: usize,
    panic_on_budget: bool,
}

impl SimBuilder {
    /// A new builder over `num_registers` registers scheduled by `policy`.
    #[must_use]
    pub fn new(num_registers: usize, policy: Box<dyn Policy>) -> Self {
        SimBuilder {
            num_registers,
            policy,
            max_total_ops: 50_000_000,
            record_trace: false,
            stack_size: 512 * 1024,
            panic_on_budget: true,
        }
    }

    /// Overrides the total-operation safety valve (default 50 million).
    /// Exceeding it makes [`SimBuilder::run`] panic with a diagnostic
    /// instead of hanging.
    #[must_use]
    pub fn max_total_ops(mut self, ops: u64) -> Self {
        self.max_total_ops = ops;
        self
    }

    /// Records the granted schedule in [`SimOutcome::trace`].
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Per-process thread stack size in bytes (default 512 KiB). Large
    /// process counts (the lower-bound experiments run thousands) may want
    /// this smaller.
    #[must_use]
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Whether exhausting the operation budget panics (the default). With
    /// `false`, the run instead returns an outcome whose
    /// [`SimOutcome::budget_crashed`] lists the processes the budget
    /// killed — distinguishable from the policy's [`Action::Crash`]
    /// victims in [`SimOutcome::crashed`].
    ///
    /// [`Action::Crash`]: crate::policy::Action::Crash
    #[must_use]
    pub fn panic_on_budget(mut self, panic: bool) -> Self {
        self.panic_on_budget = panic;
        self
    }

    /// Runs `num_processes` copies of `body` (distinguished by
    /// `ctx.pid()`) to quiescence and collects the per-process results.
    ///
    /// # Panics
    ///
    /// Panics if any process panics (the panic is propagated after the
    /// remaining processes have been released) or if the operation budget
    /// is exhausted — which indicates a livelocked algorithm, since every
    /// algorithm in this stack is supposed to be wait-free or non-blocking.
    pub fn run<T, F>(self, num_processes: usize, body: F) -> SimOutcome<T>
    where
        T: Send,
        F: Fn(Ctx<'_>) -> Step<T> + Sync,
    {
        let mem = Arc::new(SimMemory::new(
            self.num_registers,
            num_processes,
            self.policy,
            self.max_total_ops,
            self.record_trace,
        ));
        let mut results: Vec<Option<Step<T>>> = (0..num_processes).map(|_| None).collect();
        let mut panic_payload = None;

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..num_processes)
                .map(|p| {
                    let mem = Arc::clone(&mem);
                    let body = &body;
                    std::thread::Builder::new()
                        .name(format!("sim-p{p}"))
                        .stack_size(self.stack_size)
                        .spawn_scoped(s, move || {
                            let ctx = Ctx::new(mem.as_ref(), Pid(p));
                            let out = catch_unwind(AssertUnwindSafe(|| body(ctx)));
                            // Unblock the scheduler whether we returned or
                            // panicked; a process that panicked while
                            // holding a grant has already released it (ops
                            // complete before user code resumes).
                            mem.finish(Pid(p));
                            out
                        })
                        .expect("spawn simulated process")
                })
                .collect();
            for (p, h) in handles.into_iter().enumerate() {
                match h.join().expect("sim thread never detaches") {
                    Ok(res) => results[p] = Some(res),
                    Err(payload) => panic_payload = Some(payload),
                }
            }
        });

        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        assert!(
            !(self.panic_on_budget && mem.budget_exhausted()),
            "simulation exceeded its operation budget of {} ops — livelocked algorithm?",
            self.max_total_ops
        );

        let steps: Vec<u64> = (0..num_processes)
            .map(|p| exsel_shm::Memory::steps(mem.as_ref(), Pid(p)))
            .collect();
        SimOutcome {
            results: results
                .into_iter()
                .map(|r| r.expect("result recorded"))
                .collect(),
            steps,
            crashed: mem.crashed_set(),
            budget_crashed: mem.budget_crashed_set(),
            total_ops: mem.total_ops(),
            trace: mem.trace(),
        }
    }
}

/// The result of one simulated execution.
#[derive(Debug)]
pub struct SimOutcome<T> {
    /// Per-process results, indexed by pid. `Err(Crash)` means the
    /// process crashed — by the policy or by budget exhaustion; the
    /// [`SimOutcome::crashed`] / [`SimOutcome::budget_crashed`] lists
    /// tell the causes apart.
    pub results: Vec<Step<T>>,
    /// Local steps taken by each process.
    pub steps: Vec<u64>,
    /// Processes crashed by the policy's `Action::Crash` decisions.
    pub crashed: Vec<Pid>,
    /// Processes crashed because the execution exhausted its operation
    /// budget (only reachable with `panic_on_budget(false)`).
    pub budget_crashed: Vec<Pid>,
    /// Total operations granted.
    pub total_ops: u64,
    /// The granted schedule, if tracing was enabled.
    pub trace: Option<Vec<PendingOp>>,
}

impl<T> SimOutcome<T> {
    /// The maximum local steps over all processes — the paper's worst-case
    /// step complexity of the execution.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.steps.iter().copied().max().unwrap_or(0)
    }

    /// Results of the processes that completed (did not crash).
    pub fn completed(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Whether the execution was cut short by its operation budget
    /// (rather than quiescing or being fully crashed by the policy).
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        !self.budget_crashed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CrashStorm, RandomPolicy, RoundRobin, Solo};
    use exsel_shm::{RegAlloc, Word};

    #[test]
    fn deterministic_round_robin() {
        let run = || {
            let mut alloc = RegAlloc::new();
            let bank = alloc.reserve(2);
            SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
                .record_trace(true)
                .run(3, |ctx| {
                    ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                    let w = ctx.read(bank.get(0))?;
                    ctx.write(bank.get(1), w.expect_int() + 1)?;
                    ctx.read(bank.get(1))
                })
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace, b.trace, "same policy must replay identically");
        assert_eq!(
            a.results
                .iter()
                .map(|r| r.clone().unwrap())
                .collect::<Vec<_>>(),
            b.results
                .iter()
                .map(|r| r.clone().unwrap())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn deterministic_random_seeds() {
        let run = |seed| {
            let mut alloc = RegAlloc::new();
            let bank = alloc.reserve(1);
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
                .record_trace(true)
                .run(4, |ctx| {
                    for _ in 0..5 {
                        ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                        ctx.read(bank.get(0))?;
                    }
                    Ok(())
                })
        };
        assert_eq!(run(3).trace, run(3).trace);
        assert_ne!(run(3).trace, run(4).trace);
    }

    #[test]
    fn crashed_processes_report_err() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let policy = CrashStorm::new(Box::new(RoundRobin::new()), 9, 0.5, 2);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(4, |ctx| {
            for i in 0..20u64 {
                ctx.write(bank.get(0), i)?;
            }
            Ok(())
        });
        assert_eq!(outcome.crashed.len(), 2);
        for pid in &outcome.crashed {
            assert!(outcome.results[pid.0].is_err());
        }
        assert_eq!(outcome.completed().count(), 2);
    }

    #[test]
    fn solo_runs_hero_first() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let outcome = SimBuilder::new(alloc.total(), Box::new(Solo::new(Pid(2))))
            .record_trace(true)
            .run(3, |ctx| {
                for _ in 0..4 {
                    ctx.read(bank.get(0))?;
                }
                Ok(())
            });
        let trace = outcome.trace.unwrap();
        // The first 4 granted ops all belong to the hero.
        assert!(trace[..4].iter().all(|op| op.pid == Pid(2)));
    }

    #[test]
    #[should_panic(expected = "operation budget")]
    fn budget_exhaustion_panics() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
            .max_total_ops(100)
            .run(2, |ctx| -> exsel_shm::Step<()> {
                loop {
                    ctx.read(bank.get(0))?; // spin forever
                }
            });
    }

    #[test]
    fn single_process_runs_to_completion() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let outcome = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new())).run(1, |ctx| {
            ctx.write(bank.get(0), 5u64)?;
            ctx.read(bank.get(0))
        });
        assert_eq!(outcome.results[0], Ok(Word::Int(5)));
        assert_eq!(outcome.max_steps(), 2);
        assert_eq!(outcome.total_ops, 2);
    }

    #[test]
    fn replaying_a_trace_reproduces_the_execution() {
        use crate::policy::Scripted;
        let program = |bank: exsel_shm::RegRange| {
            move |ctx: Ctx<'_>| {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                ctx.read(bank.get(0))
            }
        };
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let original = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(99)))
            .record_trace(true)
            .run(3, program(bank));
        let replay = SimBuilder::new(
            alloc.total(),
            Box::new(Scripted::from_trace(original.trace.as_ref().unwrap())),
        )
        .record_trace(true)
        .run(3, program(bank));
        assert_eq!(original.trace, replay.trace);
        assert_eq!(
            original
                .results
                .iter()
                .map(|r| r.clone().unwrap())
                .collect::<Vec<_>>(),
            replay
                .results
                .iter()
                .map(|r| r.clone().unwrap())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn interleaving_is_real() {
        // Two processes each write-then-read the same register; under some
        // random seed, someone must observe the other's write.
        let mut saw_cross = false;
        for seed in 0..20 {
            let mut alloc = RegAlloc::new();
            let bank = alloc.reserve(1);
            let outcome =
                SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(2, |ctx| {
                    ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                    ctx.read(bank.get(0))
                });
            for (p, r) in outcome.results.iter().enumerate() {
                if r.as_ref().unwrap().expect_int() != p as u64 {
                    saw_cross = true;
                }
            }
        }
        assert!(saw_cross, "random schedules never interleaved");
    }
}
