//! ASCII rendering of recorded schedules — the debugging view for
//! interleavings found by random exploration or the adversary.

use std::fmt::Write as _;

use crate::policy::PendingOp;
use exsel_shm::OpKind;

/// Renders a recorded schedule as a per-process timeline: one row per
/// process, one column per granted operation; `r<reg>`/`w<reg>` mark the
/// operation, `.` marks "not scheduled".
///
/// ```
/// use exsel_shm::{OpKind, Pid, RegId};
/// use exsel_sim::policy::PendingOp;
/// use exsel_sim::trace_view::render;
///
/// let trace = [
///     PendingOp { pid: Pid(0), kind: OpKind::Write, reg: RegId(3), step_index: 0 },
///     PendingOp { pid: Pid(1), kind: OpKind::Read, reg: RegId(3), step_index: 0 },
/// ];
/// let view = render(&trace);
/// assert!(view.starts_with("p0 | w3"));
/// assert!(view.contains("p1 |"));
/// assert!(view.contains("r3"));
/// ```
#[must_use]
pub fn render(trace: &[PendingOp]) -> String {
    if trace.is_empty() {
        return String::from("(empty trace)\n");
    }
    let num_procs = trace.iter().map(|op| op.pid.0).max().unwrap_or(0) + 1;
    let cells: Vec<String> = trace
        .iter()
        .map(|op| {
            let k = match op.kind {
                OpKind::Read => 'r',
                OpKind::Write => 'w',
            };
            format!("{k}{}", op.reg.0)
        })
        .collect();
    let width = cells.iter().map(String::len).max().unwrap_or(1).max(1);

    let mut out = String::new();
    for p in 0..num_procs {
        let _ = write!(out, "p{p} |");
        for (op, cell) in trace.iter().zip(&cells) {
            if op.pid.0 == p {
                let _ = write!(out, " {cell:^width$}");
            } else {
                let _ = write!(out, " {:^width$}", ".");
            }
        }
        out.push('\n');
    }
    out
}

/// One-line summary of a schedule: totals per process and per kind.
#[must_use]
pub fn summarize(trace: &[PendingOp]) -> String {
    let num_procs = trace.iter().map(|op| op.pid.0).max().map_or(0, |m| m + 1);
    let reads = trace.iter().filter(|op| op.kind == OpKind::Read).count();
    let writes = trace.len() - reads;
    let mut per_proc = vec![0usize; num_procs];
    for op in trace {
        per_proc[op.pid.0] += 1;
    }
    format!(
        "{} ops ({reads} reads, {writes} writes) across {num_procs} processes; per-process {per_proc:?}",
        trace.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, RegId};

    fn op(pid: usize, kind: OpKind, reg: usize) -> PendingOp {
        PendingOp {
            pid: Pid(pid),
            kind,
            reg: RegId(reg),
            step_index: 0,
        }
    }

    #[test]
    fn renders_rows_per_process() {
        let trace = [
            op(0, OpKind::Write, 0),
            op(1, OpKind::Read, 0),
            op(0, OpKind::Read, 1),
        ];
        let view = render(&trace);
        let lines: Vec<&str> = view.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("p0 |"));
        assert!(lines[0].contains("w0"));
        assert!(lines[0].contains("r1"));
        assert!(lines[1].contains("r0"));
        // Columns align: both rows have the same length.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn empty_trace() {
        assert_eq!(render(&[]), "(empty trace)\n");
    }

    #[test]
    fn summary_counts() {
        let trace = [
            op(0, OpKind::Write, 0),
            op(1, OpKind::Read, 9),
            op(1, OpKind::Read, 9),
        ];
        let s = summarize(&trace);
        assert!(s.contains("3 ops"));
        assert!(s.contains("2 reads"));
        assert!(s.contains("1 writes"));
        assert!(s.contains("[1, 2]"));
    }

    #[test]
    fn wide_register_ids_align() {
        let trace = [op(0, OpKind::Write, 12345), op(1, OpKind::Read, 3)];
        let view = render(&trace);
        let lines: Vec<&str> = view.lines().collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
