//! The single-threaded step-machine execution engine.
//!
//! [`StepEngine`] runs a set of [`StepMachine`]s under a [`Policy`] with
//! the exact lock-step semantics of the thread-backed scheduler
//! ([`crate::SimMemory`]/[`crate::SimBuilder`]) but **zero OS threads,
//! zero locks and zero parked stacks**: every live machine always exposes
//! its pending operation (`op()` is pure), so the policy can be consulted
//! directly and the chosen operation applied in place. Because the
//! blocking algorithm APIs are `drive` adapters over the same machines,
//! the two backends observe identical operation sequences — the same
//! policy (and seed) produces the same trace, steps and results on both.
//!
//! Use the thread-backed [`crate::SimBuilder`] for closure-style process
//! bodies; use `StepEngine` whenever the algorithms expose step machines
//! and you care about speed or scale — exhaustive exploration, adversary
//! searches, crash storms over thousands of processes.
//!
//! # Reuse and the machine pool
//!
//! An engine is **reusable**: [`StepEngine::run_trial`] runs one
//! execution under a caller-supplied policy and keeps the register bank,
//! pending-op scratch, crash vector and metric histograms allocated for
//! the next trial ([`StepEngine::reset`] re-initializes them in place).
//! [`StepEngine::run_pool`] goes further: driving a
//! [`crate::MachinePool`] re-initializes the *machines* in place too
//! ([`StepMachine::reset`]) and lands results in the pool's own buffers,
//! so steady-state trials perform **zero heap allocations**
//! (`tests/alloc_free.rs` proves it with a counting allocator). The
//! pending set the policy consults is maintained incrementally — one
//! [`StepMachine::peek`] per *grant*, not one per live machine per
//! decision; the rebuild-per-decision reference loop survives behind
//! [`StepEngine::pending_rebuild`] for differential tests and A/B
//! benchmarks. With [`StepEngine::record_trace`] on, `run_trial` moves
//! each trial's trace buffer into its outcome (no copy) while pooled
//! trials leave it readable via [`StepEngine::trace`]. A reused engine —
//! pooled or not — is observationally identical to a fresh one: same
//! policy + seed ⇒ same trace (this is tested).
//!
//! Per-trial [`Metrics`] (operation mix, ops per register, crash causes,
//! contention) are collected during the grant loop and read back with
//! [`StepEngine::metrics`].
//!
//! ```
//! use exsel_shm::{Poll, RegAlloc, ShmOp, StepMachine, Word};
//! use exsel_sim::{policy::RoundRobin, StepEngine};
//!
//! /// Write own id, then read the register back.
//! struct WriteThenRead {
//!     reg: exsel_shm::RegId,
//!     id: u64,
//!     wrote: bool,
//! }
//! impl StepMachine for WriteThenRead {
//!     type Output = Word;
//!     fn op(&self) -> ShmOp {
//!         if self.wrote { ShmOp::Read(self.reg) } else { ShmOp::Write(self.reg, Word::Int(self.id)) }
//!     }
//!     fn advance(&mut self, input: &Word) -> Poll<Word> {
//!         if self.wrote { Poll::Ready(input.clone()) } else { self.wrote = true; Poll::Pending }
//!     }
//! }
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! let outcome = StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
//!     .run((0..3).map(|p| -> Box<dyn StepMachine<Output = Word>> {
//!         Box::new(WriteThenRead { reg: bank.get(0), id: p, wrote: false })
//!     }).collect());
//! // Round-robin: W0 W1 W2 R0 R1 R2 — everyone reads process 2's write.
//! for r in &outcome.results {
//!     assert_eq!(*r.as_ref().unwrap(), Word::Int(2));
//! }
//! assert_eq!(outcome.steps, vec![2, 2, 2]);
//! ```

use exsel_shm::{
    ArcBank, Crash, OpKind, Pid, Poll, RegisterBank, ShmOp, SnapArenaStats, StepMachine, Word,
};

use crate::policy::{Action, PendingOp, Policy};
use crate::pool::MachinePool;
use crate::runner::SimOutcome;
use crate::soa::MachineBank;

/// The input handed to a machine consuming a granted write.
const NULL_WORD: Word = Word::Null;

/// Counters collected by [`StepEngine`] during one trial's grant loop,
/// read back with [`StepEngine::metrics`] after the trial. Reset by
/// [`StepEngine::reset`] (and therefore at the start of every trial);
/// fold trials together with [`Metrics::merge`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Trials folded into these metrics (1 after a single trial).
    pub trials: u64,
    /// Operations granted.
    pub total_ops: u64,
    /// Read operations granted.
    pub reads: u64,
    /// Write operations granted.
    pub writes: u64,
    /// Maximum local steps over all processes.
    pub max_steps: u64,
    /// Processes crashed by the policy ([`Action::Crash`]).
    pub adversary_crashes: usize,
    /// Processes crashed because the trial exhausted its operation
    /// budget (distinguished from adversary crashes — see
    /// [`StepEngine::panic_on_budget`]).
    pub budget_crashes: usize,
    /// The largest number of processes pending on a granted operation's
    /// register at any decision point, the grantee included. Only
    /// collected when [`StepEngine::measure_contention`] is on (the scan
    /// costs one extra pass over the pending set per decision).
    pub max_contention: usize,
    /// Operations granted per register, indexed by register id.
    pub ops_per_register: Vec<u64>,
    /// Operations granted per shard of the last **sharded** trial
    /// ([`StepEngine::run_pool_sharded`]), indexed by shard. Empty for
    /// unsharded trials.
    pub shard_ops: Vec<u64>,
    /// Largest same-register pending count observed *within* each shard
    /// at a grant, indexed by shard. Only collected when
    /// [`StepEngine::measure_contention`] is on; empty for unsharded
    /// trials.
    pub shard_contention: Vec<usize>,
    /// Snapshot record/view allocation and peak-view telemetry, folded
    /// in by the sweep driver via [`Metrics::record_snapshot`] (the
    /// engine itself does not know which registers back a snapshot
    /// object — the arena does). Zero for non-snapshot workloads.
    pub snapshot: SnapArenaStats,
    /// Operations validated by the installed footprint checker. Always
    /// present so the struct's shape (and `PartialEq`) is independent of
    /// the `check` feature; stays zero when the feature is off or no
    /// checker is installed.
    pub checker_ops: u64,
    /// Footprint violations the installed checker counted (recorded or
    /// past its recording cap). Zero on a disciplined run.
    pub checker_violations: u64,
}

impl Metrics {
    fn reset(&mut self, num_registers: usize) {
        self.trials = 0;
        self.total_ops = 0;
        self.reads = 0;
        self.writes = 0;
        self.max_steps = 0;
        self.adversary_crashes = 0;
        self.budget_crashes = 0;
        self.max_contention = 0;
        self.ops_per_register.clear();
        self.ops_per_register.resize(num_registers, 0);
        self.shard_ops.clear();
        self.shard_contention.clear();
        self.snapshot = SnapArenaStats::default();
        self.checker_ops = 0;
        self.checker_violations = 0;
    }

    /// Folds a snapshot object's arena telemetry window into these
    /// metrics — allocation counts add, peak record/view footprints take
    /// the max. Sweeps call this once per sweep with
    /// [`SnapArenaStats::since`] over the sweep's window.
    pub fn record_snapshot(&mut self, stats: &SnapArenaStats) {
        self.snapshot.merge(stats);
    }

    /// The register granted the most operations, with its count.
    #[must_use]
    pub fn hottest_register(&self) -> Option<(usize, u64)> {
        self.ops_per_register
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(reg, ops)| (ops, usize::MAX - reg))
            .filter(|&(_, ops)| ops > 0)
    }

    /// Folds another trial's metrics into this aggregate: counters add,
    /// maxima take the max, per-register histograms add element-wise.
    pub fn merge(&mut self, other: &Metrics) {
        self.trials += other.trials;
        self.total_ops += other.total_ops;
        self.reads += other.reads;
        self.writes += other.writes;
        self.max_steps = self.max_steps.max(other.max_steps);
        self.adversary_crashes += other.adversary_crashes;
        self.budget_crashes += other.budget_crashes;
        self.max_contention = self.max_contention.max(other.max_contention);
        if self.ops_per_register.len() < other.ops_per_register.len() {
            self.ops_per_register
                .resize(other.ops_per_register.len(), 0);
        }
        for (acc, &ops) in self
            .ops_per_register
            .iter_mut()
            .zip(&other.ops_per_register)
        {
            *acc += ops;
        }
        if self.shard_ops.len() < other.shard_ops.len() {
            self.shard_ops.resize(other.shard_ops.len(), 0);
        }
        for (acc, &ops) in self.shard_ops.iter_mut().zip(&other.shard_ops) {
            *acc += ops;
        }
        if self.shard_contention.len() < other.shard_contention.len() {
            self.shard_contention
                .resize(other.shard_contention.len(), 0);
        }
        for (acc, &c) in self
            .shard_contention
            .iter_mut()
            .zip(&other.shard_contention)
        {
            *acc = (*acc).max(c);
        }
        self.snapshot.merge(&other.snapshot);
        self.checker_ops += other.checker_ops;
        self.checker_violations += other.checker_violations;
    }
}

/// How a trial crashed a process, in the engine's scratch crash vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrashKind {
    None,
    Adversary,
    Budget,
}

/// Builder/driver for engine executions; see the module docs.
///
/// Generic over the register-bank storage `B` — [`ArcBank`] (the
/// default, one `Word` enum per register) or [`exsel_shm::SlabBank`]
/// (inline small payloads + generation-tagged slab handles for snapshot
/// records, the mega-scale backend). The two are bit-identical per trial
/// (`tests/pooled_determinism.rs` proves it differentially); slab
/// engines are built with [`StepEngine::reusable_with`].
pub struct StepEngine<B: RegisterBank = ArcBank> {
    num_registers: usize,
    policy: Option<Box<dyn Policy>>,
    max_total_ops: u64,
    record_trace: bool,
    measure_contention: bool,
    panic_on_budget: bool,
    pending_rebuild: bool,
    // Scratch reused across trials — the point of `reset`/`run_trial`:
    // the register bank, the pending-op buffer, the per-pid crash
    // vector, the trace storage and the metric histograms keep their
    // capacity from one trial to the next.
    regs: B,
    /// Whether `run_trial` moved the last trial's trace into its outcome
    /// (pooled trials leave it in place; see [`StepEngine::trace`]).
    trace_moved: bool,
    pending: Vec<PendingOp>,
    /// `pending_pos[pid]` is pid's index into `pending`, or
    /// [`NOT_PENDING`]: the pending set is maintained *incrementally* —
    /// only the granted machine's entry changes per decision — instead
    /// of being rebuilt with one `peek` per live machine per decision.
    /// Sharded trials reuse it for the pid's index into its *shard's*
    /// pending vector.
    pending_pos: Vec<usize>,
    /// Per-shard pending sets of sharded trials (empty otherwise);
    /// reused across trials like `pending`.
    shard_pending: Vec<Vec<PendingOp>>,
    crashed: Vec<CrashKind>,
    trace: Vec<PendingOp>,
    metrics: Metrics,
    /// The installed dynamic footprint checker, if any; validated
    /// against every granted operation in the grant loops. Behind the
    /// `check` feature so unchecked builds carry neither the field nor
    /// the per-grant branch.
    #[cfg(feature = "check")]
    checker: Option<exsel_analysis::AccessChecker>,
}

/// Sentinel in `pending_pos` for completed/crashed processes.
const NOT_PENDING: usize = usize::MAX;

/// Policy decisions taken per shard visit before the sharded grant loop
/// rotates to the next non-empty shard — the batching that keeps
/// decisions cache-local on one shard's pending set at a time.
const SHARD_BATCH: usize = 32;

// Constructors that pin the default `ArcBank` storage live on a
// non-generic impl block: default type parameters do not participate in
// function-call inference, so `StepEngine::reusable(n)` must resolve `B`
// through the impl's self type.
impl StepEngine {
    /// A new engine over `num_registers` registers scheduled by `policy`
    /// (the policy is consumed by [`StepEngine::run`]; trials via
    /// [`StepEngine::run_trial`] take their policy per call).
    #[must_use]
    pub fn new(num_registers: usize, policy: Box<dyn Policy>) -> Self {
        Self::with_parts(num_registers, Some(policy), ArcBank::new())
    }

    /// A reusable engine with no built-in policy: run trials with
    /// [`StepEngine::run_trial`], which reuses the engine's scratch
    /// buffers across trials instead of reallocating per run.
    #[must_use]
    pub fn reusable(num_registers: usize) -> Self {
        Self::with_parts(num_registers, None, ArcBank::new())
    }

    /// The register bank as the last trial left it, indexed by
    /// [`exsel_shm::RegId`] — the post-trial inspection path for
    /// occupancy audits (e.g. repository waste counting), which on the
    /// thread-backed runner would read through a `Memory` handle. The
    /// next trial's [`StepEngine::reset`] re-nulls it. For bank-generic
    /// inspection use [`StepEngine::load_register`] instead.
    #[must_use]
    pub fn registers(&self) -> &[Word] {
        self.regs.words()
    }
}

impl<B: RegisterBank> StepEngine<B> {
    fn with_parts(num_registers: usize, policy: Option<Box<dyn Policy>>, bank: B) -> Self {
        StepEngine {
            num_registers,
            policy,
            max_total_ops: 50_000_000,
            record_trace: false,
            measure_contention: false,
            panic_on_budget: true,
            pending_rebuild: false,
            regs: bank,
            trace_moved: false,
            pending: Vec::new(),
            pending_pos: Vec::new(),
            shard_pending: Vec::new(),
            crashed: Vec::new(),
            trace: Vec::new(),
            metrics: Metrics::default(),
            #[cfg(feature = "check")]
            checker: None,
        }
    }

    /// A reusable engine over an explicit register-bank backend, e.g.
    /// `StepEngine::reusable_with(regs, SlabBank::new())`. Behaves
    /// exactly like [`StepEngine::reusable`] otherwise.
    #[must_use]
    pub fn reusable_with(num_registers: usize, bank: B) -> Self {
        Self::with_parts(num_registers, None, bank)
    }

    /// The register-bank backend (e.g. for slab occupancy telemetry
    /// after a trial).
    #[must_use]
    pub fn bank(&self) -> &B {
        &self.regs
    }

    /// Materializes the current word of `reg` — bank-generic post-trial
    /// inspection (the slab backend has no contiguous `&[Word]` to
    /// borrow).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    #[must_use]
    pub fn load_register(&self, reg: exsel_shm::RegId) -> Word {
        self.regs.load(reg)
    }

    /// Overrides the total-operation safety valve (default 50 million).
    /// Exceeding it makes a run panic with a diagnostic instead of
    /// looping forever — unless [`StepEngine::panic_on_budget`] is off.
    #[must_use]
    pub fn max_total_ops(mut self, ops: u64) -> Self {
        self.max_total_ops = ops;
        self
    }

    /// Records the granted schedule in [`SimOutcome::trace`].
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Collects [`Metrics::max_contention`] (one extra pass over the
    /// pending set per decision; off by default to keep the grant loop
    /// lean).
    #[must_use]
    pub fn measure_contention(mut self, on: bool) -> Self {
        self.measure_contention = on;
        self
    }

    /// Rebuilds the pending set from scratch before every decision (one
    /// [`StepMachine::peek`] per live machine per decision) instead of
    /// maintaining it incrementally. This is the pre-optimization grant
    /// loop, kept as the obviously-correct reference: differential tests
    /// assert the incremental loop is trace-identical to it, and the
    /// bench layer uses it as the measured baseline for the
    /// `machine_pool/*` rows. Off by default.
    #[must_use]
    pub fn pending_rebuild(mut self, on: bool) -> Self {
        self.pending_rebuild = on;
        self
    }

    /// Whether exhausting the operation budget panics (the default —
    /// every algorithm in this stack is supposed to be wait-free, so a
    /// blown budget means a livelock bug). With `false`, the survivors
    /// are crashed with a **budget** cause instead: the trial returns an
    /// outcome whose [`SimOutcome::budget_crashed`] lists them,
    /// distinguishable from adversary [`Action::Crash`] victims in
    /// [`SimOutcome::crashed`].
    #[must_use]
    pub fn panic_on_budget(mut self, panic: bool) -> Self {
        self.panic_on_budget = panic;
        self
    }

    /// Points the engine at a memory of `num_registers` registers from
    /// the next reset on (size sweeps reuse one engine across grid
    /// cells).
    pub fn set_registers(&mut self, num_registers: usize) {
        self.num_registers = num_registers;
    }

    /// Metrics of the last trial (or of the trial in progress).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Installs a compiled footprint checker: from the next trial on,
    /// every granted operation is validated against the declared
    /// footprints and the engine's [`Metrics`] accumulate
    /// `checker_ops`/`checker_violations`. Compile one with
    /// [`AlgoSet::checker`](crate::AlgoSet::checker) or
    /// [`exsel_analysis::AccessChecker::compile`].
    #[cfg(feature = "check")]
    pub fn install_checker(&mut self, checker: exsel_analysis::AccessChecker) {
        self.checker = Some(checker);
    }

    /// The installed checker, if any — e.g. to inspect
    /// [`violations`](exsel_analysis::AccessChecker::violations) after a
    /// trial.
    #[cfg(feature = "check")]
    #[must_use]
    pub fn checker(&self) -> Option<&exsel_analysis::AccessChecker> {
        self.checker.as_ref()
    }

    /// Uninstalls and returns the checker (subsequent trials run
    /// unchecked).
    #[cfg(feature = "check")]
    pub fn take_checker(&mut self) -> Option<exsel_analysis::AccessChecker> {
        self.checker.take()
    }

    /// Re-initializes the engine's state in place for the next trial:
    /// registers to [`Word::Null`], trace and metrics cleared — **keeping
    /// every buffer's capacity**. Called automatically at the start of
    /// [`StepEngine::run_trial`]; public for callers that want to drop
    /// trial state eagerly.
    pub fn reset(&mut self) {
        self.regs.reset(self.num_registers);
        self.trace.clear();
        self.trace_moved = false;
        self.metrics.reset(self.num_registers);
        #[cfg(feature = "check")]
        if let Some(c) = &mut self.checker {
            c.begin_trial();
        }
    }

    /// Runs `machines` (machine `i` is process `Pid(i)`) to quiescence
    /// under the policy the engine was constructed with, consuming the
    /// engine. Completed machines yield `Ok(output)`; machines crashed by
    /// the policy yield `Err(Crash)`.
    ///
    /// # Panics
    ///
    /// Panics if the engine was built with [`StepEngine::reusable`]
    /// (use [`StepEngine::run_trial`]), if the operation budget is
    /// exhausted while [`StepEngine::panic_on_budget`] is on, if a
    /// machine targets a register out of range, or if the policy grants a
    /// non-pending process / crashes a non-live one.
    pub fn run<T>(mut self, machines: Vec<Box<dyn StepMachine<Output = T> + '_>>) -> SimOutcome<T> {
        let mut policy = self
            .policy
            .take()
            .expect("engine built with StepEngine::reusable — use run_trial");
        self.run_trial(policy.as_mut(), machines)
    }

    /// Runs one trial of `machines` under `policy`, reusing the engine's
    /// scratch buffers (see [`StepEngine::reset`], which this calls
    /// first). The policy is borrowed per trial so seeded policies can be
    /// rebuilt — or deliberately continued — across trials by the caller.
    ///
    /// This is the boxed compatibility path: it allocates result and
    /// step vectors (they are moved into the outcome) and the machines
    /// themselves were boxed by the caller. Hot trial loops use
    /// [`StepEngine::run_pool`] instead, which re-drives pooled machine
    /// storage with zero steady-state allocations.
    ///
    /// # Panics
    ///
    /// As [`StepEngine::run`], except for the missing-policy case.
    pub fn run_trial<T>(
        &mut self,
        policy: &mut dyn Policy,
        mut machines: Vec<Box<dyn StepMachine<Output = T> + '_>>,
    ) -> SimOutcome<T> {
        self.reset();
        let n = machines.len();
        let mut results: Vec<Option<Result<T, Crash>>> = (0..n).map(|_| None).collect();
        let mut steps = vec![0u64; n];
        self.drive_machines(policy, &mut machines, &mut results, &mut steps);

        SimOutcome {
            results: results
                .into_iter()
                .map(|r| r.expect("result recorded"))
                .collect(),
            steps,
            crashed: self.adversary_crashed().collect(),
            budget_crashed: self.budget_crashed().collect(),
            total_ops: self.metrics.total_ops,
            // Hand the outcome the buffer itself — no O(total_ops)
            // copy; `reset` regrows it for the next trial.
            trace: self.record_trace.then(|| {
                self.trace_moved = true;
                std::mem::take(&mut self.trace)
            }),
        }
    }

    /// Runs one trial over a [`MachinePool`]: every machine is reset in
    /// place ([`StepMachine::reset`]) and re-driven, results and step
    /// counts land in the pool's own buffers, and nothing is allocated
    /// once the pool and engine have reached their steady-state
    /// capacities — the allocation-free trial loop that grid sweeps and
    /// exploration walks sit on. Read the trial back through the pool's
    /// accessors, [`StepEngine::metrics`], [`StepEngine::trace`] and the
    /// crash-cause iterators.
    ///
    /// # Panics
    ///
    /// As [`StepEngine::run_trial`]; additionally panics if a pooled
    /// machine does not implement [`StepMachine::reset`].
    pub fn run_pool<M: StepMachine>(&mut self, policy: &mut dyn Policy, pool: &mut MachinePool<M>) {
        self.reset();
        pool.begin_trial();
        let (machines, results, steps) = pool.trial_buffers();
        self.drive_machines(policy, machines, results, steps);
    }

    /// Runs one pooled trial with the **sharded** grant loop: pids are
    /// partitioned into `shards` contiguous ranges, each with its own
    /// incrementally maintained pending set, and the policy is consulted
    /// with one shard's pending operations at a time — up to
    /// 32 (`SHARD_BATCH`) decisions per visit, rotating round-robin over
    /// non-empty shards. This keeps both the policy's decision scan and
    /// the pending-set maintenance cache-local at mega scale (removals
    /// are O(1) swap-removes within a shard instead of O(live) ordered
    /// removes).
    ///
    /// Sharded scheduling is its **own deterministic adversary**: with
    /// `shards == 1` this is exactly [`StepEngine::run_pool`] (same
    /// trace), while `shards > 1` produces a different — equally legal —
    /// interleaving, presented shard by shard in swap-remove order.
    /// Per-shard grant counts land in [`Metrics::shard_ops`] (and
    /// contention in [`Metrics::shard_contention`] when measured).
    ///
    /// # Panics
    ///
    /// As [`StepEngine::run_pool`]; additionally panics if `shards == 0`
    /// or the policy grants a process outside the offered shard.
    pub fn run_pool_sharded<M: StepMachine>(
        &mut self,
        policy: &mut dyn Policy,
        pool: &mut MachinePool<M>,
        shards: usize,
    ) {
        assert!(shards > 0, "need at least one shard");
        if shards == 1 {
            return self.run_pool(policy, pool);
        }
        self.reset();
        pool.begin_trial();
        let (machines, results, steps) = pool.trial_buffers();
        self.drive_bank_sharded(policy, &mut SliceBank(machines), results, steps, shards);
    }

    /// Runs one trial over any [`MachineBank`] — pid-indexed machine
    /// storage such as the struct-of-arrays `MajoritySoa` pool — landing
    /// per-pid results and step counts in the caller's buffers (cleared
    /// and resized here; capacity is reused across trials). The caller
    /// must have re-armed the bank's machines (e.g. via its own
    /// `begin_trial`). `shards == 1` drives the standard incremental
    /// grant loop; `shards > 1` the sharded loop of
    /// [`StepEngine::run_pool_sharded`].
    ///
    /// # Panics
    ///
    /// As [`StepEngine::run_pool_sharded`].
    pub fn run_bank<MB: MachineBank>(
        &mut self,
        policy: &mut dyn Policy,
        bank: &mut MB,
        results: &mut Vec<Option<Result<MB::Output, Crash>>>,
        steps: &mut Vec<u64>,
        shards: usize,
    ) {
        assert!(shards > 0, "need at least one shard");
        self.reset();
        let n = bank.len();
        results.clear();
        results.resize_with(n, || None);
        steps.clear();
        steps.resize(n, 0);
        if shards == 1 {
            self.drive_bank(policy, bank, results, steps);
        } else {
            self.drive_bank_sharded(policy, bank, results, steps, shards);
        }
    }

    /// The last trial's granted schedule, when
    /// [`StepEngine::record_trace`] is on and the trace has not been
    /// moved into a [`SimOutcome`] — pooled trials leave it in place;
    /// after a boxed [`StepEngine::run_trial`] (which moves the buffer
    /// into its outcome) this is `None` until the next trial.
    #[must_use]
    pub fn trace(&self) -> Option<&[PendingOp]> {
        (self.record_trace && !self.trace_moved).then_some(self.trace.as_slice())
    }

    /// Processes the policy crashed in the last trial, in pid order.
    pub fn adversary_crashed(&self) -> impl Iterator<Item = Pid> + '_ {
        self.crashed_of(CrashKind::Adversary)
    }

    /// Processes the operation budget crashed in the last trial, in pid
    /// order (only reachable with [`StepEngine::panic_on_budget`] off).
    pub fn budget_crashed(&self) -> impl Iterator<Item = Pid> + '_ {
        self.crashed_of(CrashKind::Budget)
    }

    fn crashed_of(&self, kind: CrashKind) -> impl Iterator<Item = Pid> + '_ {
        self.crashed
            .iter()
            .enumerate()
            .filter_map(move |(pid, &c)| (c == kind).then_some(Pid(pid)))
    }

    /// Drops the granted-or-crashed process at `pending[idx]` from the
    /// maintained pending set, keeping it sorted by pid.
    fn remove_pending(&mut self, idx: usize) {
        let pid = self.pending.remove(idx).pid;
        self.pending_pos[pid.0] = NOT_PENDING;
        for entry in &self.pending[idx..] {
            self.pending_pos[entry.pid.0] -= 1;
        }
    }

    /// The grant loop over slice-stored machines — a thin adapter onto
    /// [`StepEngine::drive_bank`] (the pre-refactor signature, kept for
    /// the boxed and pooled entry points).
    fn drive_machines<M: StepMachine>(
        &mut self,
        policy: &mut dyn Policy,
        machines: &mut [M],
        results: &mut [Option<Result<M::Output, Crash>>],
        steps: &mut [u64],
    ) {
        self.drive_bank(policy, &mut SliceBank(machines), results, steps);
    }

    /// The grant loop shared by every unsharded trial entry point,
    /// generic over the machine storage: `bank` index `i` is process
    /// `Pid(i)`; a process is live while `results[i]` is `None`.
    ///
    /// The pending set the policy consults is maintained
    /// **incrementally**: it is built once at trial start, and each
    /// decision only touches the granted machine's entry (one
    /// [`MachineBank::peek`]) or removes a finished one — not one peek
    /// per live machine per decision. Reads hand machines a borrow of
    /// the register word (no clone — snapshot scanners exploit this);
    /// the operand word of a write is materialized exactly once, at the
    /// grant.
    fn drive_bank<MB: MachineBank>(
        &mut self,
        policy: &mut dyn Policy,
        bank: &mut MB,
        results: &mut [Option<Result<MB::Output, Crash>>],
        steps: &mut [u64],
    ) {
        let n = bank.len();
        debug_assert!(results.iter().all(Option::is_none));
        self.crashed.clear();
        self.crashed.resize(n, CrashKind::None);
        let mut live_count = n;
        let mut total_ops = 0u64;

        let rebuild = |pending: &mut Vec<PendingOp>,
                       pending_pos: &mut Vec<usize>,
                       bank: &MB,
                       results: &[Option<Result<MB::Output, Crash>>],
                       steps: &[u64]| {
            pending.clear();
            pending_pos.clear();
            pending_pos.resize(bank.len(), NOT_PENDING);
            for pid in 0..bank.len() {
                if results[pid].is_none() {
                    let (kind, reg) = bank.peek(pid);
                    pending_pos[pid] = pending.len();
                    pending.push(PendingOp {
                        pid: Pid(pid),
                        kind,
                        reg,
                        step_index: steps[pid],
                    });
                }
            }
        };
        rebuild(
            &mut self.pending,
            &mut self.pending_pos,
            bank,
            results,
            steps,
        );

        while live_count > 0 {
            if self.pending_rebuild {
                rebuild(
                    &mut self.pending,
                    &mut self.pending_pos,
                    bank,
                    results,
                    steps,
                );
            }
            if total_ops >= self.max_total_ops {
                assert!(
                    !self.panic_on_budget,
                    "simulation exceeded its operation budget of {} ops — livelocked algorithm?",
                    self.max_total_ops
                );
                // Crash the survivors, attributing the crash to the
                // budget so outcomes and metrics can tell it apart from
                // an adversary Action::Crash.
                for (pid, result) in results.iter_mut().enumerate() {
                    if result.is_none() {
                        self.crashed[pid] = CrashKind::Budget;
                        self.metrics.budget_crashes += 1;
                        *result = Some(Err(Crash));
                    }
                }
                break;
            }

            match policy.decide(&self.pending) {
                Action::Grant(pid) => {
                    let idx = self.pending_pos[pid.0];
                    assert!(
                        idx != NOT_PENDING,
                        "policy granted non-pending process {pid}"
                    );
                    let PendingOp { kind, reg, .. } = self.pending[idx];
                    assert!(
                        reg.0 < self.regs.len(),
                        "register {reg} out of range ({} registers)",
                        self.regs.len()
                    );
                    if self.measure_contention {
                        let contention = self.pending.iter().filter(|p| p.reg == reg).count();
                        self.metrics.max_contention = self.metrics.max_contention.max(contention);
                    }
                    self.metrics.ops_per_register[reg.0] += 1;
                    if self.record_trace {
                        self.trace.push(PendingOp {
                            pid,
                            kind,
                            reg,
                            step_index: steps[pid.0],
                        });
                    }
                    steps[pid.0] += 1;
                    total_ops += 1;
                    #[cfg(feature = "check")]
                    if let Some(c) = &mut self.checker {
                        c.observe(pid, kind, reg, total_ops);
                    }
                    // Perform the granted operation in place; reads pass
                    // the machine a borrow of the register word.
                    let poll = match kind {
                        OpKind::Read => {
                            self.metrics.reads += 1;
                            bank.advance(pid.0, self.regs.read(reg))
                        }
                        OpKind::Write => {
                            self.metrics.writes += 1;
                            let word = bank.write_operand(pid.0);
                            self.regs.write(reg, word);
                            bank.advance(pid.0, &NULL_WORD)
                        }
                    };
                    match poll {
                        Poll::Ready(out) => {
                            results[pid.0] = Some(Ok(out));
                            live_count -= 1;
                            if !self.pending_rebuild {
                                self.remove_pending(idx);
                            }
                        }
                        Poll::Pending => {
                            if !self.pending_rebuild {
                                let (kind, reg) = bank.peek(pid.0);
                                self.pending[idx] = PendingOp {
                                    pid,
                                    kind,
                                    reg,
                                    step_index: steps[pid.0],
                                };
                            }
                        }
                    }
                }
                Action::Crash(pid) => {
                    let idx = self.pending_pos[pid.0];
                    assert!(idx != NOT_PENDING, "policy crashed non-live process {pid}");
                    live_count -= 1;
                    self.crashed[pid.0] = CrashKind::Adversary;
                    self.metrics.adversary_crashes += 1;
                    results[pid.0] = Some(Err(Crash));
                    if !self.pending_rebuild {
                        self.remove_pending(idx);
                    }
                }
            }
        }

        self.metrics.trials = 1;
        self.metrics.total_ops = total_ops;
        self.metrics.max_steps = steps.iter().copied().max().unwrap_or(0);
        #[cfg(feature = "check")]
        if let Some(c) = &self.checker {
            self.metrics.checker_ops = c.trial_ops();
            self.metrics.checker_violations = c.trial_violations();
        }
    }

    /// The sharded grant loop (see [`StepEngine::run_pool_sharded`]).
    /// Pids are split into `shards` contiguous ranges of `⌈n/shards⌉`;
    /// each shard owns its pending vector exclusively (`pending_pos`
    /// holds intra-shard indices). Completed or crashed entries are
    /// swap-removed — O(1), deterministic, and the reason a mega-scale
    /// trial's removals don't degrade to O(live) memmoves.
    fn drive_bank_sharded<MB: MachineBank>(
        &mut self,
        policy: &mut dyn Policy,
        bank: &mut MB,
        results: &mut [Option<Result<MB::Output, Crash>>],
        steps: &mut [u64],
        shards: usize,
    ) {
        let n = bank.len();
        debug_assert!(results.iter().all(Option::is_none));
        debug_assert!(shards > 1);
        self.crashed.clear();
        self.crashed.resize(n, CrashKind::None);
        self.metrics.shard_ops.resize(shards, 0);
        if self.measure_contention {
            self.metrics.shard_contention.resize(shards, 0);
        }
        let chunk = n.div_ceil(shards).max(1);
        let mut live_count = n;
        let mut total_ops = 0u64;

        // Take the shard storage out of `self` so the decision loop can
        // borrow a shard immutably while metrics/registers mutate.
        let mut shard_pending = std::mem::take(&mut self.shard_pending);
        shard_pending.resize_with(shards, Vec::new);
        for shard in &mut shard_pending {
            shard.clear();
        }
        self.pending_pos.clear();
        self.pending_pos.resize(n, NOT_PENDING);
        for pid in 0..n {
            let (kind, reg) = bank.peek(pid);
            let shard = &mut shard_pending[pid / chunk];
            self.pending_pos[pid] = shard.len();
            shard.push(PendingOp {
                pid: Pid(pid),
                kind,
                reg,
                step_index: steps[pid],
            });
        }

        let mut cursor = 0usize;
        'trial: while live_count > 0 {
            if shard_pending[cursor].is_empty() {
                cursor = (cursor + 1) % shards;
                continue;
            }
            for _ in 0..SHARD_BATCH {
                let shard = &shard_pending[cursor];
                if shard.is_empty() {
                    break;
                }
                if total_ops >= self.max_total_ops {
                    assert!(
                        !self.panic_on_budget,
                        "simulation exceeded its operation budget of {} ops — livelocked algorithm?",
                        self.max_total_ops
                    );
                    for (pid, result) in results.iter_mut().enumerate() {
                        if result.is_none() {
                            self.crashed[pid] = CrashKind::Budget;
                            self.metrics.budget_crashes += 1;
                            *result = Some(Err(Crash));
                        }
                    }
                    break 'trial;
                }

                // One decision over this shard's pending set only —
                // the batched, cache-local policy consultation.
                let action = policy.decide(shard);
                let (pid, granted) = match action {
                    Action::Grant(pid) => (pid, true),
                    Action::Crash(pid) => (pid, false),
                };
                let idx = self.pending_pos[pid.0];
                assert!(
                    idx != NOT_PENDING && pid.0 / chunk == cursor,
                    "policy chose process {pid} outside the offered shard"
                );
                if granted {
                    let PendingOp { kind, reg, .. } = shard[idx];
                    assert!(
                        reg.0 < self.regs.len(),
                        "register {reg} out of range ({} registers)",
                        self.regs.len()
                    );
                    if self.measure_contention {
                        let contention = shard.iter().filter(|p| p.reg == reg).count();
                        self.metrics.max_contention = self.metrics.max_contention.max(contention);
                        self.metrics.shard_contention[cursor] =
                            self.metrics.shard_contention[cursor].max(contention);
                    }
                    self.metrics.ops_per_register[reg.0] += 1;
                    self.metrics.shard_ops[cursor] += 1;
                    if self.record_trace {
                        self.trace.push(PendingOp {
                            pid,
                            kind,
                            reg,
                            step_index: steps[pid.0],
                        });
                    }
                    steps[pid.0] += 1;
                    total_ops += 1;
                    #[cfg(feature = "check")]
                    if let Some(c) = &mut self.checker {
                        c.observe(pid, kind, reg, total_ops);
                    }
                    let poll = match kind {
                        OpKind::Read => {
                            self.metrics.reads += 1;
                            bank.advance(pid.0, self.regs.read(reg))
                        }
                        OpKind::Write => {
                            self.metrics.writes += 1;
                            let word = bank.write_operand(pid.0);
                            self.regs.write(reg, word);
                            bank.advance(pid.0, &NULL_WORD)
                        }
                    };
                    let shard = &mut shard_pending[cursor];
                    match poll {
                        Poll::Ready(out) => {
                            results[pid.0] = Some(Ok(out));
                            live_count -= 1;
                            shard.swap_remove(idx);
                            self.pending_pos[pid.0] = NOT_PENDING;
                            if idx < shard.len() {
                                self.pending_pos[shard[idx].pid.0] = idx;
                            }
                        }
                        Poll::Pending => {
                            let (kind, reg) = bank.peek(pid.0);
                            shard[idx] = PendingOp {
                                pid,
                                kind,
                                reg,
                                step_index: steps[pid.0],
                            };
                        }
                    }
                } else {
                    live_count -= 1;
                    self.crashed[pid.0] = CrashKind::Adversary;
                    self.metrics.adversary_crashes += 1;
                    results[pid.0] = Some(Err(Crash));
                    let shard = &mut shard_pending[cursor];
                    shard.swap_remove(idx);
                    self.pending_pos[pid.0] = NOT_PENDING;
                    if idx < shard.len() {
                        self.pending_pos[shard[idx].pid.0] = idx;
                    }
                }
            }
            cursor = (cursor + 1) % shards;
        }
        self.shard_pending = shard_pending;

        self.metrics.trials = 1;
        self.metrics.total_ops = total_ops;
        self.metrics.max_steps = steps.iter().copied().max().unwrap_or(0);
        #[cfg(feature = "check")]
        if let Some(c) = &self.checker {
            self.metrics.checker_ops = c.trial_ops();
            self.metrics.checker_violations = c.trial_violations();
        }
    }
}

/// Adapter presenting a `&mut [M]` of step machines as a
/// [`MachineBank`] — the storage shape of the boxed and pooled entry
/// points.
struct SliceBank<'a, M: StepMachine>(&'a mut [M]);

impl<M: StepMachine> MachineBank for SliceBank<'_, M> {
    type Output = M::Output;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn peek(&self, pid: usize) -> (OpKind, exsel_shm::RegId) {
        self.0[pid].peek()
    }

    fn write_operand(&mut self, pid: usize) -> Word {
        let ShmOp::Write(_, word) = self.0[pid].op() else {
            panic!("machine peek/op disagree on pending operation")
        };
        word
    }

    fn advance(&mut self, pid: usize, input: &Word) -> Poll<M::Output> {
        self.0[pid].advance(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CrashStorm, RandomPolicy, RoundRobin, Scripted, Solo};
    use crate::runner::SimBuilder;
    use exsel_shm::{Ctx, RegAlloc, RegId, RegRange, Step};

    /// A machine performing `rounds` write/read pairs on one register.
    struct Hammer {
        reg: RegId,
        id: u64,
        rounds: u64,
        done_ops: u64,
        last_read: Word,
    }

    impl Hammer {
        fn new(reg: RegId, id: u64, rounds: u64) -> Self {
            Hammer {
                reg,
                id,
                rounds,
                done_ops: 0,
                last_read: Word::Null,
            }
        }
    }

    impl StepMachine for Hammer {
        type Output = Word;
        fn op(&self) -> ShmOp {
            if self.done_ops.is_multiple_of(2) {
                ShmOp::Write(self.reg, Word::Int(self.id))
            } else {
                ShmOp::Read(self.reg)
            }
        }
        fn advance(&mut self, input: &Word) -> Poll<Word> {
            if !self.done_ops.is_multiple_of(2) {
                self.last_read = input.clone();
            }
            self.done_ops += 1;
            if self.done_ops == 2 * self.rounds {
                Poll::Ready(self.last_read.clone())
            } else {
                Poll::Pending
            }
        }
    }

    /// The same program as a blocking closure, for backend comparison.
    fn hammer_blocking(bank: RegRange, rounds: u64) -> impl Fn(Ctx<'_>) -> Step<Word> + Sync {
        move |ctx| {
            let mut last = Word::Null;
            for _ in 0..rounds {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                last = ctx.read(bank.get(0))?;
            }
            Ok(last)
        }
    }

    fn hammer_machines(
        bank: RegRange,
        n: usize,
        rounds: u64,
    ) -> Vec<Box<dyn StepMachine<Output = Word>>> {
        (0..n)
            .map(|p| -> Box<dyn StepMachine<Output = Word>> {
                Box::new(Hammer::new(bank.get(0), p as u64, rounds))
            })
            .collect()
    }

    #[test]
    fn round_robin_matches_thread_backed_runner() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let threaded = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
            .record_trace(true)
            .run(3, hammer_blocking(bank, 4));
        let engine = StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
            .record_trace(true)
            .run(hammer_machines(bank, 3, 4));
        assert_eq!(threaded.trace, engine.trace);
        assert_eq!(threaded.steps, engine.steps);
        assert_eq!(
            threaded
                .results
                .iter()
                .map(|r| r.as_ref().unwrap())
                .collect::<Vec<_>>(),
            engine
                .results
                .iter()
                .map(|r| r.as_ref().unwrap())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn random_policy_matches_thread_backed_runner_across_seeds() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        for seed in 0..10 {
            let threaded = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
                .record_trace(true)
                .run(4, hammer_blocking(bank, 3));
            let engine = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
                .record_trace(true)
                .run(hammer_machines(bank, 4, 3));
            assert_eq!(threaded.trace, engine.trace, "seed {seed}");
            assert_eq!(threaded.steps, engine.steps, "seed {seed}");
        }
    }

    #[test]
    fn crashes_are_delivered_and_reported() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let policy = CrashStorm::new(Box::new(RoundRobin::new()), 9, 0.5, 2);
        let outcome =
            StepEngine::new(alloc.total(), Box::new(policy)).run(hammer_machines(bank, 4, 10));
        assert_eq!(outcome.crashed.len(), 2);
        assert!(outcome.budget_crashed.is_empty());
        assert!(!outcome.budget_exhausted());
        for pid in &outcome.crashed {
            assert!(outcome.results[pid.0].is_err());
        }
        assert_eq!(outcome.completed().count(), 2);
    }

    #[test]
    fn solo_runs_hero_first() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let outcome = StepEngine::new(alloc.total(), Box::new(Solo::new(Pid(2))))
            .record_trace(true)
            .run(hammer_machines(bank, 3, 2));
        let trace = outcome.trace.unwrap();
        assert!(trace[..4].iter().all(|op| op.pid == Pid(2)));
    }

    #[test]
    fn scripted_replay_reproduces_engine_runs() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let original = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(99)))
            .record_trace(true)
            .run(hammer_machines(bank, 3, 2));
        let replay = StepEngine::new(
            alloc.total(),
            Box::new(Scripted::from_trace(original.trace.as_ref().unwrap())),
        )
        .record_trace(true)
        .run(hammer_machines(bank, 3, 2));
        assert_eq!(original.trace, replay.trace);
    }

    #[test]
    #[should_panic(expected = "operation budget")]
    fn budget_exhaustion_panics() {
        /// Spins forever.
        struct Spin(RegId);
        impl StepMachine for Spin {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(self.0)
            }
            fn advance(&mut self, _input: &Word) -> Poll<()> {
                Poll::Pending
            }
        }
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
            .max_total_ops(100)
            .run(vec![
                Box::new(Spin(bank.get(0))) as Box<dyn StepMachine<Output = ()>>,
                Box::new(Spin(bank.get(0))),
            ]);
    }

    #[test]
    fn budget_crashes_are_distinguished_from_adversary_crashes() {
        /// Spins forever.
        struct Spin(RegId);
        impl StepMachine for Spin {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(self.0)
            }
            fn advance(&mut self, _input: &Word) -> Poll<()> {
                Poll::Pending
            }
        }
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        // The storm crashes exactly one spinner; the budget then kills
        // the remaining two. The outcome tells the causes apart.
        let policy = CrashStorm::new(Box::new(RoundRobin::new()), 5, 1.0, 1);
        let mut engine = StepEngine::reusable(alloc.total())
            .max_total_ops(50)
            .panic_on_budget(false);
        let mut policy: Box<dyn Policy> = Box::new(policy);
        let outcome = engine.run_trial(
            policy.as_mut(),
            (0..3)
                .map(|_| Box::new(Spin(bank.get(0))) as Box<dyn StepMachine<Output = ()>>)
                .collect(),
        );
        assert!(outcome.budget_exhausted());
        assert_eq!(outcome.crashed.len(), 1);
        assert_eq!(outcome.budget_crashed.len(), 2);
        assert!(outcome
            .crashed
            .iter()
            .all(|pid| !outcome.budget_crashed.contains(pid)));
        assert_eq!(engine.metrics().adversary_crashes, 1);
        assert_eq!(engine.metrics().budget_crashes, 2);
        assert!(outcome.results.iter().all(Result::is_err));
    }

    #[test]
    fn reused_engine_is_trace_identical_to_fresh() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let fresh = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(31)))
            .record_trace(true)
            .run(hammer_machines(bank, 4, 3));
        let mut reused = StepEngine::reusable(alloc.total()).record_trace(true);
        // Dirty the scratch with unrelated trials first.
        for seed in 0..3 {
            let mut warm: Box<dyn Policy> = Box::new(RandomPolicy::new(seed));
            reused.run_trial(warm.as_mut(), hammer_machines(bank, 4, 3));
        }
        let mut policy: Box<dyn Policy> = Box::new(RandomPolicy::new(31));
        let again = reused.run_trial(policy.as_mut(), hammer_machines(bank, 4, 3));
        assert_eq!(fresh.trace, again.trace);
        assert_eq!(fresh.steps, again.steps);
        assert_eq!(fresh.total_ops, again.total_ops);
    }

    #[test]
    fn incremental_pending_is_trace_identical_to_rebuild() {
        // The maintained pending set must present policies with exactly
        // the view the rebuild-per-decision reference loop builds —
        // including under crashes and completions.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        for seed in 0..12u64 {
            let reference = StepEngine::new(
                alloc.total(),
                Box::new(CrashStorm::new(
                    Box::new(RandomPolicy::new(seed)),
                    !seed,
                    0.1,
                    2,
                )),
            )
            .pending_rebuild(true)
            .record_trace(true)
            .run(hammer_machines(bank, 5, 4));
            let incremental = StepEngine::new(
                alloc.total(),
                Box::new(CrashStorm::new(
                    Box::new(RandomPolicy::new(seed)),
                    !seed,
                    0.1,
                    2,
                )),
            )
            .record_trace(true)
            .run(hammer_machines(bank, 5, 4));
            assert_eq!(reference.trace, incremental.trace, "seed {seed}");
            assert_eq!(reference.steps, incremental.steps, "seed {seed}");
            assert_eq!(reference.crashed, incremental.crashed, "seed {seed}");
        }
    }

    #[test]
    fn metrics_count_the_grant_loop() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let mut engine = StepEngine::reusable(alloc.total()).measure_contention(true);
        let mut policy: Box<dyn Policy> = Box::new(RoundRobin::new());
        let outcome = engine.run_trial(policy.as_mut(), hammer_machines(bank, 3, 2));
        let m = engine.metrics();
        // 3 machines × 2 rounds × (1 write + 1 read).
        assert_eq!(m.total_ops, 12);
        assert_eq!(m.reads, 6);
        assert_eq!(m.writes, 6);
        assert_eq!(m.max_steps, 4);
        assert_eq!(m.ops_per_register, vec![12]);
        assert_eq!(m.hottest_register(), Some((0, 12)));
        // Everyone always contends on the single register.
        assert_eq!(m.max_contention, 3);
        assert_eq!(m.adversary_crashes, 0);
        assert_eq!(outcome.total_ops, 12);

        // Merging two trials' metrics adds counters and maxes maxima.
        let mut agg = Metrics::default();
        agg.merge(m);
        let mut policy: Box<dyn Policy> = Box::new(RoundRobin::new());
        engine.run_trial(policy.as_mut(), hammer_machines(bank, 2, 1));
        agg.merge(engine.metrics());
        assert_eq!(agg.trials, 2);
        assert_eq!(agg.total_ops, 12 + 4);
        assert_eq!(agg.max_contention, 3);
        assert_eq!(agg.ops_per_register, vec![16]);
    }

    #[test]
    fn set_registers_resizes_the_bank_between_trials() {
        let mut engine = StepEngine::reusable(1);
        struct Touch(RegId);
        impl StepMachine for Touch {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(self.0)
            }
            fn advance(&mut self, _input: &Word) -> Poll<()> {
                Poll::Ready(())
            }
        }
        let mut policy: Box<dyn Policy> = Box::new(RoundRobin::new());
        engine.run_trial(
            policy.as_mut(),
            vec![Box::new(Touch(RegId(0))) as Box<dyn StepMachine<Output = ()>>],
        );
        engine.set_registers(8);
        let outcome = engine.run_trial(
            policy.as_mut(),
            vec![Box::new(Touch(RegId(7))) as Box<dyn StepMachine<Output = ()>>],
        );
        assert!(outcome.results[0].is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_is_rejected() {
        struct Bad;
        impl StepMachine for Bad {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(RegId(5))
            }
            fn advance(&mut self, _input: &Word) -> Poll<()> {
                Poll::Ready(())
            }
        }
        StepEngine::new(1, Box::new(RoundRobin::new()))
            .run(vec![Box::new(Bad) as Box<dyn StepMachine<Output = ()>>]);
    }

    #[test]
    fn empty_machine_set_returns_immediately() {
        let outcome = StepEngine::new(4, Box::new(RoundRobin::new()))
            .run(Vec::<Box<dyn StepMachine<Output = ()>>>::new());
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_ops, 0);
    }

    #[test]
    fn spawns_no_threads_for_thousands_of_processes() {
        // 2000 simulated processes, one shared register: on the threaded
        // backend this would need 2000 stacks; here it is a vector walk.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let outcome = StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
            .run(hammer_machines(bank, 2000, 2));
        assert_eq!(outcome.results.len(), 2000);
        assert_eq!(outcome.total_ops, 2000 * 4);
        assert!(outcome.results.iter().all(Result::is_ok));
    }
}
