//! The single-threaded step-machine execution engine.
//!
//! [`StepEngine`] runs a set of [`StepMachine`]s under a [`Policy`] with
//! the exact lock-step semantics of the thread-backed scheduler
//! ([`crate::SimMemory`]/[`crate::SimBuilder`]) but **zero OS threads,
//! zero locks and zero parked stacks**: every live machine always exposes
//! its pending operation (`op()` is pure), so the policy can be consulted
//! directly and the chosen operation applied in place. Because the
//! blocking algorithm APIs are `drive` adapters over the same machines,
//! the two backends observe identical operation sequences — the same
//! policy (and seed) produces the same trace, steps and results on both.
//!
//! Use the thread-backed [`crate::SimBuilder`] for closure-style process
//! bodies; use `StepEngine` whenever the algorithms expose step machines
//! and you care about speed or scale — exhaustive exploration, adversary
//! searches, crash storms over thousands of processes.
//!
//! ```
//! use exsel_shm::{Poll, RegAlloc, ShmOp, StepMachine, Word};
//! use exsel_sim::{policy::RoundRobin, StepEngine};
//!
//! /// Write own id, then read the register back.
//! struct WriteThenRead {
//!     reg: exsel_shm::RegId,
//!     id: u64,
//!     wrote: bool,
//! }
//! impl StepMachine for WriteThenRead {
//!     type Output = Word;
//!     fn op(&self) -> ShmOp {
//!         if self.wrote { ShmOp::Read(self.reg) } else { ShmOp::Write(self.reg, Word::Int(self.id)) }
//!     }
//!     fn advance(&mut self, input: Word) -> Poll<Word> {
//!         if self.wrote { Poll::Ready(input) } else { self.wrote = true; Poll::Pending }
//!     }
//! }
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! let outcome = StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
//!     .run((0..3).map(|p| -> Box<dyn StepMachine<Output = Word>> {
//!         Box::new(WriteThenRead { reg: bank.get(0), id: p, wrote: false })
//!     }).collect());
//! // Round-robin: W0 W1 W2 R0 R1 R2 — everyone reads process 2's write.
//! for r in &outcome.results {
//!     assert_eq!(*r.as_ref().unwrap(), Word::Int(2));
//! }
//! assert_eq!(outcome.steps, vec![2, 2, 2]);
//! ```

use exsel_shm::{Crash, Pid, Poll, ShmOp, StepMachine, Word};

use crate::policy::{Action, PendingOp, Policy};
use crate::runner::SimOutcome;

/// Builder/driver for one engine execution; see the module docs.
pub struct StepEngine {
    num_registers: usize,
    policy: Box<dyn Policy>,
    max_total_ops: u64,
    record_trace: bool,
}

impl StepEngine {
    /// A new engine over `num_registers` registers scheduled by `policy`.
    #[must_use]
    pub fn new(num_registers: usize, policy: Box<dyn Policy>) -> Self {
        StepEngine {
            num_registers,
            policy,
            max_total_ops: 50_000_000,
            record_trace: false,
        }
    }

    /// Overrides the total-operation safety valve (default 50 million).
    /// Exceeding it makes [`StepEngine::run`] panic with a diagnostic
    /// instead of looping forever.
    #[must_use]
    pub fn max_total_ops(mut self, ops: u64) -> Self {
        self.max_total_ops = ops;
        self
    }

    /// Records the granted schedule in [`SimOutcome::trace`].
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Runs `machines` (machine `i` is process `Pid(i)`) to quiescence
    /// and collects the per-process results. Completed machines yield
    /// `Ok(output)`; machines crashed by the policy yield `Err(Crash)`.
    ///
    /// # Panics
    ///
    /// Panics if the operation budget is exhausted (a livelocked
    /// algorithm — everything in this stack is supposed to be wait-free
    /// or non-blocking), if a machine targets a register out of range, or
    /// if the policy grants a non-pending process / crashes a non-live
    /// one.
    pub fn run<T>(mut self, machines: Vec<Box<dyn StepMachine<Output = T> + '_>>) -> SimOutcome<T> {
        let n = machines.len();
        let mut live: Vec<Option<Box<dyn StepMachine<Output = T> + '_>>> =
            machines.into_iter().map(Some).collect();
        let mut live_count = n;
        let mut results: Vec<Option<Result<T, Crash>>> = (0..n).map(|_| None).collect();
        let mut regs = vec![Word::Null; self.num_registers];
        let mut steps = vec![0u64; n];
        // Indexed by pid (reported sorted, matching the thread scheduler).
        let mut crashed = vec![false; n];
        let mut trace = self.record_trace.then(Vec::new);
        let mut total_ops = 0u64;
        let mut pending: Vec<PendingOp> = Vec::with_capacity(n);

        while live_count > 0 {
            assert!(
                total_ops < self.max_total_ops,
                "simulation exceeded its operation budget of {} ops — livelocked algorithm?",
                self.max_total_ops
            );

            pending.clear();
            for (pid, slot) in live.iter().enumerate() {
                if let Some(machine) = slot {
                    let op = machine.op();
                    pending.push(PendingOp {
                        pid: Pid(pid),
                        kind: op.kind(),
                        reg: op.reg(),
                        step_index: steps[pid],
                    });
                }
            }

            match self.policy.decide(&pending) {
                Action::Grant(pid) => {
                    let machine = live[pid.0]
                        .as_mut()
                        .unwrap_or_else(|| panic!("policy granted non-pending process {pid}"));
                    let op = machine.op();
                    let (kind, reg) = (op.kind(), op.reg());
                    assert!(
                        reg.0 < regs.len(),
                        "register {reg} out of range ({} registers)",
                        regs.len()
                    );
                    // Perform the granted operation in place.
                    let input = match op {
                        ShmOp::Read(_) => regs[reg.0].clone(),
                        ShmOp::Write(_, word) => {
                            regs[reg.0] = word;
                            Word::Null
                        }
                    };
                    if let Some(trace) = &mut trace {
                        trace.push(PendingOp {
                            pid,
                            kind,
                            reg,
                            step_index: steps[pid.0],
                        });
                    }
                    steps[pid.0] += 1;
                    total_ops += 1;
                    if let Poll::Ready(out) = machine.advance(input) {
                        results[pid.0] = Some(Ok(out));
                        live[pid.0] = None;
                        live_count -= 1;
                    }
                }
                Action::Crash(pid) => {
                    assert!(
                        live[pid.0].is_some(),
                        "policy crashed non-live process {pid}"
                    );
                    live[pid.0] = None;
                    live_count -= 1;
                    crashed[pid.0] = true;
                    results[pid.0] = Some(Err(Crash));
                }
            }
        }

        SimOutcome {
            results: results
                .into_iter()
                .map(|r| r.expect("result recorded"))
                .collect(),
            steps,
            crashed: crashed
                .iter()
                .enumerate()
                .filter_map(|(pid, &c)| c.then_some(Pid(pid)))
                .collect(),
            total_ops,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CrashStorm, RandomPolicy, RoundRobin, Scripted, Solo};
    use crate::runner::SimBuilder;
    use exsel_shm::{Ctx, RegAlloc, RegId, RegRange, Step};

    /// A machine performing `rounds` write/read pairs on one register.
    struct Hammer {
        reg: RegId,
        id: u64,
        rounds: u64,
        done_ops: u64,
        last_read: Word,
    }

    impl Hammer {
        fn new(reg: RegId, id: u64, rounds: u64) -> Self {
            Hammer {
                reg,
                id,
                rounds,
                done_ops: 0,
                last_read: Word::Null,
            }
        }
    }

    impl StepMachine for Hammer {
        type Output = Word;
        fn op(&self) -> ShmOp {
            if self.done_ops.is_multiple_of(2) {
                ShmOp::Write(self.reg, Word::Int(self.id))
            } else {
                ShmOp::Read(self.reg)
            }
        }
        fn advance(&mut self, input: Word) -> Poll<Word> {
            if !self.done_ops.is_multiple_of(2) {
                self.last_read = input;
            }
            self.done_ops += 1;
            if self.done_ops == 2 * self.rounds {
                Poll::Ready(self.last_read.clone())
            } else {
                Poll::Pending
            }
        }
    }

    /// The same program as a blocking closure, for backend comparison.
    fn hammer_blocking(bank: RegRange, rounds: u64) -> impl Fn(Ctx<'_>) -> Step<Word> + Sync {
        move |ctx| {
            let mut last = Word::Null;
            for _ in 0..rounds {
                ctx.write(bank.get(0), ctx.pid().0 as u64)?;
                last = ctx.read(bank.get(0))?;
            }
            Ok(last)
        }
    }

    fn hammer_machines(
        bank: RegRange,
        n: usize,
        rounds: u64,
    ) -> Vec<Box<dyn StepMachine<Output = Word>>> {
        (0..n)
            .map(|p| -> Box<dyn StepMachine<Output = Word>> {
                Box::new(Hammer::new(bank.get(0), p as u64, rounds))
            })
            .collect()
    }

    #[test]
    fn round_robin_matches_thread_backed_runner() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let threaded = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
            .record_trace(true)
            .run(3, hammer_blocking(bank, 4));
        let engine = StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
            .record_trace(true)
            .run(hammer_machines(bank, 3, 4));
        assert_eq!(threaded.trace, engine.trace);
        assert_eq!(threaded.steps, engine.steps);
        assert_eq!(
            threaded
                .results
                .iter()
                .map(|r| r.clone().unwrap())
                .collect::<Vec<_>>(),
            engine
                .results
                .iter()
                .map(|r| r.clone().unwrap())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn random_policy_matches_thread_backed_runner_across_seeds() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        for seed in 0..10 {
            let threaded = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
                .record_trace(true)
                .run(4, hammer_blocking(bank, 3));
            let engine = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
                .record_trace(true)
                .run(hammer_machines(bank, 4, 3));
            assert_eq!(threaded.trace, engine.trace, "seed {seed}");
            assert_eq!(threaded.steps, engine.steps, "seed {seed}");
        }
    }

    #[test]
    fn crashes_are_delivered_and_reported() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let policy = CrashStorm::new(Box::new(RoundRobin::new()), 9, 0.5, 2);
        let outcome =
            StepEngine::new(alloc.total(), Box::new(policy)).run(hammer_machines(bank, 4, 10));
        assert_eq!(outcome.crashed.len(), 2);
        for pid in &outcome.crashed {
            assert!(outcome.results[pid.0].is_err());
        }
        assert_eq!(outcome.completed().count(), 2);
    }

    #[test]
    fn solo_runs_hero_first() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let outcome = StepEngine::new(alloc.total(), Box::new(Solo::new(Pid(2))))
            .record_trace(true)
            .run(hammer_machines(bank, 3, 2));
        let trace = outcome.trace.unwrap();
        assert!(trace[..4].iter().all(|op| op.pid == Pid(2)));
    }

    #[test]
    fn scripted_replay_reproduces_engine_runs() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let original = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(99)))
            .record_trace(true)
            .run(hammer_machines(bank, 3, 2));
        let replay = StepEngine::new(
            alloc.total(),
            Box::new(Scripted::from_trace(original.trace.as_ref().unwrap())),
        )
        .record_trace(true)
        .run(hammer_machines(bank, 3, 2));
        assert_eq!(original.trace, replay.trace);
    }

    #[test]
    #[should_panic(expected = "operation budget")]
    fn budget_exhaustion_panics() {
        /// Spins forever.
        struct Spin(RegId);
        impl StepMachine for Spin {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(self.0)
            }
            fn advance(&mut self, _input: Word) -> Poll<()> {
                Poll::Pending
            }
        }
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
            .max_total_ops(100)
            .run(vec![
                Box::new(Spin(bank.get(0))) as Box<dyn StepMachine<Output = ()>>,
                Box::new(Spin(bank.get(0))),
            ]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_is_rejected() {
        struct Bad;
        impl StepMachine for Bad {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(RegId(5))
            }
            fn advance(&mut self, _input: Word) -> Poll<()> {
                Poll::Ready(())
            }
        }
        StepEngine::new(1, Box::new(RoundRobin::new()))
            .run(vec![Box::new(Bad) as Box<dyn StepMachine<Output = ()>>]);
    }

    #[test]
    fn empty_machine_set_returns_immediately() {
        let outcome = StepEngine::new(4, Box::new(RoundRobin::new()))
            .run(Vec::<Box<dyn StepMachine<Output = ()>>>::new());
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_ops, 0);
    }

    #[test]
    fn spawns_no_threads_for_thousands_of_processes() {
        // 2000 simulated processes, one shared register: on the threaded
        // backend this would need 2000 stacks; here it is a vector walk.
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        let outcome = StepEngine::new(alloc.total(), Box::new(RoundRobin::new()))
            .run(hammer_machines(bank, 2000, 2));
        assert_eq!(outcome.results.len(), 2000);
        assert_eq!(outcome.total_ops, 2000 * 4);
        assert!(outcome.results.iter().all(Result::is_ok));
    }
}
