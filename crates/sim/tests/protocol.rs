//! Direct tests of the scheduler protocol: grant ordering, crash
//! delivery, finish handling, register bounds, and the lock-step
//! guarantee itself.

use exsel_shm::{Pid, RegAlloc, RegId, Word};
use exsel_sim::policy::{Action, PendingOp, Policy, RandomPolicy, RoundRobin};
use exsel_sim::{trace_view, SimBuilder};

#[test]
fn lock_step_policy_sees_all_live_processes() {
    // A policy that records the pending-set sizes it is offered: in
    // lock-step they must always equal the number of live processes.
    struct Recorder {
        sizes: std::sync::Arc<std::sync::Mutex<Vec<usize>>>,
        inner: RoundRobin,
    }
    impl Policy for Recorder {
        fn decide(&mut self, pending: &[PendingOp]) -> Action {
            self.sizes.lock().unwrap().push(pending.len());
            self.inner.decide(pending)
        }
    }
    let sizes = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut alloc = RegAlloc::new();
    let bank = alloc.reserve(1);
    let n = 4;
    SimBuilder::new(
        alloc.total(),
        Box::new(Recorder {
            sizes: sizes.clone(),
            inner: RoundRobin::new(),
        }),
    )
    .run(n, |ctx| {
        for _ in 0..3 {
            ctx.read(bank.get(0))?;
        }
        Ok(())
    });
    let sizes = sizes.lock().unwrap();
    assert!(!sizes.is_empty());
    // Every decision happened with all live processes pending. Since
    // processes finish at different times, sizes are non-increasing and
    // start at n.
    assert_eq!(sizes[0], n);
    for pair in sizes.windows(2) {
        assert!(pair[1] <= pair[0], "pending set grew: {sizes:?}");
    }
}

#[test]
fn trace_reflects_granted_ops_exactly() {
    let mut alloc = RegAlloc::new();
    let bank = alloc.reserve(2);
    let outcome = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new()))
        .record_trace(true)
        .run(2, |ctx| {
            ctx.write(bank.get(ctx.pid().0), 1u64)?;
            ctx.read(bank.get(1 - ctx.pid().0))
        });
    let trace = outcome.trace.unwrap();
    assert_eq!(trace.len() as u64, outcome.total_ops);
    assert_eq!(trace.len(), 4);
    // Round-robin order: p0 W, p1 W, p0 R, p1 R.
    let pids: Vec<usize> = trace.iter().map(|op| op.pid.0).collect();
    assert_eq!(pids, vec![0, 1, 0, 1]);
    // The renderer digests it.
    let view = trace_view::render(&trace);
    assert_eq!(view.lines().count(), 2);
    assert!(trace_view::summarize(&trace).contains("4 ops"));
}

#[test]
fn crash_during_wait_unblocks_with_error() {
    // A policy that crashes p1 at its second operation while p0 spins.
    struct CrashSecond {
        inner: RoundRobin,
    }
    impl Policy for CrashSecond {
        fn decide(&mut self, pending: &[PendingOp]) -> Action {
            if let Some(op) = pending.iter().find(|op| op.pid == Pid(1)) {
                if op.step_index == 1 {
                    return Action::Crash(Pid(1));
                }
            }
            self.inner.decide(pending)
        }
    }
    let mut alloc = RegAlloc::new();
    let bank = alloc.reserve(1);
    let outcome = SimBuilder::new(
        alloc.total(),
        Box::new(CrashSecond {
            inner: RoundRobin::new(),
        }),
    )
    .run(2, |ctx| {
        for i in 0..5u64 {
            ctx.write(bank.get(0), i)?;
        }
        Ok(())
    });
    assert!(outcome.results[0].is_ok());
    assert!(outcome.results[1].is_err());
    assert_eq!(outcome.steps[1], 1, "crashed exactly before its 2nd op");
    assert_eq!(outcome.crashed, vec![Pid(1)]);
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_register_is_rejected() {
    SimBuilder::new(1, Box::new(RoundRobin::new())).run(1, |ctx| ctx.read(RegId(5)));
}

#[test]
fn memory_trait_surface() {
    let mut alloc = RegAlloc::new();
    let bank = alloc.reserve(3);
    let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(1))).run(2, |ctx| {
        ctx.write(bank.get(0), Word::Pair(1, 2))?;
        assert_eq!(ctx.memory().num_registers(), 3);
        assert_eq!(ctx.memory().num_processes(), 2);
        ctx.read(bank.get(0))
    });
    for r in outcome.results {
        assert!(r.unwrap().as_pair().is_some());
    }
}

#[test]
fn zero_op_processes_finish_cleanly() {
    // Processes that never touch shared memory must not wedge lock-step.
    let outcome = SimBuilder::new(1, Box::new(RoundRobin::new())).run(3, |ctx| {
        if ctx.pid().0 == 1 {
            ctx.read(RegId(0))?;
        }
        Ok(ctx.pid().0)
    });
    assert_eq!(outcome.results.len(), 3);
    assert!(outcome.results.iter().all(Result::is_ok));
    assert_eq!(outcome.total_ops, 1);
}

#[test]
fn steps_accounting_matches_ops() {
    let mut alloc = RegAlloc::new();
    let bank = alloc.reserve(1);
    let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(3))).run(3, |ctx| {
        for _ in 0..ctx.pid().0 + 2 {
            ctx.read(bank.get(0))?;
        }
        Ok(())
    });
    assert_eq!(outcome.steps, vec![2, 3, 4]);
    assert_eq!(outcome.total_ops, 9);
    assert_eq!(outcome.max_steps(), 4);
}
