//! The §5 stack under the deterministic simulator: exclusivity,
//! persistence and liveness across many adversarial seeds and crash
//! patterns — the schedules real threads never produce.

use std::collections::BTreeSet;

use exsel_shm::Pid;
use exsel_sim::policy::{CrashStorm, RandomPolicy, RoundRobin, Solo};
use exsel_sim::SimBuilder;
use exsel_unbounded::{AltruisticDeposit, SelfishDeposit, UnboundedNaming};

#[test]
fn naming_exclusive_under_crash_storms() {
    let n = 3;
    for seed in 0..10 {
        let mut alloc = exsel_shm::RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, n);
        let policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), seed, 0.01, n - 1);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(n, |ctx| {
            let mut st = naming.namer_state();
            let mut names = Vec::new();
            for _ in 0..5 {
                names.push(naming.acquire(ctx, &mut st)?);
            }
            Ok(names)
        });
        // Exclusivity must hold across everything that was acquired,
        // including by processes that crashed later.
        let all: Vec<u64> = outcome
            .results
            .iter()
            .flat_map(|r| r.as_ref().ok().cloned().unwrap_or_default())
            .collect();
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "seed {seed}: duplicate names {all:?}");
    }
}

#[test]
fn altruistic_deposit_wait_free_under_solo_schedule() {
    // The hero is scheduled to completion while everyone else is frozen
    // (not crashed — the hardest wait-freedom case).
    let n = 3;
    let mut alloc = exsel_shm::RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, n, 128);
    let outcome = SimBuilder::new(alloc.total(), Box::new(Solo::new(Pid(1)))).run(n, |ctx| {
        let mut st = repo.depositor_state(ctx.pid());
        repo.deposit(ctx, &mut st, ctx.pid().0 as u64)
    });
    assert!(
        outcome.results[1].is_ok(),
        "wait-freedom violated: solo-scheduled altruistic deposit did not complete"
    );
}

#[test]
fn selfish_deposit_survivor_completes_under_storm() {
    let n = 4;
    for seed in 0..6 {
        let mut alloc = exsel_shm::RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, n, 256);
        let policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), !seed, 0.01, n - 1)
            .protect([Pid(0)]);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(n, |ctx| {
            let mut st = repo.depositor_state();
            let mut regs = Vec::new();
            for i in 0..4u64 {
                regs.push(repo.deposit(ctx, &mut st, i)?);
            }
            Ok(regs)
        });
        assert!(outcome.results[0].is_ok(), "seed {seed}: survivor blocked");
        let all: Vec<u64> = outcome
            .results
            .iter()
            .flat_map(|r| r.as_ref().ok().cloned().unwrap_or_default())
            .collect();
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "seed {seed}: register reuse");
    }
}

#[test]
fn mixed_servers_and_depositors() {
    // Some processes only serve (no deposits of their own); depositors
    // must be able to live entirely off served names.
    let n = 4;
    let mut alloc = exsel_shm::RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, n, 256);
    let outcome = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new())).run(n, |ctx| {
        let mut st = repo.depositor_state(ctx.pid());
        if ctx.pid().0 < 2 {
            // Pure helpers.
            repo.serve(ctx, &mut st, 600)?;
            Ok(Vec::new())
        } else {
            let mut regs = Vec::new();
            for i in 0..3u64 {
                regs.push(repo.deposit(ctx, &mut st, i)?);
            }
            Ok(regs)
        }
    });
    let all: Vec<u64> = outcome.completed().flatten().copied().collect();
    let set: BTreeSet<u64> = all.iter().copied().collect();
    assert_eq!(all.len(), 6);
    assert_eq!(set.len(), all.len());
}

#[test]
fn fresh_lists_agree_across_processes() {
    // Both depositors start from the same initial list; the first one to
    // deposit solo takes register 1, the second (running after) takes a
    // different one after verifying.
    let n = 2;
    let mut alloc = exsel_shm::RegAlloc::new();
    let repo = SelfishDeposit::new(&mut alloc, n, 64);
    let outcome = SimBuilder::new(alloc.total(), Box::new(Solo::new(Pid(0)))).run(n, |ctx| {
        let mut st = repo.depositor_state();
        repo.deposit(ctx, &mut st, 42)
    });
    let r0 = *outcome.results[0].as_ref().unwrap();
    let r1 = *outcome.results[1].as_ref().unwrap();
    assert_eq!(r0, 1, "solo-first depositor takes the smallest register");
    assert_ne!(r0, r1);
}
