//! Property-based tests of the repository layer: exclusiveness and
//! persistence under arbitrary contention, schedules and crash budgets.

use std::collections::BTreeSet;

use exsel_shm::{Pid, RegAlloc};
use exsel_sim::policy::{CrashStorm, RandomPolicy};
use exsel_sim::SimBuilder;
use exsel_unbounded::{SelfishDeposit, UnboundedNaming};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Selfish deposits: registers exclusive across arbitrary n, per-
    /// process deposit counts, schedules and crashes; acknowledged
    /// deposits always persisted.
    #[test]
    fn selfish_exclusive_and_persistent(
        n in 2usize..5,
        per in 1u64..5,
        seed in any::<u64>(),
        crashes in 0usize..3,
    ) {
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, n, 64 * n);
        let policy = CrashStorm::new(
            Box::new(RandomPolicy::new(seed)),
            !seed,
            0.01,
            crashes.min(n - 1),
        ).protect([Pid(0)]);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(n, |ctx| {
            let mut st = repo.depositor_state();
            let mut acks = Vec::new();
            for i in 0..per {
                acks.push((repo.deposit(ctx, &mut st, ctx.pid().0 as u64 * 100 + i)?,
                           ctx.pid().0 as u64 * 100 + i));
            }
            Ok(acks)
        });
        let acked: Vec<(u64, u64)> = outcome
            .results
            .iter()
            .flat_map(|r| r.as_ref().ok().cloned().unwrap_or_default())
            .collect();
        let regs: BTreeSet<u64> = acked.iter().map(|&(r, _)| r).collect();
        prop_assert_eq!(regs.len(), acked.len(), "register reused");
        // The protected process completed everything.
        prop_assert!(outcome.results[0].is_ok());
    }

    /// Unbounded naming: exclusivity for arbitrary parameters; a solo
    /// claimant takes consecutive integers.
    #[test]
    fn naming_exclusive(
        n in 1usize..5,
        per in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, n);
        let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .run(n, |ctx| {
                let mut st = naming.namer_state();
                let mut names = Vec::new();
                for _ in 0..per {
                    names.push(naming.acquire(ctx, &mut st)?);
                }
                Ok(names)
            });
        let all: Vec<u64> = outcome.completed().flatten().copied().collect();
        let set: BTreeSet<u64> = all.iter().copied().collect();
        prop_assert_eq!(set.len(), all.len(), "duplicate integer");
        prop_assert_eq!(all.len(), n * per);
        if n == 1 {
            let expect: Vec<u64> = (1..=per as u64).collect();
            prop_assert_eq!(all, expect, "solo claims must be consecutive");
        }
    }
}
