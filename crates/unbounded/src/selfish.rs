//! `Selfish-Deposit` — Theorem 8: a non-blocking repository wasting at
//! most `n−1` dedicated registers.

use exsel_shm::{Ctx, RegAlloc, Snapshot, Step, Word};

use crate::DepositArena;

/// The non-blocking repository.
///
/// Each process `p` keeps a sorted local list `L_p` of `2n−1` candidate
/// register indices (initially `1..2n−1`) and a fresh-index pointer `A_p`
/// (initially `2n`). To deposit, `p` publishes a candidate `i` in its
/// component of an atomic-snapshot object `W` and scans:
///
/// * if `i` is **unique** in the snapshot, `p` reads `R_i`: empty means
///   `p` deposits there (the write is safe — any rival for `i` would have
///   held `i` in `W` through its own check, contradicting uniqueness);
///   nonempty means the list is stale, so `p` *verifies* it, pruning
///   occupied entries and refilling from `A_p`;
/// * otherwise `p` *chooses by rank*: with `r` its rank among the
///   processes whose published value lies on `L_p`, it re-proposes the
///   `r`-th entry of `L_p` not present in the snapshot — distinct ranks
///   give distinct proposals, so once lists stabilize everyone separates.
#[derive(Clone, Debug)]
pub struct SelfishDeposit {
    n: usize,
    w: Snapshot,
    arena: DepositArena,
}

/// Per-process local state: the candidate list `L_p` (sorted ascending)
/// and the fresh pointer `A_p`.
#[derive(Clone, Debug)]
pub struct DepositorState {
    list: Vec<u64>,
    next_fresh: u64,
}

impl DepositorState {
    /// The current candidate list (test/experiment introspection).
    #[must_use]
    pub fn list(&self) -> &[u64] {
        &self.list
    }

    /// The fresh pointer `A_p`.
    #[must_use]
    pub fn next_fresh(&self) -> u64 {
        self.next_fresh
    }
}

impl SelfishDeposit {
    /// Builds a repository for `n` processes with `arena_capacity`
    /// dedicated registers (size it beyond the run's total deposits plus
    /// `2n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the arena cannot hold the initial lists
    /// (`arena_capacity < 2n`).
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n: usize, arena_capacity: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(
            arena_capacity >= 2 * n,
            "arena must hold at least the initial candidate lists (2n)"
        );
        SelfishDeposit {
            n,
            w: Snapshot::new(alloc, n),
            arena: DepositArena::new(alloc, arena_capacity),
        }
    }

    /// Initial local state for a depositor.
    #[must_use]
    pub fn depositor_state(&self) -> DepositorState {
        DepositorState {
            list: (1..=2 * self.n as u64 - 1).collect(),
            next_fresh: 2 * self.n as u64,
        }
    }

    /// The dedicated registers.
    #[must_use]
    pub fn arena(&self) -> &DepositArena {
        &self.arena
    }

    /// System size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Deposits `value`, returning the index of the register it now
    /// permanently occupies. Non-blocking: under contention an individual
    /// call may take many steps, but some process always completes.
    ///
    /// The caller's `ctx.pid()` indexes its snapshot component; each
    /// process must use a stable distinct pid in `[0, n)`.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation
    /// (the value may or may not have been deposited, per the spec).
    ///
    /// # Panics
    ///
    /// Panics if the arena runs out of capacity.
    pub fn deposit(&self, ctx: Ctx<'_>, st: &mut DepositorState, value: u64) -> Step<u64> {
        let slot = ctx.pid().0;
        assert!(slot < self.n, "pid beyond system size");
        let mut candidate = st.list[0];
        loop {
            self.w.update(ctx, slot, Word::Int(candidate))?;
            let view = self.w.scan(ctx)?;
            if Self::is_unique(&view, slot, candidate) {
                if self.arena.read(ctx, candidate)?.is_null() {
                    self.arena.write(ctx, candidate, value)?;
                    // The register is consumed: prune it locally and
                    // refill the list from the fresh frontier.
                    st.list.retain(|&x| x != candidate);
                    self.refill(ctx, st)?;
                    return Ok(candidate);
                }
                // Someone deposited at our candidate since we listed it:
                // the whole list may be stale — verify it.
                self.verify_list(ctx, st)?;
                candidate = st.list[0];
            } else {
                candidate = Self::choose_by_rank(&view, slot, &st.list);
            }
        }
    }

    /// Whether `candidate` appears in no snapshot component other than
    /// `slot`.
    fn is_unique(view: &[Word], slot: usize, candidate: u64) -> bool {
        view.iter()
            .enumerate()
            .all(|(q, w)| q == slot || w.as_int() != Some(candidate))
    }

    /// The paper's *choosing by rank*: rank `r` of this process among the
    /// component indices whose published value is on our list, then the
    /// `r`-th list entry not present in the snapshot.
    fn choose_by_rank(view: &[Word], slot: usize, list: &[u64]) -> u64 {
        let on_list = |v: u64| list.binary_search(&v).is_ok();
        let rank = view
            .iter()
            .enumerate()
            .take(slot + 1)
            .filter(|(_, w)| w.as_int().is_some_and(on_list))
            .count();
        debug_assert!(rank >= 1, "own published entry is on the list");
        let published: Vec<u64> = view.iter().filter_map(Word::as_int).collect();
        list.iter()
            .copied()
            .filter(|v| !published.contains(v))
            .nth(rank - 1)
            .expect("list of 2n−1 entries always covers rank + published")
    }

    /// The paper's list verification: prune entries whose register is
    /// occupied, appending fresh empty registers found from `A_p` onward.
    fn verify_list(&self, ctx: Ctx<'_>, st: &mut DepositorState) -> Step<()> {
        let entries: Vec<u64> = st.list.clone();
        for j in entries {
            if !self.arena.read(ctx, j)?.is_null() {
                st.list.retain(|&x| x != j);
                self.refill(ctx, st)?;
            }
        }
        Ok(())
    }

    /// Scans from `A_p` for the next empty register and appends it,
    /// restoring the list to `2n−1` entries (appended indices exceed all
    /// current entries, keeping the list sorted).
    fn refill(&self, ctx: Ctx<'_>, st: &mut DepositorState) -> Step<()> {
        while st.list.len() < 2 * self.n - 1 {
            let i = st.next_fresh;
            st.next_fresh += 1;
            if self.arena.read(ctx, i)?.is_null() {
                st.list.push(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Memory, Pid, ThreadedShm};
    use std::collections::BTreeSet;

    #[test]
    fn sequential_deposits_use_distinct_registers() {
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, 2, 32);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut st = repo.depositor_state();
        let regs: Vec<u64> = (0..5)
            .map(|v| repo.deposit(ctx, &mut st, v).unwrap())
            .collect();
        let set: BTreeSet<u64> = regs.iter().copied().collect();
        assert_eq!(set.len(), 5);
        // Values persisted.
        for (i, &r) in regs.iter().enumerate() {
            assert_eq!(repo.arena().read(ctx, r).unwrap(), Word::Int(i as u64));
        }
    }

    #[test]
    fn concurrent_deposits_never_collide_or_overwrite() {
        const N: usize = 4;
        const PER: usize = 10;
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, N, 256);
        let mem = ThreadedShm::new(alloc.total(), N);
        let per_proc: Vec<Vec<(u64, u64)>> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (repo, mem) = (&repo, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = repo.depositor_state();
                        (0..PER)
                            .map(|i| {
                                let value = (p * PER + i) as u64;
                                (repo.deposit(ctx, &mut st, value).unwrap(), value)
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let all: Vec<(u64, u64)> = per_proc.into_iter().flatten().collect();
        let regs: BTreeSet<u64> = all.iter().map(|&(r, _)| r).collect();
        assert_eq!(regs.len(), N * PER, "two deposits shared a register");
        // Persistence: every deposited value is still in its register.
        let ctx = Ctx::new(&mem, Pid(0));
        for (r, v) in all {
            assert_eq!(repo.arena().read(ctx, r).unwrap(), Word::Int(v));
        }
    }

    #[test]
    fn waste_is_bounded_in_quiescent_runs() {
        // With no crashes and a quiescent end, the only "holes" below the
        // frontier are registers still on some live list — bounded by the
        // Theorem 8 waste bound n−1 after everyone stops.
        const N: usize = 3;
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, N, 128);
        let mem = ThreadedShm::new(alloc.total(), N);
        std::thread::scope(|s| {
            for p in 0..N {
                let (repo, mem) = (&repo, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let mut st = repo.depositor_state();
                    for i in 0..8u64 {
                        repo.deposit(ctx, &mut st, i).unwrap();
                    }
                });
            }
        });
        let occ = repo.arena().occupancy(&mem, Pid(0));
        let frontier = occ.iter().rposition(Option::is_some).unwrap() + 1;
        let holes = occ[..frontier].iter().filter(|v| v.is_none()).count();
        assert!(holes < N, "quiescent waste {holes} exceeds n−1 = {}", N - 1);
        assert_eq!(occ.iter().flatten().count(), 3 * 8);
        let _ = mem.num_registers();
    }

    #[test]
    fn choose_by_rank_separates_processes() {
        let list: Vec<u64> = (1..=7).collect();
        // Both processes published 1 (both on list): ranks 1 and 2 among
        // indices, snapshot occupies {1}, so they re-propose 2 and 3.
        let view = vec![Word::Int(1), Word::Int(1), Word::Null];
        assert_eq!(SelfishDeposit::choose_by_rank(&view, 0, &list), 2);
        assert_eq!(SelfishDeposit::choose_by_rank(&view, 1, &list), 3);
    }

    #[test]
    fn verify_prunes_and_refills() {
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, 2, 32);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut st = repo.depositor_state();
        assert_eq!(st.list(), &[1, 2, 3]);
        // Occupy registers 1 and 3 behind the process's back.
        repo.arena().write(ctx, 1, 9).unwrap();
        repo.arena().write(ctx, 3, 9).unwrap();
        repo.verify_list(ctx, &mut st).unwrap();
        assert_eq!(st.list(), &[2, 4, 5]);
        assert_eq!(st.next_fresh(), 6);
    }
}
