//! The dedicated deposit registers `R_1, R_2, …`.

use exsel_shm::{Ctx, Memory, Pid, RegAlloc, RegRange, Step, Word};

/// The paper's infinite array of registers dedicated to deposits, modeled
/// as a pre-sized bank (see DESIGN.md substitution notes): index `i ≥ 1`
/// addresses register `R_i`, registers beyond the experiment's frontier
/// are simply never touched.
///
/// Only deposit values are ever written here (besides the `Null`
/// initialization), matching the paper's separation of dedicated and
/// auxiliary registers.
#[derive(Clone, Debug)]
pub struct DepositArena {
    regs: RegRange,
}

impl DepositArena {
    /// Reserves `capacity` dedicated registers. Size it beyond the total
    /// deposits of the run plus `2n` (the naming machinery's look-ahead).
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, capacity: usize) -> Self {
        DepositArena {
            regs: alloc.reserve(capacity),
        }
    }

    /// Number of dedicated registers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.regs.len()
    }

    /// Reads `R_index` (1-based). One local step.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 0 or beyond capacity — the arena was sized too
    /// small for the run.
    pub fn read(&self, ctx: Ctx<'_>, index: u64) -> Step<Word> {
        ctx.read(self.reg_of(index))
    }

    /// Writes a deposit value into `R_index` (1-based). One local step.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 0 or beyond capacity.
    pub fn write(&self, ctx: Ctx<'_>, index: u64, value: u64) -> Step<()> {
        ctx.write(self.reg_of(index), Word::Int(value))
    }

    /// The register backing `R_index` (1-based) — the machine form's
    /// announce-first path describes arena writes with it.
    pub(crate) fn reg(&self, index: u64) -> exsel_shm::RegId {
        self.reg_of(index)
    }

    fn reg_of(&self, index: u64) -> exsel_shm::RegId {
        assert!(index >= 1, "deposit registers are 1-based");
        let i = usize::try_from(index - 1).expect("index fits usize");
        assert!(
            i < self.regs.len(),
            "deposit register R_{index} beyond arena capacity {} — size the arena larger",
            self.regs.len()
        );
        self.regs.get(i)
    }

    /// Post-run occupancy inspection (host side, not part of the model):
    /// the value deposited in each register, `None` if never used.
    #[must_use]
    pub fn occupancy(&self, mem: &dyn Memory, observer: Pid) -> Vec<Option<u64>> {
        self.regs
            .iter()
            .map(|reg| mem.read(observer, reg).ok().and_then(|w| w.as_int()))
            .collect()
    }

    /// [`DepositArena::occupancy`] over a raw register bank — the
    /// post-trial inspection path for `StepEngine` executions
    /// (`StepEngine::registers`), which have no [`Memory`] handle.
    #[must_use]
    pub fn occupancy_in(&self, regs: &[Word]) -> Vec<Option<u64>> {
        self.regs.iter().map(|reg| regs[reg.0].as_int()).collect()
    }
}

impl exsel_shm::Footprint for DepositArena {
    /// Arena registers are addressed by dynamically acquired names, so
    /// no process can claim one statically: the whole arena is shared
    /// for every pid (name uniqueness is what makes each register
    /// single-writer dynamically).
    fn footprint(&self, _pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        spec.phase("deposit.arena")
            .reads(self.regs)
            .writes_shared(self.regs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::ThreadedShm;

    #[test]
    fn read_write_one_based() {
        let mut alloc = RegAlloc::new();
        let arena = DepositArena::new(&mut alloc, 4);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        assert!(arena.read(ctx, 1).unwrap().is_null());
        arena.write(ctx, 1, 10).unwrap();
        arena.write(ctx, 4, 40).unwrap();
        assert_eq!(arena.read(ctx, 1).unwrap(), Word::Int(10));
        assert_eq!(arena.read(ctx, 4).unwrap(), Word::Int(40));
    }

    #[test]
    fn occupancy_reports_gaps() {
        let mut alloc = RegAlloc::new();
        let arena = DepositArena::new(&mut alloc, 3);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        arena.write(ctx, 2, 7).unwrap();
        assert_eq!(arena.occupancy(&mem, Pid(0)), vec![None, Some(7), None]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_index_panics() {
        let mut alloc = RegAlloc::new();
        let arena = DepositArena::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let _ = arena.read(Ctx::new(&mem, Pid(0)), 0);
    }

    #[test]
    #[should_panic(expected = "beyond arena capacity")]
    fn overflow_panics_with_guidance() {
        let mut alloc = RegAlloc::new();
        let arena = DepositArena::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let _ = arena.read(Ctx::new(&mem, Pid(0)), 3);
    }
}
