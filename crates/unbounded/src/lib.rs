//! Repository and Unbounded-Naming — §5 of *Asynchronous Exclusive
//! Selection* (Chlebus & Kowalski).
//!
//! A **repository** lets processes *deposit* values in an unbounded array
//! of dedicated registers `R_1, R_2, …` such that a deposited value is
//! never overwritten (persistence) and deposits keep happening as long as
//! some non-faulty process wants to deposit (non-blocking) or every
//! non-faulty process's deposit completes (wait-free). No algorithm can
//! guarantee that a *specific* register is eventually used (it would solve
//! Consensus), so the quality measure is how many dedicated registers are
//! **never** used:
//!
//! * [`SelfishDeposit`] (Theorem 8) — non-blocking, wastes at most `n−1`
//!   registers, which is optimal (Corollary 2);
//! * [`AltruisticDeposit`] (Theorem 9) — wait-free, wastes at most
//!   `n(n−1)` registers; processes acquire names *for each other* through
//!   an `n × n` `Help` matrix.
//!
//! **Unbounded-Naming** (Theorem 10) is the abstract form: processes
//! repeatedly claim nonnegative integers exclusively, with no shared
//! record in the integers themselves; availability is tracked in per-
//! process published lists `B_p`. [`UnboundedNaming`] is the non-blocking
//! solution leaving at most `n−1` integers unassigned; routing its names
//! through the `Help` matrix (as [`AltruisticDeposit`] does) gives the
//! wait-free `n(n−1)` solution.
//!
//! "Infinitely many registers" are modeled by a pre-sized
//! [`DepositArena`]; experiments size it beyond the deposits they perform
//! (see DESIGN.md substitution notes).
//!
//! Every operation also exists in resettable step-machine form for the
//! `exsel-sim` engine and its machine pools: [`NamingMachine`] (the
//! Theorem 10 acquire loop) and [`DepositOp`] (the Theorem 9 deposit
//! with its two §5 activities — deposit-or-help row service and consume
//! column scan — as explicit, strictly alternating machine phases, plus
//! a serve-only mode for the paper's fairness assumption). The blocking
//! APIs drive the same transition functions, so both forms perform
//! identical operation sequences.
//!
//! # Example
//!
//! ```
//! use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
//! use exsel_unbounded::SelfishDeposit;
//!
//! let mut alloc = RegAlloc::new();
//! let repo = SelfishDeposit::new(&mut alloc, 2, 64);
//! let mem = ThreadedShm::new(alloc.total(), 2);
//!
//! let ctx = Ctx::new(&mem, Pid(0));
//! let mut st = repo.depositor_state();
//! let r1 = repo.deposit(ctx, &mut st, 111)?;
//! let r2 = repo.deposit(ctx, &mut st, 222)?;
//! assert_ne!(r1, r2); // each value persisted in its own register
//! # Ok::<(), exsel_shm::Crash>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod altruistic;
mod arena;
mod naming;
mod selfish;

pub use altruistic::{AltruisticDeposit, AltruisticState, DepositOp};
pub use arena::DepositArena;
pub use naming::{AcquireOp, NamerState, NamingMachine, UnboundedNaming};
pub use selfish::{DepositorState, SelfishDeposit};
