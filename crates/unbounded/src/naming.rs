//! `Unbounded-Naming` — Theorem 10: processes repeatedly claim nonnegative
//! integers exclusively, leaving at most `n−1` integers forever
//! unassigned (non-blocking form).
//!
//! Unlike depositing, an abstract name leaves no record in a dedicated
//! register, so availability is tracked in *published* per-process suites
//! `B_p` of `2n` registers holding the list `L_p` and the pointer `A_p`:
//! integer `i` is **available according to `p`** iff `i` is on `L_p` or
//! `i ≥ A_p`. A process commits to a candidate `i` only while `i` sits
//! uniquely in its component of the snapshot `W` *and* every `B_q` says
//! `i` is available; committing removes `i` from the process's own
//! published list before `W` is released, which is what makes claims
//! mutually exclusive (any later claimant scans `W` after our release and
//! therefore reads our updated `B`).
//!
//! The acquire operation is exposed both blocking
//! ([`UnboundedNaming::acquire`]) and as a poll-based state machine
//! ([`AcquireOp`], exactly one shared-memory operation per
//! [`AcquireOp::step`]) so that `Altruistic-Deposit` can interleave it
//! with its column scan at event granularity, as §5 prescribes.

use exsel_shm::snapshot::{Poll, ScanOp, UpdateOp};
use exsel_shm::{Ctx, RegAlloc, RegRange, Snapshot, Step, Word};

/// The non-blocking unbounded naming object.
#[derive(Clone, Debug)]
pub struct UnboundedNaming {
    n: usize,
    w: Snapshot,
    /// `b[p]` is process `p`'s suite: register 0 holds `A_p`, registers
    /// `1..2n` hold the list slots (`Int(v)` an entry, `Int(0)` an empty
    /// slot; `Null` means "never published", defaulting to the initial
    /// list `L_p = {1..2n−1}`, `A_p = 2n`).
    b: Vec<RegRange>,
}

/// Per-process local naming state.
#[derive(Clone, Debug)]
pub struct NamerState {
    /// Whether the initial `B_p` publication has happened.
    published: bool,
    /// `slots[j]` mirrors `B_p[j+1]`: a list entry, or 0 if empty.
    slots: Vec<u64>,
    /// `A_p`.
    next_fresh: u64,
}

impl NamerState {
    /// The current list `L_p`, sorted ascending.
    #[must_use]
    pub fn list(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self.slots.iter().copied().filter(|&v| v != 0).collect();
        l.sort_unstable();
        l
    }

    /// The fresh pointer `A_p`.
    #[must_use]
    pub fn next_fresh(&self) -> u64 {
        self.next_fresh
    }

    /// Smallest candidate on the list.
    fn smallest(&self) -> u64 {
        self.slots
            .iter()
            .copied()
            .filter(|&v| v != 0)
            .min()
            .expect("list never empties: every removal refills")
    }

    /// The slot index (0-based into `slots`) holding `value`.
    fn slot_of(&self, value: u64) -> usize {
        self.slots
            .iter()
            .position(|&v| v == value)
            .expect("value is on the list")
    }
}

impl UnboundedNaming {
    /// Builds a naming object for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        UnboundedNaming {
            n,
            w: Snapshot::new(alloc, n),
            b: (0..n).map(|_| alloc.reserve(2 * n)).collect(),
        }
    }

    /// System size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Initial local state.
    #[must_use]
    pub fn namer_state(&self) -> NamerState {
        NamerState {
            published: false,
            slots: (1..=2 * self.n as u64 - 1).collect(),
            next_fresh: 2 * self.n as u64,
        }
    }

    /// Registers used: `n` snapshot components plus `2n` per process.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.w.registers().len() + self.b.iter().map(RegRange::len).sum::<usize>()
    }

    /// Starts a poll-based acquire for the calling process.
    #[must_use]
    pub fn begin_acquire(&self, st: &NamerState) -> AcquireOp {
        AcquireOp {
            candidate: st.smallest(),
            state: if st.published {
                AcqState::StartUpdate
            } else {
                AcqState::Publish { idx: 0 }
            },
        }
    }

    /// Blocking acquire: claims and returns the next integer, exclusively
    /// and forever.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    pub fn acquire(&self, ctx: Ctx<'_>, st: &mut NamerState) -> Step<u64> {
        let mut op = self.begin_acquire(st);
        loop {
            if let Poll::Ready(name) = op.step(self, ctx, st)? {
                return Ok(name);
            }
        }
    }

    /// Interprets a `B_q` register read: `Null` defaults to the initial
    /// publication.
    fn b_default(reg_index: usize, w: &Word) -> u64 {
        match w.as_int() {
            Some(v) => v,
            None => {
                if reg_index == 0 {
                    u64::MAX // placeholder, resolved by caller knowing n
                } else {
                    reg_index as u64 // initial list entry j at slot j
                }
            }
        }
    }
}

#[derive(Clone, Debug)]
enum AcqState {
    /// First-time publication of `B_p` (one write per step).
    Publish {
        idx: usize,
    },
    /// Local transition marker: begin a `W_p := candidate` update.
    StartUpdate,
    Update(UpdateOp),
    Scan(ScanOp),
    /// Availability check: read `B_q[0] = A_q`.
    CheckA {
        q: usize,
    },
    /// Availability check: scan `B_q`'s slots for the candidate.
    CheckSlots {
        q: usize,
        j: usize,
    },
    /// Prune an unavailable candidate: overwrite its published slot with a
    /// fresh value.
    PruneSlot,
    /// After pruning, publish the advanced `A_p`.
    PruneAdvanceA,
    /// Commit: overwrite the candidate's published slot with a fresh
    /// value (removing the candidate from the list makes it unavailable).
    CommitSlot,
    /// Publish the advanced `A_p`, then the acquire is complete.
    CommitAdvanceA {
        name: u64,
    },
    Done,
}

/// In-progress poll-based acquire; each [`AcquireOp::step`] performs
/// exactly one shared-memory operation.
#[derive(Clone, Debug)]
pub struct AcquireOp {
    candidate: u64,
    state: AcqState,
}

impl AcquireOp {
    /// Performs one shared-memory operation; `Ready(name)` when the claim
    /// committed.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if driven after completion.
    pub fn step(
        &mut self,
        naming: &UnboundedNaming,
        ctx: Ctx<'_>,
        st: &mut NamerState,
    ) -> Step<Poll<u64>> {
        let slot = ctx.pid().0;
        let my_b = naming.b[slot];
        match &mut self.state {
            AcqState::Publish { idx } => {
                let i = *idx;
                if i == 0 {
                    ctx.write(my_b.get(0), st.next_fresh)?;
                } else {
                    ctx.write(my_b.get(i), st.slots[i - 1])?;
                }
                if i + 1 < my_b.len() {
                    self.state = AcqState::Publish { idx: i + 1 };
                } else {
                    st.published = true;
                    self.state = AcqState::StartUpdate;
                }
                Ok(Poll::Pending)
            }
            AcqState::StartUpdate => {
                let mut up = naming.w.begin_update(slot, Word::Int(self.candidate));
                let poll = up.step(&naming.w, ctx)?;
                self.state = match poll {
                    Poll::Ready(()) => AcqState::Scan(naming.w.begin_scan()),
                    Poll::Pending => AcqState::Update(up),
                };
                Ok(Poll::Pending)
            }
            AcqState::Update(up) => {
                if let Poll::Ready(()) = up.step(&naming.w, ctx)? {
                    self.state = AcqState::Scan(naming.w.begin_scan());
                }
                Ok(Poll::Pending)
            }
            AcqState::Scan(scan) => {
                if let Poll::Ready(view) = scan.step(&naming.w, ctx)? {
                    let unique = view
                        .iter()
                        .enumerate()
                        .all(|(q, w)| q == slot || w.as_int() != Some(self.candidate));
                    if unique {
                        // Availability check, skipping ourselves.
                        self.state = AcqState::CheckA {
                            q: usize::from(slot == 0),
                        };
                        if let AcqState::CheckA { q } = self.state {
                            if q >= naming.n {
                                // Single-process system: commit directly.
                                self.state = AcqState::CommitSlot;
                            }
                        }
                    } else {
                        self.candidate = choose_by_rank(&view, slot, &st.list());
                        self.state = AcqState::StartUpdate;
                    }
                }
                Ok(Poll::Pending)
            }
            AcqState::CheckA { q } => {
                let q = *q;
                let w = ctx.read(naming.b[q].get(0))?;
                let a_q = match w.as_int() {
                    Some(v) => v,
                    None => 2 * naming.n as u64, // never published: initial A
                };
                if self.candidate >= a_q {
                    // Available according to q by the fresh-frontier rule.
                    self.advance_check(naming, slot, q);
                } else {
                    self.state = AcqState::CheckSlots { q, j: 1 };
                }
                Ok(Poll::Pending)
            }
            AcqState::CheckSlots { q, j } => {
                let (q, j) = (*q, *j);
                let w = ctx.read(naming.b[q].get(j))?;
                let entry = UnboundedNaming::b_default(j, &w);
                if entry == self.candidate {
                    // On q's list: available according to q.
                    self.advance_check(naming, slot, q);
                } else if j + 1 < naming.b[q].len() {
                    self.state = AcqState::CheckSlots { q, j: j + 1 };
                } else {
                    // Unavailable: someone claimed it. Prune and retry.
                    self.state = AcqState::PruneSlot;
                }
                Ok(Poll::Pending)
            }
            AcqState::PruneSlot => {
                let fresh = st.next_fresh;
                let j = st.slot_of(self.candidate);
                st.slots[j] = fresh;
                st.next_fresh += 1;
                ctx.write(my_b.get(j + 1), fresh)?;
                self.state = AcqState::PruneAdvanceA;
                Ok(Poll::Pending)
            }
            AcqState::PruneAdvanceA => {
                ctx.write(my_b.get(0), st.next_fresh)?;
                self.candidate = st.smallest();
                self.state = AcqState::StartUpdate;
                Ok(Poll::Pending)
            }
            AcqState::CommitSlot => {
                // Replace the candidate's published slot with a fresh
                // value: one atomic write removes the candidate from our
                // list (making it globally unavailable) and refills.
                let fresh = st.next_fresh;
                let j = st.slot_of(self.candidate);
                st.slots[j] = fresh;
                st.next_fresh += 1;
                ctx.write(my_b.get(j + 1), fresh)?;
                self.state = AcqState::CommitAdvanceA {
                    name: self.candidate,
                };
                Ok(Poll::Pending)
            }
            AcqState::CommitAdvanceA { name } => {
                let name = *name;
                ctx.write(my_b.get(0), st.next_fresh)?;
                self.state = AcqState::Done;
                Ok(Poll::Ready(name))
            }
            AcqState::Done => panic!("acquire driven after completion"),
        }
    }

    /// Moves the availability check to the next process, or to commit if
    /// everyone has been checked.
    fn advance_check(&mut self, naming: &UnboundedNaming, slot: usize, q: usize) {
        let mut next = q + 1;
        if next == slot {
            next += 1;
        }
        self.state = if next >= naming.n {
            AcqState::CommitSlot
        } else {
            AcqState::CheckA { q: next }
        };
    }
}

/// The paper's *choosing by rank* over the naming list.
fn choose_by_rank(view: &[Word], slot: usize, list: &[u64]) -> u64 {
    let on_list = |v: u64| list.binary_search(&v).is_ok();
    let rank = view
        .iter()
        .enumerate()
        .take(slot + 1)
        .filter(|(_, w)| w.as_int().is_some_and(on_list))
        .count()
        .max(1);
    let published: Vec<u64> = view.iter().filter_map(Word::as_int).collect();
    list.iter()
        .copied()
        .filter(|v| !published.contains(v))
        .nth(rank - 1)
        .expect("list of 2n−1 entries always covers rank + published")
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    #[test]
    fn sequential_names_are_fresh_and_exclusive() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut st = naming.namer_state();
        let names: Vec<u64> = (0..6)
            .map(|_| naming.acquire(ctx, &mut st).unwrap())
            .collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len());
        // A solo process claims the smallest available integers in order.
        assert_eq!(names, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn concurrent_names_never_collide() {
        const N: usize = 4;
        const PER: usize = 12;
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, N);
        let mem = ThreadedShm::new(alloc.total(), N);
        let all: Vec<Vec<u64>> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (naming, mem) = (&naming, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = naming.namer_state();
                        (0..PER)
                            .map(|_| naming.acquire(ctx, &mut st).unwrap())
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let flat: Vec<u64> = all.into_iter().flatten().collect();
        let set: BTreeSet<u64> = flat.iter().copied().collect();
        assert_eq!(set.len(), N * PER, "duplicate names assigned");
    }

    #[test]
    fn quiescent_waste_is_below_n_minus_one() {
        const N: usize = 3;
        const PER: usize = 10;
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, N);
        let mem = ThreadedShm::new(alloc.total(), N);
        let flat: Vec<u64> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (naming, mem) = (&naming, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = naming.namer_state();
                        (0..PER)
                            .map(|_| naming.acquire(ctx, &mut st).unwrap())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let assigned: BTreeSet<u64> = flat.iter().copied().collect();
        let frontier = *assigned.iter().max().unwrap();
        let skipped = (1..=frontier).filter(|i| !assigned.contains(i)).count();
        // In a crash-free quiescent run, the permanently skipped integers
        // are only those pruned while contended — at most n−1 overall.
        assert!(
            skipped < N,
            "skipped {skipped} integers, above n−1 = {}",
            N - 1
        );
    }

    #[test]
    fn poll_acquire_is_one_op_per_step() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut st = naming.namer_state();
        let mut op = naming.begin_acquire(&st);
        loop {
            let before = ctx.steps();
            let poll = op.step(&naming, ctx, &mut st).unwrap();
            assert_eq!(ctx.steps(), before + 1, "exactly one op per step");
            if let Poll::Ready(name) = poll {
                assert_eq!(name, 1);
                break;
            }
        }
    }

    #[test]
    fn committed_names_become_unavailable_to_late_readers() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx0 = Ctx::new(&mem, Pid(0));
        let mut st0 = naming.namer_state();
        let name = naming.acquire(ctx0, &mut st0).unwrap();
        // The other process must not claim the same integer.
        let ctx1 = Ctx::new(&mem, Pid(1));
        let mut st1 = naming.namer_state();
        for _ in 0..5 {
            assert_ne!(naming.acquire(ctx1, &mut st1).unwrap(), name);
        }
    }
}
