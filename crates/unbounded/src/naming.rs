//! `Unbounded-Naming` — Theorem 10: processes repeatedly claim nonnegative
//! integers exclusively, leaving at most `n−1` integers forever
//! unassigned (non-blocking form).
//!
//! Unlike depositing, an abstract name leaves no record in a dedicated
//! register, so availability is tracked in *published* per-process suites
//! `B_p` of `2n` registers holding the list `L_p` and the pointer `A_p`:
//! integer `i` is **available according to `p`** iff `i` is on `L_p` or
//! `i ≥ A_p`. A process commits to a candidate `i` only while `i` sits
//! uniquely in its component of the snapshot `W` *and* every `B_q` says
//! `i` is available; committing removes `i` from the process's own
//! published list before `W` is released, which is what makes claims
//! mutually exclusive (any later claimant scans `W` after our release and
//! therefore reads our updated `B`).
//!
//! The acquire operation is exposed both blocking
//! ([`UnboundedNaming::acquire`]) and as a poll-based state machine
//! ([`AcquireOp`], exactly one shared-memory operation per
//! [`AcquireOp::step`]) so that `Altruistic-Deposit` can interleave it
//! with its column scan at event granularity, as §5 prescribes.

use exsel_shm::snapshot::{Poll, ScanOp, UpdateOp};
use exsel_shm::{
    Ctx, OpKind, Pid, RegAlloc, RegId, RegRange, ShmOp, Snapshot, Step, StepMachine, Word,
};

/// The non-blocking unbounded naming object.
#[derive(Clone, Debug)]
pub struct UnboundedNaming {
    n: usize,
    w: Snapshot,
    /// `b[p]` is process `p`'s suite: register 0 holds `A_p`, registers
    /// `1..2n` hold the list slots (`Int(v)` an entry, `Int(0)` an empty
    /// slot; `Null` means "never published", defaulting to the initial
    /// list `L_p = {1..2n−1}`, `A_p = 2n`).
    b: Vec<RegRange>,
}

/// Per-process local naming state.
#[derive(Clone, Debug)]
pub struct NamerState {
    /// Whether the initial `B_p` publication has happened.
    published: bool,
    /// `slots[j]` mirrors `B_p[j+1]`: a list entry, or 0 if empty.
    slots: Vec<u64>,
    /// `A_p`.
    next_fresh: u64,
}

impl NamerState {
    /// The current list `L_p`, sorted ascending.
    #[must_use]
    pub fn list(&self) -> Vec<u64> {
        let mut l = Vec::new();
        self.fill_list_sorted(&mut l);
        l
    }

    /// Fills `buf` with the current list `L_p`, sorted ascending —
    /// the allocation-free form of [`NamerState::list`] for hot retry
    /// paths (the buffer is cleared and reused; `sort_unstable` is
    /// in-place).
    pub fn fill_list_sorted(&self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.slots.iter().copied().filter(|&v| v != 0));
        buf.sort_unstable();
    }

    /// The fresh pointer `A_p`.
    #[must_use]
    pub fn next_fresh(&self) -> u64 {
        self.next_fresh
    }

    /// Smallest candidate on the list.
    fn smallest(&self) -> u64 {
        self.slots
            .iter()
            .copied()
            .filter(|&v| v != 0)
            .min()
            .expect("list never empties: every removal refills")
    }

    /// Re-initializes to the pre-publication state in place, keeping the
    /// list buffer's capacity (used by pooled [`NamingMachine`]s).
    pub fn reset(&mut self, n: usize) {
        self.published = false;
        self.slots.clear();
        self.slots.extend(1..=2 * n as u64 - 1);
        self.next_fresh = 2 * n as u64;
    }

    /// Marks the published suite `B_p` stale so the next acquire
    /// republishes it from the current local state — the crash-recovery
    /// hook: a process re-entering after a crash may have lost suite
    /// writes (a pruned or committed slot whose `A_p` advance never
    /// landed), and republication restores `published == local` before
    /// the fresh incarnation contends. The local state itself is kept:
    /// resetting it would put claimed integers back on the list and
    /// break exclusiveness.
    pub(crate) fn unpublish(&mut self) {
        self.published = false;
    }

    /// The slot index (0-based into `slots`) holding `value`.
    fn slot_of(&self, value: u64) -> usize {
        self.slots
            .iter()
            .position(|&v| v == value)
            .expect("value is on the list")
    }
}

impl UnboundedNaming {
    /// Builds a naming object for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        UnboundedNaming {
            n,
            w: Snapshot::new(alloc, n),
            b: (0..n).map(|_| alloc.reserve(2 * n)).collect(),
        }
    }

    /// System size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Initial local state.
    #[must_use]
    pub fn namer_state(&self) -> NamerState {
        NamerState {
            published: false,
            slots: (1..=2 * self.n as u64 - 1).collect(),
            next_fresh: 2 * self.n as u64,
        }
    }

    /// Registers used: `n` snapshot components plus `2n` per process.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.w.registers().len() + self.b.iter().map(RegRange::len).sum::<usize>()
    }

    /// The snapshot object `W` (introspection — e.g. reading its
    /// record-recycling arena telemetry after a sweep).
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        &self.w
    }

    /// Starts a poll-based acquire for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is beyond the system size.
    #[must_use]
    pub fn begin_acquire(&self, pid: Pid, st: &NamerState) -> AcquireOp {
        let slot = pid.0;
        assert!(slot < self.n, "pid {pid} beyond system size {}", self.n);
        let candidate = st.smallest();
        AcquireOp {
            slot,
            candidate,
            update: self.w.begin_update(slot, Word::Int(candidate)),
            scan: self.w.begin_scan(),
            state: if st.published {
                AcqState::Update
            } else {
                AcqState::Publish { idx: 0 }
            },
            // Scratch at its structural bounds up front (the list holds
            // 2n−1 entries, the published set one per view slot), so the
            // contention path never grows them mid-run — a machine whose
            // first contended acquire lands hours in stays zero-alloc.
            list_scratch: Vec::with_capacity(2 * self.n),
            published_scratch: Vec::with_capacity(self.n),
        }
    }

    /// Starts the acquire loop of process `pid` as a self-contained
    /// [`StepMachine`] owning its [`NamerState`]: the machine claims
    /// `rounds` integers and completes with the last one (all of them are
    /// readable through [`NamingMachine::names`]). Resettable, so one
    /// pool of naming machines serves a whole seed sweep.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `pid` is beyond the system size.
    #[must_use]
    pub fn begin_machine(&self, pid: Pid, rounds: usize) -> NamingMachine<'_> {
        assert!(rounds > 0, "need at least one acquire round");
        let st = self.namer_state();
        let acquire = self.begin_acquire(pid, &st);
        NamingMachine {
            naming: self,
            pid,
            st,
            acquire,
            names: Vec::with_capacity(rounds),
            rounds,
        }
    }

    /// Blocking acquire: claims and returns the next integer, exclusively
    /// and forever.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    pub fn acquire(&self, ctx: Ctx<'_>, st: &mut NamerState) -> Step<u64> {
        let mut op = self.begin_acquire(ctx.pid(), st);
        loop {
            if let Poll::Ready(name) = op.step(self, ctx, st)? {
                return Ok(name);
            }
        }
    }

    /// Interprets a `B_q` register read: `Null` defaults to the initial
    /// publication.
    fn b_default(reg_index: usize, w: &Word) -> u64 {
        match w.as_int() {
            Some(v) => v,
            None => {
                if reg_index == 0 {
                    u64::MAX // placeholder, resolved by caller knowing n
                } else {
                    reg_index as u64 // initial list entry j at slot j
                }
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum AcqState {
    /// First-time publication of `B_p` (one write per step).
    Publish {
        idx: usize,
    },
    /// Driving the owned snapshot update (announce the candidate in `W`).
    Update,
    /// Driving the owned snapshot scan of `W`.
    Scan,
    /// Availability check: read `B_q[0] = A_q`.
    CheckA {
        q: usize,
    },
    /// Availability check: scan `B_q`'s slots for the candidate.
    CheckSlots {
        q: usize,
        j: usize,
    },
    /// Prune an unavailable candidate: overwrite its published slot with a
    /// fresh value.
    PruneSlot,
    /// After pruning, publish the advanced `A_p`.
    PruneAdvanceA,
    /// Commit: overwrite the candidate's published slot with a fresh
    /// value (removing the candidate from the list makes it unavailable).
    CommitSlot,
    /// Publish the advanced `A_p`, then the acquire is complete.
    CommitAdvanceA {
        name: u64,
    },
    Done,
}

/// In-progress poll-based acquire; each [`AcquireOp::step`] performs
/// exactly one shared-memory operation. Internally in announce-first
/// form: a pure `describe` names the next operation, and the
/// transition consumes its result — which is what lets
/// [`NamingMachine`] (and the deposit machines built on top) expose the
/// same loop as a [`StepMachine`] with an identical operation sequence.
///
/// The snapshot update and scan are owned as permanent fields and
/// re-armed in place ([`UpdateOp::rearm`], [`ScanOp::restart`]) rather
/// than rebuilt per transition, so one pooled `AcquireOp` drives any
/// number of acquisitions without reallocating its collect buffers.
#[derive(Clone, Debug)]
pub struct AcquireOp {
    slot: usize,
    candidate: u64,
    update: UpdateOp,
    scan: ScanOp,
    state: AcqState,
    /// Scratch for the contention path (`choose_by_rank`): the sorted
    /// list, reused so retries allocate nothing at steady state.
    list_scratch: Vec<u64>,
    /// Scratch for the published-candidate set of `choose_by_rank`.
    published_scratch: Vec<u64>,
}

impl AcquireOp {
    /// The process slot this operation was constructed for.
    pub(crate) fn slot(&self) -> usize {
        self.slot
    }

    /// Re-arms the spent (or mid-flight) operation in place as a fresh
    /// acquire for the same process over the current local state —
    /// the allocation-free counterpart of
    /// [`UnboundedNaming::begin_acquire`] for pooled machines.
    pub(crate) fn rearm(&mut self, st: &NamerState) {
        self.candidate = st.smallest();
        if st.published {
            self.update.rearm(self.slot, Word::Int(self.candidate));
            self.state = AcqState::Update;
        } else {
            self.state = AcqState::Publish { idx: 0 };
        }
    }

    /// Cross-trial re-initialization for pooled machines: drops the
    /// snapshot generation-tag caches (register sequence numbers restart
    /// with the bank), then re-arms over the freshly reset `st`.
    pub(crate) fn reset_trial(&mut self, st: &NamerState) {
        self.update.reset(Pid(self.slot));
        self.scan.reset(Pid(self.slot));
        self.rearm(st);
    }

    /// The next shared-memory operation, derived purely from the local
    /// state `st`.
    ///
    /// # Panics
    ///
    /// Panics if the acquire already completed.
    pub(crate) fn describe(&self, naming: &UnboundedNaming, st: &NamerState) -> ShmOp {
        let my_b = naming.b[self.slot];
        match &self.state {
            AcqState::Publish { idx } => {
                let value = if *idx == 0 {
                    st.next_fresh
                } else {
                    st.slots[*idx - 1]
                };
                ShmOp::Write(my_b.get(*idx), Word::Int(value))
            }
            AcqState::Update => self.update.op(),
            AcqState::Scan => self.scan.op(),
            AcqState::CheckA { q } => ShmOp::Read(naming.b[*q].get(0)),
            AcqState::CheckSlots { q, j } => ShmOp::Read(naming.b[*q].get(*j)),
            AcqState::PruneSlot | AcqState::CommitSlot => {
                let j = st.slot_of(self.candidate);
                ShmOp::Write(my_b.get(j + 1), Word::Int(st.next_fresh))
            }
            AcqState::PruneAdvanceA | AcqState::CommitAdvanceA { .. } => {
                ShmOp::Write(my_b.get(0), Word::Int(st.next_fresh))
            }
            AcqState::Done => panic!("acquire driven after completion"),
        }
    }

    /// [`AcquireOp::describe`] without materializing the operand word —
    /// delegates to the owned snapshot ops' `peek` in the update state,
    /// where `op()` would clone the pending record's `Arc`.
    pub(crate) fn peek_op(&self, naming: &UnboundedNaming, st: &NamerState) -> (OpKind, RegId) {
        match self.state {
            AcqState::Update => self.update.peek(),
            AcqState::Scan => self.scan.peek(),
            _ => {
                let op = self.describe(naming, st);
                (op.kind(), op.reg())
            }
        }
    }

    /// Consumes the result of the operation last described and
    /// transitions; `Ready(name)` when the claim committed.
    pub(crate) fn consume(
        &mut self,
        naming: &UnboundedNaming,
        st: &mut NamerState,
        input: &Word,
    ) -> Poll<u64> {
        match &mut self.state {
            AcqState::Publish { idx } => {
                let i = *idx;
                if i + 1 < naming.b[self.slot].len() {
                    self.state = AcqState::Publish { idx: i + 1 };
                } else {
                    st.published = true;
                    self.update.rearm(self.slot, Word::Int(self.candidate));
                    self.state = AcqState::Update;
                }
                Poll::Pending
            }
            AcqState::Update => {
                if let Poll::Ready(()) = self.update.advance(input) {
                    self.scan.restart();
                    self.state = AcqState::Scan;
                }
                Poll::Pending
            }
            AcqState::Scan => {
                if let Poll::Ready(view) = self.scan.advance(input) {
                    let unique = view
                        .iter()
                        .enumerate()
                        .all(|(q, w)| q == self.slot || w.as_int() != Some(self.candidate));
                    if unique {
                        // Availability check, skipping ourselves.
                        let q = usize::from(self.slot == 0);
                        self.state = if q >= naming.n {
                            // Single-process system: commit directly.
                            AcqState::CommitSlot
                        } else {
                            AcqState::CheckA { q }
                        };
                    } else {
                        st.fill_list_sorted(&mut self.list_scratch);
                        self.candidate = choose_by_rank(
                            &view,
                            self.slot,
                            &self.list_scratch,
                            &mut self.published_scratch,
                        );
                        self.update.rearm(self.slot, Word::Int(self.candidate));
                        self.state = AcqState::Update;
                    }
                }
                Poll::Pending
            }
            AcqState::CheckA { q } => {
                let q = *q;
                let a_q = match input.as_int() {
                    Some(v) => v,
                    None => 2 * naming.n as u64, // never published: initial A
                };
                if self.candidate >= a_q {
                    // Available according to q by the fresh-frontier rule.
                    self.advance_check(naming, q);
                } else {
                    self.state = AcqState::CheckSlots { q, j: 1 };
                }
                Poll::Pending
            }
            AcqState::CheckSlots { q, j } => {
                let (q, j) = (*q, *j);
                let entry = UnboundedNaming::b_default(j, input);
                if entry == self.candidate {
                    // On q's list: available according to q.
                    self.advance_check(naming, q);
                } else if j + 1 < naming.b[q].len() {
                    self.state = AcqState::CheckSlots { q, j: j + 1 };
                } else {
                    // Unavailable: someone claimed it. Prune and retry.
                    self.state = AcqState::PruneSlot;
                }
                Poll::Pending
            }
            AcqState::PruneSlot => {
                let fresh = st.next_fresh;
                let j = st.slot_of(self.candidate);
                st.slots[j] = fresh;
                st.next_fresh += 1;
                self.state = AcqState::PruneAdvanceA;
                Poll::Pending
            }
            AcqState::PruneAdvanceA => {
                self.candidate = st.smallest();
                self.update.rearm(self.slot, Word::Int(self.candidate));
                self.state = AcqState::Update;
                Poll::Pending
            }
            AcqState::CommitSlot => {
                // Replace the candidate's published slot with a fresh
                // value: one atomic write removes the candidate from our
                // list (making it globally unavailable) and refills.
                let fresh = st.next_fresh;
                let j = st.slot_of(self.candidate);
                st.slots[j] = fresh;
                st.next_fresh += 1;
                self.state = AcqState::CommitAdvanceA {
                    name: self.candidate,
                };
                Poll::Pending
            }
            AcqState::CommitAdvanceA { name } => {
                let name = *name;
                self.state = AcqState::Done;
                Poll::Ready(name)
            }
            AcqState::Done => panic!("acquire driven after completion"),
        }
    }

    /// Performs one shared-memory operation; `Ready(name)` when the claim
    /// committed.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if driven after completion.
    pub fn step(
        &mut self,
        naming: &UnboundedNaming,
        ctx: Ctx<'_>,
        st: &mut NamerState,
    ) -> Step<Poll<u64>> {
        debug_assert_eq!(
            ctx.pid().0,
            self.slot,
            "acquire driven by a different process"
        );
        match self.describe(naming, st) {
            ShmOp::Read(reg) => {
                let value = ctx.read(reg)?;
                Ok(self.consume(naming, st, &value))
            }
            ShmOp::Write(reg, word) => {
                ctx.write(reg, word)?;
                Ok(self.consume(naming, st, &Word::Null))
            }
        }
    }

    /// Moves the availability check to the next process, or to commit if
    /// everyone has been checked.
    fn advance_check(&mut self, naming: &UnboundedNaming, q: usize) {
        let mut next = q + 1;
        if next == self.slot {
            next += 1;
        }
        self.state = if next >= naming.n {
            AcqState::CommitSlot
        } else {
            AcqState::CheckA { q: next }
        };
    }
}

/// The acquire loop of one process as a self-contained, resettable
/// [`StepMachine`] — the pooled form `MachineSet` and the grid driver
/// run on the step engine. See [`UnboundedNaming::begin_machine`].
#[derive(Clone, Debug)]
pub struct NamingMachine<'a> {
    naming: &'a UnboundedNaming,
    pid: Pid,
    st: NamerState,
    acquire: AcquireOp,
    names: Vec<u64>,
    rounds: usize,
}

impl NamingMachine<'_> {
    /// The integers claimed so far in this trial, in acquisition order.
    #[must_use]
    pub fn names(&self) -> &[u64] {
        &self.names
    }

    /// Re-arms a completed (or mid-flight) machine in place for its next
    /// acquisition run **within the same trial**, keeping the process's
    /// naming state — claimed integers stay claimed, the published suite
    /// stays published. This is the open-loop session path: one pooled
    /// machine serves any number of client sessions without touching the
    /// allocator. (Contrast [`StepMachine::reset`], which starts a fresh
    /// *trial* over a reset register bank.)
    pub fn begin_session(&mut self) {
        self.names.clear();
        self.acquire.rearm(&self.st);
    }

    /// Re-enters after a mid-operation crash as a **fresh contender**:
    /// like [`NamingMachine::begin_session`], but the suite `B_p` is
    /// republished from local state before the new incarnation contends.
    /// A crash may have eaten suite writes (a committed slot whose `A_p`
    /// advance never landed leaves the published fresh frontier stale,
    /// and a stale frontier can make an already-claimed integer look
    /// available); republication restores the invariant. Claims the dead
    /// incarnation half-completed are wasted, never reassigned to the
    /// new one.
    pub fn reenter(&mut self) {
        self.names.clear();
        self.st.unpublish();
        self.acquire.rearm(&self.st);
    }
}

impl exsel_shm::Footprint for UnboundedNaming {
    /// The §4 single-writer discipline: process `p` updates only its own
    /// component `W[p]` of the snapshot and publishes only into its own
    /// suite `B[p]`, while scanning `W` and reading every suite during
    /// the availability checks. Both write extents are exclusively
    /// owned — a write there from any other process is a violation.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        let w = self.w.registers();
        let b = spec.phase("naming.scan").reads(w);
        if pid.0 < self.n {
            b.writes_excl(w.slice(pid.0, 1));
        }
        for (q, suite) in self.b.iter().enumerate() {
            let b = spec.phase("naming.suite").reads(*suite);
            if q == pid.0 {
                b.writes_excl(*suite);
            }
        }
    }
}

impl StepMachine for NamingMachine<'_> {
    type Output = u64;

    fn op(&self) -> ShmOp {
        self.acquire.describe(self.naming, &self.st)
    }

    fn peek(&self) -> (OpKind, RegId) {
        self.acquire.peek_op(self.naming, &self.st)
    }

    fn advance(&mut self, input: &Word) -> Poll<u64> {
        if let Poll::Ready(name) = self.acquire.consume(self.naming, &mut self.st, input) {
            self.names.push(name);
            if self.names.len() == self.rounds {
                return Poll::Ready(name);
            }
            self.acquire.rearm(&self.st);
        }
        Poll::Pending
    }

    fn reset(&mut self, pid: Pid) {
        assert_eq!(pid, self.pid, "naming machine reset for a different pid");
        self.st.reset(self.naming.n);
        self.acquire.reset_trial(&self.st);
        self.names.clear();
    }
}

/// The paper's *choosing by rank* over the (sorted) naming list.
/// `published` is caller-held scratch, refilled per call — acquire
/// retries are a steady-state path of pooled naming machines and must
/// not touch the allocator.
fn choose_by_rank(view: &[Word], slot: usize, list: &[u64], published: &mut Vec<u64>) -> u64 {
    let on_list = |v: u64| list.binary_search(&v).is_ok();
    let rank = view
        .iter()
        .enumerate()
        .take(slot + 1)
        .filter(|(_, w)| w.as_int().is_some_and(on_list))
        .count()
        .max(1);
    published.clear();
    published.extend(view.iter().filter_map(Word::as_int));
    list.iter()
        .copied()
        .filter(|v| !published.contains(v))
        .nth(rank - 1)
        .expect("list of 2n−1 entries always covers rank + published")
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    #[test]
    fn sequential_names_are_fresh_and_exclusive() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut st = naming.namer_state();
        let names: Vec<u64> = (0..6)
            .map(|_| naming.acquire(ctx, &mut st).unwrap())
            .collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len());
        // A solo process claims the smallest available integers in order.
        assert_eq!(names, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn concurrent_names_never_collide() {
        const N: usize = 4;
        const PER: usize = 12;
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, N);
        let mem = ThreadedShm::new(alloc.total(), N);
        let all: Vec<Vec<u64>> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (naming, mem) = (&naming, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = naming.namer_state();
                        (0..PER)
                            .map(|_| naming.acquire(ctx, &mut st).unwrap())
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let flat: Vec<u64> = all.into_iter().flatten().collect();
        let set: BTreeSet<u64> = flat.iter().copied().collect();
        assert_eq!(set.len(), N * PER, "duplicate names assigned");
    }

    #[test]
    fn quiescent_waste_is_below_n_minus_one() {
        const N: usize = 3;
        const PER: usize = 10;
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, N);
        let mem = ThreadedShm::new(alloc.total(), N);
        let flat: Vec<u64> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (naming, mem) = (&naming, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = naming.namer_state();
                        (0..PER)
                            .map(|_| naming.acquire(ctx, &mut st).unwrap())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let assigned: BTreeSet<u64> = flat.iter().copied().collect();
        let frontier = *assigned.iter().max().unwrap();
        let skipped = (1..=frontier).filter(|i| !assigned.contains(i)).count();
        // In a crash-free quiescent run, the permanently skipped integers
        // are only those pruned while contended — at most n−1 overall.
        assert!(
            skipped < N,
            "skipped {skipped} integers, above n−1 = {}",
            N - 1
        );
    }

    #[test]
    fn poll_acquire_is_one_op_per_step() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut st = naming.namer_state();
        let mut op = naming.begin_acquire(Pid(0), &st);
        loop {
            let before = ctx.steps();
            let poll = op.step(&naming, ctx, &mut st).unwrap();
            assert_eq!(ctx.steps(), before + 1, "exactly one op per step");
            if let Poll::Ready(name) = poll {
                assert_eq!(name, 1);
                break;
            }
        }
    }

    #[test]
    fn naming_machines_on_the_engine_never_collide_and_reset_cleanly() {
        use exsel_sim::{policy::RandomPolicy, MachinePool, StepEngine};
        const N: usize = 3;
        const ROUNDS: usize = 4;
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, N);
        let mut engine = StepEngine::reusable(alloc.total()).record_trace(true);
        let mut pool: MachinePool<NamingMachine<'_>> = (0..N)
            .map(|p| naming.begin_machine(Pid(p), ROUNDS))
            .collect();
        let mut first_trace = Vec::new();
        for round in 0..3 {
            let mut policy = RandomPolicy::new(7);
            engine.run_pool(&mut policy, &mut pool);
            let all: Vec<u64> = pool
                .machines()
                .iter()
                .flat_map(|m| m.names().iter().copied())
                .collect();
            let set: BTreeSet<u64> = all.iter().copied().collect();
            assert_eq!(set.len(), N * ROUNDS, "duplicate names: {all:?}");
            // Same seed after reset ⇒ identical execution.
            if round == 0 {
                first_trace = engine.trace().unwrap().to_vec();
            } else {
                assert_eq!(engine.trace().unwrap(), &first_trace[..], "round {round}");
            }
        }
    }

    #[test]
    fn machine_and_blocking_acquire_perform_identical_op_sequences() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem_a = ThreadedShm::new(alloc.total(), 1);
        let ctx_a = Ctx::new(&mem_a, Pid(0));
        let mut st = naming.namer_state();
        let name_a = naming.acquire(ctx_a, &mut st).unwrap();

        let mem_b = ThreadedShm::new(alloc.total(), 1);
        let ctx_b = Ctx::new(&mem_b, Pid(0));
        let mut machine = naming.begin_machine(Pid(0), 1);
        let name_b = exsel_shm::drive(&mut machine, ctx_b).unwrap();
        assert_eq!(name_a, name_b);
        assert_eq!(ctx_a.steps(), ctx_b.steps());
    }

    #[test]
    fn committed_names_become_unavailable_to_late_readers() {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx0 = Ctx::new(&mem, Pid(0));
        let mut st0 = naming.namer_state();
        let name = naming.acquire(ctx0, &mut st0).unwrap();
        // The other process must not claim the same integer.
        let ctx1 = Ctx::new(&mem, Pid(1));
        let mut st1 = naming.namer_state();
        for _ in 0..5 {
            assert_ne!(naming.acquire(ctx1, &mut st1).unwrap(), name);
        }
    }
}
