//! `Altruistic-Deposit` — Theorem 9: a wait-free repository wasting at
//! most `n(n−1)` dedicated registers.
//!
//! Names are shared instead of used selfishly: process `p` continuously
//! services its *row* of an `n × n` `Help` matrix — whenever `Help[p][q]`
//! is empty, `p` acquires a fresh name through the (non-blocking)
//! unbounded-naming machinery and parks it there for `q` — while
//! simultaneously scanning its *column* `Help[*][p]` for a name to
//! consume. The two activities are interleaved one shared-memory event at
//! a time, exactly as §5 prescribes; that is why the acquire is driven
//! through the poll-based [`AcquireOp`](crate::AcquireOp). Wait-freedom of
//! `deposit`: global progress of the naming machinery means *somebody*
//! keeps filling rows — including column `p` — so `p`'s column scan
//! eventually finds a name even if `p`'s own acquisitions starve.
//!
//! Both activities are written in **announce-first form** (`row_op` /
//! `row_consume`, `column_op` / `column_consume`): the next shared-memory
//! operation is described purely, and a transition consumes its result.
//! The blocking [`AltruisticDeposit::deposit`] and the pooled
//! [`DepositOp`] step machine drive the *same* transition functions, so
//! the two forms perform identical operation sequences — a schedule
//! recorded against one replays exactly against the other (tested below
//! and in `tests/pooled_determinism.rs`).

use exsel_shm::snapshot::Poll;
use exsel_shm::{Ctx, OpKind, Pid, RegAlloc, RegId, RegRange, ShmOp, Step, StepMachine, Word};

use crate::{AcquireOp, DepositArena, NamerState, UnboundedNaming};

/// The wait-free repository.
#[derive(Clone, Debug)]
pub struct AltruisticDeposit {
    naming: UnboundedNaming,
    /// Row-major `n × n` matrix; `Help[i][j]` holds a name `i` acquired
    /// for `j` to consume.
    help: RegRange,
    arena: DepositArena,
    n: usize,
}

/// What the row-service activity is currently doing.
#[derive(Clone, Copy, Debug)]
enum RowPhase {
    /// Reading `Help[p][q]` looking for an empty cell.
    Scanning,
    /// Driving the embedded name acquisition destined for
    /// `Help[p][target]`.
    Acquiring { target: usize },
    /// Writing the acquired name into `Help[p][target]`.
    Parking { target: usize, name: u64 },
}

/// Per-process local state for [`AltruisticDeposit`]. Bound to the pid it
/// was created for ([`AltruisticDeposit::depositor_state`]): the embedded
/// [`AcquireOp`] owns that process's naming suite and is re-armed in
/// place per acquisition, so long-lived states (pooled machines, blocking
/// loops) allocate nothing per name.
#[derive(Clone, Debug)]
pub struct AltruisticState {
    namer: NamerState,
    acquire: AcquireOp,
    row_phase: RowPhase,
    /// Next column of the own row to examine.
    row_q: usize,
    /// Next row of the own column to examine.
    col_r: usize,
}

impl AltruisticState {
    /// The pid this state was created for (the embedded acquire owns
    /// that process's naming slot).
    fn pid(&self) -> Pid {
        Pid(self.acquire.slot())
    }

    /// Cross-trial re-initialization in place (pooled machines).
    fn reset_trial(&mut self, n: usize) {
        self.namer.reset(n);
        self.acquire.reset_trial(&self.namer);
        self.row_phase = RowPhase::Scanning;
        self.row_q = 0;
        self.col_r = 0;
    }

    /// Same-trial crash re-entry in place: the naming state is kept
    /// (claims stay claimed) but its suite is republished before the new
    /// incarnation contends, and both activities restart from their
    /// initial cursors. See [`NamerState::unpublish`].
    fn reenter(&mut self) {
        self.namer.unpublish();
        self.acquire.rearm(&self.namer);
        self.row_phase = RowPhase::Scanning;
        self.row_q = 0;
        self.col_r = 0;
    }
}

impl AltruisticDeposit {
    /// Builds a repository for `n` processes with `arena_capacity`
    /// dedicated registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `arena_capacity < 2n`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n: usize, arena_capacity: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(
            arena_capacity >= 2 * n,
            "arena must hold at least the initial candidate lists (2n)"
        );
        AltruisticDeposit {
            naming: UnboundedNaming::new(alloc, n),
            help: alloc.reserve(n * n),
            arena: DepositArena::new(alloc, arena_capacity),
            n,
        }
    }

    /// Initial local state for the depositor running as process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is beyond the system size.
    #[must_use]
    pub fn depositor_state(&self, pid: Pid) -> AltruisticState {
        let namer = self.naming.namer_state();
        let acquire = self.naming.begin_acquire(pid, &namer);
        AltruisticState {
            namer,
            acquire,
            row_phase: RowPhase::Scanning,
            row_q: 0,
            col_r: 0,
        }
    }

    /// The dedicated registers.
    #[must_use]
    pub fn arena(&self) -> &DepositArena {
        &self.arena
    }

    /// The naming machinery (experiment introspection).
    #[must_use]
    pub fn naming(&self) -> &UnboundedNaming {
        &self.naming
    }

    /// System size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    fn help_cell(&self, row: usize, col: usize) -> RegId {
        self.help.get(row * self.n + col)
    }

    /// Post-run inspection (host side): the name parked in each `Help`
    /// cell, row-major, `None` for empty cells. Names parked at crash
    /// time are exactly the registers Theorem 9's `n(n−1)` budget
    /// accounts for.
    #[must_use]
    pub fn help_occupancy(
        &self,
        mem: &dyn exsel_shm::Memory,
        observer: exsel_shm::Pid,
    ) -> Vec<Option<u64>> {
        self.help
            .iter()
            .map(|reg| mem.read(observer, reg).ok().and_then(|w| w.as_int()))
            .collect()
    }

    /// [`AltruisticDeposit::help_occupancy`] over a raw register bank —
    /// the post-trial inspection path for `StepEngine` executions
    /// (`StepEngine::registers`), which have no `Memory` handle.
    #[must_use]
    pub fn help_occupancy_in(&self, regs: &[Word]) -> Vec<Option<u64>> {
        self.help.iter().map(|reg| regs[reg.0].as_int()).collect()
    }

    /// The next operation of the row-service activity (pure).
    fn row_op(&self, pid: usize, st: &AltruisticState) -> ShmOp {
        match st.row_phase {
            RowPhase::Scanning => ShmOp::Read(self.help_cell(pid, st.row_q)),
            RowPhase::Acquiring { .. } => st.acquire.describe(&self.naming, &st.namer),
            RowPhase::Parking { target, name } => {
                ShmOp::Write(self.help_cell(pid, target), Word::Int(name))
            }
        }
    }

    /// [`AltruisticDeposit::row_op`] without materializing the operand
    /// word (the acquire's pending snapshot write would clone an `Arc`).
    fn row_peek(&self, pid: usize, st: &AltruisticState) -> (OpKind, RegId) {
        match st.row_phase {
            RowPhase::Scanning => (OpKind::Read, self.help_cell(pid, st.row_q)),
            RowPhase::Acquiring { .. } => st.acquire.peek_op(&self.naming, &st.namer),
            RowPhase::Parking { target, .. } => (OpKind::Write, self.help_cell(pid, target)),
        }
    }

    /// Consumes the result of the operation last described by
    /// [`AltruisticDeposit::row_op`] and transitions the row activity.
    fn row_consume(&self, st: &mut AltruisticState, input: &Word) {
        match st.row_phase {
            RowPhase::Scanning => {
                let q = st.row_q;
                st.row_q = (st.row_q + 1) % self.n;
                if input.is_null() {
                    st.acquire.rearm(&st.namer);
                    st.row_phase = RowPhase::Acquiring { target: q };
                }
            }
            RowPhase::Acquiring { target } => {
                if let Poll::Ready(name) = st.acquire.consume(&self.naming, &mut st.namer, input) {
                    st.row_phase = RowPhase::Parking { target, name };
                }
            }
            RowPhase::Parking { .. } => st.row_phase = RowPhase::Scanning,
        }
    }

    /// The next operation of the column-scan activity (pure).
    fn column_op(&self, pid: usize, st: &AltruisticState) -> ShmOp {
        ShmOp::Read(self.help_cell(st.col_r, pid))
    }

    /// Consumes a column read: `Some((row, name))` when a parked name was
    /// found.
    fn column_consume(&self, st: &mut AltruisticState, input: &Word) -> Option<(usize, u64)> {
        let r = st.col_r;
        st.col_r = (st.col_r + 1) % self.n;
        input.as_int().map(|name| (r, name))
    }

    /// One shared-memory event of the row-service activity (blocking
    /// driver over [`AltruisticDeposit::row_op`]/`row_consume`).
    fn step_row(&self, ctx: Ctx<'_>, st: &mut AltruisticState) -> Step<()> {
        match self.row_op(ctx.pid().0, st) {
            ShmOp::Read(reg) => {
                let value = ctx.read(reg)?;
                self.row_consume(st, &value);
            }
            ShmOp::Write(reg, word) => {
                ctx.write(reg, word)?;
                self.row_consume(st, &Word::Null);
            }
        }
        Ok(())
    }

    /// One shared-memory event of the column-scan activity: returns
    /// `Some((row, name))` when a parked name is found.
    fn step_column(&self, ctx: Ctx<'_>, st: &mut AltruisticState) -> Step<Option<(usize, u64)>> {
        let ShmOp::Read(reg) = self.column_op(ctx.pid().0, st) else {
            unreachable!("column scan only reads")
        };
        let value = ctx.read(reg)?;
        Ok(self.column_consume(st, &value))
    }

    /// Deposits `value`, returning the register index it permanently
    /// occupies. Wait-free: completes in a bounded number of this
    /// process's own steps whenever names keep flowing (guaranteed by the
    /// non-blocking naming machinery — in the worst case by this process's
    /// own row service filling `Help[p][p]`).
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    ///
    /// # Panics
    ///
    /// Panics if the arena runs out of capacity, or if `st` was created
    /// for a different pid (the state owns that process's naming slot —
    /// driving it from another process would break claim exclusiveness).
    pub fn deposit(&self, ctx: Ctx<'_>, st: &mut AltruisticState, value: u64) -> Step<u64> {
        assert!(ctx.pid().0 < self.n, "pid beyond system size");
        assert_eq!(ctx.pid(), st.pid(), "state driven by a different process");
        let p = ctx.pid().0;
        loop {
            // Fair event-level interleaving of the two activities.
            self.step_row(ctx, st)?;
            if let Some((row, name)) = self.step_column(ctx, st)? {
                self.arena.write(ctx, name, value)?;
                ctx.write(self.help_cell(row, p), Word::Null)?;
                return Ok(name);
            }
        }
    }

    /// Services the helper row without depositing — lets a process that
    /// has nothing to deposit keep the system live (the paper's fairness
    /// assumption). Performs `events` shared-memory events.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if `st` was created for a different pid.
    pub fn serve(&self, ctx: Ctx<'_>, st: &mut AltruisticState, events: usize) -> Step<()> {
        assert_eq!(ctx.pid(), st.pid(), "state driven by a different process");
        for _ in 0..events {
            self.step_row(ctx, st)?;
        }
        Ok(())
    }

    /// The **wait-free Unbounded-Naming** operation of Theorem 10:
    /// exclusively claims and returns the next integer, without using it
    /// as a deposit address. Identical to [`AltruisticDeposit::deposit`]
    /// except the consumed name is handed to the caller instead of
    /// addressing a register — at most `n(n−1)` integers (those parked in
    /// `Help` at crash time) are never assigned.
    ///
    /// Acquired integers and deposit addresses come from the same
    /// exclusive pool, so `acquire` and `deposit` may be mixed freely.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    ///
    /// # Panics
    ///
    /// Panics if `st` was created for a different pid.
    pub fn acquire(&self, ctx: Ctx<'_>, st: &mut AltruisticState) -> Step<u64> {
        assert!(ctx.pid().0 < self.n, "pid beyond system size");
        assert_eq!(ctx.pid(), st.pid(), "state driven by a different process");
        let p = ctx.pid().0;
        loop {
            self.step_row(ctx, st)?;
            if let Some((row, name)) = self.step_column(ctx, st)? {
                ctx.write(self.help_cell(row, p), Word::Null)?;
                return Ok(name);
            }
        }
    }

    /// Starts the deposit loop of process `pid` as a self-contained,
    /// resettable [`StepMachine`]: the machine performs `rounds` deposits
    /// (round `i` deposits `value_base + i`) and completes with the last
    /// claimed register index; every claimed index is readable through
    /// [`DepositOp::deposits`] — including the deposits a crashed machine
    /// completed, which are permanent. Drive it with [`exsel_shm::drive`]
    /// for the blocking form or pool it on the `exsel-sim` engine.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `pid` is beyond the system size.
    #[must_use]
    pub fn begin_deposit(&self, pid: Pid, value_base: u64, rounds: usize) -> DepositOp<'_> {
        assert!(rounds > 0, "need at least one deposit round");
        assert!(pid.0 < self.n, "pid beyond system size");
        DepositOp {
            repo: self,
            pid,
            st: self.depositor_state(pid),
            phase: DepositPhase::Row,
            goal: DepositGoal::Deposit { rounds },
            deposits: Vec::with_capacity(rounds),
            value_base,
            events_done: 0,
        }
    }

    /// Starts a serve-only machine for process `pid`: it performs
    /// `events` row-service events (parking names for its row's
    /// consumers) and completes with `None`, never consuming a name —
    /// the machine form of [`AltruisticDeposit::serve`], used to model
    /// the paper's fairness assumption in mixed deposit/serve workloads.
    ///
    /// # Panics
    ///
    /// Panics if `events == 0` or `pid` is beyond the system size.
    #[must_use]
    pub fn begin_server(&self, pid: Pid, events: u64) -> DepositOp<'_> {
        assert!(events > 0, "need at least one serve event");
        assert!(pid.0 < self.n, "pid beyond system size");
        DepositOp {
            repo: self,
            pid,
            st: self.depositor_state(pid),
            phase: DepositPhase::Row,
            goal: DepositGoal::Serve { events },
            deposits: Vec::new(),
            value_base: 0,
            events_done: 0,
        }
    }
}

/// What a [`DepositOp`] is driving toward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DepositGoal {
    /// Consume `rounds` names, depositing a value at each.
    Deposit { rounds: usize },
    /// Row service only: perform `events` shared-memory events.
    Serve { events: u64 },
}

/// The machine's current phase — the explicit form of the blocking
/// deposit loop's control flow.
#[derive(Clone, Copy, Debug)]
enum DepositPhase {
    /// One row-service event (deposit-or-help activity).
    Row,
    /// One column-scan read (consume activity).
    Column,
    /// A name was found: write the deposit value into its register.
    ArenaWrite { row: usize, name: u64 },
    /// Release the consumed `Help` cell, completing the round.
    HelpClear { row: usize, name: u64 },
}

/// The wait-free altruistic deposit (or serve) loop of one process as a
/// self-contained, resettable [`StepMachine`] — the pooled form the
/// `MachineSet` family and the grid driver run on the step engine. The
/// deposit-or-help and consume activities of §5 are explicit phases
/// (strictly alternating `Row`/`Column` events, exactly like the blocking
/// loop), so the machine's operation sequence is identical to
/// [`AltruisticDeposit::deposit`]'s. See
/// [`AltruisticDeposit::begin_deposit`] and
/// [`AltruisticDeposit::begin_server`].
#[derive(Clone, Debug)]
pub struct DepositOp<'a> {
    repo: &'a AltruisticDeposit,
    pid: Pid,
    st: AltruisticState,
    phase: DepositPhase,
    goal: DepositGoal,
    deposits: Vec<u64>,
    value_base: u64,
    events_done: u64,
}

impl DepositOp<'_> {
    /// The arena register indices claimed so far in this trial, in
    /// deposit order (empty for serve machines). Deposits recorded here
    /// are permanent even if the machine is crashed later in the trial.
    #[must_use]
    pub fn deposits(&self) -> &[u64] {
        &self.deposits
    }

    /// Whether this machine only serves (never consumes a name).
    #[must_use]
    pub fn is_server(&self) -> bool {
        matches!(self.goal, DepositGoal::Serve { .. })
    }

    /// Re-arms a completed deposit machine in place for its next round
    /// run **within the same trial**, keeping the process's naming and
    /// help state (the open-loop session path; contrast
    /// [`StepMachine::reset`], which starts a fresh trial). `value_base`
    /// becomes the new round's deposit value.
    ///
    /// # Panics
    ///
    /// Panics on serve-only machines.
    pub fn begin_round(&mut self, value_base: u64) {
        assert!(!self.is_server(), "serve-only machines do not deposit");
        self.deposits.clear();
        self.value_base = value_base;
        self.phase = DepositPhase::Row;
        self.events_done = 0;
    }

    /// Re-enters after a mid-operation crash as a fresh contender: like
    /// [`DepositOp::begin_round`], but the embedded naming suite is
    /// republished from local state first (a crash may have eaten suite
    /// writes, leaving a stale published fresh frontier — see
    /// [`NamingMachine::reenter`](crate::NamingMachine::reenter)).
    /// Names the dead incarnation parked in `Help` stay parked and
    /// consumable; a name it consumed without completing the deposit is
    /// wasted, exactly the paper's crash budget.
    ///
    /// # Panics
    ///
    /// Panics on serve-only machines.
    pub fn reenter(&mut self, value_base: u64) {
        assert!(!self.is_server(), "serve-only machines do not deposit");
        self.st.reenter();
        self.deposits.clear();
        self.value_base = value_base;
        self.phase = DepositPhase::Row;
        self.events_done = 0;
    }
}

impl exsel_shm::Footprint for AltruisticDeposit {
    /// The §5 help-matrix discipline, cell-precise: process `p` parks
    /// names in its own row `help[p][·]` and clears claims in its own
    /// column `help[·][p]`, so cell `(r, c)` has exactly two legitimate
    /// writers — `r` and `c`. Two writers means no cell is statically
    /// exclusive: row and column are declared shared, and the naming
    /// component underneath carries the exclusive extents. The arena is
    /// shared like every name-addressed bank. Servers run the same row
    /// service, so one declaration covers depositors and servers alike.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        exsel_shm::Footprint::footprint(&self.naming, pid, spec);
        spec.phase("deposit.help").reads(self.help);
        if pid.0 < self.n {
            let n = self.n;
            spec.phase("deposit.help_row")
                .writes_shared(self.help.slice(pid.0 * n, n));
            for r in 0..n {
                spec.phase("deposit.help_col")
                    .writes_shared(self.help.slice(r * n + pid.0, 1));
            }
        }
        exsel_shm::Footprint::footprint(&self.arena, pid, spec);
    }
}

impl StepMachine for DepositOp<'_> {
    /// The last claimed register index; `None` for serve machines.
    type Output = Option<u64>;

    fn op(&self) -> ShmOp {
        let p = self.pid.0;
        match self.phase {
            DepositPhase::Row => self.repo.row_op(p, &self.st),
            DepositPhase::Column => self.repo.column_op(p, &self.st),
            DepositPhase::ArenaWrite { name, .. } => ShmOp::Write(
                self.repo.arena.reg(name),
                Word::Int(self.value_base + self.deposits.len() as u64),
            ),
            DepositPhase::HelpClear { row, .. } => {
                ShmOp::Write(self.repo.help_cell(row, p), Word::Null)
            }
        }
    }

    fn peek(&self) -> (OpKind, RegId) {
        let p = self.pid.0;
        match self.phase {
            DepositPhase::Row => self.repo.row_peek(p, &self.st),
            DepositPhase::Column => (OpKind::Read, self.repo.help_cell(self.st.col_r, p)),
            DepositPhase::ArenaWrite { name, .. } => (OpKind::Write, self.repo.arena.reg(name)),
            DepositPhase::HelpClear { row, .. } => (OpKind::Write, self.repo.help_cell(row, p)),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<Option<u64>> {
        match self.phase {
            DepositPhase::Row => {
                self.repo.row_consume(&mut self.st, input);
                match self.goal {
                    DepositGoal::Deposit { .. } => self.phase = DepositPhase::Column,
                    DepositGoal::Serve { events } => {
                        self.events_done += 1;
                        if self.events_done == events {
                            return Poll::Ready(None);
                        }
                    }
                }
            }
            DepositPhase::Column => {
                self.phase = match self.repo.column_consume(&mut self.st, input) {
                    Some((row, name)) => DepositPhase::ArenaWrite { row, name },
                    None => DepositPhase::Row,
                };
            }
            DepositPhase::ArenaWrite { row, name } => {
                self.phase = DepositPhase::HelpClear { row, name };
            }
            DepositPhase::HelpClear { name, .. } => {
                self.deposits.push(name);
                let DepositGoal::Deposit { rounds } = self.goal else {
                    unreachable!("serve machines never reach the consume phases")
                };
                if self.deposits.len() == rounds {
                    return Poll::Ready(Some(name));
                }
                self.phase = DepositPhase::Row;
            }
        }
        Poll::Pending
    }

    fn reset(&mut self, pid: Pid) {
        assert_eq!(pid, self.pid, "deposit machine reset for a different pid");
        self.st.reset_trial(self.repo.n);
        self.phase = DepositPhase::Row;
        self.deposits.clear();
        self.events_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{drive, Pid, ThreadedShm};
    use std::collections::BTreeSet;

    #[test]
    fn solo_deposit_completes() {
        // Wait-freedom in the extreme: all other processes silent.
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 3, 64);
        let mem = ThreadedShm::new(alloc.total(), 3);
        let ctx = Ctx::new(&mem, Pid(1));
        let mut st = repo.depositor_state(Pid(1));
        let r1 = repo.deposit(ctx, &mut st, 10).unwrap();
        let r2 = repo.deposit(ctx, &mut st, 20).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(repo.arena().read(ctx, r1).unwrap(), Word::Int(10));
        assert_eq!(repo.arena().read(ctx, r2).unwrap(), Word::Int(20));
    }

    #[test]
    fn concurrent_deposits_are_exclusive_and_persistent() {
        const N: usize = 3;
        const PER: usize = 6;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 512);
        let mem = ThreadedShm::new(alloc.total(), N);
        let all: Vec<(u64, u64)> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (repo, mem) = (&repo, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = repo.depositor_state(Pid(p));
                        (0..PER)
                            .map(|i| {
                                let v = (p * PER + i) as u64 + 1000;
                                (repo.deposit(ctx, &mut st, v).unwrap(), v)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let regs: BTreeSet<u64> = all.iter().map(|&(r, _)| r).collect();
        assert_eq!(regs.len(), N * PER, "register reused for two deposits");
        let ctx = Ctx::new(&mem, Pid(0));
        for (r, v) in all {
            assert_eq!(
                repo.arena().read(ctx, r).unwrap(),
                Word::Int(v),
                "R_{r} overwritten"
            );
        }
    }

    #[test]
    fn helper_parks_names_for_others() {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 2, 64);
        let mem = ThreadedShm::new(alloc.total(), 2);
        // Process 0 only serves; it should fill Help[0][1] eventually.
        let ctx0 = Ctx::new(&mem, Pid(0));
        let mut st0 = repo.depositor_state(Pid(0));
        repo.serve(ctx0, &mut st0, 400).unwrap();
        // Now process 1 deposits; a name is already waiting in its column.
        let ctx1 = Ctx::new(&mem, Pid(1));
        let mut st1 = repo.depositor_state(Pid(1));
        let before = ctx1.steps();
        let r = repo.deposit(ctx1, &mut st1, 5).unwrap();
        assert!(r >= 1);
        // Found within a couple of column sweeps (much less than a full
        // acquire would cost).
        assert!(ctx1.steps() - before < 50);
    }

    #[test]
    fn acquire_and_deposit_share_one_exclusive_pool() {
        const N: usize = 3;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 512);
        let mem = ThreadedShm::new(alloc.total(), N);
        let all: Vec<u64> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (repo, mem) = (&repo, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = repo.depositor_state(Pid(p));
                        let mut got = Vec::new();
                        for i in 0..4u64 {
                            if i % 2 == 0 {
                                got.push(repo.acquire(ctx, &mut st).unwrap());
                            } else {
                                got.push(repo.deposit(ctx, &mut st, i).unwrap());
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "acquire/deposit pool not exclusive");
    }

    #[test]
    fn solo_acquire_is_wait_free() {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 4, 128);
        let mem = ThreadedShm::new(alloc.total(), 4);
        let ctx = Ctx::new(&mem, Pid(3));
        let mut st = repo.depositor_state(Pid(3));
        let a = repo.acquire(ctx, &mut st).unwrap();
        let b = repo.acquire(ctx, &mut st).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn waste_bounded_by_parked_names_in_quiescent_run() {
        const N: usize = 3;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 256);
        let mem = ThreadedShm::new(alloc.total(), N);
        std::thread::scope(|s| {
            for p in 0..N {
                let (repo, mem) = (&repo, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let mut st = repo.depositor_state(Pid(p));
                    for i in 0..5u64 {
                        repo.deposit(ctx, &mut st, i).unwrap();
                    }
                });
            }
        });
        let occ = repo.arena().occupancy(&mem, Pid(0));
        let frontier = occ.iter().rposition(Option::is_some).map_or(0, |i| i + 1);
        let holes = occ[..frontier].iter().filter(|v| v.is_none()).count();
        // Theorem 9: at most n(n−1) registers are never used — here the
        // holes are names parked in Help plus claims pruned mid-flight.
        assert!(
            holes < N * (N - 1) + N,
            "waste {holes} above the Theorem 9 budget"
        );
    }

    #[test]
    fn machine_and_blocking_deposit_perform_identical_op_sequences() {
        const ROUNDS: usize = 3;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 2, 64);

        let mem_a = ThreadedShm::new(alloc.total(), 2);
        let ctx_a = Ctx::new(&mem_a, Pid(0));
        let mut st = repo.depositor_state(Pid(0));
        let blocking: Vec<u64> = (0..ROUNDS as u64)
            .map(|i| repo.deposit(ctx_a, &mut st, 100 + i).unwrap())
            .collect();

        let mem_b = ThreadedShm::new(alloc.total(), 2);
        let ctx_b = Ctx::new(&mem_b, Pid(0));
        let mut machine = repo.begin_deposit(Pid(0), 100, ROUNDS);
        let last = drive(&mut machine, ctx_b).unwrap();
        assert_eq!(machine.deposits(), &blocking[..]);
        assert_eq!(last, Some(*blocking.last().unwrap()));
        assert_eq!(ctx_a.steps(), ctx_b.steps(), "op sequences diverged");
        // Identical memory contents too: the machine deposited the same
        // values at the same registers.
        for (i, &r) in blocking.iter().enumerate() {
            assert_eq!(
                repo.arena().read(ctx_b, r).unwrap(),
                Word::Int(100 + i as u64)
            );
        }
    }

    #[test]
    #[should_panic(expected = "different process")]
    fn state_of_another_pid_is_rejected() {
        // The state owns its pid's naming slot; driving it from another
        // process would break claim exclusiveness silently.
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 2, 64);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let mut st = repo.depositor_state(Pid(0));
        let _ = repo.deposit(Ctx::new(&mem, Pid(1)), &mut st, 1);
    }

    #[test]
    fn server_machine_parks_names_and_completes() {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 2, 64);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut server = repo.begin_server(Pid(0), 400);
        assert!(server.is_server());
        assert_eq!(drive(&mut server, ctx).unwrap(), None);
        assert_eq!(ctx.steps(), 400);
        assert!(server.deposits().is_empty());
        // The server filled its whole Help row.
        let occ = repo.help_occupancy(&mem, Pid(0));
        assert!(
            occ[..2].iter().all(Option::is_some),
            "row not filled: {occ:?}"
        );
    }

    #[test]
    fn pooled_deposit_machines_on_the_engine_stay_exclusive_and_reset_cleanly() {
        use exsel_sim::{policy::RandomPolicy, MachinePool, StepEngine};
        const N: usize = 3;
        const ROUNDS: usize = 2;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 512);
        let mut engine = StepEngine::reusable(alloc.total()).record_trace(true);
        let mut pool: MachinePool<DepositOp<'_>> = (0..N)
            .map(|p| repo.begin_deposit(Pid(p), (p as u64 + 1) * 100, ROUNDS))
            .collect();
        let mut first_trace = Vec::new();
        for round in 0..3 {
            let mut policy = RandomPolicy::new(11);
            engine.run_pool(&mut policy, &mut pool);
            let all: Vec<u64> = pool
                .machines()
                .iter()
                .flat_map(|m| m.deposits().iter().copied())
                .collect();
            let set: BTreeSet<u64> = all.iter().copied().collect();
            assert_eq!(
                set.len(),
                N * ROUNDS,
                "duplicate deposit registers: {all:?}"
            );
            // Same seed after reset ⇒ identical execution.
            if round == 0 {
                first_trace = engine.trace().unwrap().to_vec();
            } else {
                assert_eq!(engine.trace().unwrap(), &first_trace[..], "round {round}");
            }
        }
    }
}
