//! `Altruistic-Deposit` — Theorem 9: a wait-free repository wasting at
//! most `n(n−1)` dedicated registers.
//!
//! Names are shared instead of used selfishly: process `p` continuously
//! services its *row* of an `n × n` `Help` matrix — whenever `Help[p][q]`
//! is empty, `p` acquires a fresh name through the (non-blocking)
//! unbounded-naming machinery and parks it there for `q` — while
//! simultaneously scanning its *column* `Help[*][p]` for a name to
//! consume. The two activities are interleaved one shared-memory event at
//! a time, exactly as §5 prescribes; that is why the acquire is driven
//! through the poll-based [`AcquireOp`](crate::AcquireOp). Wait-freedom of
//! `deposit`: global progress of the naming machinery means *somebody*
//! keeps filling rows — including column `p` — so `p`'s column scan
//! eventually finds a name even if `p`'s own acquisitions starve.

use exsel_shm::snapshot::Poll;
use exsel_shm::{Ctx, RegAlloc, RegId, RegRange, Step, Word};

use crate::{AcquireOp, DepositArena, NamerState, UnboundedNaming};

/// The wait-free repository.
#[derive(Clone, Debug)]
pub struct AltruisticDeposit {
    naming: UnboundedNaming,
    /// Row-major `n × n` matrix; `Help[i][j]` holds a name `i` acquired
    /// for `j` to consume.
    help: RegRange,
    arena: DepositArena,
    n: usize,
}

/// What the row-service activity is currently doing.
#[derive(Clone, Debug)]
enum RowPhase {
    /// Reading `Help[p][q]` looking for an empty cell.
    Scanning,
    /// Driving a name acquisition destined for `Help[p][target]`.
    Acquiring { target: usize, op: Box<AcquireOp> },
    /// Writing the acquired name into `Help[p][target]`.
    Parking { target: usize, name: u64 },
}

/// Per-process local state for [`AltruisticDeposit`].
#[derive(Clone, Debug)]
pub struct AltruisticState {
    namer: NamerState,
    row_phase: RowPhase,
    /// Next column of the own row to examine.
    row_q: usize,
    /// Next row of the own column to examine.
    col_r: usize,
}

impl AltruisticDeposit {
    /// Builds a repository for `n` processes with `arena_capacity`
    /// dedicated registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `arena_capacity < 2n`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n: usize, arena_capacity: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(
            arena_capacity >= 2 * n,
            "arena must hold at least the initial candidate lists (2n)"
        );
        AltruisticDeposit {
            naming: UnboundedNaming::new(alloc, n),
            help: alloc.reserve(n * n),
            arena: DepositArena::new(alloc, arena_capacity),
            n,
        }
    }

    /// Initial local state for a depositor.
    #[must_use]
    pub fn depositor_state(&self) -> AltruisticState {
        AltruisticState {
            namer: self.naming.namer_state(),
            row_phase: RowPhase::Scanning,
            row_q: 0,
            col_r: 0,
        }
    }

    /// The dedicated registers.
    #[must_use]
    pub fn arena(&self) -> &DepositArena {
        &self.arena
    }

    /// The naming machinery (experiment introspection).
    #[must_use]
    pub fn naming(&self) -> &UnboundedNaming {
        &self.naming
    }

    /// System size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    fn help_cell(&self, row: usize, col: usize) -> RegId {
        self.help.get(row * self.n + col)
    }

    /// Post-run inspection (host side): the name parked in each `Help`
    /// cell, row-major, `None` for empty cells. Names parked at crash
    /// time are exactly the registers Theorem 9's `n(n−1)` budget
    /// accounts for.
    #[must_use]
    pub fn help_occupancy(
        &self,
        mem: &dyn exsel_shm::Memory,
        observer: exsel_shm::Pid,
    ) -> Vec<Option<u64>> {
        self.help
            .iter()
            .map(|reg| mem.read(observer, reg).ok().and_then(|w| w.as_int()))
            .collect()
    }

    /// One shared-memory event of the row-service activity.
    fn step_row(&self, ctx: Ctx<'_>, st: &mut AltruisticState) -> Step<()> {
        let p = ctx.pid().0;
        match &mut st.row_phase {
            RowPhase::Scanning => {
                let q = st.row_q;
                st.row_q = (st.row_q + 1) % self.n;
                if ctx.read(self.help_cell(p, q))?.is_null() {
                    let op = Box::new(self.naming.begin_acquire(ctx.pid(), &st.namer));
                    st.row_phase = RowPhase::Acquiring { target: q, op };
                }
            }
            RowPhase::Acquiring { target, op } => {
                let target = *target;
                if let Poll::Ready(name) = op.step(&self.naming, ctx, &mut st.namer)? {
                    st.row_phase = RowPhase::Parking { target, name };
                }
            }
            RowPhase::Parking { target, name } => {
                let (target, name) = (*target, *name);
                ctx.write(self.help_cell(p, target), name)?;
                st.row_phase = RowPhase::Scanning;
            }
        }
        Ok(())
    }

    /// One shared-memory event of the column-scan activity: returns
    /// `Some((row, name))` when a parked name is found.
    fn step_column(&self, ctx: Ctx<'_>, st: &mut AltruisticState) -> Step<Option<(usize, u64)>> {
        let p = ctx.pid().0;
        let r = st.col_r;
        st.col_r = (st.col_r + 1) % self.n;
        Ok(ctx
            .read(self.help_cell(r, p))?
            .as_int()
            .map(|name| (r, name)))
    }

    /// Deposits `value`, returning the register index it permanently
    /// occupies. Wait-free: completes in a bounded number of this
    /// process's own steps whenever names keep flowing (guaranteed by the
    /// non-blocking naming machinery — in the worst case by this process's
    /// own row service filling `Help[p][p]`).
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    ///
    /// # Panics
    ///
    /// Panics if the arena runs out of capacity.
    pub fn deposit(&self, ctx: Ctx<'_>, st: &mut AltruisticState, value: u64) -> Step<u64> {
        assert!(ctx.pid().0 < self.n, "pid beyond system size");
        let p = ctx.pid().0;
        loop {
            // Fair event-level interleaving of the two activities.
            self.step_row(ctx, st)?;
            if let Some((row, name)) = self.step_column(ctx, st)? {
                self.arena.write(ctx, name, value)?;
                ctx.write(self.help_cell(row, p), Word::Null)?;
                return Ok(name);
            }
        }
    }

    /// Services the helper row without depositing — lets a process that
    /// has nothing to deposit keep the system live (the paper's fairness
    /// assumption). Performs `events` shared-memory events.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    pub fn serve(&self, ctx: Ctx<'_>, st: &mut AltruisticState, events: usize) -> Step<()> {
        for _ in 0..events {
            self.step_row(ctx, st)?;
        }
        Ok(())
    }

    /// The **wait-free Unbounded-Naming** operation of Theorem 10:
    /// exclusively claims and returns the next integer, without using it
    /// as a deposit address. Identical to [`AltruisticDeposit::deposit`]
    /// except the consumed name is handed to the caller instead of
    /// addressing a register — at most `n(n−1)` integers (those parked in
    /// `Help` at crash time) are never assigned.
    ///
    /// Acquired integers and deposit addresses come from the same
    /// exclusive pool, so `acquire` and `deposit` may be mixed freely.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    pub fn acquire(&self, ctx: Ctx<'_>, st: &mut AltruisticState) -> Step<u64> {
        assert!(ctx.pid().0 < self.n, "pid beyond system size");
        let p = ctx.pid().0;
        loop {
            self.step_row(ctx, st)?;
            if let Some((row, name)) = self.step_column(ctx, st)? {
                ctx.write(self.help_cell(row, p), Word::Null)?;
                return Ok(name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    #[test]
    fn solo_deposit_completes() {
        // Wait-freedom in the extreme: all other processes silent.
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 3, 64);
        let mem = ThreadedShm::new(alloc.total(), 3);
        let ctx = Ctx::new(&mem, Pid(1));
        let mut st = repo.depositor_state();
        let r1 = repo.deposit(ctx, &mut st, 10).unwrap();
        let r2 = repo.deposit(ctx, &mut st, 20).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(repo.arena().read(ctx, r1).unwrap(), Word::Int(10));
        assert_eq!(repo.arena().read(ctx, r2).unwrap(), Word::Int(20));
    }

    #[test]
    fn concurrent_deposits_are_exclusive_and_persistent() {
        const N: usize = 3;
        const PER: usize = 6;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 512);
        let mem = ThreadedShm::new(alloc.total(), N);
        let all: Vec<(u64, u64)> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (repo, mem) = (&repo, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = repo.depositor_state();
                        (0..PER)
                            .map(|i| {
                                let v = (p * PER + i) as u64 + 1000;
                                (repo.deposit(ctx, &mut st, v).unwrap(), v)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let regs: BTreeSet<u64> = all.iter().map(|&(r, _)| r).collect();
        assert_eq!(regs.len(), N * PER, "register reused for two deposits");
        let ctx = Ctx::new(&mem, Pid(0));
        for (r, v) in all {
            assert_eq!(
                repo.arena().read(ctx, r).unwrap(),
                Word::Int(v),
                "R_{r} overwritten"
            );
        }
    }

    #[test]
    fn helper_parks_names_for_others() {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 2, 64);
        let mem = ThreadedShm::new(alloc.total(), 2);
        // Process 0 only serves; it should fill Help[0][1] eventually.
        let ctx0 = Ctx::new(&mem, Pid(0));
        let mut st0 = repo.depositor_state();
        repo.serve(ctx0, &mut st0, 400).unwrap();
        // Now process 1 deposits; a name is already waiting in its column.
        let ctx1 = Ctx::new(&mem, Pid(1));
        let mut st1 = repo.depositor_state();
        let before = ctx1.steps();
        let r = repo.deposit(ctx1, &mut st1, 5).unwrap();
        assert!(r >= 1);
        // Found within a couple of column sweeps (much less than a full
        // acquire would cost).
        assert!(ctx1.steps() - before < 50);
    }

    #[test]
    fn acquire_and_deposit_share_one_exclusive_pool() {
        const N: usize = 3;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 512);
        let mem = ThreadedShm::new(alloc.total(), N);
        let all: Vec<u64> = std::thread::scope(|s| {
            (0..N)
                .map(|p| {
                    let (repo, mem) = (&repo, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut st = repo.depositor_state();
                        let mut got = Vec::new();
                        for i in 0..4u64 {
                            if i % 2 == 0 {
                                got.push(repo.acquire(ctx, &mut st).unwrap());
                            } else {
                                got.push(repo.deposit(ctx, &mut st, i).unwrap());
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "acquire/deposit pool not exclusive");
    }

    #[test]
    fn solo_acquire_is_wait_free() {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, 4, 128);
        let mem = ThreadedShm::new(alloc.total(), 4);
        let ctx = Ctx::new(&mem, Pid(3));
        let mut st = repo.depositor_state();
        let a = repo.acquire(ctx, &mut st).unwrap();
        let b = repo.acquire(ctx, &mut st).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn waste_bounded_by_parked_names_in_quiescent_run() {
        const N: usize = 3;
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 256);
        let mem = ThreadedShm::new(alloc.total(), N);
        std::thread::scope(|s| {
            for p in 0..N {
                let (repo, mem) = (&repo, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let mut st = repo.depositor_state();
                    for i in 0..5u64 {
                        repo.deposit(ctx, &mut st, i).unwrap();
                    }
                });
            }
        });
        let occ = repo.arena().occupancy(&mem, Pid(0));
        let frontier = occ.iter().rposition(Option::is_some).map_or(0, |i| i + 1);
        let holes = occ[..frontier].iter().filter(|v| v.is_none()).count();
        // Theorem 9: at most n(n−1) registers are never used — here the
        // holes are names parked in Help plus claims pruned mid-flight.
        assert!(
            holes < N * (N - 1) + N,
            "waste {holes} above the Theorem 9 budget"
        );
    }
}
