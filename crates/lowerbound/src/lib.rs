//! Executable lower bounds — Theorems 6 and 7 of *Asynchronous Exclusive
//! Selection*.
//!
//! Theorem 6: any wait-free solution of Renaming with `k` contenders,
//! original names in `[N]`, new names in `[M]` and `r` registers requires
//! `1 + min{k−2, log_{2r}(N/2M)}` local steps in the worst case. The proof
//! constructs an execution by pigeonhole: at each stage, of the processes
//! still in the *pool*, at least half want the same kind of operation
//! (read or write), and of those at least a `1/r` fraction target the same
//! register — so a pool of initial size `N` shrinks by a factor of at most
//! `2r` per stage while its members stay pairwise indistinguishable. While
//! the pool exceeds `2M`, two of its members would have to decide the same
//! name, so no member can decide.
//!
//! [`PigeonholeAdversary`] replays that construction against *real*
//! algorithms as an `exsel-sim` scheduling policy: it inspects the pending
//! operations (exactly the adversary's knowledge in the proof), advances
//! the chosen group one operation per stage, and — when the staging bound
//! is reached — crashes everyone outside the surviving pool and residue
//! and lets the rest run to completion. [`theorem6_bound`] evaluates the
//! closed form for comparison. Experiment T7 tabulates forced stages and
//! observed steps against the formula, running on the pooled harness
//! ([`run_machines_against_pooled`] / [`run_store_against_pooled`]):
//! one caller-held `MachinePool` is reset in place per adversarial
//! trial, so sweeps over thousands of conceptual processes neither box
//! machines nor spawn threads.
//!
//! ```
//! use exsel_lowerbound::theorem6_bound;
//! // k = 8 contenders, N = 4096 original names, M = 10 new names,
//! // r = 20 registers: the log term binds.
//! assert_eq!(theorem6_bound(8, 4096, 10, 20), 1 + 1);
//! // With N unbounded relative to M and r, the k − 2 term binds.
//! assert_eq!(theorem6_bound(4, 1 << 60, 3, 8), 1 + 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod bound;
mod harness;

pub use adversary::{AdversaryStats, PigeonholeAdversary};
pub use bound::{theorem6_bound, theorem7_bound};
pub use harness::{
    exhaust_exclusiveness_pooled, run_against, run_machines_against, run_machines_against_pooled,
    run_machines_against_with, run_store_against, run_store_against_pooled, LowerBoundReport,
};
