//! The pigeonhole adversary as a scheduling policy.

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

use exsel_shm::{OpKind, Pid, RegId};
use exsel_sim::policy::{Action, PendingOp, Policy, RoundRobin};

/// Statistics the adversary records while it runs, shared with the
/// harness through an `Arc<Mutex<_>>` (the policy itself is moved into
/// the scheduler).
#[derive(Clone, Debug, Default)]
pub struct AdversaryStats {
    /// Pool size at the start of each stage (index 0 = initial `N`).
    pub pool_sizes: Vec<usize>,
    /// Stages completed before release.
    pub stages: usize,
    /// Pool size at release time.
    pub final_pool: usize,
    /// Residue size (last-writers) at release time.
    pub residue: usize,
    /// Processes crashed at release (those outside pool ∪ residue).
    pub crashed: usize,
}

enum Phase {
    /// Granting the current stage group one operation each.
    Staging,
    /// Crashing everyone outside pool ∪ residue, one per decision.
    Culling,
    /// Fair execution of the survivors.
    Released,
}

/// The Theorem 6 adversary. Construct with the staging limits
/// (`max_stages = k − 2`, `min_pool = 2M`) and install as the policy of
/// an `exsel-sim` execution whose processes run the renaming algorithm
/// under attack.
pub struct PigeonholeAdversary {
    pool: BTreeSet<usize>,
    residue: BTreeSet<usize>,
    queue: VecDeque<usize>,
    phase: Phase,
    max_stages: usize,
    min_pool: usize,
    fair: RoundRobin,
    stats: Arc<Mutex<AdversaryStats>>,
}

impl PigeonholeAdversary {
    /// An adversary over processes `0..n` that stages while the pool
    /// exceeds `min_pool` (use `2M`) and at most `max_stages` times (use
    /// `k − 2`). Returns the policy and a handle to its statistics.
    #[must_use]
    pub fn new(n: usize, max_stages: usize, min_pool: usize) -> (Self, Arc<Mutex<AdversaryStats>>) {
        let stats = Arc::new(Mutex::new(AdversaryStats::default()));
        (
            PigeonholeAdversary {
                pool: (0..n).collect(),
                residue: BTreeSet::new(),
                queue: VecDeque::new(),
                phase: Phase::Staging,
                max_stages,
                min_pool,
                fair: RoundRobin::new(),
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// Picks the next stage group by pigeonhole: the majority side
    /// (readers vs writers) of the pool's pending operations, then the
    /// largest same-register group on that side.
    fn start_stage(&mut self, pending: &[PendingOp]) -> bool {
        let members: Vec<&PendingOp> = pending
            .iter()
            .filter(|op| self.pool.contains(&op.pid.0))
            .collect();
        // Processes that finished are gone from pending: drop them.
        self.pool = members.iter().map(|op| op.pid.0).collect();

        {
            let mut st = self.stats.lock().expect("stats lock");
            if st.pool_sizes.is_empty() {
                st.pool_sizes.push(self.pool.len());
            }
        }
        if self.pool.len() <= self.min_pool
            || self.stats.lock().expect("stats lock").stages >= self.max_stages
        {
            return false;
        }

        let readers: Vec<&&PendingOp> = members
            .iter()
            .filter(|op| op.kind == OpKind::Read)
            .collect();
        let writers: Vec<&&PendingOp> = members
            .iter()
            .filter(|op| op.kind == OpKind::Write)
            .collect();
        let (side, is_write) = if readers.len() >= writers.len() {
            (readers, false)
        } else {
            (writers, true)
        };
        // Largest same-register group on the chosen side.
        let mut by_reg: std::collections::HashMap<RegId, Vec<usize>> =
            std::collections::HashMap::new();
        for op in side {
            by_reg.entry(op.reg).or_default().push(op.pid.0);
        }
        let group = by_reg
            .into_values()
            .max_by_key(|g| (g.len(), usize::MAX - g[0]))
            .expect("pool nonempty");
        self.pool = group.iter().copied().collect();
        self.queue = group.iter().copied().collect();
        if is_write {
            // The last writer in the stage order joins the residue.
            if let Some(&last) = group.last() {
                self.residue.insert(last);
            }
        }
        let mut st = self.stats.lock().expect("stats lock");
        st.stages += 1;
        st.pool_sizes.push(self.pool.len());
        true
    }

    fn release(&mut self, pending: &[PendingOp]) -> Action {
        // Culling: crash pending processes outside pool ∪ residue, one per
        // decision (the scheduler re-invokes us until the lock-step
        // condition settles).
        if matches!(self.phase, Phase::Culling) {
            if let Some(victim) = pending
                .iter()
                .map(|op| op.pid.0)
                .find(|pid| !self.pool.contains(pid) && !self.residue.contains(pid))
            {
                self.stats.lock().expect("stats lock").crashed += 1;
                return Action::Crash(Pid(victim));
            }
            self.phase = Phase::Released;
        }
        self.fair.decide(pending)
    }
}

impl Policy for PigeonholeAdversary {
    fn decide(&mut self, pending: &[PendingOp]) -> Action {
        match self.phase {
            Phase::Staging => {
                // Drain the current stage group (skipping finished pids).
                while let Some(pid) = self.queue.pop_front() {
                    if pending.iter().any(|op| op.pid.0 == pid) {
                        return Action::Grant(Pid(pid));
                    }
                }
                if self.start_stage(pending) {
                    let pid = self.queue.pop_front().expect("fresh stage nonempty");
                    return Action::Grant(Pid(pid));
                }
                // Staging over: record and move to culling.
                {
                    let mut st = self.stats.lock().expect("stats lock");
                    st.final_pool = self.pool.len();
                    st.residue = self.residue.len();
                }
                self.phase = Phase::Culling;
                self.release(pending)
            }
            Phase::Culling | Phase::Released => self.release(pending),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(pid: usize, kind: OpKind, reg: usize) -> PendingOp {
        PendingOp {
            pid: Pid(pid),
            kind,
            reg: RegId(reg),
            step_index: 0,
        }
    }

    #[test]
    fn picks_largest_reader_group() {
        let (mut adv, stats) = PigeonholeAdversary::new(5, 10, 1);
        // 3 readers of R0, 1 reader of R1, 1 writer: majority readers,
        // largest group = {0,1,2} on R0.
        let pending = vec![
            op(0, OpKind::Read, 0),
            op(1, OpKind::Read, 0),
            op(2, OpKind::Read, 0),
            op(3, OpKind::Read, 1),
            op(4, OpKind::Write, 2),
        ];
        let first = adv.decide(&pending);
        assert_eq!(first, Action::Grant(Pid(0)));
        assert_eq!(stats.lock().unwrap().pool_sizes, vec![5, 3]);
        // The remaining group members are granted next.
        assert_eq!(adv.decide(&pending), Action::Grant(Pid(1)));
        assert_eq!(adv.decide(&pending), Action::Grant(Pid(2)));
    }

    #[test]
    fn writers_majority_adds_residue() {
        let (mut adv, stats) = PigeonholeAdversary::new(4, 10, 1);
        let pending = vec![
            op(0, OpKind::Write, 7),
            op(1, OpKind::Write, 7),
            op(2, OpKind::Write, 7),
            op(3, OpKind::Read, 1),
        ];
        let _ = adv.decide(&pending);
        assert_eq!(adv.residue, BTreeSet::from([2]));
        assert_eq!(stats.lock().unwrap().stages, 1);
    }

    #[test]
    fn stops_at_min_pool_and_culls() {
        let (mut adv, stats) = PigeonholeAdversary::new(4, 10, 4);
        // Pool (4) ≤ min_pool (4): release immediately, crash nobody
        // (everyone is in the pool), then grant fairly.
        let pending = vec![
            op(0, OpKind::Read, 0),
            op(1, OpKind::Read, 0),
            op(2, OpKind::Read, 0),
            op(3, OpKind::Read, 0),
        ];
        let a = adv.decide(&pending);
        assert!(matches!(a, Action::Grant(_)));
        assert_eq!(stats.lock().unwrap().stages, 0);
        assert_eq!(stats.lock().unwrap().final_pool, 4);
    }

    #[test]
    fn culling_crashes_non_pool_processes() {
        let (mut adv, stats) = PigeonholeAdversary::new(4, 0, 1);
        // max_stages = 0: staging ends at once; pool = everyone pending,
        // but pool recomputation keeps all 4 → nobody crashed.
        let pending: Vec<_> = (0..4).map(|p| op(p, OpKind::Read, p)).collect();
        let _ = adv.decide(&pending);
        assert_eq!(stats.lock().unwrap().crashed, 0);

        // Now with a shrunken pool: stage once over 2-of-3 readers of R0,
        // then release must crash pid 2.
        let (mut adv, stats) = PigeonholeAdversary::new(3, 1, 1);
        let pending = vec![
            op(0, OpKind::Read, 0),
            op(1, OpKind::Read, 0),
            op(2, OpKind::Read, 5),
        ];
        assert_eq!(adv.decide(&pending), Action::Grant(Pid(0)));
        assert_eq!(adv.decide(&pending), Action::Grant(Pid(1)));
        // Stage budget exhausted: culling kicks in.
        assert_eq!(adv.decide(&pending), Action::Crash(Pid(2)));
        assert_eq!(stats.lock().unwrap().crashed, 1);
        // The scheduler removes crashed processes from pending before the
        // next decision; the survivors are granted fairly.
        let survivors = &pending[..2];
        assert!(matches!(adv.decide(survivors), Action::Grant(_)));
    }
}
