//! Running the adversary against a concrete renaming algorithm.
//!
//! Three generations of entry points, newest preferred:
//!
//! * [`run_machines_against_pooled`] / [`run_store_against_pooled`] —
//!   the adversarial trial over a caller-held [`MachinePool`] and
//!   reusable engine: machines are reset in place per trial, so
//!   adversary sweeps allocate nothing per trial beyond what the
//!   algorithm itself installs in registers.
//! * [`run_machines_against`] / [`run_machines_against_with`] — the
//!   boxed engine path (one heap allocation per machine per trial).
//! * [`run_against`] / [`run_store_against`] — the thread-backed
//!   scheduler for closure-style process bodies; kept as the
//!   differential oracle (the pigeonhole adversary is deterministic, so
//!   all paths must force the identical staged execution).

use std::collections::BTreeSet;
use std::sync::Mutex;

use exsel_shm::{Crash, Ctx, Pid, StepMachine};
use exsel_sim::{
    explore_pool_sleep, ExploreReport, MachinePool, ReduceConfig, SimBuilder, SimOutcome,
    StepEngine,
};

use crate::{theorem6_bound, AdversaryStats, PigeonholeAdversary};

/// The outcome of one adversarial execution, ready for the T7 table.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// Contenders `N` the adversary started from (every process is a
    /// potential contender, as in the proof's conceptual-process pool).
    pub n_processes: usize,
    /// Stages the adversary completed.
    pub stages: usize,
    /// Pool sizes per stage (index 0 = initial).
    pub pool_sizes: Vec<usize>,
    /// Theorem 6's closed-form step bound for these parameters.
    pub bound: u64,
    /// Maximum local steps over processes that decided a name.
    pub max_steps_named: u64,
    /// Whether all decided names were exclusive (must always hold).
    pub exclusive: bool,
    /// How many processes decided a name.
    pub named: usize,
}

/// Runs `n_processes` contenders (original name = pid + 1) of a renaming
/// procedure under the pigeonhole adversary and reports the forced
/// complexity. `rename` is the per-process body returning the acquired
/// name, or `None` if the instance failed it; `m` and `r` are the
/// algorithm's name bound and register count, `k` the contention
/// parameter for the `k − 2` staging budget, and `num_registers` the
/// memory size.
///
/// # Panics
///
/// Panics if two processes decide the same name (exclusiveness violation
/// — a bug in the algorithm under test).
pub fn run_against<F>(
    n_processes: usize,
    num_registers: usize,
    k: usize,
    m: u64,
    r: u64,
    rename: F,
) -> LowerBoundReport
where
    F: Fn(Ctx<'_>) -> exsel_shm::Step<Option<u64>> + Sync,
{
    let (adversary, stats) =
        PigeonholeAdversary::new(n_processes, k.saturating_sub(2), 2 * m as usize);
    let outcome = SimBuilder::new(num_registers, Box::new(adversary))
        .stack_size(128 * 1024)
        .run(n_processes, rename);
    digest_outcome(&outcome, stats.as_ref(), n_processes, k, m, r)
}

/// [`run_against`] on the single-threaded `StepEngine`: `factory(pid)`
/// builds process `pid`'s renaming machine (its output is the acquired
/// name, `None` on instance failure). No OS threads are spawned, which is
/// what makes adversary sweeps over thousands of processes practical.
/// Uses a throwaway reusable engine; sweeps that run many adversarial
/// trials should hold their own engine and call
/// [`run_machines_against_with`] to keep its buffers across trials.
///
/// # Panics
///
/// Panics if two processes decide the same name (exclusiveness violation
/// — a bug in the algorithm under test).
pub fn run_machines_against<'a, F>(
    n_processes: usize,
    num_registers: usize,
    k: usize,
    m: u64,
    r: u64,
    factory: F,
) -> LowerBoundReport
where
    F: Fn(Pid) -> Box<dyn StepMachine<Output = Option<u64>> + 'a>,
{
    let mut engine = StepEngine::reusable(num_registers);
    run_machines_against_with(&mut engine, n_processes, num_registers, k, m, r, factory)
}

/// [`run_machines_against`] over a caller-held reusable engine: the
/// engine is pointed at the algorithm's register count and the
/// adversarial trial runs via [`StepEngine::run_trial`], so consecutive
/// calls reuse the engine's scratch buffers instead of reallocating.
///
/// # Panics
///
/// As [`run_machines_against`].
pub fn run_machines_against_with<'a, F>(
    engine: &mut StepEngine,
    n_processes: usize,
    num_registers: usize,
    k: usize,
    m: u64,
    r: u64,
    factory: F,
) -> LowerBoundReport
where
    F: Fn(Pid) -> Box<dyn StepMachine<Output = Option<u64>> + 'a>,
{
    engine.set_registers(num_registers);
    let (mut adversary, stats) =
        PigeonholeAdversary::new(n_processes, k.saturating_sub(2), 2 * m as usize);
    let outcome = engine.run_trial(
        &mut adversary,
        (0..n_processes).map(Pid).map(factory).collect(),
    );
    digest_outcome(&outcome, stats.as_ref(), n_processes, k, m, r)
}

/// The fully pooled adversarial trial: runs the machines of `pool`
/// (process `i` is `Pid(i)`; output `Some(name)` is the exclusiveness
/// witness, `None` an instance failure) under the Theorem 6 pigeonhole
/// adversary on the caller's reusable engine via
/// [`StepEngine::run_pool`] — machines are reset in place, results land
/// in the pool's own buffers, and consecutive sweep trials reallocate
/// neither machines nor scratch. `m` and `r` are the algorithm's name
/// bound and register count, `k` the contention parameter for the
/// `k − 2` staging budget.
///
/// The adversary is deterministic: the forced execution is identical to
/// [`run_machines_against`] over freshly boxed machines and to the
/// thread-backed [`run_against`] (tested).
///
/// # Panics
///
/// Panics if two processes decide the same name (exclusiveness violation
/// — a bug in the algorithm under test), or if a pooled machine does not
/// implement [`StepMachine::reset`].
pub fn run_machines_against_pooled<M>(
    engine: &mut StepEngine,
    pool: &mut MachinePool<M>,
    num_registers: usize,
    k: usize,
    m: u64,
    r: u64,
) -> LowerBoundReport
where
    M: StepMachine<Output = Option<u64>>,
{
    let bound = theorem6_bound(k as u64, pool.len() as u64, m, r);
    run_pooled_with(
        engine,
        pool,
        num_registers,
        k.saturating_sub(2),
        2 * m as usize,
        bound,
    )
}

/// The storing analogue of [`run_machines_against_pooled`] (Theorem 7):
/// pooled first-store machines (output = the adopted value register)
/// staged `k − 1` times down to a pool of `k`, reported against
/// [`crate::theorem7_bound`].
///
/// # Panics
///
/// As [`run_machines_against_pooled`] (two stores landing on the same
/// value register violate exclusiveness).
pub fn run_store_against_pooled<M>(
    engine: &mut StepEngine,
    pool: &mut MachinePool<M>,
    num_registers: usize,
    k: usize,
    r: u64,
) -> LowerBoundReport
where
    M: StepMachine<Output = Option<u64>>,
{
    let bound = crate::theorem7_bound(k as u64, pool.len() as u64, r);
    run_pooled_with(engine, pool, num_registers, k.saturating_sub(1), k, bound)
}

/// Exhaustive exclusiveness audit over the same pooled surface as
/// [`run_machines_against_pooled`]: instead of one forced pigeonhole
/// schedule, the sleep-set-reduced enumerator
/// ([`exsel_sim::explore_pool_sleep`]) walks **every** inequivalent
/// interleaving of the pooled machines (one per Mazurkiewicz trace
/// class) and checks that decided names stay pairwise distinct in each.
/// Only practical at small pool sizes — the adversarial single-trial
/// paths remain the tool at scale — but where it completes it upgrades
/// the harness's per-schedule witness to a for-all-schedules proof. A
/// violated execution is reported (with a minimized replayable schedule
/// in [`ExploreReport::minimized`]) rather than panicking.
pub fn exhaust_exclusiveness_pooled<M>(
    engine: &mut StepEngine,
    pool: &mut MachinePool<M>,
    num_registers: usize,
    max_executions: u64,
) -> ExploreReport
where
    M: StepMachine<Output = Option<u64>>,
{
    engine.set_registers(num_registers);
    explore_pool_sleep(
        engine,
        pool,
        &ReduceConfig::sleep_only(max_executions),
        |pool| {
            let names: Vec<u64> = pool
                .results()
                .iter()
                .filter_map(|r| match r {
                    Some(Ok(Some(name))) => Some(*name),
                    _ => None,
                })
                .collect();
            let set: BTreeSet<u64> = names.iter().copied().collect();
            set.len() == names.len()
        },
    )
}

/// Shared pooled driver: one adversarial [`StepEngine::run_pool`] trial
/// with the given staging limits, digested into a report carrying
/// `bound`.
fn run_pooled_with<M>(
    engine: &mut StepEngine,
    pool: &mut MachinePool<M>,
    num_registers: usize,
    max_stages: usize,
    min_pool: usize,
    bound: u64,
) -> LowerBoundReport
where
    M: StepMachine<Output = Option<u64>>,
{
    engine.set_registers(num_registers);
    let n_processes = pool.len();
    let (mut adversary, stats) = PigeonholeAdversary::new(n_processes, max_stages, min_pool);
    engine.run_pool(&mut adversary, pool);
    let named: Vec<Option<u64>> = pool
        .results()
        .iter()
        .map(|r| match r {
            Some(Ok(name)) => *name,
            Some(Err(Crash)) => None,
            None => unreachable!("trial ran to quiescence"),
        })
        .collect();
    assemble_report(
        named.into_iter(),
        pool.steps(),
        stats.as_ref(),
        n_processes,
        bound,
    )
}

/// Shared digestion of an adversarial execution into the report.
fn digest_outcome(
    outcome: &SimOutcome<Option<u64>>,
    stats: &Mutex<AdversaryStats>,
    n_processes: usize,
    k: usize,
    m: u64,
    r: u64,
) -> LowerBoundReport {
    assemble_report(
        outcome
            .results
            .iter()
            .map(|r| r.as_ref().ok().copied().flatten()),
        &outcome.steps,
        stats,
        n_processes,
        theorem6_bound(k as u64, n_processes as u64, m, r),
    )
}

/// The one folding point of every harness path: collects decided names
/// (asserting exclusiveness), the worst step count among deciders, and
/// the adversary's staging statistics.
fn assemble_report(
    results: impl Iterator<Item = Option<u64>>,
    steps: &[u64],
    stats: &Mutex<AdversaryStats>,
    n_processes: usize,
    bound: u64,
) -> LowerBoundReport {
    let mut names = Vec::new();
    let mut max_steps_named = 0;
    for (pid, result) in results.enumerate() {
        if let Some(name) = result {
            names.push(name);
            max_steps_named = max_steps_named.max(steps[pid]);
        }
    }
    let set: BTreeSet<u64> = names.iter().copied().collect();
    let exclusive = set.len() == names.len();
    assert!(
        exclusive,
        "exclusiveness violated under adversary: {names:?}"
    );

    let st = stats.lock().expect("stats lock");
    LowerBoundReport {
        n_processes,
        stages: st.stages,
        pool_sizes: st.pool_sizes.clone(),
        bound,
        max_steps_named,
        exclusive,
        named: names.len(),
    }
}

/// The storing analogue (Theorem 7): runs `n_processes` first-store
/// operations under the pigeonhole adversary staged
/// `min{k−2, ⌈log_{2r}(N/k)⌉}`-ish times (we reuse the renaming staging
/// with `min_pool = k`, per the proof's "continue until fewer than `k`
/// registers have been written"), and reports forced stages and observed
/// store steps against [`crate::theorem7_bound`].
///
/// # Panics
///
/// Panics if the store operations are not exclusive in their outputs
/// (two stores landing on the same value register).
pub fn run_store_against<F>(
    n_processes: usize,
    num_registers: usize,
    k: usize,
    r: u64,
    store: F,
) -> LowerBoundReport
where
    F: Fn(Ctx<'_>) -> exsel_shm::Step<Option<u64>> + Sync,
{
    let (adversary, stats) = PigeonholeAdversary::new(n_processes, k.saturating_sub(1), k);
    let outcome = SimBuilder::new(num_registers, Box::new(adversary))
        .stack_size(128 * 1024)
        .run(n_processes, store);

    let mut slots = Vec::new();
    let mut max_steps_named = 0;
    for (pid, result) in outcome.results.iter().enumerate() {
        if let Ok(Some(slot)) = result {
            slots.push(*slot);
            max_steps_named = max_steps_named.max(outcome.steps[pid]);
        }
    }
    let set: BTreeSet<u64> = slots.iter().copied().collect();
    assert_eq!(
        set.len(),
        slots.len(),
        "stores shared a register: {slots:?}"
    );

    let st = stats.lock().expect("stats lock");
    LowerBoundReport {
        n_processes,
        stages: st.stages,
        pool_sizes: st.pool_sizes.clone(),
        bound: crate::theorem7_bound(k as u64, n_processes as u64, r),
        max_steps_named,
        exclusive: true,
        named: slots.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_core::{MoirAnderson, Rename, RenameConfig, SnapshotRename};
    use exsel_shm::RegAlloc;

    #[test]
    fn adversary_vs_moir_anderson() {
        // k = 8 grid, N = 256 potential contenders. The adversary stages,
        // culls, and the survivors must still rename exclusively.
        let k = 8;
        let n = 256;
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let report = run_against(n, alloc.total(), k, m, r, |ctx| {
            Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
        });
        assert!(report.exclusive);
        assert!(
            report.max_steps_named >= report.bound,
            "observed {} below Theorem 6 bound {}",
            report.max_steps_named,
            report.bound
        );
        // The pool shrinks by at most 2r per stage (pigeonhole).
        for w in report.pool_sizes.windows(2) {
            assert!(w[1] as u64 * 2 * r >= w[0] as u64, "pool shrank too fast");
        }
    }

    #[test]
    fn adversary_vs_snapshot_rename() {
        let n = 64;
        let mut alloc = RegAlloc::new();
        let algo = SnapshotRename::new(&mut alloc, n);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let report = run_against(n, alloc.total(), n, m, r, |ctx| {
            Ok(algo
                .rename_slot(ctx, ctx.pid().0, ctx.pid().0 as u64 + 1)?
                .name())
        });
        assert!(report.exclusive);
        assert!(report.named > 0);
        assert!(report.max_steps_named >= report.bound);
    }

    #[test]
    fn storing_adversary_vs_storecollect() {
        use exsel_storecollect::{StoreCollect, StoreHandle};
        let k = 4;
        let n = 32;
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, n, &RenameConfig::default());
        let r = alloc.total() as u64;
        let report = run_store_against(n, alloc.total(), k, r, |ctx| {
            let mut h = StoreHandle::new();
            match sc.store(ctx, &mut h, ctx.pid().0 as u64 + 1, 7) {
                // The adopted value register is the exclusiveness witness.
                Ok(()) => Ok(h.register().map(|r| r.0 as u64)),
                Err(_) => Ok(None),
            }
        });
        assert!(report.named > 0);
        assert!(
            report.max_steps_named >= report.bound,
            "Theorem 7 violated: {} < {}",
            report.max_steps_named,
            report.bound
        );
    }

    #[test]
    fn engine_adversary_matches_thread_backed_adversary() {
        // The pigeonhole adversary is deterministic: both backends must
        // force the identical staged execution on Moir-Anderson.
        use exsel_core::StepRename;
        use exsel_shm::StepMachine as _;
        let k = 8;
        let n = 128;
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let threaded = run_against(n, alloc.total(), k, m, r, |ctx| {
            Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
        });
        let engine = run_machines_against(n, alloc.total(), k, m, r, |pid| {
            Box::new(
                algo.begin_rename(pid, pid.0 as u64 + 1)
                    .map_output(exsel_core::Outcome::name),
            )
        });
        assert_eq!(threaded.stages, engine.stages);
        assert_eq!(threaded.pool_sizes, engine.pool_sizes);
        assert_eq!(threaded.max_steps_named, engine.max_steps_named);
        assert_eq!(threaded.named, engine.named);
        assert!(engine.exclusive);
        assert!(engine.max_steps_named >= engine.bound);
    }

    #[test]
    fn pooled_adversary_matches_boxed_adversary_across_reuse() {
        // The pooled path must force the identical staged execution as
        // freshly boxed machines — including on a dirtied, reused
        // engine+pool (trial 2 replays trial 1 exactly).
        use exsel_core::StepRename;
        use exsel_shm::StepMachine as _;
        let k = 8;
        let n = 128;
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let boxed = run_machines_against(n, alloc.total(), k, m, r, |pid| {
            Box::new(
                algo.begin_rename(pid, pid.0 as u64 + 1)
                    .map_output(exsel_core::Outcome::name),
            )
        });
        let mut engine = StepEngine::reusable(alloc.total());
        let mut pool: exsel_sim::MachinePool<_> = (0..n)
            .map(|p| {
                algo.begin_rename(Pid(p), p as u64 + 1)
                    .map_output(exsel_core::Outcome::name as fn(exsel_core::Outcome) -> Option<u64>)
            })
            .collect();
        for trial in 0..2 {
            let pooled =
                run_machines_against_pooled(&mut engine, &mut pool, alloc.total(), k, m, r);
            assert_eq!(boxed.stages, pooled.stages, "trial {trial}");
            assert_eq!(boxed.pool_sizes, pooled.pool_sizes, "trial {trial}");
            assert_eq!(
                boxed.max_steps_named, pooled.max_steps_named,
                "trial {trial}"
            );
            assert_eq!(boxed.named, pooled.named, "trial {trial}");
            assert_eq!(boxed.bound, pooled.bound, "trial {trial}");
            assert!(pooled.exclusive);
        }
    }

    #[test]
    fn pooled_store_adversary_matches_threaded_store_adversary() {
        use exsel_shm::StepMachine as _;
        use exsel_storecollect::{StoreCollect, StoreHandle};
        let k = 4;
        let n = 32;
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, n, &RenameConfig::default());
        let r = alloc.total() as u64;
        let threaded = run_store_against(n, alloc.total(), k, r, |ctx| {
            let mut h = StoreHandle::new();
            match sc.store(ctx, &mut h, ctx.pid().0 as u64 + 1, 7) {
                Ok(()) => Ok(h.register().map(|reg| reg.0 as u64)),
                Err(_) => Ok(None),
            }
        });
        let mut engine = StepEngine::reusable(alloc.total());
        let mut pool: exsel_sim::MachinePool<_> = (0..n)
            .map(|p| {
                sc.begin_first_store(Pid(p), p as u64 + 1, 7).map_output(
                    (|res| res.ok().map(|reg: exsel_shm::RegId| reg.0 as u64))
                        as fn(
                            Result<exsel_shm::RegId, exsel_storecollect::StoreCollectError>,
                        ) -> Option<u64>,
                )
            })
            .collect();
        let pooled = run_store_against_pooled(&mut engine, &mut pool, alloc.total(), k, r);
        assert_eq!(threaded.stages, pooled.stages);
        assert_eq!(threaded.pool_sizes, pooled.pool_sizes);
        assert_eq!(threaded.max_steps_named, pooled.max_steps_named);
        assert_eq!(threaded.named, pooled.named);
        assert_eq!(threaded.bound, pooled.bound);
    }

    #[test]
    fn snapshot_recycling_is_invisible_to_pooled_adversarial_audits() {
        // The pigeonhole adversary forces one deterministic staged
        // execution on snapshot renaming; the snapshot's record/view
        // recycling arena must change neither the report nor the final
        // register bank the post-trial audits read. The bank comparison
        // walks `Word::Snap` registers whose embedded views are length
        // `n` — the `Arc::ptr_eq`-fast-path `PartialEq` keeps that audit
        // O(1) per shared view instead of O(n).
        use exsel_shm::StepMachine as _;
        let n = 24;
        let k = n;
        let run = |recycle: bool| {
            let mut alloc = RegAlloc::new();
            let algo = SnapshotRename::new(&mut alloc, n);
            // The recycling flag lives on the object's shared arena;
            // flipping it on a clone governs the whole object.
            let _ = algo.snapshot().clone().recycling(recycle);
            let m = algo.name_bound();
            let r = alloc.total() as u64;
            let mut engine = StepEngine::reusable(alloc.total());
            let mut pool: exsel_sim::MachinePool<_> = (0..n)
                .map(|p| {
                    algo.begin_rename_slot(p, p as u64 + 1).map_output(
                        exsel_core::Outcome::name as fn(exsel_core::Outcome) -> Option<u64>,
                    )
                })
                .collect();
            let report =
                run_machines_against_pooled(&mut engine, &mut pool, alloc.total(), k, m, r);
            let bank: Vec<exsel_shm::Word> = engine.registers().to_vec();
            (report, bank)
        };
        let (on, bank_on) = run(true);
        let (off, bank_off) = run(false);
        assert_eq!(on.stages, off.stages);
        assert_eq!(on.pool_sizes, off.pool_sizes);
        assert_eq!(on.max_steps_named, off.max_steps_named);
        assert_eq!(on.named, off.named);
        assert!(on.exclusive && off.exclusive);
        assert_eq!(
            bank_on, bank_off,
            "post-trial register audits diverged under recycling"
        );
    }

    #[test]
    fn exhaustive_audit_proves_moir_anderson_exclusive_at_small_scale() {
        // Every inequivalent interleaving of 3 contenders on the k = 3
        // splitter grid, not just the pigeonhole schedule: names stay
        // exclusive in all of them, so no counterexample is minimized.
        use exsel_core::StepRename;
        use exsel_shm::StepMachine as _;
        let k = 3;
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let mut engine = StepEngine::reusable(alloc.total());
        let mut pool: exsel_sim::MachinePool<_> = (0..k)
            .map(|p| {
                algo.begin_rename(Pid(p), p as u64 + 1)
                    .map_output(exsel_core::Outcome::name as fn(exsel_core::Outcome) -> Option<u64>)
            })
            .collect();
        let report =
            exhaust_exclusiveness_pooled(&mut engine, &mut pool, alloc.total(), 10_000_000);
        assert!(report.complete, "walk truncated");
        assert!(report.executions > 0);
        assert!(
            report.minimized.is_none(),
            "exclusiveness violated on some interleaving"
        );
        // The pooled surface is reusable: a second audit replays the
        // identical reduced walk.
        let again = exhaust_exclusiveness_pooled(&mut engine, &mut pool, alloc.total(), 10_000_000);
        assert_eq!(report.executions, again.executions);
        assert_eq!(report.execs_pruned, again.execs_pruned);
    }

    #[test]
    fn small_instance_trivial_bound() {
        // N ≤ 2M: the bound degenerates to 1 step, and the run is benign.
        let k = 4;
        let mut alloc = RegAlloc::new();
        let cfg = RenameConfig::default();
        let algo = exsel_core::BasicRename::new(&mut alloc, 8, k, &cfg);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let report = run_against(8, alloc.total(), k, m, r, |ctx| {
            Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
        });
        assert_eq!(report.bound, 1);
        assert!(report.max_steps_named >= 1);
    }
}
