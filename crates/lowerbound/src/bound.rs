//! Closed-form bounds.

/// Theorem 6: the worst-case local-step lower bound
/// `1 + min{k−2, ⌊log_{2r}(N/2M)⌋}` for wait-free `(k, N)`-renaming into
/// `[M]` with `r` registers. Degenerate parameter combinations (tiny `k`,
/// `N ≤ 2M`, `r = 0`) clamp the minimum at 0.
#[must_use]
pub fn theorem6_bound(k: u64, n_names: u64, m: u64, r: u64) -> u64 {
    1 + k
        .saturating_sub(2)
        .min(log_floor(2 * r, n_names / (2 * m).max(1)))
}

/// Theorem 7: the storing lower bound `min{k, ⌈log_{2r}(N/k)⌉}` for
/// Store&Collect.
#[must_use]
pub fn theorem7_bound(k: u64, n_names: u64, r: u64) -> u64 {
    k.min(log_ceil(2 * r, n_names / k.max(1)))
}

/// `⌊log_base(x)⌋` with `log_base(x) = 0` for `x < base` or degenerate
/// bases.
fn log_floor(base: u64, x: u64) -> u64 {
    if base < 2 || x < base {
        return 0;
    }
    let mut power = base;
    let mut exp = 1;
    while let Some(next) = power.checked_mul(base) {
        if next > x {
            break;
        }
        power = next;
        exp += 1;
    }
    exp
}

/// `⌈log_base(x)⌉` (0 for `x ≤ 1` or degenerate bases).
fn log_ceil(base: u64, x: u64) -> u64 {
    if base < 2 || x <= 1 {
        return 0;
    }
    let f = log_floor(base, x);
    let mut power = 1u64;
    for _ in 0..f {
        power = power.saturating_mul(base);
    }
    if power >= x {
        f
    } else {
        f + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_floor_basics() {
        assert_eq!(log_floor(2, 1), 0);
        assert_eq!(log_floor(2, 2), 1);
        assert_eq!(log_floor(2, 7), 2);
        assert_eq!(log_floor(2, 8), 3);
        assert_eq!(log_floor(10, 999), 2);
        assert_eq!(log_floor(10, 1000), 3);
        assert_eq!(log_floor(1, 100), 0);
        assert_eq!(log_floor(0, 100), 0);
    }

    #[test]
    fn log_ceil_basics() {
        assert_eq!(log_ceil(2, 1), 0);
        assert_eq!(log_ceil(2, 2), 1);
        assert_eq!(log_ceil(2, 5), 3);
        assert_eq!(log_ceil(2, 8), 3);
        assert_eq!(log_ceil(10, 1001), 4);
    }

    #[test]
    fn theorem6_k_branch() {
        // N astronomically large relative to (2r)^{k−2}: the k−2 branch
        // binds (16^8 ≪ u64::MAX / 38).
        assert_eq!(theorem6_bound(10, u64::MAX, 19, 8), 1 + 8);
        assert_eq!(theorem6_bound(2, u64::MAX, 3, 100), 1);
    }

    #[test]
    fn theorem6_log_branch() {
        // 2r = 40, N/2M = 204: log_40(204) = 1.
        assert_eq!(theorem6_bound(8, 4096, 10, 20), 2);
        // N ≤ 2M: trivial.
        assert_eq!(theorem6_bound(8, 16, 10, 20), 1);
    }

    #[test]
    fn theorem6_monotone_in_n() {
        let mut prev = 0;
        for exp in 10..40 {
            let b = theorem6_bound(64, 1 << exp, 10, 20);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn theorem7_branches() {
        assert_eq!(theorem7_bound(4, u64::MAX, 8), 4);
        // 2r = 16, N/k = 1024: log_16(1024) = 2.5 → ceil 3.
        assert_eq!(theorem7_bound(64, 4096 * 64, 8), 3);
    }

    #[test]
    fn no_overflow_on_extremes() {
        let _ = theorem6_bound(u64::MAX, u64::MAX, 1, u64::MAX / 2);
        let _ = theorem7_bound(u64::MAX, u64::MAX, u64::MAX / 2);
    }
}
