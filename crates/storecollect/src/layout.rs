//! Value-register layouts: a fixed prefix for the known-`k` setting, and
//! the paper's doubling intervals with control registers for the adaptive
//! settings.

use exsel_shm::{Ctx, RegAlloc, RegId, RegRange, Step};

/// Where the value register of name `m` lives and how collect discovers
/// the in-use prefix.
#[derive(Clone, Debug)]
pub(crate) enum ValueLayout {
    /// One register per possible name; collect reads all of them
    /// (`O(M) = O(k)` in setting (i)).
    Fixed { values: RegRange },
    /// Doubling intervals: interval `j` holds the registers of names
    /// `[2^{j+1}−1, 2^{j+2}−2]` plus one control register. A first store
    /// in interval `J` raises controls `0..J`; collect reads interval
    /// values then the control, stopping at the first lowered control.
    Intervals {
        controls: RegRange,
        intervals: Vec<RegRange>,
    },
}

/// The interval index of 1-based name `m`: `⌊lg(m+1)⌋ − 1`.
pub(crate) fn interval_of(name: u64) -> usize {
    ((name + 1).ilog2() - 1) as usize
}

/// Cursor over the collect read sequence — the step-machine form of
/// [`ValueLayout::read_prefix`], one register per position. Advancing a
/// `Control` position needs the read's result (a lowered control ends
/// the prefix), so the cursor is driven by `CollectOp`'s transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReadCursor {
    /// Fixed layout: value register `idx`.
    Fixed { idx: usize },
    /// Doubling layout: value register `idx` of interval `j`.
    Value { j: usize, idx: usize },
    /// Doubling layout: control register of interval `j`.
    Control { j: usize },
    /// The prefix is exhausted.
    Done,
}

/// First 1-based name of interval `j`: `2^{j+1} − 1`.
fn interval_start(j: usize) -> u64 {
    (1u64 << (j + 1)) - 1
}

impl ValueLayout {
    pub(crate) fn fixed(alloc: &mut RegAlloc, name_bound: u64) -> Self {
        ValueLayout::Fixed {
            values: alloc.reserve(usize::try_from(name_bound).expect("bound fits usize")),
        }
    }

    pub(crate) fn intervals(alloc: &mut RegAlloc, name_bound: u64) -> Self {
        let mut num_intervals = 0;
        while interval_start(num_intervals) <= name_bound {
            num_intervals += 1;
        }
        let controls = alloc.reserve(num_intervals);
        let intervals = (0..num_intervals)
            .map(|j| alloc.reserve(1usize << (j + 1)))
            .collect();
        ValueLayout::Intervals {
            controls,
            intervals,
        }
    }

    /// The value register of 1-based name `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside the layout.
    pub(crate) fn value_register(&self, name: u64) -> RegId {
        match self {
            ValueLayout::Fixed { values } => values.get((name - 1) as usize),
            ValueLayout::Intervals { intervals, .. } => {
                let j = interval_of(name);
                intervals[j].get((name - interval_start(j)) as usize)
            }
        }
    }

    /// The control registers a first store at `name` must raise, in
    /// writing order (controls of the intervals strictly before `name`'s;
    /// empty for the fixed layout).
    pub(crate) fn controls_to_raise(&self, name: u64) -> Vec<RegId> {
        match self {
            ValueLayout::Fixed { .. } => Vec::new(),
            ValueLayout::Intervals { controls, .. } => {
                (0..interval_of(name)).map(|j| controls.get(j)).collect()
            }
        }
    }

    /// Raises the control registers a first store at `name` must set
    /// (controls of the intervals strictly before `name`'s). The
    /// step-machine store path performs these writes itself from
    /// [`ValueLayout::controls_to_raise`]; this blocking form remains for
    /// tests and direct layout manipulation.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn raise_controls(&self, ctx: Ctx<'_>, name: u64) -> Step<()> {
        for reg in self.controls_to_raise(name) {
            ctx.write(reg, 1u64)?;
        }
        Ok(())
    }

    /// Reads the in-use prefix, invoking `sink` with each non-null value
    /// register's contents.
    pub(crate) fn read_prefix(
        &self,
        ctx: Ctx<'_>,
        mut sink: impl FnMut(exsel_shm::Word),
    ) -> Step<()> {
        match self {
            ValueLayout::Fixed { values } => {
                for reg in values.iter() {
                    let w = ctx.read(reg)?;
                    if !w.is_null() {
                        sink(w);
                    }
                }
            }
            ValueLayout::Intervals {
                controls,
                intervals,
            } => {
                for (j, interval) in intervals.iter().enumerate() {
                    for reg in interval.iter() {
                        let w = ctx.read(reg)?;
                        if !w.is_null() {
                            sink(w);
                        }
                    }
                    if ctx.read(controls.get(j))?.is_null() {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// The first position of the collect read sequence.
    pub(crate) fn first_read(&self) -> ReadCursor {
        match self {
            ValueLayout::Fixed { values } => {
                if values.is_empty() {
                    ReadCursor::Done
                } else {
                    ReadCursor::Fixed { idx: 0 }
                }
            }
            ValueLayout::Intervals { intervals, .. } => {
                if intervals.is_empty() {
                    ReadCursor::Done
                } else {
                    ReadCursor::Value { j: 0, idx: 0 }
                }
            }
        }
    }

    /// The register at cursor position `cur`.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is `Done` or belongs to the other layout.
    pub(crate) fn cursor_reg(&self, cur: ReadCursor) -> RegId {
        match (self, cur) {
            (ValueLayout::Fixed { values }, ReadCursor::Fixed { idx }) => values.get(idx),
            (ValueLayout::Intervals { intervals, .. }, ReadCursor::Value { j, idx }) => {
                intervals[j].get(idx)
            }
            (ValueLayout::Intervals { controls, .. }, ReadCursor::Control { j }) => controls.get(j),
            _ => panic!("cursor {cur:?} does not address this layout"),
        }
    }

    /// The position after `cur`, given whether the register just read
    /// there was null (only control positions consult it: a lowered —
    /// null — control ends the prefix, exactly like
    /// [`ValueLayout::read_prefix`]'s early break).
    pub(crate) fn advance_cursor(&self, cur: ReadCursor, was_null: bool) -> ReadCursor {
        match (self, cur) {
            (ValueLayout::Fixed { values }, ReadCursor::Fixed { idx }) => {
                if idx + 1 < values.len() {
                    ReadCursor::Fixed { idx: idx + 1 }
                } else {
                    ReadCursor::Done
                }
            }
            (ValueLayout::Intervals { intervals, .. }, ReadCursor::Value { j, idx }) => {
                if idx + 1 < intervals[j].len() {
                    ReadCursor::Value { j, idx: idx + 1 }
                } else {
                    ReadCursor::Control { j }
                }
            }
            (ValueLayout::Intervals { intervals, .. }, ReadCursor::Control { j }) => {
                if !was_null && j + 1 < intervals.len() {
                    ReadCursor::Value { j: j + 1, idx: 0 }
                } else {
                    ReadCursor::Done
                }
            }
            _ => panic!("cursor {cur:?} does not address this layout"),
        }
    }

    /// Total registers (values + controls).
    pub(crate) fn num_registers(&self) -> usize {
        match self {
            ValueLayout::Fixed { values } => values.len(),
            ValueLayout::Intervals {
                controls,
                intervals,
            } => controls.len() + intervals.iter().map(RegRange::len).sum::<usize>(),
        }
    }

    /// Appends the layout's extents to a footprint declaration. Value
    /// registers are addressed by acquired names and controls are raised
    /// by whichever storer crosses an interval boundary first, so every
    /// extent is shared for every pid.
    pub(crate) fn footprint(&self, spec: &mut exsel_shm::FootprintSpec) {
        match self {
            ValueLayout::Fixed { values } => {
                spec.phase("sc.values")
                    .reads(*values)
                    .writes_shared(*values);
            }
            ValueLayout::Intervals {
                controls,
                intervals,
            } => {
                spec.phase("sc.controls")
                    .reads(*controls)
                    .writes_shared(*controls);
                for iv in intervals {
                    spec.phase("sc.values").reads(*iv).writes_shared(*iv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm, Word};

    #[test]
    fn interval_math() {
        assert_eq!(interval_of(1), 0);
        assert_eq!(interval_of(2), 0);
        assert_eq!(interval_of(3), 1);
        assert_eq!(interval_of(6), 1);
        assert_eq!(interval_of(7), 2);
        assert_eq!(interval_of(14), 2);
        assert_eq!(interval_of(15), 3);
        assert_eq!(interval_start(0), 1);
        assert_eq!(interval_start(1), 3);
        assert_eq!(interval_start(2), 7);
    }

    #[test]
    fn every_name_has_a_distinct_register() {
        let mut alloc = RegAlloc::new();
        let layout = ValueLayout::intervals(&mut alloc, 30);
        let regs: Vec<_> = (1..=30u64).map(|m| layout.value_register(m)).collect();
        let set: std::collections::BTreeSet<_> = regs.iter().collect();
        assert_eq!(set.len(), regs.len());
    }

    #[test]
    fn fixed_layout_roundtrip() {
        let mut alloc = RegAlloc::new();
        let layout = ValueLayout::fixed(&mut alloc, 4);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        ctx.write(layout.value_register(3), Word::Pair(9, 10))
            .unwrap();
        let mut seen = Vec::new();
        layout.read_prefix(ctx, |w| seen.push(w)).unwrap();
        assert_eq!(seen, vec![Word::Pair(9, 10)]);
    }

    #[test]
    fn collect_stops_at_lowered_control() {
        let mut alloc = RegAlloc::new();
        let layout = ValueLayout::intervals(&mut alloc, 30);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        // Store at name 5 (interval 1): raise controls of interval 0,
        // write the value.
        layout.raise_controls(ctx, 5).unwrap();
        ctx.write(layout.value_register(5), Word::Pair(1, 55))
            .unwrap();
        // Also place a value in a *later* interval without its controls:
        // collect must not see it (models a store that has not finished
        // raising controls — its store has not completed).
        ctx.write(layout.value_register(20), Word::Pair(2, 99))
            .unwrap();
        let mut seen = Vec::new();
        let before = ctx.steps();
        layout.read_prefix(ctx, |w| seen.push(w)).unwrap();
        let cost = ctx.steps() - before;
        assert_eq!(seen, vec![Word::Pair(1, 55)]);
        // Reads intervals 0 (2+1) and 1 (4+1): 8 steps, far below the 30
        // registers of the full layout.
        assert_eq!(cost, 8);
    }

    #[test]
    fn register_accounting() {
        let mut alloc = RegAlloc::new();
        let layout = ValueLayout::intervals(&mut alloc, 30);
        assert_eq!(layout.num_registers(), alloc.total());
        let mut alloc2 = RegAlloc::new();
        let fixed = ValueLayout::fixed(&mut alloc2, 12);
        assert_eq!(fixed.num_registers(), 12);
    }
}
