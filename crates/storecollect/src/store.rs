//! The Store&Collect object.

use exsel_core::{
    AdaptiveRename, AlmostAdaptive, Outcome, PolyLogRename, Rename, RenameConfig, RenameMachine,
    StepRename,
};
use exsel_shm::{drive, Ctx, Pid, Poll, RegAlloc, RegId, ShmOp, StepMachine, Word};

use crate::layout::{ReadCursor, ValueLayout};
use crate::StoreCollectError;

/// Which of Theorem 5's knowledge settings an instance implements.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Setting {
    /// (i): both `k` and `N` known.
    KnownContention,
    /// (ii)/(iii): `N` known, `k` unknown.
    AlmostAdaptive,
    /// (iv): fully adaptive.
    Adaptive,
}

/// Per-process local state: the value register adopted by the first store.
///
/// A process keeps one handle per [`StoreCollect`] object for its entire
/// lifetime; the handle is intentionally not `Clone` (two copies would
/// race on the first store).
#[derive(Debug, Default)]
pub struct StoreHandle {
    reg: Option<RegId>,
}

impl StoreHandle {
    /// A fresh handle (no store performed yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the first store (which runs renaming) has completed.
    #[must_use]
    pub fn is_registered(&self) -> bool {
        self.reg.is_some()
    }

    /// The value register adopted by the first store, if any. Distinct
    /// processes always hold distinct registers (renaming
    /// exclusiveness); experiments use this to audit that invariant.
    #[must_use]
    pub fn register(&self) -> Option<RegId> {
        self.reg
    }

    /// Records the register adopted by a completed [`FirstStoreOp`].
    /// Callers driving the step-machine store path must invoke this with
    /// the machine's output before issuing further stores through the
    /// handle.
    pub fn adopt(&mut self, reg: RegId) {
        debug_assert!(self.reg.is_none(), "first store already completed");
        self.reg = Some(reg);
    }
}

/// A wait-free Store&Collect object (Theorem 5).
///
/// See the crate docs for the four settings and their complexity bounds.
/// Collect semantics: the returned view contains `(owner, value)` for
/// every process whose first store completed before the collect started,
/// with `value` a value the owner stored no earlier than its latest store
/// preceding the collect (regularity, as standard for collect objects).
pub struct StoreCollect {
    renamer: Box<dyn StepRename + Send>,
    layout: ValueLayout,
    setting: Setting,
}

impl StoreCollect {
    /// Setting (i): both the contention bound `k` and the original-name
    /// range `[1, n_names]` are known. Uses `PolyLog-Rename(k, N)` and a
    /// fixed `O(k)` value-register prefix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n_names == 0`.
    #[must_use]
    pub fn known(alloc: &mut RegAlloc, k: usize, n_names: usize, cfg: &RenameConfig) -> Self {
        let renamer = PolyLogRename::new(alloc, n_names, k, cfg);
        let layout = ValueLayout::fixed(alloc, renamer.name_bound());
        StoreCollect {
            renamer: Box::new(renamer),
            layout,
            setting: Setting::KnownContention,
        }
    }

    /// Settings (ii)/(iii): the original-name range `[1, n_names]` is
    /// known but contention is not. Uses `Almost-Adaptive(N)` and doubling
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if `n_names == 0` or `n_processes == 0`.
    #[must_use]
    pub fn almost_adaptive(
        alloc: &mut RegAlloc,
        n_names: usize,
        n_processes: usize,
        cfg: &RenameConfig,
    ) -> Self {
        let renamer = AlmostAdaptive::new(alloc, n_names, n_processes, cfg);
        let layout = ValueLayout::intervals(alloc, renamer.name_bound());
        StoreCollect {
            renamer: Box::new(renamer),
            layout,
            setting: Setting::AlmostAdaptive,
        }
    }

    /// Setting (iv): fully adaptive — neither `k` nor `N` known. Uses
    /// `Adaptive-Rename` and doubling intervals.
    ///
    /// # Panics
    ///
    /// Panics if `n_processes == 0`.
    #[must_use]
    pub fn adaptive(alloc: &mut RegAlloc, n_processes: usize, cfg: &RenameConfig) -> Self {
        let renamer = AdaptiveRename::new(alloc, n_processes, cfg);
        let layout = ValueLayout::intervals(alloc, renamer.name_bound());
        StoreCollect {
            renamer: Box::new(renamer),
            layout,
            setting: Setting::Adaptive,
        }
    }

    /// The setting this instance implements.
    #[must_use]
    pub fn setting(&self) -> Setting {
        self.setting
    }

    /// Registers used by the renamer plus the value layout.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        // The renamer's registers were reserved on the same allocator;
        // layout knows only its own. Experiments read the allocator total,
        // this reports the layout part.
        self.layout.num_registers()
    }

    /// Stores `value` for the calling process (unique original name
    /// `original`). The first store runs the renaming subroutine and
    /// raises interval controls; later stores through the same handle are
    /// a single write.
    ///
    /// # Errors
    ///
    /// [`StoreCollectError::Crash`] if the process crashes;
    /// [`StoreCollectError::CapacityExceeded`] if more processes contend
    /// than the instance was sized for.
    pub fn store(
        &self,
        ctx: Ctx<'_>,
        handle: &mut StoreHandle,
        original: u64,
        value: u64,
    ) -> Result<(), StoreCollectError> {
        match handle.reg {
            Some(reg) => ctx.write(reg, Word::Pair(original, value))?,
            None => {
                // Blocking adapter over the step-machine first-store path.
                let mut op = self.begin_first_store(ctx.pid(), original, value);
                let reg = drive(&mut op, ctx)??;
                handle.adopt(reg);
            }
        }
        Ok(())
    }

    /// Starts a process's *first* store — renaming, control raising and
    /// the value write — as a [`StepMachine`], one shared-memory operation
    /// per step. `Ready(Ok(reg))` yields the adopted value register, which
    /// the caller records with [`StoreHandle::adopt`]; later stores are a
    /// single write to it. `Ready(Err(_))` reports capacity exhaustion.
    #[must_use]
    pub fn begin_first_store<'a>(
        &'a self,
        pid: Pid,
        original: u64,
        value: u64,
    ) -> FirstStoreOp<'a> {
        FirstStoreOp {
            sc: self,
            original,
            value,
            state: FsState::Renaming(self.renamer.begin_rename(pid, original)),
        }
    }

    /// Collects the latest stored value of every registered process, as
    /// `(original name, value)` pairs sorted by original name.
    ///
    /// # Errors
    ///
    /// [`StoreCollectError::Crash`] if the process crashes.
    pub fn collect(&self, ctx: Ctx<'_>) -> Result<Vec<(u64, u64)>, StoreCollectError> {
        let mut out = Vec::new();
        self.layout.read_prefix(ctx, |w| {
            if let Some(pair) = w.as_pair() {
                out.push(pair);
            }
        })?;
        out.sort_unstable();
        Ok(out)
    }

    /// Starts a collect as a [`StepMachine`], one register read per step,
    /// performing exactly [`StoreCollect::collect`]'s read sequence:
    /// every value register for the fixed layout; interval values then
    /// the interval's control — stopping at the first lowered control —
    /// for the doubling layouts. `Ready(len)` reports the view size; the
    /// `(original, value)` pairs, sorted by original name, stay readable
    /// through [`CollectOp::view`] until the next re-arm.
    ///
    /// The machine is resettable and re-armable in place
    /// ([`CollectOp::rearm`]): one pooled collector performs any number
    /// of collects without touching the allocator once its view buffer
    /// has stretched to the high-water registered count.
    #[must_use]
    pub fn begin_collect(&self, pid: Pid) -> CollectOp<'_> {
        let _ = pid; // collects are anonymous: reads only
        CollectOp {
            sc: self,
            state: self.layout.first_read(),
            view: Vec::new(),
        }
    }
}

enum FsState<'a> {
    Renaming(RenameMachine<'a>),
    /// Raising interval controls `controls[idx..]`, then writing the value.
    Raising {
        controls: Vec<RegId>,
        idx: usize,
        reg: RegId,
    },
    WriteValue {
        reg: RegId,
    },
}

/// In-progress first store — a [`StepMachine`] over the rename +
/// raise-controls + value-write path of [`StoreCollect::store`].
pub struct FirstStoreOp<'a> {
    sc: &'a StoreCollect,
    original: u64,
    value: u64,
    state: FsState<'a>,
}

impl FirstStoreOp<'_> {
    /// Transition for a freshly acquired name: set up control raising (or
    /// go straight to the value write when there are none).
    fn enter_raising(&mut self, name: u64) {
        let controls = self.sc.layout.controls_to_raise(name);
        let reg = self.sc.layout.value_register(name);
        self.state = if controls.is_empty() {
            FsState::WriteValue { reg }
        } else {
            FsState::Raising {
                controls,
                idx: 0,
                reg,
            }
        };
    }
}

impl exsel_shm::Footprint for StoreCollect {
    /// The renamer's footprint (where the exclusive extents live, if the
    /// renamer has any) plus the value layout, which is shared for every
    /// pid: a registered store writes the value register of its acquired
    /// name — unique dynamically, unattributable statically.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        self.renamer.footprint(pid, spec);
        self.layout.footprint(spec);
    }
}

impl StepMachine for FirstStoreOp<'_> {
    type Output = Result<RegId, StoreCollectError>;

    fn op(&self) -> ShmOp {
        match &self.state {
            FsState::Renaming(machine) => machine.op(),
            FsState::Raising { controls, idx, .. } => ShmOp::Write(controls[*idx], Word::Int(1)),
            FsState::WriteValue { reg } => {
                ShmOp::Write(*reg, Word::Pair(self.original, self.value))
            }
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<Self::Output> {
        match &mut self.state {
            FsState::Renaming(machine) => match machine.advance(input) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(Outcome::Failed) => {
                    Poll::Ready(Err(StoreCollectError::CapacityExceeded))
                }
                Poll::Ready(Outcome::Named(name)) => {
                    self.enter_raising(name);
                    Poll::Pending
                }
            },
            FsState::Raising { controls, idx, reg } => {
                *idx += 1;
                if *idx >= controls.len() {
                    self.state = FsState::WriteValue { reg: *reg };
                }
                Poll::Pending
            }
            FsState::WriteValue { reg } => Poll::Ready(Ok(*reg)),
        }
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        match &self.state {
            FsState::Renaming(machine) => machine.peek(),
            FsState::Raising { controls, idx, .. } => (exsel_shm::OpKind::Write, controls[*idx]),
            FsState::WriteValue { reg } => (exsel_shm::OpKind::Write, *reg),
        }
    }

    fn reset(&mut self, pid: Pid) {
        self.state = FsState::Renaming(self.sc.renamer.begin_rename(pid, self.original));
    }
}

/// In-progress collect — a [`StepMachine`] over the prefix-read path of
/// [`StoreCollect::collect`], one register read per step. See
/// [`StoreCollect::begin_collect`].
#[derive(Debug)]
pub struct CollectOp<'a> {
    sc: &'a StoreCollect,
    state: ReadCursor,
    /// The pairs collected so far; sorted by original name at completion
    /// and kept (capacity and contents) until the next re-arm.
    view: Vec<(u64, u64)>,
}

impl CollectOp<'_> {
    /// The collected `(original name, value)` pairs of the last completed
    /// collect, sorted by original name — identical to what
    /// [`StoreCollect::collect`] would have returned against the same
    /// register contents. Mid-collect, the pairs gathered so far in read
    /// order.
    #[must_use]
    pub fn view(&self) -> &[(u64, u64)] {
        &self.view
    }

    /// Re-arms the machine in place as a fresh collect over the same
    /// object — the allocation-free counterpart of
    /// [`StoreCollect::begin_collect`] for repeated collects within one
    /// trial (the view buffer keeps its capacity).
    pub fn rearm(&mut self) {
        self.state = self.sc.layout.first_read();
        self.view.clear();
    }
}

impl StepMachine for CollectOp<'_> {
    /// The number of pairs in the completed view.
    type Output = usize;

    fn op(&self) -> ShmOp {
        ShmOp::Read(self.sc.layout.cursor_reg(self.state))
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        (
            exsel_shm::OpKind::Read,
            self.sc.layout.cursor_reg(self.state),
        )
    }

    fn advance(&mut self, input: &Word) -> Poll<usize> {
        if let Some(pair) = input.as_pair() {
            // Control registers hold Int(1), never pairs, so only value
            // positions can land here — exactly read_prefix's sink.
            self.view.push(pair);
        }
        self.state = self.sc.layout.advance_cursor(self.state, input.is_null());
        if self.state == ReadCursor::Done {
            self.view.sort_unstable();
            Poll::Ready(self.view.len())
        } else {
            Poll::Pending
        }
    }

    fn reset(&mut self, pid: Pid) {
        let _ = pid; // collects are anonymous: reads only
        self.rearm();
    }
}

impl std::fmt::Debug for StoreCollect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreCollect")
            .field("setting", &self.setting)
            .field("name_bound", &self.renamer.name_bound())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};

    fn run_store_collect(sc: &StoreCollect, num_regs: usize, k: usize) -> Vec<Vec<(u64, u64)>> {
        let mem = ThreadedShm::new(num_regs, k);
        std::thread::scope(|s| {
            (0..k)
                .map(|p| {
                    let (sc, mem) = (sc, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut h = StoreHandle::new();
                        let orig = (p as u64 + 1) * 37;
                        for round in 0..3u64 {
                            sc.store(ctx, &mut h, orig, 100 * p as u64 + round).unwrap();
                        }
                        sc.collect(ctx).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    fn check_views(views: &[Vec<(u64, u64)>], k: usize) {
        for view in views {
            // Every view has at most one entry per owner; the final
            // sequential collect below checks completeness.
            let owners: std::collections::BTreeSet<u64> = view.iter().map(|&(o, _)| o).collect();
            assert_eq!(owners.len(), view.len(), "duplicate owner in view");
            assert!(view.len() <= k);
        }
    }

    #[test]
    fn known_setting_roundtrip() {
        let mut alloc = RegAlloc::new();
        let k = 4;
        let sc = StoreCollect::known(&mut alloc, k, 256, &RenameConfig::default());
        let views = run_store_collect(&sc, alloc.total(), k);
        check_views(&views, k);
        // A quiescent collect sees everyone's last value.
        let mem = ThreadedShm::new(alloc.total(), k);
        let ctx0 = Ctx::new(&mem, Pid(0));
        let mut h = StoreHandle::new();
        sc.store(ctx0, &mut h, 37, 7).unwrap();
        assert_eq!(sc.collect(ctx0).unwrap(), vec![(37, 7)]);
    }

    #[test]
    fn adaptive_setting_concurrent() {
        let mut alloc = RegAlloc::new();
        let k = 6;
        let sc = StoreCollect::adaptive(&mut alloc, 8, &RenameConfig::default());
        let views = run_store_collect(&sc, alloc.total(), k);
        check_views(&views, k);
    }

    #[test]
    fn almost_adaptive_quiescent_complete() {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::almost_adaptive(&mut alloc, 64, 8, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 3);
        for p in 0..3 {
            let ctx = Ctx::new(&mem, Pid(p));
            let mut h = StoreHandle::new();
            sc.store(ctx, &mut h, p as u64 + 1, 10 + p as u64).unwrap();
        }
        let view = sc.collect(Ctx::new(&mem, Pid(0))).unwrap();
        assert_eq!(view, vec![(1, 10), (2, 11), (3, 12)]);
    }

    #[test]
    fn repeat_store_is_one_step_and_overwrites() {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, 4, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut h = StoreHandle::new();
        sc.store(ctx, &mut h, 5, 1).unwrap();
        assert!(h.is_registered());
        let before = ctx.steps();
        sc.store(ctx, &mut h, 5, 2).unwrap();
        assert_eq!(ctx.steps() - before, 1, "repeat store must be one write");
        assert_eq!(sc.collect(ctx).unwrap(), vec![(5, 2)]);
    }

    #[test]
    fn collect_cost_scales_with_contention_not_capacity() {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, 16, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut h = StoreHandle::new();
        sc.store(ctx, &mut h, 9, 1).unwrap();
        let before = ctx.steps();
        sc.collect(ctx).unwrap();
        let cost = ctx.steps() - before;
        // One registered process: collect reads only the first interval(s),
        // far below the full O(n²)-register layout.
        assert!(cost < 64, "collect cost {cost} too high for k=1");
    }

    #[test]
    fn debug_mentions_setting() {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, 2, &RenameConfig::default());
        assert!(format!("{sc:?}").contains("Adaptive"));
        assert_eq!(sc.setting(), Setting::Adaptive);
    }

    /// Drives a CollectOp to completion, returning (view, steps).
    fn drive_collect(sc: &StoreCollect, ctx: Ctx<'_>) -> (Vec<(u64, u64)>, u64) {
        let mut op = sc.begin_collect(ctx.pid());
        let before = ctx.steps();
        let len = drive(&mut op, ctx).unwrap();
        assert_eq!(len, op.view().len());
        (op.view().to_vec(), ctx.steps() - before)
    }

    #[test]
    fn collect_machine_matches_blocking_collect_in_view_and_steps() {
        for setting in 0..3 {
            let mut alloc = RegAlloc::new();
            let sc = match setting {
                0 => StoreCollect::known(&mut alloc, 4, 64, &RenameConfig::default()),
                1 => StoreCollect::almost_adaptive(&mut alloc, 64, 8, &RenameConfig::default()),
                _ => StoreCollect::adaptive(&mut alloc, 8, &RenameConfig::default()),
            };
            let mem = ThreadedShm::new(alloc.total(), 4);
            for p in 0..3 {
                let ctx = Ctx::new(&mem, Pid(p));
                let mut h = StoreHandle::new();
                sc.store(ctx, &mut h, p as u64 + 1, 50 + p as u64).unwrap();
            }
            let ctx = Ctx::new(&mem, Pid(3));
            let before = ctx.steps();
            let blocking = sc.collect(ctx).unwrap();
            let blocking_steps = ctx.steps() - before;
            let (view, steps) = drive_collect(&sc, ctx);
            assert_eq!(view, blocking, "setting {setting}");
            assert_eq!(
                steps, blocking_steps,
                "setting {setting}: read sequences diverged"
            );
        }
    }

    #[test]
    fn collect_machine_rearms_in_place_and_sees_new_stores() {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, 4, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx0 = Ctx::new(&mem, Pid(0));
        let mut h = StoreHandle::new();
        sc.store(ctx0, &mut h, 7, 1).unwrap();

        let ctx1 = Ctx::new(&mem, Pid(1));
        let mut op = sc.begin_collect(Pid(1));
        assert_eq!(drive(&mut op, ctx1).unwrap(), 1);
        assert_eq!(op.view(), &[(7, 1)]);

        sc.store(ctx0, &mut h, 7, 2).unwrap();
        op.rearm();
        assert_eq!(drive(&mut op, ctx1).unwrap(), 1);
        assert_eq!(op.view(), &[(7, 2)]);

        // reset (the pooling path) behaves like rearm.
        op.reset(Pid(1));
        assert_eq!(drive(&mut op, ctx1).unwrap(), 1);
        assert_eq!(op.view(), &[(7, 2)]);
    }

    #[test]
    fn collect_machine_stops_at_lowered_control() {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, 16, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 2);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut h = StoreHandle::new();
        sc.store(ctx, &mut h, 9, 1).unwrap();
        let (view, steps) = drive_collect(&sc, ctx);
        assert_eq!(view, vec![(9, 1)]);
        assert!(steps < 64, "collect machine read {steps} registers for k=1");
    }
}
