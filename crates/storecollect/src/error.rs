//! Store&Collect errors.

use std::fmt;

use exsel_shm::Crash;

/// Errors of store/collect operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StoreCollectError {
    /// The calling process crashed mid-operation.
    Crash(Crash),
    /// The renaming subroutine could not produce a name because more
    /// processes contend than the instance was sized for.
    CapacityExceeded,
}

impl fmt::Display for StoreCollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreCollectError::Crash(c) => c.fmt(f),
            StoreCollectError::CapacityExceeded => {
                write!(f, "contention exceeded the instance's capacity")
            }
        }
    }
}

impl std::error::Error for StoreCollectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreCollectError::Crash(c) => Some(c),
            StoreCollectError::CapacityExceeded => None,
        }
    }
}

impl From<Crash> for StoreCollectError {
    fn from(c: Crash) -> Self {
        StoreCollectError::Crash(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert_eq!(
            StoreCollectError::Crash(Crash).to_string(),
            "process crashed"
        );
        assert!(StoreCollectError::CapacityExceeded
            .to_string()
            .contains("capacity"));
        use std::error::Error;
        assert!(StoreCollectError::Crash(Crash).source().is_some());
        assert!(StoreCollectError::CapacityExceeded.source().is_none());
    }

    #[test]
    fn from_crash() {
        let e: StoreCollectError = Crash.into();
        assert_eq!(e, StoreCollectError::Crash(Crash));
    }
}
