//! Store&Collect built on the renaming stack — Theorem 5 of Chlebus &
//! Kowalski.
//!
//! `Store(v)` publishes a value for the calling process; `Collect` returns
//! the latest value of every process that has stored. The construction:
//! a process's *first* store runs a renaming algorithm, adopts the
//! resulting name `m` as the index of a dedicated value register, and
//! writes there; every later store is a single write. Collect reads the
//! register prefix in use.
//!
//! The four knowledge settings of Theorem 5 differ only in the renaming
//! subroutine and in how collect discovers the prefix length:
//!
//! | Setting | Renamer | First store | Collect | Registers |
//! |---|---|---|---|---|
//! | (i) `k, N` known | `PolyLog-Rename(k,N)` | `O(log k(log N + log k log log N))` | `O(k)` | `O(k·log(N/k))` |
//! | (ii) `N = O(n)` known | `Almost-Adaptive(N)` | `O(log²k(log n + log k log log n))` | `O(k)` | `O(n)` |
//! | (iii) `N = poly(n)` known | `Almost-Adaptive(N)` | same as (ii) | `O(k)` | `O(n·log n)` |
//! | (iv) fully adaptive | `Adaptive-Rename` | `O(k)` | `O(k)` | `O(n²)` |
//!
//! In the adaptive settings the value registers are organized in
//! *doubling intervals* of lengths 2, 4, 8, …, each preceded by a control
//! register: a first store at a name in interval `J` first raises the
//! controls of intervals `0..J`, and collect scans intervals in order
//! until it finds a lowered control — `O(k)` reads because adaptive names
//! are `O(k)`.
//!
//! # Example
//!
//! ```
//! use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
//! use exsel_storecollect::{StoreCollect, StoreHandle};
//! use exsel_core::RenameConfig;
//!
//! let mut alloc = RegAlloc::new();
//! let sc = StoreCollect::adaptive(&mut alloc, 4, &RenameConfig::default());
//! let mem = ThreadedShm::new(alloc.total(), 4);
//!
//! let ctx = Ctx::new(&mem, Pid(0));
//! let mut handle = StoreHandle::new();
//! sc.store(ctx, &mut handle, 42, 1000)?; // original name 42, value 1000
//! sc.store(ctx, &mut handle, 42, 1001)?; // repeat stores are one write
//!
//! let view = sc.collect(ctx)?;
//! assert_eq!(view, vec![(42, 1001)]);
//! # Ok::<(), exsel_storecollect::StoreCollectError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layout;
mod store;

pub use error::StoreCollectError;
pub use store::{CollectOp, FirstStoreOp, Setting, StoreCollect, StoreHandle};
