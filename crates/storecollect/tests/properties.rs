//! Property-based tests of the Store&Collect layer: interval arithmetic,
//! collect regularity and register exclusiveness under arbitrary
//! parameters and schedules.

use exsel_core::RenameConfig;
use exsel_shm::{Crash, RegAlloc};
use exsel_sim::policy::RandomPolicy;
use exsel_sim::SimBuilder;
use exsel_storecollect::{StoreCollect, StoreHandle};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Adaptive store&collect: for arbitrary contention, seeds and store
    /// counts, value registers are exclusive and final collects are
    /// complete and latest.
    #[test]
    fn adaptive_store_collect_invariants(
        k in 1usize..5,
        rounds in 1u64..4,
        seed in any::<u64>(),
    ) {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, 8, &RenameConfig::default());
        let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .run(k, |ctx| {
                let mut h = StoreHandle::new();
                let orig = (ctx.pid().0 as u64 + 1) * 11;
                for round in 0..rounds {
                    sc.store(ctx, &mut h, orig, round).map_err(|_| Crash)?;
                }
                // Final self-check: a collect after my last store includes
                // my latest value.
                let view = sc.collect(ctx).map_err(|_| Crash)?;
                let mine = view.iter().find(|&&(o, _)| o == orig).copied();
                Ok((h.register().unwrap().0, mine))
            });
        let mut regs = Vec::new();
        for (pid, r) in outcome.results.iter().enumerate() {
            let (reg, mine) = r.as_ref().unwrap();
            regs.push(*reg);
            let orig = (pid as u64 + 1) * 11;
            prop_assert_eq!(*mine, Some((orig, rounds - 1)), "collect missed own latest");
        }
        regs.sort_unstable();
        regs.dedup();
        prop_assert_eq!(regs.len(), k, "value-register collision");
    }

    /// The known-(k,N) setting under exact-capacity contention: always
    /// complete.
    #[test]
    fn known_setting_complete_at_capacity(
        k in 1usize..5,
        n_exp in 6u32..10,
        seed in any::<u64>(),
    ) {
        let n_names = 1usize << n_exp;
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::known(&mut alloc, k, n_names, &RenameConfig::with_seed(seed));
        let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .run(k, |ctx| {
                let mut h = StoreHandle::new();
                let orig = (ctx.pid().0 * n_names / k) as u64 + 1;
                sc.store(ctx, &mut h, orig, 5).map_err(|_| Crash)?;
                Ok(())
            });
        prop_assert!(outcome.results.iter().all(Result::is_ok));
    }
}
