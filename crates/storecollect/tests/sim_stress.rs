//! Store&Collect under the deterministic simulator: first-store races,
//! collect regularity and the interval mechanism across adversarial
//! seeds.

use exsel_core::RenameConfig;
use exsel_shm::{Crash, Pid, RegAlloc};
use exsel_sim::policy::{RandomPolicy, Solo};
use exsel_sim::SimBuilder;
use exsel_storecollect::{StoreCollect, StoreHandle};

#[test]
fn racing_first_stores_claim_distinct_registers() {
    let n = 4;
    for seed in 0..12 {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, n, &RenameConfig::default());
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(n, |ctx| {
                let mut h = StoreHandle::new();
                sc.store(ctx, &mut h, ctx.pid().0 as u64 + 1, 9)
                    .map_err(|_| Crash)?;
                Ok(h.register().expect("registered").0)
            });
        let regs: Vec<usize> = outcome.completed().copied().collect();
        let set: std::collections::BTreeSet<usize> = regs.iter().copied().collect();
        assert_eq!(set.len(), regs.len(), "seed {seed}: register collision");
    }
}

#[test]
fn collect_concurrent_with_first_stores_is_regular() {
    // A collector racing first stores must return, for each owner it
    // reports, a value that owner actually stored — and must report any
    // owner whose store completed before the collect started. The
    // collector here runs solo *after* grants interleave arbitrarily.
    let n = 4;
    for seed in 0..8 {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::almost_adaptive(&mut alloc, 32, n, &RenameConfig::default());
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(n, |ctx| {
                if ctx.pid().0 == 0 {
                    // Collector: repeatedly collect while others store.
                    let mut views = Vec::new();
                    for _ in 0..3 {
                        views.push(sc.collect(ctx).map_err(|_| Crash)?);
                    }
                    Ok(views)
                } else {
                    let mut h = StoreHandle::new();
                    let orig = ctx.pid().0 as u64;
                    sc.store(ctx, &mut h, orig, orig * 10).map_err(|_| Crash)?;
                    Ok(Vec::new())
                }
            });
        let views = outcome.results[0].as_ref().unwrap();
        for view in views {
            for &(owner, value) in view {
                assert_eq!(
                    value,
                    owner * 10,
                    "seed {seed}: value never stored by {owner}"
                );
            }
        }
        // Views grow monotonically (more stores visible over time).
        for pair in views.windows(2) {
            assert!(
                pair[0].len() <= pair[1].len(),
                "seed {seed}: collect went backwards"
            );
        }
    }
}

#[test]
fn solo_store_and_collect_wait_free() {
    let n = 3;
    let mut alloc = RegAlloc::new();
    let sc = StoreCollect::adaptive(&mut alloc, n, &RenameConfig::default());
    let outcome = SimBuilder::new(alloc.total(), Box::new(Solo::new(Pid(2)))).run(n, |ctx| {
        let mut h = StoreHandle::new();
        sc.store(ctx, &mut h, ctx.pid().0 as u64 + 1, 5)
            .map_err(|_| Crash)?;
        sc.collect(ctx).map_err(|_| Crash)
    });
    let hero_view = outcome.results[2].as_ref().unwrap();
    assert!(
        hero_view.iter().any(|&(o, v)| o == 3 && v == 5),
        "solo store+collect must see itself"
    );
}

#[test]
fn known_setting_rejects_overflow_gracefully() {
    // More contenders than the (k, N) instance was sized for: the excess
    // gets CapacityExceeded, never a duplicate register.
    let k = 2;
    let contenders = 5;
    let mut alloc = RegAlloc::new();
    let sc = StoreCollect::known(&mut alloc, k, 64, &RenameConfig::default());
    let outcome =
        SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(3))).run(contenders, |ctx| {
            let mut h = StoreHandle::new();
            match sc.store(ctx, &mut h, ctx.pid().0 as u64 + 1, 1) {
                Ok(()) => Ok(h.register().map(|r| r.0)),
                Err(_) => Ok(None),
            }
        });
    let regs: Vec<usize> = outcome.completed().flatten().copied().collect();
    let set: std::collections::BTreeSet<usize> = regs.iter().copied().collect();
    assert_eq!(set.len(), regs.len(), "overflow created duplicates");
}
