//! Ownership analysis over declared register footprints.
//!
//! The paper's algorithms rest on a single-writer register discipline:
//! every process writes only its own snapshot slot, its own suite of
//! naming registers, its own row of the help matrix. `exsel-shm`'s
//! [`Footprint`] trait lets each machine family declare that discipline
//! as data; this crate consumes the declarations twice:
//!
//! * **Statically** — [`non_interference`] proves, before any step runs,
//!   that no two processes of a configured instance claim exclusive
//!   ownership of overlapping registers, and that no declared shared
//!   write can land inside someone else's exclusive extent. This is the
//!   pairwise proof obligation behind the paper's "the sets of registers
//!   used ... are to be disjoint".
//! * **Dynamically** — an [`AccessChecker`] compiled from the same
//!   declarations validates every granted `ShmOp` of a run: reads and
//!   writes must fall inside the process's declared footprint, and
//!   writes into exclusively-owned extents must come from the owner. Per
//!   owned register it keeps a last-writer clock (trial epoch + global
//!   op index) so a violation report pins the foreign write against the
//!   owner's most recent legitimate write, and the op index doubles as
//!   the length of the trace prefix to hand to the ddmin shrinker.
//!
//! The checker is built for hot loops: `compile` does all allocation
//! (merged sorted interval tables, dense clock vectors), `begin_trial`
//! bumps an epoch instead of clearing clocks, and `observe` is two
//! binary searches with no allocation — steady-state checking stays
//! allocation-free, which the `alloc_free` battery asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use exsel_shm::{Footprint, FootprintSpec, OpKind, Pid, RegId};

use exsel_shm::Access;

/// Upper bound on violations kept with full detail per trial; beyond
/// this the checker keeps counting but stops recording (a broken run
/// produces violations at line rate — the first few are the diagnosis).
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// A failure of the static non-interference pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticError {
    /// A process declared no footprint at all: nothing can be proven
    /// about it, so the configuration is rejected rather than silently
    /// unchecked.
    MissingFootprint {
        /// The process with the empty declaration.
        pid: Pid,
    },
    /// Two processes both claim exclusive (single-writer) ownership of
    /// the same register.
    ExclusiveOverlap {
        /// A register in the overlap.
        reg: RegId,
        /// One claimant and the phase of its claim.
        a: (Pid, &'static str),
        /// The other claimant and the phase of its claim.
        b: (Pid, &'static str),
    },
    /// A declared shared-write extent intersects a register another
    /// process owns exclusively — the shared protocol could overwrite
    /// the single writer.
    SharedIntoExclusive {
        /// A register in the intersection.
        reg: RegId,
        /// The shared writer and the phase of its declaration.
        writer: (Pid, &'static str),
        /// The exclusive owner and the phase of its claim.
        owner: (Pid, &'static str),
    },
    /// A declared extent reaches past the configured register bank.
    OutOfRange {
        /// The declaring process.
        pid: Pid,
        /// The phase of the extent.
        phase: &'static str,
        /// One-past-the-end register index of the extent.
        end: usize,
        /// Number of registers in the bank.
        num_registers: usize,
    },
}

impl fmt::Display for StaticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticError::MissingFootprint { pid } => {
                write!(f, "pid {} declares no footprint", pid.0)
            }
            StaticError::ExclusiveOverlap { reg, a, b } => write!(
                f,
                "register {} exclusively claimed by both pid {} ({}) and pid {} ({})",
                reg.0, a.0 .0, a.1, b.0 .0, b.1
            ),
            StaticError::SharedIntoExclusive { reg, writer, owner } => write!(
                f,
                "shared write of pid {} ({}) covers register {} owned exclusively by pid {} ({})",
                writer.0 .0, writer.1, reg.0, owner.0 .0, owner.1
            ),
            StaticError::OutOfRange {
                pid,
                phase,
                end,
                num_registers,
            } => write!(
                f,
                "pid {} ({}) declares registers up to {end} in a bank of {num_registers}",
                pid.0, phase
            ),
        }
    }
}

impl std::error::Error for StaticError {}

/// What a dynamic check found wrong with one granted operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read of a register outside the process's declared footprint.
    UndeclaredRead,
    /// A write to a register outside the process's declared write
    /// extents.
    UndeclaredWrite,
    /// A write into a register exclusively owned by another process —
    /// the single-writer discipline broken at run time.
    ForeignWrite {
        /// The declared exclusive owner.
        owner: Pid,
        /// The phase of the owner's claim.
        phase: &'static str,
        /// Global op index of the owner's most recent write to the
        /// register this trial, if any — the write the intruder races.
        last_owner_write: Option<u64>,
    },
}

/// One dynamic footprint violation: the offending pid, register, and the
/// global op index at which the operation was granted (i.e. the length
/// of the trace prefix that reproduces it).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The process whose granted operation violated its declaration.
    pub pid: Pid,
    /// The register touched.
    pub reg: RegId,
    /// What was wrong.
    pub kind: ViolationKind,
    /// Global operation count at grant time (1-based: the violating op
    /// is the `op_index`-th grant of the trial).
    pub op_index: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ViolationKind::UndeclaredRead => write!(
                f,
                "op {}: pid {} reads register {} outside its footprint",
                self.op_index, self.pid.0, self.reg.0
            ),
            ViolationKind::UndeclaredWrite => write!(
                f,
                "op {}: pid {} writes register {} outside its footprint",
                self.op_index, self.pid.0, self.reg.0
            ),
            ViolationKind::ForeignWrite {
                owner,
                phase,
                last_owner_write,
            } => {
                write!(
                    f,
                    "op {}: pid {} writes register {} owned by pid {} ({})",
                    self.op_index, self.pid.0, self.reg.0, owner.0, phase
                )?;
                if let Some(op) = last_owner_write {
                    write!(f, ", racing the owner's write at op {op}")?;
                }
                Ok(())
            }
        }
    }
}

/// A half-open interval of register indices with its declaring context.
#[derive(Copy, Clone, Debug)]
struct DeclInterval {
    start: usize,
    end: usize,
    pid: Pid,
    phase: &'static str,
    access: Access,
}

/// Collects the per-pid footprint declarations of an `n`-process
/// instance into the spec slice [`AccessChecker::compile`] expects.
#[must_use]
pub fn collect_specs<F: Footprint + ?Sized>(algo: &F, n: usize) -> Vec<FootprintSpec> {
    (0..n)
        .map(|p| {
            let mut spec = FootprintSpec::default();
            algo.footprint(Pid(p), &mut spec);
            spec
        })
        .collect()
}

/// Proves pairwise single-writer ownership across a configured instance.
///
/// `specs[p]` is the declaration of process `p`. The pass checks that
/// every extent fits in `num_registers`, that every process declares
/// something, that exclusive extents of distinct processes are disjoint,
/// and that no shared-write extent intersects a foreign exclusive one.
/// Reads may overlap anything — the registers are multi-reader.
///
/// # Errors
///
/// Returns the first [`StaticError`] found, in register order.
pub fn non_interference(specs: &[FootprintSpec], num_registers: usize) -> Result<(), StaticError> {
    let mut writes: Vec<DeclInterval> = Vec::new();
    for (p, spec) in specs.iter().enumerate() {
        let pid = Pid(p);
        if spec.is_empty() {
            return Err(StaticError::MissingFootprint { pid });
        }
        for ext in spec.extents() {
            let (start, end) = (ext.range.start(), ext.range.start() + ext.range.len());
            if end > num_registers {
                return Err(StaticError::OutOfRange {
                    pid,
                    phase: ext.phase,
                    end,
                    num_registers,
                });
            }
            if ext.access != Access::Read {
                writes.push(DeclInterval {
                    start,
                    end,
                    pid,
                    phase: ext.phase,
                    access: ext.access,
                });
            }
        }
    }
    writes.sort_by_key(|iv| (iv.start, iv.end));

    // Sweep in start order with two active lists. Popping actives whose
    // end precedes the current start keeps each comparison list to the
    // intervals genuinely overlapping the sweep point; shared-vs-shared
    // pairs (the common, quadratic case: every pid sharing one array)
    // are never enumerated.
    let mut active_excl: Vec<DeclInterval> = Vec::new();
    let mut active_shared: Vec<DeclInterval> = Vec::new();
    for cur in writes {
        active_excl.retain(|iv| iv.end > cur.start);
        active_shared.retain(|iv| iv.end > cur.start);
        match cur.access {
            Access::WriteExclusive => {
                for iv in &active_excl {
                    if iv.pid != cur.pid {
                        return Err(StaticError::ExclusiveOverlap {
                            reg: RegId(cur.start.max(iv.start)),
                            a: (iv.pid, iv.phase),
                            b: (cur.pid, cur.phase),
                        });
                    }
                }
                for iv in &active_shared {
                    if iv.pid != cur.pid {
                        return Err(StaticError::SharedIntoExclusive {
                            reg: RegId(cur.start.max(iv.start)),
                            writer: (iv.pid, iv.phase),
                            owner: (cur.pid, cur.phase),
                        });
                    }
                }
                active_excl.push(cur);
            }
            Access::WriteShared => {
                for iv in &active_excl {
                    if iv.pid != cur.pid {
                        return Err(StaticError::SharedIntoExclusive {
                            reg: RegId(cur.start.max(iv.start)),
                            writer: (cur.pid, cur.phase),
                            owner: (iv.pid, iv.phase),
                        });
                    }
                }
                active_shared.push(cur);
            }
            Access::Read => unreachable!("reads filtered above"),
        }
    }
    Ok(())
}

/// Sorted, merged, half-open intervals stored flat with per-pid offsets.
#[derive(Debug, Default)]
struct IntervalTable {
    /// `(start, end)` pairs, sorted and disjoint within each pid's run.
    spans: Vec<(usize, usize)>,
    /// `offsets[p]..offsets[p + 1]` indexes pid `p`'s spans.
    offsets: Vec<usize>,
}

impl IntervalTable {
    fn build(per_pid: Vec<Vec<(usize, usize)>>) -> Self {
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut offsets = Vec::with_capacity(per_pid.len() + 1);
        offsets.push(0);
        for mut list in per_pid {
            list.sort_unstable();
            let base = spans.len();
            for (start, end) in list {
                if spans.len() > base {
                    let last = spans.last_mut().expect("non-empty past base");
                    if last.1 >= start {
                        last.1 = last.1.max(end);
                        continue;
                    }
                }
                spans.push((start, end));
            }
            offsets.push(spans.len());
        }
        IntervalTable { spans, offsets }
    }

    fn contains(&self, pid: usize, reg: usize) -> bool {
        if pid + 1 >= self.offsets.len() {
            return false;
        }
        let run = &self.spans[self.offsets[pid]..self.offsets[pid + 1]];
        let idx = run.partition_point(|&(start, _)| start <= reg);
        idx > 0 && run[idx - 1].1 > reg
    }
}

/// One exclusively-owned interval with its dense clock slice.
#[derive(Copy, Clone, Debug)]
struct OwnedInterval {
    start: usize,
    end: usize,
    owner: Pid,
    phase: &'static str,
    /// Index of `start`'s clock in the checker's dense clock vectors.
    clock_base: usize,
}

/// The compiled dynamic checker; see the crate docs.
///
/// Compiled once per configuration with [`AccessChecker::compile`]
/// (which runs [`non_interference`] first — a statically unsound
/// configuration never gets a dynamic pass), then driven by the engine:
/// `begin_trial` at every trial start, `observe` on every granted
/// operation.
#[derive(Debug)]
pub struct AccessChecker {
    reads: IntervalTable,
    writes: IntervalTable,
    /// Exclusive ownership, sorted by `start`; disjoint across pids by
    /// the static pass, merged within a pid.
    owned: Vec<OwnedInterval>,
    /// Last-writer clocks for owned registers, dense via `clock_base`.
    /// A clock is current only if its epoch matches `epoch`; stale
    /// epochs read as "no write this trial", so trials reset in O(1).
    clock_epoch: Vec<u32>,
    clock_op: Vec<u64>,
    epoch: u32,
    violations: Vec<Violation>,
    trial_ops: u64,
    trial_violations: u64,
    total_ops: u64,
    total_violations: u64,
    num_pids: usize,
}

impl AccessChecker {
    /// Compiles the checker for an instance whose process `p` declared
    /// `specs[p]`, over a bank of `num_registers`.
    ///
    /// # Errors
    ///
    /// Returns the [`StaticError`] of the non-interference pass if the
    /// declarations are unsound.
    pub fn compile(specs: &[FootprintSpec], num_registers: usize) -> Result<Self, StaticError> {
        non_interference(specs, num_registers)?;

        let n = specs.len();
        let mut read_spans = vec![Vec::new(); n];
        let mut write_spans = vec![Vec::new(); n];
        let mut owned_raw: Vec<(usize, usize, Pid, &'static str)> = Vec::new();
        for (p, spec) in specs.iter().enumerate() {
            for ext in spec.extents() {
                let span = (ext.range.start(), ext.range.start() + ext.range.len());
                // Any declared access implies read permission: machines
                // routinely read back registers they own.
                read_spans[p].push(span);
                if ext.access != Access::Read {
                    write_spans[p].push(span);
                }
                if ext.access == Access::WriteExclusive {
                    owned_raw.push((span.0, span.1, Pid(p), ext.phase));
                }
            }
        }

        owned_raw.sort_unstable_by_key(|&(start, end, ..)| (start, end));
        let mut owned: Vec<OwnedInterval> = Vec::new();
        let mut clock_base = 0usize;
        for (start, end, owner, phase) in owned_raw {
            // Same-pid exclusive extents may overlap (e.g. a composite
            // declaring a slot twice); coalesce them so the owner map
            // stays strictly disjoint and binary-searchable.
            if let Some(last) = owned.last_mut() {
                // Touching intervals of distinct owners stay separate;
                // overlap across owners is impossible past the static
                // pass, so only same-pid extents ever coalesce.
                if last.owner == owner && last.end >= start {
                    let grown = end.max(last.end);
                    clock_base += grown - last.end;
                    last.end = grown;
                    continue;
                }
                debug_assert!(
                    last.end <= start,
                    "static pass admits only same-pid overlap"
                );
            }
            owned.push(OwnedInterval {
                start,
                end,
                owner,
                phase,
                clock_base,
            });
            clock_base += end - start;
        }

        let mut violations = Vec::new();
        violations.reserve_exact(MAX_RECORDED_VIOLATIONS);
        Ok(AccessChecker {
            reads: IntervalTable::build(read_spans),
            writes: IntervalTable::build(write_spans),
            owned,
            clock_epoch: vec![0; clock_base],
            clock_op: vec![0; clock_base],
            epoch: 0,
            violations,
            trial_ops: 0,
            trial_violations: 0,
            total_ops: 0,
            total_violations: 0,
            num_pids: n,
        })
    }

    /// Compiles a checker for an `n`-process instance directly from an
    /// algorithm's [`Footprint`] declaration.
    ///
    /// # Errors
    ///
    /// See [`AccessChecker::compile`].
    pub fn for_instance<F: Footprint + ?Sized>(
        algo: &F,
        n: usize,
        num_registers: usize,
    ) -> Result<Self, StaticError> {
        Self::compile(&collect_specs(algo, n), num_registers)
    }

    /// Starts a fresh trial: recorded violations are dropped and every
    /// last-writer clock is invalidated by bumping the epoch — O(1), no
    /// allocation, no clock clearing.
    pub fn begin_trial(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale clocks could alias the new epoch. Clear
            // once every 2^32 trials rather than widening every clock.
            self.clock_epoch.fill(0);
            self.epoch = 1;
        }
        self.violations.clear();
        self.trial_ops = 0;
        self.trial_violations = 0;
    }

    fn owner_of(&self, reg: usize) -> Option<&OwnedInterval> {
        let idx = self.owned.partition_point(|iv| iv.start <= reg);
        let iv = self.owned.get(idx.checked_sub(1)?)?;
        (iv.end > reg).then_some(iv)
    }

    fn record(&mut self, v: Violation) {
        self.trial_violations += 1;
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Validates one granted operation: process `pid` performing a
    /// `kind` access to `reg` as the `op_index`-th grant of the trial.
    /// Allocation-free.
    pub fn observe(&mut self, pid: Pid, kind: OpKind, reg: RegId, op_index: u64) {
        self.trial_ops += 1;
        self.total_ops += 1;
        match kind {
            OpKind::Read => {
                if !self.reads.contains(pid.0, reg.0) {
                    self.record(Violation {
                        pid,
                        reg,
                        kind: ViolationKind::UndeclaredRead,
                        op_index,
                    });
                }
            }
            OpKind::Write => {
                if let Some(&OwnedInterval {
                    start,
                    owner,
                    phase,
                    clock_base,
                    ..
                }) = self.owner_of(reg.0)
                {
                    let slot = clock_base + (reg.0 - start);
                    if owner == pid {
                        self.clock_epoch[slot] = self.epoch;
                        self.clock_op[slot] = op_index;
                    } else {
                        // A stray write landing in someone's exclusive
                        // extent is reported as the more specific
                        // foreign write, declared or not.
                        let last_owner_write =
                            (self.clock_epoch[slot] == self.epoch).then(|| self.clock_op[slot]);
                        self.record(Violation {
                            pid,
                            reg,
                            kind: ViolationKind::ForeignWrite {
                                owner,
                                phase,
                                last_owner_write,
                            },
                            op_index,
                        });
                    }
                } else if !self.writes.contains(pid.0, reg.0) {
                    self.record(Violation {
                        pid,
                        reg,
                        kind: ViolationKind::UndeclaredWrite,
                        op_index,
                    });
                }
            }
        }
    }

    /// The violations recorded this trial (at most
    /// [`MAX_RECORDED_VIOLATIONS`]; the counters keep counting past it).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Operations observed this trial.
    #[must_use]
    pub fn trial_ops(&self) -> u64 {
        self.trial_ops
    }

    /// Violations counted this trial (recorded or not).
    #[must_use]
    pub fn trial_violations(&self) -> u64 {
        self.trial_violations
    }

    /// Operations observed since compilation.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Violations counted since compilation.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Number of processes the checker was compiled for.
    #[must_use]
    pub fn num_pids(&self) -> usize {
        self.num_pids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::RegAlloc;

    /// One exclusive slot per pid out of a shared bank, plus a common
    /// read range — the shape of every single-writer family here.
    fn slot_specs(n: usize, bank_len: usize) -> (Vec<FootprintSpec>, usize) {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(bank_len);
        let specs = (0..n)
            .map(|p| {
                let mut s = FootprintSpec::default();
                s.phase("slot").reads(bank).writes_excl(bank.slice(p, 1));
                s
            })
            .collect();
        (specs, alloc.total())
    }

    #[test]
    fn static_pass_accepts_disjoint_slots() {
        let (specs, regs) = slot_specs(4, 8);
        assert_eq!(non_interference(&specs, regs), Ok(()));
    }

    #[test]
    fn static_pass_rejects_exclusive_overlap() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(4);
        let specs: Vec<_> = (0..2)
            .map(|_| {
                let mut s = FootprintSpec::default();
                s.phase("clash").writes_excl(bank.slice(1, 2));
                s
            })
            .collect();
        match non_interference(&specs, alloc.total()) {
            Err(StaticError::ExclusiveOverlap { reg, .. }) => assert_eq!(reg.0, 1),
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn static_pass_rejects_shared_into_exclusive() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(4);
        let mut a = FootprintSpec::default();
        a.phase("own").writes_excl(bank.slice(0, 2));
        let mut b = FootprintSpec::default();
        b.phase("spray").writes_shared(bank);
        let err = non_interference(&[a, b], alloc.total()).unwrap_err();
        assert!(
            matches!(err, StaticError::SharedIntoExclusive { .. }),
            "{err}"
        );
    }

    #[test]
    fn static_pass_allows_shared_overlap_and_reads() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(4);
        let specs: Vec<_> = (0..3)
            .map(|_| {
                let mut s = FootprintSpec::default();
                s.phase("vote").reads(bank).writes_shared(bank);
                s
            })
            .collect();
        assert_eq!(non_interference(&specs, alloc.total()), Ok(()));
    }

    #[test]
    fn static_pass_rejects_missing_and_out_of_range() {
        let (mut specs, regs) = slot_specs(2, 4);
        specs.push(FootprintSpec::default());
        assert_eq!(
            non_interference(&specs, regs),
            Err(StaticError::MissingFootprint { pid: Pid(2) })
        );
        let (specs, regs) = slot_specs(2, 4);
        assert!(matches!(
            non_interference(&specs, regs - 1),
            Err(StaticError::OutOfRange { .. })
        ));
    }

    #[test]
    fn checker_passes_disciplined_ops() {
        let (specs, regs) = slot_specs(3, 8);
        let mut c = AccessChecker::compile(&specs, regs).unwrap();
        c.begin_trial();
        c.observe(Pid(0), OpKind::Write, RegId(0), 1);
        c.observe(Pid(1), OpKind::Read, RegId(0), 2);
        c.observe(Pid(2), OpKind::Write, RegId(2), 3);
        assert!(c.violations().is_empty());
        assert_eq!(c.trial_ops(), 3);
        assert_eq!(c.trial_violations(), 0);
    }

    #[test]
    fn checker_flags_foreign_write_with_last_writer() {
        let (specs, regs) = slot_specs(3, 8);
        let mut c = AccessChecker::compile(&specs, regs).unwrap();
        c.begin_trial();
        c.observe(Pid(1), OpKind::Write, RegId(1), 5);
        c.observe(Pid(0), OpKind::Write, RegId(1), 9);
        assert_eq!(c.violations().len(), 1);
        let v = c.violations()[0];
        assert_eq!(v.pid, Pid(0));
        assert_eq!(v.op_index, 9);
        assert_eq!(
            v.kind,
            ViolationKind::ForeignWrite {
                owner: Pid(1),
                phase: "slot",
                last_owner_write: Some(5),
            }
        );
    }

    #[test]
    fn checker_flags_undeclared_read_and_write() {
        let (specs, regs) = slot_specs(2, 4);
        // Register 4 exists in the bank but is outside every footprint.
        let mut c = AccessChecker::compile(&specs, regs + 1).unwrap();
        c.begin_trial();
        c.observe(Pid(0), OpKind::Read, RegId(4), 1);
        c.observe(Pid(0), OpKind::Write, RegId(4), 2);
        // Declared read range is not a write grant.
        c.observe(Pid(0), OpKind::Write, RegId(3), 3);
        let kinds: Vec<_> = c.violations().iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ViolationKind::UndeclaredRead,
                ViolationKind::UndeclaredWrite,
                ViolationKind::UndeclaredWrite,
            ]
        );
    }

    #[test]
    fn epoch_reset_forgets_previous_trial_clocks() {
        let (specs, regs) = slot_specs(2, 4);
        let mut c = AccessChecker::compile(&specs, regs).unwrap();
        c.begin_trial();
        c.observe(Pid(1), OpKind::Write, RegId(1), 1);
        c.begin_trial();
        c.observe(Pid(0), OpKind::Write, RegId(1), 1);
        let v = c.violations()[0];
        assert_eq!(
            v.kind,
            ViolationKind::ForeignWrite {
                owner: Pid(1),
                phase: "slot",
                last_owner_write: None,
            }
        );
        assert_eq!(c.total_ops(), 2);
        assert_eq!(c.total_violations(), 1);
    }

    #[test]
    fn recording_caps_but_counting_continues() {
        let (specs, regs) = slot_specs(2, 4);
        let mut c = AccessChecker::compile(&specs, regs).unwrap();
        c.begin_trial();
        for i in 0..(MAX_RECORDED_VIOLATIONS as u64 + 10) {
            c.observe(Pid(0), OpKind::Write, RegId(1), i + 1);
        }
        assert_eq!(c.violations().len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(c.trial_violations(), MAX_RECORDED_VIOLATIONS as u64 + 10);
    }

    #[test]
    fn collect_specs_covers_every_pid() {
        struct OneSlot(exsel_shm::RegRange);
        impl Footprint for OneSlot {
            fn footprint(&self, pid: Pid, spec: &mut FootprintSpec) {
                spec.phase("s")
                    .reads(self.0)
                    .writes_excl(self.0.slice(pid.0, 1));
            }
        }
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(4);
        let specs = collect_specs(&OneSlot(bank), 4);
        assert_eq!(specs.len(), 4);
        let c = AccessChecker::for_instance(&OneSlot(bank), 4, alloc.total()).unwrap();
        assert_eq!(c.num_pids(), 4);
    }
}
