//! T4 — Theorem 2 and the prior-work comparison: `Efficient-Rename(k)`
//! achieves `O(k)` steps *and* the optimal `M = 2k−1` simultaneously;
//! Moir–Anderson matches the steps but pays `M = k(k+1)/2`; the classic
//! snapshot renaming matches `M` but needs a system-sized snapshot. This
//! reproduces the "who wins" table of the paper's introduction.
//!
//! Renaming is run at full contention; `N_indep` re-runs Efficient-Rename
//! with originals drawn from a 2¹⁶ range to certify that, being a
//! *k-renaming* algorithm, its cost does not depend on `N`.

use exsel_core::{EfficientRename, MoirAnderson, RenameConfig, SnapshotRename};
use exsel_sim::StepEngine;

use crate::runner::{spread_originals, sweep_random, TrialStats};
use crate::Table;

fn emit(table: &mut Table, algorithm: &str, k: usize, n_names: usize, m: u64, s: &TrialStats) {
    table.row(&[
        algorithm.into(),
        k.to_string(),
        n_names.to_string(),
        m.to_string(),
        s.max_name.to_string(),
        s.max_steps().to_string(),
        s.registers.to_string(),
        s.min_named.to_string(),
    ]);
}

/// Regenerates the T4 table.
///
/// # Panics
///
/// Panics if any algorithm fails to rename everyone exclusively.
pub fn run() {
    let mut table = Table::new(
        "T4 k-renaming comparison — Theorem 2 vs prior work (full contention)",
        &[
            "algorithm",
            "k",
            "N",
            "M_bound",
            "max_name",
            "max_steps",
            "registers",
            "named",
        ],
    );
    let cfg = RenameConfig::default();
    let mut engine = StepEngine::reusable(0);
    for k in [2usize, 4, 8, 16] {
        let n_small = 4 * k;
        let n_large = 1 << 16;
        let small = spread_originals(k, n_small);
        let large = spread_originals(k, n_large);

        let s = sweep_random(&mut engine, 0..5, &small, |a| MoirAnderson::new(a, k));
        emit(
            &mut table,
            "MoirAnderson",
            k,
            n_small,
            (k * (k + 1) / 2) as u64,
            &s,
        );

        let s = sweep_random(&mut engine, 0..3, &small, |a| {
            EfficientRename::new(a, k, &cfg)
        });
        emit(
            &mut table,
            "EfficientRename",
            k,
            n_small,
            (2 * k - 1) as u64,
            &s,
        );

        // N-independence: same algorithm, originals from a huge range.
        let s = sweep_random(&mut engine, 0..3, &large, |a| {
            EfficientRename::new(a, k, &cfg)
        });
        emit(
            &mut table,
            "EfficientRename(N_indep)",
            k,
            n_large,
            (2 * k - 1) as u64,
            &s,
        );

        // Classic snapshot renaming with a contender-sized snapshot
        // (slot = pid): matches M = 2k−1 but its scans cost O(k) per
        // collect with higher iteration counts under contention.
        let s = sweep_random(&mut engine, 0..3, &small, |a| SnapshotRename::new(a, k));
        emit(
            &mut table,
            "SnapshotRename",
            k,
            n_small,
            (2 * k - 1) as u64,
            &s,
        );
    }
    table.emit();
    println!("shape check: EfficientRename keeps max_name ≤ 2k−1 (optimal) where MoirAnderson pays k(k+1)/2;");
    println!("both are N-independent (compare the N_indep rows); steps grow linearly in k for all three.");
}
