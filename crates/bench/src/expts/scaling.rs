//! Scaling sweep on real threads: step counts of the k-renaming
//! algorithms at contentions beyond what the deterministic simulator
//! handles comfortably (`ThreadedShm`, schedule-dependent but
//! indicative). Complements T4's exact small-k tables with the large-k
//! trend: Moir–Anderson stays within its 4k walk bound while the
//! snapshot-stage algorithms grow linearly with the much larger
//! scan-width constant.

use crate::{run_threaded, runner::spread_originals, Table};
use exsel_core::{EfficientRename, MoirAnderson, RenameConfig, SnapshotRename};
use exsel_shm::RegAlloc;

/// Regenerates the table.
pub fn run() {
    let cfg = RenameConfig::default();
    let mut table = Table::new(
        "S1 large-k scaling on real threads (max local steps over 3 rounds)",
        &[
            "algorithm",
            "k",
            "max_steps",
            "steps_per_k",
            "max_name",
            "registers",
        ],
    );

    for k in [8usize, 16, 32, 64, 128] {
        // Moir–Anderson scales to large k cheaply.
        let mut worst = 0u64;
        let mut max_name = 0u64;
        let mut regs = 0usize;
        for _ in 0..3 {
            let mut alloc = RegAlloc::new();
            let algo = MoirAnderson::new(&mut alloc, k);
            regs = alloc.total();
            let run = run_threaded(&algo, alloc.total(), &spread_originals(k, 1 << 20));
            assert_eq!(run.named(), k);
            worst = worst.max(run.max_steps());
            max_name = max_name.max(run.max_name());
        }
        assert!(worst <= 4 * k as u64);
        table.row(&[
            "MoirAnderson".into(),
            k.to_string(),
            worst.to_string(),
            format!("{:.1}", worst as f64 / k as f64),
            max_name.to_string(),
            regs.to_string(),
        ]);
    }

    for k in [8usize, 16, 32] {
        let mut worst = 0u64;
        let mut max_name = 0u64;
        let mut regs = 0usize;
        for _ in 0..2 {
            let mut alloc = RegAlloc::new();
            let algo = EfficientRename::new(&mut alloc, k, &cfg);
            regs = alloc.total();
            let run = run_threaded(&algo, alloc.total(), &spread_originals(k, 1 << 20));
            assert_eq!(run.named(), k);
            worst = worst.max(run.max_steps());
            max_name = max_name.max(run.max_name());
        }
        assert!(max_name < 2 * k as u64);
        table.row(&[
            "EfficientRename".into(),
            k.to_string(),
            worst.to_string(),
            format!("{:.1}", worst as f64 / k as f64),
            max_name.to_string(),
            regs.to_string(),
        ]);
    }

    for k in [8usize, 16, 32] {
        let mut worst = 0u64;
        let mut max_name = 0u64;
        let mut regs = 0usize;
        for _ in 0..2 {
            let mut alloc = RegAlloc::new();
            let algo = SnapshotRename::new(&mut alloc, k);
            regs = alloc.total();
            let run = run_threaded(&algo, alloc.total(), &spread_originals(k, 1 << 20));
            assert_eq!(run.named(), k);
            worst = worst.max(run.max_steps());
            max_name = max_name.max(run.max_name());
        }
        table.row(&[
            "SnapshotRename".into(),
            k.to_string(),
            worst.to_string(),
            format!("{:.1}", worst as f64 / k as f64),
            max_name.to_string(),
            regs.to_string(),
        ]);
    }

    table.emit();
    println!("shape check: MoirAnderson's steps_per_k stays ≤ 4 out to k = 128; the 2k−1 algorithms pay their");
    println!(
        "snapshot constants but remain wait-free at every contention (all runs named everyone)."
    );
}
