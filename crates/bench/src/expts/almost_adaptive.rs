//! T5 — Theorem 3 / Corollary 1: `Almost-Adaptive(N)` renames unknown
//! contention `k` into names of magnitude `O(k)` in
//! `O(log²k (log N + log k·log log N))` steps with `O(n·log(N/n))`
//! registers.
//!
//! `N` and the system size `n` are fixed; true contention `k` sweeps.
//! The observed max name must stay within the phase-`⌈lg k⌉` budget
//! (`O(k)`), far below the full-system name bound.

use exsel_core::{AlmostAdaptive, Rename, RenameConfig};
use exsel_shm::RegAlloc;
use exsel_sim::StepEngine;

use crate::runner::{spread_originals, sweep_random};
use crate::Table;

/// Regenerates the T5 table.
///
/// # Panics
///
/// Panics if Theorem 3's contention-indexed name bound is violated.
pub fn run() {
    let n_names = 1usize << 12;
    let n_procs = 32usize;
    let cfg = RenameConfig::default();

    let mut probe_alloc = RegAlloc::new();
    let probe = AlmostAdaptive::new(&mut probe_alloc, n_names, n_procs, &cfg);
    let mut table = Table::new(
        format!(
            "T5 Almost-Adaptive(N={n_names}) over n={n_procs} — Theorem 3: names O(k), registers {} (full bound {})",
            probe_alloc.total(),
            probe.name_bound()
        ),
        &[
            "k", "max_name", "bound_for_k", "name_per_k", "max_steps", "steps_norm", "named",
        ],
    );

    let mut engine = StepEngine::reusable(0);
    for k in [1usize, 2, 4, 8, 16, 32] {
        let originals = spread_originals(k, n_names);
        let stats = sweep_random(&mut engine, 0..3, &originals, |a| {
            AlmostAdaptive::new(a, n_names, n_procs, &cfg)
        });
        let bound = probe.name_bound_for_contention(k);
        assert!(
            stats.max_name <= bound,
            "Theorem 3 violated: {} > {bound}",
            stats.max_name
        );
        assert_eq!(stats.min_named, k, "not everyone renamed at k={k}");
        let lg_k = (k as f64).log2().max(1.0);
        let lg_n = (n_names as f64).log2();
        table.row(&[
            k.to_string(),
            stats.max_name.to_string(),
            bound.to_string(),
            format!("{:.0}", stats.max_name as f64 / k as f64),
            stats.max_steps().to_string(),
            format!(
                "{:.2}",
                stats.max_steps() as f64 / (lg_k * lg_k * (lg_n + lg_k * lg_n.log2()))
            ),
            stats.min_named.to_string(),
        ]);
    }
    table.emit();
    println!("shape check: max_name tracks O(k) (bounded by bound_for_k, independent of n or the full bound);");
    println!("steps_norm stays bounded, certifying the polylog-in-k step complexity.");
}
