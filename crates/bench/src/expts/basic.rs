//! T2 — Lemma 5: `Basic-Rename(k, N)` is `(k,N)`-renaming in
//! `O(log k · log N)` local steps with `M = O(k·log(N/k))` and as many
//! registers.
//!
//! Sweeps `(k, N)`; the normalized column `steps/(lg k·lg N)` should stay
//! roughly flat while raw steps grow, and `M / (k·lg(N/k))` should stay
//! bounded.

use exsel_core::{BasicRename, Rename, RenameConfig};
use exsel_shm::RegAlloc;
use exsel_sim::StepEngine;

use crate::runner::{spread_originals, sweep_random};
use crate::Table;

/// Regenerates the T2 table.
///
/// # Panics
///
/// Panics if Lemma 5's everyone-renamed guarantee is violated.
pub fn run() {
    let mut table = Table::new(
        "T2 Basic-Rename(k,N) — Lemma 5: O(log k · log N) steps, M = O(k log(N/k))",
        &[
            "N",
            "k",
            "stages",
            "M",
            "registers",
            "named",
            "max_steps",
            "steps_norm",
            "M_norm",
        ],
    );
    let cfg = RenameConfig::default();
    let mut engine = StepEngine::reusable(0);
    for n_exp in [8u32, 10, 12, 14] {
        let n = 1usize << n_exp;
        for k in [2usize, 4, 8, 16] {
            let mut alloc = RegAlloc::new();
            let algo = BasicRename::new(&mut alloc, n, k, &cfg);
            let originals = spread_originals(k, n);
            let stats = sweep_random(&mut engine, 0..5, &originals, |a| {
                BasicRename::new(a, n, k, &cfg)
            });
            let lg_k = (k as f64).log2().max(1.0);
            let lg_n = (n as f64).log2();
            let lg_ratio = ((n / k) as f64).log2().max(1.0);
            table.row(&[
                n.to_string(),
                k.to_string(),
                algo.num_stages().to_string(),
                algo.name_bound().to_string(),
                alloc.total().to_string(),
                stats.min_named.to_string(),
                stats.max_steps().to_string(),
                format!("{:.2}", stats.max_steps() as f64 / (lg_k * lg_n)),
                format!("{:.1}", algo.name_bound() as f64 / (k as f64 * lg_ratio)),
            ]);
            assert_eq!(stats.min_named, k, "Lemma 5 violated: not everyone renamed");
        }
    }
    table.emit();
    println!("shape check: steps_norm (≈ constant) certifies O(log k · log N); M_norm certifies M = O(k·log(N/k)).");
}
