//! T3 — Theorem 1: `PolyLog-Rename(k, N)` is `(k,N)`-renaming with
//! `M = O(k)` in `O(log k (log N + log k·log log N))` local steps and
//! `O(k·log(N/k))` registers.
//!
//! The defining contrast with T2: `M/k` stays flat as `N` grows (the
//! epochs squeeze the `log(N/k)` factor out of the name range), at the
//! cost of a few more epochs of steps.

use exsel_core::{PolyLogRename, Rename, RenameConfig};
use exsel_shm::RegAlloc;
use exsel_sim::StepEngine;

use crate::runner::{spread_originals, sweep_random};
use crate::Table;

/// Regenerates the T3 table.
///
/// # Panics
///
/// Panics if Theorem 1's everyone-renamed guarantee is violated.
pub fn run() {
    let mut table = Table::new(
        "T3 PolyLog-Rename(k,N) — Theorem 1: M = O(k), polylog steps",
        &[
            "N",
            "k",
            "epochs",
            "M",
            "M/k",
            "registers",
            "named",
            "max_steps",
            "steps_norm",
        ],
    );
    let cfg = RenameConfig::default();
    let mut engine = StepEngine::reusable(0);
    for n_exp in [10u32, 12, 14, 16] {
        let n = 1usize << n_exp;
        for k in [2usize, 4, 8, 16] {
            let mut alloc = RegAlloc::new();
            let algo = PolyLogRename::new(&mut alloc, n, k, &cfg);
            let originals = spread_originals(k, n);
            let stats = sweep_random(&mut engine, 0..3, &originals, |a| {
                PolyLogRename::new(a, n, k, &cfg)
            });
            let lg_k = (k as f64).log2().max(1.0);
            let lg_n = (n as f64).log2();
            let lglg_n = lg_n.log2();
            table.row(&[
                n.to_string(),
                k.to_string(),
                algo.num_epochs().to_string(),
                algo.name_bound().to_string(),
                format!("{:.0}", algo.name_bound() as f64 / k as f64),
                alloc.total().to_string(),
                stats.min_named.to_string(),
                stats.max_steps().to_string(),
                format!(
                    "{:.2}",
                    stats.max_steps() as f64 / (lg_k * (lg_n + lg_k * lglg_n))
                ),
            ]);
            assert_eq!(
                stats.min_named, k,
                "Theorem 1 violated: not everyone renamed"
            );
        }
    }
    table.emit();
    println!("shape check: M/k flat in N (Theorem 1's M = O(k)); steps_norm roughly flat certifies the polylog step bound.");
}
