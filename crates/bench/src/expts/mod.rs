//! The experiment bodies behind the scenario registry.
//!
//! Each module reproduces one table of EXPERIMENTS.md (T1–T11, S1, the
//! ablations): it sweeps the parameters DESIGN.md §5 lists, runs the
//! algorithms through the shared [`crate::runner::sweep`] trial loop (or
//! on real threads where throughput is the point), and prints both an
//! aligned text table and JSON lines (`--json`).
//!
//! The canonical entry point is the `expt` multiplexer binary —
//! `expt -- list`, `expt -- run <name>` — which resolves these through
//! [`crate::scenario::registry`]; the historical `expt_*` binaries are
//! one-line wrappers kept for muscle memory.

pub mod ablation;
pub mod adaptive;
pub mod almost_adaptive;
pub mod basic;
pub mod compare;
pub mod engine;
pub mod lowerbound;
pub mod majority;
pub mod mega;
pub mod polylog;
pub mod reduced;
pub mod repository;
pub mod scaling;
pub mod service;
pub mod storecollect;
