//! The mega scenario: one majority-renaming sweep at n ≈ 10⁶ contenders
//! over ~2²¹ names, exercising the full mega-scale stack end to end —
//! [`exsel_shm::SlabBank`] register storage, the struct-of-arrays
//! [`exsel_sim::MajoritySoa`] machine pool and the sharded grant loop —
//! against the PR 3/5 recipe (Arc-backed bank + enum-dispatched
//! [`exsel_sim::MachinePool`]) on the *same* sharded schedule.
//!
//! Both arms replay identical trials (same policy seed, same shard
//! count ⇒ same trace — the SoA pool mirrors `MajorityOp` exactly and
//! the slab bank is bit-identical to the Arc bank), so the delta is
//! pure machinery: inline slab words vs one `Arc` per write, dense
//! parallel vectors vs 56-byte machine structs. The slab arm is timed
//! under the counting allocator ([`crate::alloc_probe`]) and must stay
//! **allocation-free** in steady state; the row lands in
//! `BENCH_engine.json` with a steps/sec headline and is re-checked (at
//! reduced scale) by the bench gate in CI.
//!
//! `cargo run --release -p exsel-bench --bin expt -- run mega`

use std::time::Instant;

use exsel_core::{Majority, MajorityOp, RenameConfig};
use exsel_shm::{RegAlloc, SlabBank};
use exsel_sim::policy::RandomPolicy;
use exsel_sim::{MachinePool, MajoritySoa, StepEngine};

use crate::alloc_probe;
use crate::gate::Measurement as Row;
use crate::runner::spread_originals;
use crate::Table;

/// Measures the mega sweep and returns its row. Full scale is
/// n = 10⁶ contenders over 2²¹ names on 64 shards; `quick` (the
/// bench-gate mode) drops to n = 10⁴ over 2¹⁵ names on 8 shards — the
/// workload key stays the same, so the gate compares the quick rerun
/// against the committed full-scale row (clamped by the `arc_pool`
/// category floor).
///
/// # Panics
///
/// Panics if the two arms diverge on the shared seeds, or if fewer than
/// half the contenders acquire a name — both correctness bugs a fast
/// engine must not be allowed to buy.
#[must_use]
pub fn measure(quick: bool) -> Row {
    let (n, n_names, shards) = if quick {
        (10_000usize, 1usize << 15, 8usize)
    } else {
        (1_000_000usize, 1usize << 21, 64usize)
    };
    // Warm with the first seed, time the rest; both arms replay the
    // same sequence so the final trials are comparable bit for bit.
    let seeds: Vec<u64> = if quick {
        (0..9).collect()
    } else {
        vec![7, 8, 9]
    };
    let timed = (seeds.len() - 1) as u64;

    let cfg = RenameConfig::default();
    let mut reg_alloc = RegAlloc::new();
    let algo = Majority::new(&mut reg_alloc, n_names, n, &cfg);
    let regs = reg_alloc.total();
    let originals = spread_originals(n, n_names);

    // Baseline arm: Arc-backed register bank + the enum-dispatched
    // machine pool, driven by the same sharded grant loop. Scoped so
    // its ~regs-sized bank is gone before the slab arm builds its own.
    let (arc_s, arc_results, arc_steps) = {
        let mut engine = StepEngine::reusable(regs);
        let mut pool: MachinePool<MajorityOp> = originals
            .iter()
            .map(|&orig| algo.begin_walk(orig))
            .collect();
        let mut run = |seed: u64| {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool_sharded(&mut policy, &mut pool, shards);
        };
        run(seeds[0]);
        let start = Instant::now();
        for &seed in &seeds[1..] {
            run(seed);
        }
        let per_trial = start.elapsed().as_secs_f64() / timed as f64;
        (per_trial, pool.results().to_vec(), pool.steps().to_vec())
    };

    // Contender arm: slab bank + struct-of-arrays pool. The timed
    // trials sit inside an allocation window — after the warm trial has
    // stretched every buffer (slab slots, pending sets, result
    // vectors), the steady state must not touch the heap at all.
    let mut engine = StepEngine::reusable_with(regs, SlabBank::new());
    let mut pool = MajoritySoa::new(&algo, &originals);
    {
        let mut policy = RandomPolicy::new(seeds[0]);
        pool.run(&mut engine, &mut policy, shards);
    }
    let mut policies: Vec<RandomPolicy> = seeds[1..]
        .iter()
        .map(|&seed| RandomPolicy::new(seed))
        .collect();
    let before = alloc_probe::counts();
    let start = Instant::now();
    for policy in &mut policies {
        pool.run(&mut engine, policy, shards);
    }
    let slab_s = start.elapsed().as_secs_f64() / timed as f64;
    let window = alloc_probe::counts().since(&before);

    // The at-scale differential: the final trials of both arms ran the
    // same seed on the same sharded schedule, so they must agree on
    // every outcome and every local step count.
    assert_eq!(
        arc_results.as_slice(),
        pool.results(),
        "slab+SoA arm diverged from the Arc+pool arm"
    );
    assert_eq!(
        arc_steps.as_slice(),
        pool.steps(),
        "slab+SoA arm step counts diverged from the Arc+pool arm"
    );
    let named = pool
        .results()
        .iter()
        .filter(|r| {
            matches!(
                r.as_ref()
                    .map(|res| res.as_ref().ok().and_then(|o| o.name())),
                Some(Some(_))
            )
        })
        .count();
    assert!(
        named * 2 >= n,
        "majority guarantee violated at scale: {named} of {n} named"
    );

    let total_ops = engine.metrics().total_ops;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let steps_per_sec = (total_ops as f64 / slab_s) as u64;
    Row {
        workload: "machine_pool/mega/majority_sweep".into(),
        baseline: "arc_pool",
        contender: "slab_soa",
        baseline_s: arc_s,
        contender_s: slab_s,
        extras: vec![
            ("n", n as u64),
            ("shards", shards as u64),
            ("named", named as u64),
            ("total_ops", total_ops),
            ("steps_per_sec", steps_per_sec),
            ("steady_allocs", window.allocs),
            ("steady_frees", window.deallocs),
            ("alloc_probe", u64::from(alloc_probe::active())),
            // Entry occupancy, not Snap-slot occupancy: the majority
            // sweep's registers hold inline words, so `live_slots()`
            // (heap-slot payloads only) reads 0 forever — the committed
            // rows carried that blind spot as `slab_live: 0, slab_peak:
            // 0` at n = 10^6.
            ("slab_live", engine.bank().live_entries() as u64),
            ("slab_peak", engine.bank().peak_entries() as u64),
        ],
    }
}

/// Runs the full-scale mega sweep, prints the table and the steps/sec
/// headline, and merges the row into `BENCH_engine.json` (preserving
/// every other scenario's rows). Regression floors live in the bench
/// gate, not here.
///
/// # Panics
///
/// As [`measure`].
pub fn run() {
    let row = measure(false);

    let mut table = Table::new(
        "mega — n=10^6 majority sweep: slab bank + SoA pool, sharded",
        &[
            "workload",
            "baseline",
            "contender",
            "baseline_s",
            "contender_s",
            "speedup",
        ],
    );
    table.row(&[
        row.workload.clone(),
        row.baseline.into(),
        row.contender.into(),
        format!("{:.3}", row.baseline_s),
        format!("{:.3}", row.contender_s),
        format!("{:.2}", row.speedup()),
    ]);
    table.emit();

    println!(
        "\nmega sweep: n={} on {} shards — {} steps/sec on the slab+SoA engine \
         ({:.2}x over Arc bank + enum pool), {} steady-state allocs / {} frees{}.",
        row.extra("n").unwrap_or(0),
        row.extra("shards").unwrap_or(0),
        row.extra("steps_per_sec").unwrap_or(0),
        row.speedup(),
        row.extra("steady_allocs").unwrap_or(0),
        row.extra("steady_frees").unwrap_or(0),
        if row.extra("alloc_probe") == Some(1) {
            " (counting allocator installed)"
        } else {
            " (no counting allocator — flatness unobserved)"
        },
    );

    if let Err(e) =
        crate::gate::merge_into_artifact("BENCH_engine.json", std::slice::from_ref(&row))
    {
        eprintln!("(could not write BENCH_engine.json: {e})");
    } else {
        println!("wrote BENCH_engine.json");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mega_row_is_flat_and_bit_identical() {
        // The measure body asserts the two arms agree; here the row's
        // own invariants are pinned. Without the counting allocator
        // (test harness) the probe must report itself absent rather
        // than claim flatness it never observed.
        let row = measure(true);
        assert_eq!(crate::gate::workload_key(&row.workload), row.workload);
        assert_eq!(row.extra("n"), Some(10_000));
        assert_eq!(row.extra("shards"), Some(8));
        assert_eq!(row.extra("alloc_probe"), Some(0));
        assert!(row.extra("steps_per_sec").unwrap_or(0) > 0);
        assert!(row.extra("slab_peak").unwrap_or(0) >= row.extra("slab_live").unwrap_or(0));
        // The sweep writes thousands of registers: entry occupancy must
        // actually register, unlike the Snap-slot counters it replaced.
        assert!(row.extra("slab_peak").unwrap_or(0) > 0);
        assert!(row.extra("named").unwrap_or(0) * 2 >= 10_000);
    }
}
