//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Efficient-Rename pipeline** — Theorem 2's middle `PolyLog` stage
//!    exists for asymptotics: it compresses Moir–Anderson's `k(k+1)/2`
//!    names to `O(k)` before the final snapshot stage, but its `O(k)`
//!    carries a fixpoint constant (≈ 200–300 in the compact profile), so
//!    below the crossover `k(k+1)/2 < c·k` it would *expand* the range.
//!    The table shows the crossover by comparing the snapshot-stage width
//!    each pipeline would feed.
//! 2. **Expander profile** — Lemma 3's constants (`paper`) vs the
//!    laptop-scale `compact` profile: register footprint and measured
//!    majority quality at equal `(ℓ, N)`.
//! 3. **Expander degree** — unique-neighbour quality as the degree factor
//!    shrinks below `compact`: where the Majority guarantee starts to
//!    erode (the constant's justification).

use crate::{run_sim, runner::spread_originals, Table};
use exsel_core::{EfficientRename, Majority, Pipeline, RenameConfig};
use exsel_expander::{check_unique_neighbor_rate, BipartiteGraph, ExpanderParams};
use exsel_shm::RegAlloc;

/// Regenerates the table.
pub fn run() {
    // --- Ablation 1: pipeline stage selection ------------------------
    let cfg = RenameConfig::default();
    let mut t1 = Table::new(
        "A1 Efficient-Rename pipeline — polylog stage on/off",
        &[
            "k",
            "pipeline",
            "polylog_used",
            "snapshot_slots",
            "registers",
            "max_steps",
            "max_name",
        ],
    );
    for k in [4usize, 8, 16] {
        for (label, pipeline) in [("paper", Pipeline::Paper), ("direct", Pipeline::Direct)] {
            let mut alloc = RegAlloc::new();
            let algo = EfficientRename::with_pipeline(&mut alloc, k, &cfg, pipeline);
            let run = run_sim(&algo, alloc.total(), &spread_originals(k, 4 * k), 1);
            t1.row(&[
                k.to_string(),
                label.into(),
                algo.has_polylog_stage().to_string(),
                // The snapshot stage's slot count dominates its scan cost.
                algo.final_stage_slots().to_string(),
                alloc.total().to_string(),
                run.max_steps().to_string(),
                run.max_name().to_string(),
            ]);
        }
    }
    t1.emit();
    println!("at laptop k the stage auto-skips (identical rows): the crossover k(k+1)/2 > c·k sits near k ≈ 2c ≈ 500.\n");

    // --- Ablation 2: expander profile --------------------------------
    let mut t2 = Table::new(
        "A2 Expander profile — Lemma 3 constants vs compact",
        &[
            "profile",
            "N",
            "l",
            "degree",
            "outputs",
            "registers",
            "renamed",
            "max_steps",
        ],
    );
    for (label, params) in [
        ("paper", ExpanderParams::paper()),
        ("compact", ExpanderParams::compact()),
    ] {
        for (n, l) in [(256usize, 4usize), (1024, 8)] {
            let cfg = RenameConfig {
                expander: params.clone(),
                seed: 7,
            };
            let mut alloc = RegAlloc::new();
            let algo = Majority::new(&mut alloc, n, l, &cfg);
            let run = run_sim(&algo, alloc.total(), &spread_originals(l, n), 3);
            t2.row(&[
                label.into(),
                n.to_string(),
                l.to_string(),
                algo.graph().degree().to_string(),
                algo.graph().num_outputs().to_string(),
                alloc.total().to_string(),
                format!("{}/{}", run.named(), l),
                run.max_steps().to_string(),
            ]);
        }
    }
    t2.emit();
    println!("the paper profile buys its union-bound guarantee with ~40x the registers; measured majority quality is identical.\n");

    // --- Ablation 3: width factor vs unique-neighbour quality --------
    // The output width |W| = c·L·lg(N/L) controls the collision rate
    // (per edge ≈ L·Δ/|W| = (Δ/lg)·(1/c)); shrinking c below compact's 16
    // is where the Majority guarantee erodes.
    let mut t3 = Table::new(
        "A3 Width ablation — worst unique-neighbour rate over 300 sampled subsets",
        &[
            "width_factor",
            "N",
            "l",
            "degree",
            "outputs",
            "worst_rate",
            "majority_ok",
        ],
    );
    for width_factor in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let params = ExpanderParams {
            width_factor,
            ..ExpanderParams::compact()
        };
        let (n, l) = (4096usize, 32usize);
        let g = BipartiteGraph::random(n, l, &params, 11);
        let worst = check_unique_neighbor_rate(&g, l, 300, 5);
        t3.row(&[
            format!("{width_factor}"),
            n.to_string(),
            l.to_string(),
            g.degree().to_string(),
            g.num_outputs().to_string(),
            format!("{worst:.2}"),
            (worst > 0.5).to_string(),
        ]);
    }
    t3.emit();
    println!("the Majority analysis needs rate > 1/2 (Lemma 2 with ε = 1/4): compact's width factor 16 clears it with");
    println!("a wide margin; the rate degrades as the width shrinks — the constant is load-bearing, not cosmetic.");
}
