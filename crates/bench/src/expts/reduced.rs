//! The `explore-reduced` scenario: reduced exhaustive exploration
//! (sleep-set DPOR + pid-symmetry canonicalization + visited-state
//! hashing, `exsel_sim::reduce`) against the unreduced oracle walk, on
//! the workloads the committed artifact tracks:
//!
//! * `explore_reduced/compete3` — the 73,608-execution 3-contender
//!   Compete-For-Register tree, collapsed by the full reduction stack.
//! * `explore_reduced/compete4` — the **first exhaustive 4-process
//!   row**: sleep sets alone make the 4-contender tree enumerable;
//!   symmetry + visited hashing shrink it further.
//! * `explore_reduced/store_known` — store&collect setting (i) first
//!   stores, unreduced vs sleep sets (3 procs at full scale, 2 in
//!   quick mode — same workload key, like the mega row).
//! * `explore_reduced/store_known4` — the exhaustive 4-process
//!   store&collect row (sleep sets only: the composite renamers have
//!   no sound state fingerprint).
//!
//! Execution counts are deterministic, so the bench gate holds them
//! exactly (±10% against the committed row, plus the durable ≥5x
//! reduction floor wherever an unreduced count is recorded) — pruning
//! breakage fails CI even when wall-clock looks fine.
//!
//! `cargo run --release -p exsel-bench --bin expt -- run explore-reduced
//!  [--reduce on|off|both] [--quick]`

use std::collections::BTreeSet;

use exsel_core::{CompeteOp, RenameConfig, SlotBank};
use exsel_shm::{Pid, RegAlloc};
use exsel_sim::{
    explore_pool_reduced, explore_pool_sleep, ExploreReport, MachinePool, ReduceConfig, StepEngine,
};
use exsel_storecollect::{FirstStoreOp, StoreCollect};

use super::engine::time;
use crate::gate::Measurement as Row;
use crate::Table;

/// Which arms `expt -- run explore-reduced` executes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReduceMode {
    /// Reduced arms only.
    On,
    /// Unreduced oracle arms only.
    Off,
    /// Both, with the differential asserts between them (the default,
    /// and the only mode that regenerates `BENCH_engine.json` rows).
    #[default]
    Both,
}

impl ReduceMode {
    /// Parses an `--reduce` value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "on" => Ok(ReduceMode::On),
            "off" => Ok(ReduceMode::Off),
            "both" => Ok(ReduceMode::Both),
            other => Err(format!("bad --reduce `{other}`: expected on, off or both")),
        }
    }
}

/// No execution bound: every workload here must run to completion.
const UNBOUNDED: u64 = u64::MAX;

/// At most one contender may win the compete slot.
fn compete_check(pool: &MachinePool<CompeteOp>) -> bool {
    pool.completed().filter(|(_, won)| **won).count() <= 1
}

/// Claimed value registers must be pairwise distinct.
fn store_check(pool: &MachinePool<FirstStoreOp<'_>>) -> bool {
    let regs: Vec<_> = pool
        .completed()
        .filter_map(|(_, r)| r.as_ref().ok().copied())
        .collect();
    let uniq: BTreeSet<_> = regs.iter().copied().collect();
    uniq.len() == regs.len()
}

/// A compete pool over one shared slot, one token per contender.
fn compete_pool(procs: usize) -> (usize, Vec<u64>, SlotBank) {
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let tokens: Vec<u64> = (1..=procs as u64).collect();
    (alloc.total(), tokens, bank)
}

/// Measures the compete rows: the reduced 3-proc row (vs the unreduced
/// oracle) and the exhaustive 4-proc row (full stack vs sleep-only).
fn compete_rows(quick: bool, rows: &mut Vec<Row>) {
    // 3 contenders: the committed 73,608-execution tree.
    let (regs, tokens, bank) = compete_pool(3);
    let mut pool: MachinePool<CompeteOp> =
        tokens.iter().map(|&t| bank.begin_compete(0, t)).collect();
    let mut engine = StepEngine::reusable(regs);

    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(UNBOUNDED),
        compete_check,
    );
    let reduced = explore_pool_reduced(
        &mut engine,
        &mut pool,
        &ReduceConfig::full(&tokens, UNBOUNDED),
        compete_check,
    );
    assert!(oracle.complete && reduced.complete);
    assert_eq!(
        oracle.minimized.is_some(),
        reduced.minimized.is_some(),
        "reduced and unreduced verdicts diverged at 3 procs"
    );
    assert!(
        reduced.executions.saturating_mul(5) <= oracle.executions,
        "reduction lost its 5x floor: {} vs {}",
        reduced.executions,
        oracle.executions
    );
    let iters = if quick { 3 } else { 5 };
    let unreduced_s = time(iters, || {
        explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::off(UNBOUNDED),
            compete_check,
        );
    });
    let reduced_s = time(iters, || {
        explore_pool_reduced(
            &mut engine,
            &mut pool,
            &ReduceConfig::full(&tokens, UNBOUNDED),
            compete_check,
        );
    });
    rows.push(Row {
        workload: "explore_reduced/compete3".into(),
        baseline: "unreduced",
        contender: "reduced",
        baseline_s: unreduced_s,
        contender_s: reduced_s,
        extras: vec![
            ("execs_unreduced", oracle.executions),
            ("execs_explored", reduced.executions),
            ("execs_pruned", reduced.execs_pruned),
            ("states_canonical", reduced.states_canonical),
            ("procs", 3),
        ],
    });

    // 4 contenders: unreduced is out of reach (the oracle tree dwarfs
    // the 73,608 of 3 procs by orders of magnitude); sleep sets alone
    // make it enumerable and serve as the baseline arm.
    let (regs, tokens, bank) = compete_pool(4);
    let mut pool: MachinePool<CompeteOp> =
        tokens.iter().map(|&t| bank.begin_compete(0, t)).collect();
    let mut engine = StepEngine::reusable(regs);

    let sleep = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::sleep_only(UNBOUNDED),
        compete_check,
    );
    let full = explore_pool_reduced(
        &mut engine,
        &mut pool,
        &ReduceConfig::full(&tokens, UNBOUNDED),
        compete_check,
    );
    assert!(sleep.complete && full.complete, "4-proc walk truncated");
    assert_eq!(
        sleep.minimized.is_some(),
        full.minimized.is_some(),
        "sleep-only and full-stack verdicts diverged at 4 procs"
    );
    let iters = if quick { 3 } else { 5 };
    let sleep_s = time(iters, || {
        explore_pool_sleep(
            &mut engine,
            &mut pool,
            &ReduceConfig::sleep_only(UNBOUNDED),
            compete_check,
        );
    });
    let full_s = time(iters, || {
        explore_pool_reduced(
            &mut engine,
            &mut pool,
            &ReduceConfig::full(&tokens, UNBOUNDED),
            compete_check,
        );
    });
    rows.push(Row {
        workload: "explore_reduced/compete4".into(),
        baseline: "sleep_only",
        contender: "reduced",
        baseline_s: sleep_s,
        contender_s: full_s,
        extras: vec![
            ("execs_sleep_only", sleep.executions),
            ("execs_explored", full.executions),
            ("execs_pruned", full.execs_pruned),
            ("states_canonical", full.states_canonical),
            ("max_depth", sleep.max_depth as u64),
            ("procs", 4),
        ],
    });
}

/// One store&collect setting-(i) pool: `procs` contenders with known
/// contention, each performing its first store.
fn store_walk(
    procs: usize,
    config: &ReduceConfig,
    signatures: Option<&mut BTreeSet<Vec<String>>>,
) -> ExploreReport {
    let mut alloc = RegAlloc::new();
    let cfg = RenameConfig::default();
    let sc = StoreCollect::known(&mut alloc, procs, procs, &cfg);
    let mut pool: MachinePool<FirstStoreOp<'_>> = (0..procs)
        .map(|p| sc.begin_first_store(Pid(p), p as u64 + 1, 7))
        .collect();
    let mut engine = StepEngine::reusable(alloc.total());
    match signatures {
        Some(sigs) => explore_pool_sleep(&mut engine, &mut pool, config, |pool| {
            sigs.insert(pool.results().iter().map(|r| format!("{r:?}")).collect());
            store_check(pool)
        }),
        None => explore_pool_sleep(&mut engine, &mut pool, config, store_check),
    }
}

/// Measures the store&collect rows: the reduced known-contention row
/// (unreduced oracle vs sleep sets; 3 procs at full scale, 2 quick) and
/// the exhaustive 4-process sleep-only row.
fn store_rows(quick: bool, rows: &mut Vec<Row>) {
    // The unreduced 3-proc tree holds 17.15M executions (~13 s); quick
    // reruns shrink to 2 procs under the same workload key, mirroring
    // the mega row's quick-scale policy.
    let procs = if quick { 2 } else { 3 };
    let mut un_sigs = BTreeSet::new();
    let mut sl_sigs = BTreeSet::new();
    let oracle = store_walk(procs, &ReduceConfig::off(UNBOUNDED), Some(&mut un_sigs));
    let sleep = store_walk(
        procs,
        &ReduceConfig::sleep_only(UNBOUNDED),
        Some(&mut sl_sigs),
    );
    assert!(oracle.complete && sleep.complete);
    // Sleep sets drop interleavings, never terminal states: the
    // surviving representatives must reach every outcome the oracle
    // reaches.
    assert_eq!(un_sigs, sl_sigs, "sleep sets lost a terminal state");
    assert_eq!(oracle.minimized.is_some(), sleep.minimized.is_some());
    let iters = if quick { 3 } else { 1 };
    let unreduced_s = time(iters, || {
        store_walk(procs, &ReduceConfig::off(UNBOUNDED), None);
    });
    let sleep_s = time(iters.max(3), || {
        store_walk(procs, &ReduceConfig::sleep_only(UNBOUNDED), None);
    });
    rows.push(Row {
        workload: "explore_reduced/store_known".into(),
        baseline: "unreduced",
        contender: "sleep_only",
        baseline_s: unreduced_s,
        contender_s: sleep_s,
        extras: vec![
            ("execs_unreduced", oracle.executions),
            ("execs_explored", sleep.executions),
            ("execs_pruned", sleep.execs_pruned),
            ("procs", procs as u64),
        ],
    });

    // 4 contenders, sleep sets only: the first exhaustive 4-process
    // store&collect row. There is no unreduced arm (the oracle tree is
    // astronomically large at depth 24), so the row records the walk
    // itself; the gate holds its execution count, not a speedup.
    let four = store_walk(4, &ReduceConfig::sleep_only(UNBOUNDED), None);
    assert!(four.complete, "4-proc store walk truncated");
    assert!(four.minimized.is_none(), "first stores must stay exclusive");
    let walk_s = time(3, || {
        store_walk(4, &ReduceConfig::sleep_only(UNBOUNDED), None);
    });
    rows.push(Row {
        workload: "explore_reduced/store_known4".into(),
        baseline: "sleep_only",
        contender: "sleep_only",
        baseline_s: walk_s,
        contender_s: walk_s,
        extras: vec![
            ("execs_explored", four.executions),
            ("execs_pruned", four.execs_pruned),
            ("max_depth", four.max_depth as u64),
            ("procs", 4),
        ],
    });
}

/// Measures every reduced-exploration row. Quick mode (the bench gate)
/// trims iteration counts and runs the store&collect differential at 2
/// procs instead of 3; execution counts are deterministic either way.
///
/// # Panics
///
/// Panics if any walk truncates, a reduced arm's verdict diverges from
/// its oracle arm, the 3-proc reduction loses its 5x floor, or sleep
/// sets lose a terminal state.
#[must_use]
pub fn measure(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    compete_rows(quick, &mut rows);
    store_rows(quick, &mut rows);
    rows
}

/// Prints the unreduced oracle arms only (`--reduce off`).
fn run_oracle_only(quick: bool) {
    let mut table = Table::new(
        "explore-reduced — unreduced oracle walks (--reduce off)",
        &["workload", "execs", "complete", "max_depth"],
    );
    let (regs, _, bank) = compete_pool(3);
    let mut pool: MachinePool<CompeteOp> = (1..=3u64).map(|t| bank.begin_compete(0, t)).collect();
    let mut engine = StepEngine::reusable(regs);
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(UNBOUNDED),
        compete_check,
    );
    table.row(&[
        "explore_reduced/compete3".into(),
        oracle.executions.to_string(),
        oracle.complete.to_string(),
        oracle.max_depth.to_string(),
    ]);
    let procs = if quick { 2 } else { 3 };
    let store = store_walk(procs, &ReduceConfig::off(UNBOUNDED), None);
    table.row(&[
        format!("explore_reduced/store_known (procs={procs})"),
        store.executions.to_string(),
        store.complete.to_string(),
        store.max_depth.to_string(),
    ]);
    table.emit();
    println!("\n(4-proc workloads have no unreduced arm — the oracle tree is out of reach.)");
}

/// Runs the scenario: measures the requested arms, prints the table
/// and — for a full-scale `--reduce both` run — merges the rows into
/// `BENCH_engine.json`.
///
/// # Panics
///
/// As [`measure`].
pub fn run(mode: ReduceMode, quick: bool) {
    if mode == ReduceMode::Off {
        run_oracle_only(quick);
        return;
    }
    let rows = measure(quick);
    let mut table = Table::new(
        "explore-reduced — sleep-set DPOR + symmetry + visited hashing",
        &[
            "workload",
            "baseline",
            "contender",
            "baseline_s",
            "contender_s",
            "speedup",
            "execs_explored",
            "execs_pruned",
            "states_canonical",
        ],
    );
    for row in &rows {
        table.row(&[
            row.workload.clone(),
            row.baseline.into(),
            row.contender.into(),
            format!("{:.4}", row.baseline_s),
            format!("{:.4}", row.contender_s),
            format!("{:.2}", row.speedup()),
            row.extra("execs_explored").unwrap_or(0).to_string(),
            row.extra("execs_pruned").unwrap_or(0).to_string(),
            row.extra("states_canonical")
                .map_or_else(|| "-".into(), |s| s.to_string()),
        ]);
    }
    table.emit();

    let compete3 = &rows[0];
    println!(
        "\n3-proc compete: {} unreduced executions -> {} reduced ({}x fewer); \
         4-proc compete and store&collect trees fully enumerated.",
        compete3.extra("execs_unreduced").unwrap_or(0),
        compete3.extra("execs_explored").unwrap_or(1),
        compete3.extra("execs_unreduced").unwrap_or(0)
            / compete3.extra("execs_explored").unwrap_or(1).max(1),
    );

    if mode == ReduceMode::Both && !quick {
        if let Err(e) = crate::gate::merge_into_artifact("BENCH_engine.json", &rows) {
            eprintln!("(could not write BENCH_engine.json: {e})");
        } else {
            println!("wrote BENCH_engine.json");
        }
    } else {
        println!("(quick / partial run: BENCH_engine.json left untouched)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rows_hold_the_reduction_floors() {
        let rows = measure(true);
        assert_eq!(rows.len(), 4);
        let compete3 = &rows[0];
        assert_eq!(compete3.extra("execs_unreduced"), Some(73_608));
        let explored = compete3.extra("execs_explored").unwrap();
        assert!(
            explored * 5 <= 73_608,
            "3-proc reduction below 5x: {explored}"
        );
        // The 4-proc rows are exhaustive: complete walks, counted.
        let compete4 = &rows[1];
        assert!(compete4.extra("execs_explored").unwrap() > 0);
        assert!(compete4.extra("execs_sleep_only").unwrap() > 0);
        let store4 = &rows[3];
        assert_eq!(store4.extra("procs"), Some(4));
        assert!(store4.extra("execs_pruned").unwrap() > 0);
    }

    #[test]
    fn reduce_mode_parses() {
        assert_eq!(ReduceMode::parse("on"), Ok(ReduceMode::On));
        assert_eq!(ReduceMode::parse("off"), Ok(ReduceMode::Off));
        assert_eq!(ReduceMode::parse("both"), Ok(ReduceMode::Both));
        assert!(ReduceMode::parse("maybe").is_err());
    }
}
