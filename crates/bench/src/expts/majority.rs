//! T1 — Lemma 4: `Majority(ℓ, N)` renames at least half of at most `ℓ`
//! contenders in `O(log N)` local steps with `O(M)` registers.
//!
//! Sweeps `N` and `ℓ`, reporting the renamed fraction (must be ≥ 1/2),
//! the worst-case steps (should track the walk length `5Δ = O(log N)`),
//! and the register footprint.

use exsel_core::{Majority, Rename, RenameConfig};
use exsel_shm::RegAlloc;
use exsel_sim::StepEngine;

use crate::runner::{spread_originals, sweep_random};
use crate::Table;

/// Regenerates the T1 table.
///
/// # Panics
///
/// Panics if Lemma 4's renamed-fraction guarantee is violated.
pub fn run() {
    let mut table = Table::new(
        "T1 Majority(l,N) — Lemma 4: ≥ half renamed, O(log N) steps",
        &[
            "N",
            "l",
            "degree",
            "M",
            "registers",
            "renamed",
            "frac",
            "max_steps",
            "walk_bound",
        ],
    );
    let cfg = RenameConfig::default();
    let mut engine = StepEngine::reusable(0);
    for n_exp in [8u32, 10, 12, 14] {
        let n = 1usize << n_exp;
        for l in [4usize, 16, 64] {
            if l * 4 > n {
                continue;
            }
            let mut alloc = RegAlloc::new();
            let algo = Majority::new(&mut alloc, n, l, &cfg);
            let originals = spread_originals(l, n);
            // Worst renamed fraction over several adversarially-seeded
            // schedules.
            let stats = sweep_random(&mut engine, 0..5, &originals, |a| {
                Majority::new(a, n, l, &cfg)
            });
            table.row(&[
                n.to_string(),
                l.to_string(),
                algo.graph().degree().to_string(),
                algo.name_bound().to_string(),
                alloc.total().to_string(),
                stats.min_named.to_string(),
                format!("{:.2}", stats.min_named as f64 / l as f64),
                stats.max_steps().to_string(),
                (5 * algo.graph().degree()).to_string(),
            ]);
            assert!(
                stats.min_named * 2 >= l,
                "Lemma 4 violated: {}/{l} renamed",
                stats.min_named
            );
        }
    }
    table.emit();
    println!("shape check: renamed fraction ≥ 0.50 everywhere; max_steps ≤ walk_bound = 5·degree = O(log N).");
}
