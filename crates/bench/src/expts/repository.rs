//! T9 — Theorems 8 & 9 and Corollary 2: how many dedicated deposit
//! registers are never used.
//!
//! Three measurements:
//!
//! 1. **Selfish under crash storms** — random schedules crash up to `n−1`
//!    processes at random points; the holes below the deposit frontier
//!    must never exceed `n−1` (Theorem 8).
//! 2. **Selfish tightness** — Corollary 2's freeze: a process is crashed
//!    deterministically between its reservation (unique in `W`, register
//!    read empty) and its write, permanently blocking one register; with
//!    `n = 2` the waste is exactly `n−1 = 1`.
//! 3. **Altruistic under crash storms** — the wait-free repository's holes
//!    (names parked in `Help` plus pruned claims) stay within the
//!    Theorem 9 budget `n(n−1)`. Ported onto the pooled step-machine
//!    engine: one [`exsel_unbounded::DepositOp`] pool is re-driven
//!    across every storm seed (machines reset in place), and occupancy
//!    is audited straight from the engine's register bank
//!    (`StepEngine::registers`).

use crate::Table;
use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
use exsel_sim::policy::{CrashStorm, RandomPolicy};
use exsel_sim::{MachinePool, SimBuilder, StepEngine};
use exsel_unbounded::{AltruisticDeposit, DepositOp, SelfishDeposit};

/// Holes strictly below the last used register.
fn waste(occ: &[Option<u64>]) -> (usize, usize) {
    let frontier = occ.iter().rposition(Option::is_some).map_or(0, |i| i + 1);
    let holes = occ[..frontier].iter().filter(|v| v.is_none()).count();
    (holes, frontier)
}

fn selfish_storm(n: usize, per: usize, seed: u64) -> (usize, usize, usize) {
    let mut alloc = RegAlloc::new();
    let repo = SelfishDeposit::new(&mut alloc, n, 8 * n * per + 4 * n);
    let policy = CrashStorm::new(
        Box::new(RandomPolicy::new(seed)),
        seed ^ 0xABCD,
        0.001,
        n - 1,
    );
    let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(n, |ctx| {
        let mut st = repo.depositor_state();
        for i in 0..per as u64 {
            repo.deposit(ctx, &mut st, ctx.pid().0 as u64 * 1000 + i)?;
        }
        Ok(())
    });
    // Occupancy is read through a throwaway ThreadedShm-less view: the
    // simulator's memory is gone, so re-derive from the outcome? No — the
    // arena lives in the simulator's registers; read occupancy via the
    // trace-free path: re-run is unnecessary because SimBuilder gives us
    // no memory handle. Instead run on ThreadedShm below for occupancy;
    // here we report crash count and completion only.
    let crashed = outcome.crashed.len();
    let completed = outcome.completed().count();
    (crashed, completed, n - 1)
}

fn selfish_storm_threaded(n: usize, per: usize, seed: u64) -> (usize, usize) {
    let mut alloc = RegAlloc::new();
    let repo = SelfishDeposit::new(&mut alloc, n, 8 * n * per + 4 * n);
    let mem = ThreadedShm::new(alloc.total(), n);
    // Crash n−1 processes at pseudo-random step indices.
    for (i, victim) in (1..n).enumerate() {
        let step = 7 + (seed as usize + i * 13) % 200;
        mem.crash_at_step(Pid(victim), step as u64);
    }
    std::thread::scope(|s| {
        for p in 0..n {
            let (repo, mem) = (&repo, &mem);
            s.spawn(move || {
                let ctx = Ctx::new(mem, Pid(p));
                let mut st = repo.depositor_state();
                for i in 0..per as u64 {
                    if repo.deposit(ctx, &mut st, p as u64 * 1000 + i).is_err() {
                        return; // crashed
                    }
                }
            });
        }
    });
    waste(&repo.arena().occupancy(&mem, Pid(0)))
}

/// Corollary 2's construction at n = 2: freeze the victim exactly between
/// its reservation and its deposit write (a solo first deposit reaches
/// the write after update (2n+2) + scan (2n) + emptiness read (1) steps).
fn selfish_tightness() -> (usize, usize) {
    let n = 2;
    let mut alloc = RegAlloc::new();
    let repo = SelfishDeposit::new(&mut alloc, n, 64);
    let mem = ThreadedShm::new(alloc.total(), n);
    let freeze_point = (2 * n as u64 + 2) + 2 * n as u64 + 1;
    mem.crash_at_step(Pid(1), freeze_point);
    // The victim runs first, solo, and freezes holding its reservation.
    {
        let ctx = Ctx::new(&mem, Pid(1));
        let mut st = repo.depositor_state();
        assert!(
            repo.deposit(ctx, &mut st, 99).is_err(),
            "victim must freeze"
        );
    }
    // The survivor deposits many values; the frozen reservation blocks
    // register 1 forever.
    let ctx = Ctx::new(&mem, Pid(0));
    let mut st = repo.depositor_state();
    for i in 0..10u64 {
        repo.deposit(ctx, &mut st, i).unwrap();
    }
    waste(&repo.arena().occupancy(&mem, Pid(0)))
}

/// Altruistic crash storms on the pooled engine: the pool of `n`
/// deposit machines (each depositing `per` values per trial) is built
/// once and re-driven across all `seeds`, each under a fresh seeded
/// crash storm with budget `n − 1`; every trial's arena occupancy is
/// audited from the engine's register bank. Returns the worst holes and
/// frontier over the sweep.
fn altruistic_storm_pooled(n: usize, per: usize, seeds: std::ops::Range<u64>) -> (usize, usize) {
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, n, 16 * n * per + 8 * n * n);
    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool: MachinePool<DepositOp<'_>> = (0..n)
        .map(|p| repo.begin_deposit(Pid(p), p as u64 * 1000, per))
        .collect();
    let (mut worst, mut frontier) = (0, 0);
    for seed in seeds {
        let mut policy = CrashStorm::new(
            Box::new(RandomPolicy::new(seed)),
            seed ^ 0xABCD,
            0.002,
            n - 1,
        );
        engine.run_pool(&mut policy, &mut pool);
        let (h, f) = waste(&repo.arena().occupancy_in(engine.registers()));
        worst = worst.max(h);
        frontier = frontier.max(f);
    }
    (worst, frontier)
}

/// Theorem 9's tightness construction: every process serves until the
/// whole `Help` matrix is full of parked names, then all but one crash.
/// The survivor consumes only its own column; all other parked names —
/// up to `n(n−1)` of them — address registers that will never be used.
fn altruistic_fill_freeze(n: usize) -> (usize, usize, usize) {
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, n, 64 * n * n);
    let mem = ThreadedShm::new(alloc.total(), n);
    // Fill the matrix: each process services its row until all its cells
    // hold names.
    std::thread::scope(|s| {
        for p in 0..n {
            let (repo, mem) = (&repo, &mem);
            s.spawn(move || {
                let ctx = Ctx::new(mem, Pid(p));
                let mut st = repo.depositor_state(ctx.pid());
                loop {
                    repo.serve(ctx, &mut st, 64).unwrap();
                    let row = &repo.help_occupancy(mem, Pid(p))[p * n..(p + 1) * n];
                    if row.iter().all(Option::is_some) {
                        break;
                    }
                }
            });
        }
    });
    let parked_before = repo.help_occupancy(&mem, Pid(0)).iter().flatten().count();
    assert_eq!(parked_before, n * n, "matrix must be full");
    // Crash everyone but process 0.
    for victim in 1..n {
        mem.crash(Pid(victim));
    }
    // The survivor deposits, consuming only column 0.
    let ctx = Ctx::new(&mem, Pid(0));
    let mut st = repo.depositor_state(ctx.pid());
    for i in 0..n as u64 {
        repo.deposit(ctx, &mut st, 1000 + i).unwrap();
    }
    let (holes, frontier) = waste(&repo.arena().occupancy(&mem, Pid(0)));
    (holes, frontier, n * (n - 1))
}

/// Regenerates the table.
pub fn run() {
    let mut table = Table::new(
        "T9 Repository waste — Theorems 8 & 9, Corollary 2",
        &[
            "experiment",
            "n",
            "deposits",
            "holes",
            "budget",
            "frontier",
            "within",
        ],
    );

    for n in [2usize, 3, 4, 6] {
        let per = 12;
        let mut worst = 0;
        let mut frontier = 0;
        for seed in 0..8 {
            let (h, f) = selfish_storm_threaded(n, per, seed);
            worst = worst.max(h);
            frontier = frontier.max(f);
        }
        let budget = n - 1;
        table.row(&[
            "selfish/crash-storm".into(),
            n.to_string(),
            (n * per).to_string(),
            worst.to_string(),
            budget.to_string(),
            frontier.to_string(),
            (worst <= budget).to_string(),
        ]);
        assert!(worst <= budget, "Theorem 8 violated: {worst} > {budget}");
    }

    {
        let (holes, frontier) = selfish_tightness();
        table.row(&[
            "selfish/freeze (Cor. 2)".into(),
            "2".into(),
            "10".into(),
            holes.to_string(),
            "1".into(),
            frontier.to_string(),
            (holes == 1).to_string(),
        ]);
        assert_eq!(holes, 1, "freeze construction must waste exactly n−1 = 1");
    }

    for n in [2usize, 3, 4] {
        let per = 8;
        let (worst, frontier) = altruistic_storm_pooled(n, per, 0..6);
        let budget = n * (n - 1) + (n - 1); // parked names + frozen claims
        table.row(&[
            "altruistic/crash-storm (pooled engine)".into(),
            n.to_string(),
            (n * per).to_string(),
            worst.to_string(),
            budget.to_string(),
            frontier.to_string(),
            (worst <= budget).to_string(),
        ]);
        assert!(worst <= budget, "Theorem 9 violated: {worst} > {budget}");
    }

    for n in [2usize, 3, 4] {
        let (holes, frontier, budget) = altruistic_fill_freeze(n);
        table.row(&[
            "altruistic/fill-freeze (Thm 9 tightness)".into(),
            n.to_string(),
            n.to_string(),
            holes.to_string(),
            budget.to_string(),
            frontier.to_string(),
            (holes <= budget).to_string(),
        ]);
        assert!(holes <= budget, "Theorem 9 violated: {holes} > {budget}");
        // The construction approaches the budget: most parked names below
        // the frontier are lost.
        assert!(
            n == 2 || holes * 2 >= budget,
            "fill-freeze too weak: only {holes} of {budget} wasted"
        );
    }

    // Crash accounting sanity from the deterministic simulator.
    let (crashed, completed, budget) = selfish_storm(3, 4, 42);
    println!(
        "sim sanity: {crashed} crashed (≤ {budget}), {completed} completed under storm schedule"
    );

    table.emit();
    println!("shape check: selfish waste ≤ n−1 under every storm and exactly n−1 in the freeze construction");
    println!("(optimality, Corollary 2); altruistic waste within the n(n−1) parked-name budget.");
}
