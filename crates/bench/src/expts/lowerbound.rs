//! T7 — Theorem 6: any wait-free renaming needs
//! `1 + min{k−2, log_{2r}(N/2M)}` local steps. The pigeonhole adversary
//! is run against Moir–Anderson (the most register-frugal algorithm in
//! the stack, where the log term is non-trivial at laptop `N`) and
//! against Basic-Rename; the table reports the closed form, the stages
//! the adversary forced, and the observed worst-case steps of deciders —
//! the bound holds iff `observed ≥ bound`.

use crate::Table;
use exsel_core::{BasicRename, MoirAnderson, Rename, RenameConfig};
use exsel_lowerbound::{run_against, run_store_against};
use exsel_shm::RegAlloc;
use exsel_storecollect::{StoreCollect, StoreHandle};

/// Regenerates the table.
pub fn run() {
    let mut table = Table::new(
        "T7 Theorem 6 lower bound — pigeonhole adversary vs real algorithms",
        &[
            "algorithm",
            "k",
            "N",
            "M",
            "r",
            "bound",
            "stages",
            "pool_path",
            "observed",
            "holds",
        ],
    );

    for (k, n) in [(8usize, 128usize), (8, 256), (8, 512), (4, 1024)] {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let report = run_against(n, alloc.total(), k, m, r, |ctx| {
            Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
        });
        let holds = report.max_steps_named >= report.bound;
        table.row(&[
            "MoirAnderson".into(),
            k.to_string(),
            n.to_string(),
            m.to_string(),
            r.to_string(),
            report.bound.to_string(),
            report.stages.to_string(),
            format!("{:?}", report.pool_sizes),
            report.max_steps_named.to_string(),
            holds.to_string(),
        ]);
        assert!(holds, "Theorem 6 violated by MoirAnderson at k={k}, N={n}");
    }

    let cfg = RenameConfig::default();
    for (k, n) in [(4usize, 256usize), (8, 512)] {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, n, k, &cfg);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let report = run_against(n, alloc.total(), k, m, r, |ctx| {
            Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
        });
        let holds = report.max_steps_named >= report.bound;
        table.row(&[
            "BasicRename".into(),
            k.to_string(),
            n.to_string(),
            m.to_string(),
            r.to_string(),
            report.bound.to_string(),
            report.stages.to_string(),
            format!("{:?}", report.pool_sizes),
            report.max_steps_named.to_string(),
            holds.to_string(),
        ]);
        assert!(holds, "Theorem 6 violated by BasicRename at k={k}, N={n}");
    }

    table.emit();
    println!("shape check: observed ≥ bound everywhere; the bound grows with N at fixed k (log branch) for the");
    println!("register-frugal MoirAnderson and collapses to the trivial 1 for register-rich BasicRename (N ≤ 2M·2r);");
    println!("pool_path shows the pigeonhole shrink: each stage divides the pool by at most 2r.\n");

    // Theorem 7: the storing analogue — first stores under the adversary.
    let mut t7 = Table::new(
        "T7b Theorem 7 storing lower bound — adversary vs Store&Collect (adaptive setting)",
        &[
            "k", "N", "r", "bound", "stages", "stored", "observed", "holds",
        ],
    );
    for (k, n) in [(4usize, 32usize), (4, 64), (8, 64)] {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, n, &cfg);
        let r = alloc.total() as u64;
        let report = run_store_against(n, alloc.total(), k, r, |ctx| {
            let mut h = StoreHandle::new();
            match sc.store(ctx, &mut h, ctx.pid().0 as u64 + 1, 7) {
                Ok(()) => Ok(h.register().map(|reg| reg.0 as u64)),
                Err(_) => Ok(None),
            }
        });
        let holds = report.max_steps_named >= report.bound;
        t7.row(&[
            k.to_string(),
            n.to_string(),
            r.to_string(),
            report.bound.to_string(),
            report.stages.to_string(),
            report.named.to_string(),
            report.max_steps_named.to_string(),
            holds.to_string(),
        ]);
        assert!(holds, "Theorem 7 violated at k={k}, N={n}");
    }
    t7.emit();
    println!("storing, like renaming, cannot beat the pigeonhole bound: observed first-store steps dominate it.");
}
