//! T7 — Theorem 6: any wait-free renaming needs
//! `1 + min{k−2, log_{2r}(N/2M)}` local steps. The pigeonhole adversary
//! is run against Moir–Anderson (the most register-frugal algorithm in
//! the stack, where the log term is non-trivial at laptop `N`) and
//! against Basic-Rename; the table reports the closed form, the stages
//! the adversary forced, and the observed worst-case steps of deciders —
//! the bound holds iff `observed ≥ bound`.
//!
//! Runs on the **pooled** harness
//! ([`exsel_lowerbound::run_machines_against_pooled`]): one
//! `MachinePool` of enum-dispatched `MachineSet` machines per algorithm,
//! reset in place per adversarial trial on one reusable engine — the
//! same staged executions the thread-backed harness forces (the
//! adversary is deterministic; equality is tested in
//! `exsel-lowerbound`), at engine speed and without per-trial boxing.

use crate::Table;
use exsel_core::{BasicRename, MoirAnderson, Rename, RenameConfig};
use exsel_lowerbound::{run_machines_against_pooled, run_store_against_pooled};
use exsel_shm::{Pid, RegAlloc, RegId, StepMachine};
use exsel_sim::{AlgoSet, MachinePool, SetOutput, StepEngine};
use exsel_storecollect::StoreCollectError;

/// The uniform claim view of a pooled machine: its exclusive resource as
/// one integer, the shape the harness's exclusiveness audit wants.
fn claim(out: SetOutput) -> Option<u64> {
    out.claim()
}

/// One pooled adversarial row: builds the pool over `algo` (contender
/// `p` holds original `p + 1`, as in the proof's conceptual-process
/// pool) and runs it under the Theorem 6 staging on `engine`.
fn renaming_row(
    engine: &mut StepEngine,
    algo: &AlgoSet,
    n: usize,
    regs: usize,
    k: usize,
    m: u64,
    r: u64,
) -> exsel_lowerbound::LowerBoundReport {
    let mut pool: MachinePool<_> = (0..n)
        .map(|p| {
            algo.begin(Pid(p), p as u64 + 1)
                .map_output(claim as fn(SetOutput) -> Option<u64>)
        })
        .collect();
    run_machines_against_pooled(engine, &mut pool, regs, k, m, r)
}

/// Regenerates the table.
pub fn run() {
    let mut engine = StepEngine::reusable(0);
    let mut table = Table::new(
        "T7 Theorem 6 lower bound — pigeonhole adversary vs real algorithms (pooled engine)",
        &[
            "algorithm",
            "k",
            "N",
            "M",
            "r",
            "bound",
            "stages",
            "pool_path",
            "observed",
            "holds",
        ],
    );

    for (k, n) in [(8usize, 128usize), (8, 256), (8, 512), (4, 1024)] {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let regs = alloc.total();
        let algo = AlgoSet::MoirAnderson(algo);
        let report = renaming_row(&mut engine, &algo, n, regs, k, m, r);
        let holds = report.max_steps_named >= report.bound;
        table.row(&[
            "MoirAnderson".into(),
            k.to_string(),
            n.to_string(),
            m.to_string(),
            r.to_string(),
            report.bound.to_string(),
            report.stages.to_string(),
            format!("{:?}", report.pool_sizes),
            report.max_steps_named.to_string(),
            holds.to_string(),
        ]);
        assert!(holds, "Theorem 6 violated by MoirAnderson at k={k}, N={n}");
    }

    let cfg = RenameConfig::default();
    for (k, n) in [(4usize, 256usize), (8, 512)] {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, n, k, &cfg);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let regs = alloc.total();
        let algo = AlgoSet::Rename(Box::new(algo));
        let report = renaming_row(&mut engine, &algo, n, regs, k, m, r);
        let holds = report.max_steps_named >= report.bound;
        table.row(&[
            "BasicRename".into(),
            k.to_string(),
            n.to_string(),
            m.to_string(),
            r.to_string(),
            report.bound.to_string(),
            report.stages.to_string(),
            format!("{:?}", report.pool_sizes),
            report.max_steps_named.to_string(),
            holds.to_string(),
        ]);
        assert!(holds, "Theorem 6 violated by BasicRename at k={k}, N={n}");
    }

    table.emit();
    println!("shape check: observed ≥ bound everywhere; the bound grows with N at fixed k (log branch) for the");
    println!("register-frugal MoirAnderson and collapses to the trivial 1 for register-rich BasicRename (N ≤ 2M·2r);");
    println!("pool_path shows the pigeonhole shrink: each stage divides the pool by at most 2r.\n");

    // Theorem 7: the storing analogue — pooled first stores under the
    // adversary (the claim is the adopted value register).
    let mut t7 = Table::new(
        "T7b Theorem 7 storing lower bound — adversary vs Store&Collect (adaptive setting, pooled)",
        &[
            "k", "N", "r", "bound", "stages", "stored", "observed", "holds",
        ],
    );
    for (k, n) in [(4usize, 32usize), (4, 64), (8, 64)] {
        let mut alloc = RegAlloc::new();
        let sc = exsel_storecollect::StoreCollect::adaptive(&mut alloc, n, &cfg);
        let r = alloc.total() as u64;
        let mut pool: MachinePool<_> = (0..n)
            .map(|p| {
                sc.begin_first_store(Pid(p), p as u64 + 1, 7).map_output(
                    (|res: Result<RegId, StoreCollectError>| res.ok().map(|reg| reg.0 as u64))
                        as fn(Result<RegId, StoreCollectError>) -> Option<u64>,
                )
            })
            .collect();
        let report = run_store_against_pooled(&mut engine, &mut pool, alloc.total(), k, r);
        let holds = report.max_steps_named >= report.bound;
        t7.row(&[
            k.to_string(),
            n.to_string(),
            r.to_string(),
            report.bound.to_string(),
            report.stages.to_string(),
            report.named.to_string(),
            report.max_steps_named.to_string(),
            holds.to_string(),
        ]);
        assert!(holds, "Theorem 7 violated at k={k}, N={n}");
    }
    t7.emit();
    println!("storing, like renaming, cannot beat the pigeonhole bound: observed first-store steps dominate it.");
}
