//! T11 — execution backends: the thread-backed lock-step scheduler vs
//! the single-threaded step-machine engine on identical workloads, plus
//! the engine-reuse comparison (fresh engine per trial vs one engine
//! reused through `reset()`/`run_trial()`).
//!
//! Both backends replay the *same* executions (same policy ⇒ same trace;
//! the blocking renaming APIs are `drive` adapters over the same step
//! machines), so the comparison isolates the machinery: thread parking +
//! condvar round trips per operation vs a vector walk. Reports wall-clock
//! per workload and the speedup, asserts the engine's executions match
//! the thread-backed ones, and — when run from the repository root —
//! records the numbers in `BENCH_engine.json`.
//!
//! `cargo run --release -p exsel-bench --bin expt -- run engine`

use std::time::Instant;

use exsel_core::{Majority, RenameConfig, SlotBank};
use exsel_shm::{Pid, RegAlloc, StepMachine};
use exsel_sim::explore::{explore, explore_engine, explore_pool};
use exsel_sim::policy::RandomPolicy;
use exsel_sim::{AlgoSet, MachinePool, SetOutput, StepEngine};
use exsel_unbounded::AltruisticDeposit;

use crate::gate::Measurement as Row;
use crate::runner::{run_sim, run_sim_engine, run_sim_engine_with, spread_originals};
use crate::Table;

/// Wall-clock of `iters` runs of `f`, in seconds.
pub(crate) fn time(iters: u32, mut f: impl FnMut()) -> f64 {
    // One warmup.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

/// Measures every T11 workload and returns the rows. `quick` is the
/// bench-gate mode: fewer trials and iterations, the largest-k majority
/// round and the thread-backed exploration (seconds of wall-clock by
/// itself) skipped — rows keep the same [`crate::gate::workload_key`]s,
/// so the gate compares them against the committed full-scale artifact.
///
/// # Panics
///
/// Panics if any backend pair diverges on the equivalence seeds — a
/// correctness bug, gated here so a wrong-but-fast engine can never pass.
#[must_use]
pub fn measure(quick: bool) -> Vec<Row> {
    let cfg = RenameConfig::default();
    let mut rows = Vec::new();

    // Majority-renaming rounds under a seeded random schedule.
    let majority_ks: &[usize] = if quick { &[8, 32] } else { &[8, 32, 128] };
    for &k in majority_ks {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 1024, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 1024);
        // Equivalence first: identical names and step counts.
        let a = run_sim(&algo, regs, &originals, 7);
        let b = run_sim_engine(&algo, regs, &originals, 7);
        assert_eq!(a.names, b.names, "backends diverged at k={k}");
        assert_eq!(a.steps, b.steps, "backends diverged at k={k}");
        let iters = if k >= 128 {
            3
        } else if quick {
            5
        } else {
            10
        };
        let threads_s = time(iters, || {
            run_sim(&algo, regs, &originals, 7);
        });
        let engine_s = time(iters, || {
            run_sim_engine(&algo, regs, &originals, 7);
        });
        rows.push(Row {
            workload: format!("majority_round/k={k}"),
            baseline: "threads",
            contender: "engine",
            baseline_s: threads_s,
            contender_s: engine_s,
            extras: Vec::new(),
        });
    }

    // Exhaustive exploration of Compete-For-Register, 3 contenders —
    // the fixed-depth model-checking workload. The thread-backed arm
    // takes seconds per iteration, so the quick mode leaves this row to
    // full regenerations.
    if !quick {
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, 1);
        let regs = alloc.total();
        let a = explore(
            regs,
            3,
            u64::MAX,
            |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
            |_| {},
        );
        let b = explore_engine(
            regs,
            3,
            u64::MAX,
            |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
            |_| {},
        );
        assert!(a.complete && b.complete);
        assert_eq!(a.executions, b.executions, "exploration trees diverged");
        let threads_s = time(3, || {
            explore(
                regs,
                3,
                u64::MAX,
                |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
                |_| {},
            );
        });
        let engine_s = time(3, || {
            explore_engine(
                regs,
                3,
                u64::MAX,
                |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
                |_| {},
            );
        });
        rows.push(Row {
            workload: format!("explore_compete/3procs/{}execs", a.executions),
            baseline: "threads",
            contender: "engine",
            baseline_s: threads_s,
            contender_s: engine_s,
            extras: Vec::new(),
        });
    }

    // Engine reuse: the same seed sweep with a fresh engine per trial
    // vs one engine reused through reset()/run_trial(). Isolates the
    // per-trial construction cost (register bank, scratch, metric
    // buffers) that the reusable API amortizes.
    {
        let trials = if quick { 16u64 } else { 64u64 };
        let k = 32usize;
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 1024, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 1024);
        // Equivalence: the reused engine replays the fresh engine's runs.
        {
            let mut reused = StepEngine::reusable(regs);
            for seed in 0..8 {
                let fresh = run_sim_engine(&algo, regs, &originals, seed);
                let mut policy = RandomPolicy::new(seed);
                let again = run_sim_engine_with(&mut reused, &algo, &originals, &mut policy);
                assert_eq!(fresh.names, again.names, "reuse diverged at seed {seed}");
                assert_eq!(fresh.steps, again.steps, "reuse diverged at seed {seed}");
            }
        }
        let iters = if quick { 3 } else { 5 };
        let fresh_s = time(iters, || {
            for seed in 0..trials {
                run_sim_engine(&algo, regs, &originals, seed);
            }
        });
        let reused_s = time(iters, || {
            let mut engine = StepEngine::reusable(regs);
            for seed in 0..trials {
                let mut policy = RandomPolicy::new(seed);
                run_sim_engine_with(&mut engine, &algo, &originals, &mut policy);
            }
        });
        rows.push(Row {
            workload: format!("engine_reuse/majority k={k} x{trials}"),
            baseline: "fresh",
            contender: "reused",
            baseline_s: fresh_s,
            contender_s: reused_s,
            extras: Vec::new(),
        });
    }

    // The machine pool vs the PR 2 trial loop, reproduced faithfully:
    // fresh `Box<dyn StepMachine>`s every seed AND the pending set
    // rebuilt from scratch before every decision (one peek per live
    // machine — `StepEngine::pending_rebuild`, kept in the engine as the
    // reference loop). The contender is the full PR 3 stack: one
    // enum-dispatched MachinePool reset in place, driving the
    // incrementally-maintained pending set. Same trials (verified
    // trace-identical in tests/engine_determinism.rs and the
    // `pending_rebuild` differential test); the delta is allocator
    // traffic + vtable dispatch + the per-decision pending rebuild.
    {
        // Not as small as the other quick blocks: sub-millisecond
        // windows make the boxed-vs-pooled ratio noisy enough to trip
        // the gate on an otherwise healthy run.
        let trials = if quick { 32u64 } else { 64u64 };
        let k = 32usize;
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 1024, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 1024);
        let algo_set = AlgoSet::Majority(algo.clone());
        // Equivalence: pooled trials reproduce boxed trials.
        {
            let mut engine = StepEngine::reusable(regs);
            let mut pool = algo_set.pool(&originals);
            for seed in 0..8 {
                let boxed = run_sim_engine(&algo, regs, &originals, seed);
                let mut policy = RandomPolicy::new(seed);
                engine.run_pool(&mut policy, &mut pool);
                let pooled: Vec<Option<u64>> = pool
                    .results()
                    .iter()
                    .map(|r| {
                        r.as_ref()
                            .expect("crash-free trial")
                            .as_ref()
                            .ok()
                            .and_then(exsel_sim::SetOutput::claim)
                    })
                    .collect();
                assert_eq!(boxed.names, pooled, "pool diverged at seed {seed}");
                assert_eq!(boxed.steps, pool.steps(), "pool diverged at seed {seed}");
            }
        }
        let iters = 5;
        let boxed_s = time(iters, || {
            let mut engine = StepEngine::reusable(regs).pending_rebuild(true);
            for seed in 0..trials {
                let mut policy = RandomPolicy::new(seed);
                run_sim_engine_with(&mut engine, &algo, &originals, &mut policy);
            }
        });
        let pooled_s = time(iters, || {
            let mut engine = StepEngine::reusable(regs);
            let mut pool = algo_set.pool(&originals);
            for seed in 0..trials {
                let mut policy = RandomPolicy::new(seed);
                engine.run_pool(&mut policy, &mut pool);
            }
        });
        rows.push(Row {
            workload: format!("machine_pool/majority_round/k={k} x{trials}"),
            baseline: "pr2_boxed",
            contender: "pooled",
            baseline_s: boxed_s,
            contender_s: pooled_s,
            extras: Vec::new(),
        });

        // Checker overhead on the very same pooled sweep: the dynamic
        // footprint checker observes every granted operation (two
        // interval lookups plus a dense last-writer clock update). Its
        // budget is ≤10% over checker-off — the `check_off` category
        // floor of 0.9 in the gate. Only measured when the `check`
        // feature is compiled in; the committed row is regenerated with
        // `--features check`.
        #[cfg(feature = "check")]
        {
            let off_s = time(iters, || {
                let mut engine = StepEngine::reusable(regs);
                let mut pool = algo_set.pool(&originals);
                for seed in 0..trials {
                    let mut policy = RandomPolicy::new(seed);
                    engine.run_pool(&mut policy, &mut pool);
                }
            });
            let on_s = time(iters, || {
                let mut engine = StepEngine::reusable(regs);
                engine.install_checker(
                    algo_set
                        .checker(k, regs)
                        .expect("static pass accepts the majority renamer"),
                );
                let mut pool = algo_set.pool(&originals);
                for seed in 0..trials {
                    let mut policy = RandomPolicy::new(seed);
                    engine.run_pool(&mut policy, &mut pool);
                    assert_eq!(
                        engine.metrics().checker_violations,
                        0,
                        "checked bench sweep violated its footprints"
                    );
                }
            });
            rows.push(Row {
                workload: format!("machine_pool/checked_majority/k={k} x{trials}"),
                baseline: "check_off",
                contender: "check_on",
                baseline_s: off_s,
                contender_s: on_s,
                extras: Vec::new(),
            });
        }

        // Exploration: the explore_compete workload re-driven on a pool
        // of concrete CompeteOp machines — zero boxes per execution.
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, 1);
        let regs = alloc.total();
        let pool_of = || -> MachinePool<exsel_core::CompeteOp> {
            (0..3)
                .map(|p| bank.begin_compete(0, p as u64 + 1))
                .collect()
        };
        {
            let boxed = explore_engine(
                regs,
                3,
                u64::MAX,
                |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
                |_| {},
            );
            let mut pool = pool_of();
            let pooled = explore_pool(regs, &mut pool, u64::MAX, |_| {});
            assert_eq!(
                boxed.executions, pooled.executions,
                "pooled exploration tree diverged"
            );
        }
        let iters = if quick { 1 } else { 3 };
        let boxed_s = time(iters, || {
            let mut engine = StepEngine::reusable(regs).pending_rebuild(true);
            exsel_sim::explore_engine_with(
                &mut engine,
                3,
                u64::MAX,
                |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
                |_| {},
            );
        });
        let pooled_s = time(iters, || {
            let mut pool = pool_of();
            explore_pool(regs, &mut pool, u64::MAX, |_| {});
        });
        rows.push(Row {
            workload: "machine_pool/explore_compete/3procs".into(),
            baseline: "pr2_boxed",
            contender: "pooled",
            baseline_s: boxed_s,
            contender_s: pooled_s,
            extras: Vec::new(),
        });
    }

    // The deposit family: the boxed-vs-pooled comparison on the
    // two-activity wait-free deposit machines (Help-matrix row service
    // interleaved with column scans over the unbounded-naming
    // machinery) — the heaviest per-machine state in the stack, so the
    // reset-in-place win is dominated by construction avoidance rather
    // than box churn.
    {
        let trials = if quick { 8u64 } else { 32u64 };
        let n = 8usize;
        let mut alloc = RegAlloc::new();
        let algo_set = AlgoSet::Deposit {
            repo: AltruisticDeposit::new(&mut alloc, n, 4096),
            rounds: 2,
            servers: 0,
        };
        let regs = alloc.total();
        let originals: Vec<u64> = (0..n as u64).map(|p| p * 1000 + 1).collect();
        let boxed_machines = || -> Vec<Box<dyn StepMachine<Output = SetOutput> + '_>> {
            originals
                .iter()
                .enumerate()
                .map(
                    |(p, &orig)| -> Box<dyn StepMachine<Output = SetOutput> + '_> {
                        Box::new(algo_set.begin(Pid(p), orig))
                    },
                )
                .collect()
        };
        // Equivalence: pooled deposit trials replay boxed trials exactly.
        {
            let mut boxed_engine = StepEngine::reusable(regs).record_trace(true);
            let mut pooled_engine = StepEngine::reusable(regs).record_trace(true);
            let mut pool = algo_set.pool(&originals);
            for seed in 0..4 {
                let mut policy = RandomPolicy::new(seed);
                let boxed = boxed_engine.run_trial(&mut policy, boxed_machines());
                let mut policy = RandomPolicy::new(seed);
                pooled_engine.run_pool(&mut policy, &mut pool);
                assert_eq!(
                    boxed.trace.as_deref(),
                    pooled_engine.trace(),
                    "deposit pool diverged at seed {seed}"
                );
                assert_eq!(
                    boxed.steps,
                    pool.steps(),
                    "deposit pool diverged at seed {seed}"
                );
            }
        }
        let iters = if quick { 2 } else { 5 };
        let boxed_s = time(iters, || {
            let mut engine = StepEngine::reusable(regs).pending_rebuild(true);
            for seed in 0..trials {
                let mut policy = RandomPolicy::new(seed);
                engine.run_trial(&mut policy, boxed_machines());
            }
        });
        let pooled_s = time(iters, || {
            let mut engine = StepEngine::reusable(regs);
            let mut pool = algo_set.pool(&originals);
            for seed in 0..trials {
                let mut policy = RandomPolicy::new(seed);
                engine.run_pool(&mut policy, &mut pool);
            }
        });
        rows.push(Row {
            workload: format!("machine_pool/deposit_round/n={n} x{trials}"),
            baseline: "pr2_boxed",
            contender: "pooled",
            baseline_s: boxed_s,
            contender_s: pooled_s,
            extras: Vec::new(),
        });
    }

    // Snapshot compaction: one n = 128 snapshot object (the memory
    // shape whose embedded views dominate at large n) under pooled
    // single-writer updates, recycling arena off vs on. The "allocs"
    // extras are the arena's own fresh-allocation counters over the
    // measured sweeps — with recycling on they collapse to the warm-up
    // residue; with it off every update installs a fresh record and
    // every direct scan collects a fresh view.
    {
        use exsel_shm::snapshot::UpdateOp;
        use exsel_shm::{Snapshot, Word};
        const N: usize = 128;
        let trials = if quick { 2u64 } else { 8u64 };
        let build = |recycle: bool| {
            let mut alloc = RegAlloc::new();
            (
                Snapshot::new(&mut alloc, N).recycling(recycle),
                alloc.total(),
            )
        };
        let sweep = |engine: &mut StepEngine, pool: &mut MachinePool<UpdateOp>| {
            for seed in 0..trials {
                let mut policy = RandomPolicy::new(seed);
                engine.run_pool(&mut policy, pool);
            }
        };
        let pool_of = |snap: &Snapshot| -> MachinePool<UpdateOp> {
            (0..N)
                .map(|p| snap.begin_update(p, Word::Int(p as u64 + 1)))
                .collect()
        };
        // Equivalence: recycling must not change a single granted op.
        let (snap_off, regs) = build(false);
        let (snap_on, _) = build(true);
        {
            let mut engine_off = StepEngine::reusable(regs).record_trace(true);
            let mut engine_on = StepEngine::reusable(regs).record_trace(true);
            let mut pool_off = pool_of(&snap_off);
            let mut pool_on = pool_of(&snap_on);
            for seed in 0..3 {
                let mut policy = RandomPolicy::new(seed);
                engine_off.run_pool(&mut policy, &mut pool_off);
                let mut policy = RandomPolicy::new(seed);
                engine_on.run_pool(&mut policy, &mut pool_on);
                assert_eq!(
                    engine_off.trace(),
                    engine_on.trace(),
                    "recycling changed the schedule at seed {seed}"
                );
                assert_eq!(
                    engine_off.registers(),
                    engine_on.registers(),
                    "recycling changed the memory at seed {seed}"
                );
            }
        }
        let timed = if quick { 1u64 } else { 3u64 };
        let measure = |snap: &Snapshot| -> (f64, u64) {
            let mut engine = StepEngine::reusable(regs);
            let mut pool = pool_of(snap);
            // One warm sweep (inside `time`) stretches the arena.
            let before_stats = snap.arena().stats();
            let secs = time(timed as u32, || sweep(&mut engine, &mut pool));
            // `timed + 1` sweeps ran (1 warm + `timed` timed): report the
            // per-sweep average allocation count across them. The gate
            // owns the recycle-on-vs-off floor (`gate::check`).
            let window = snap.arena().stats().since(&before_stats);
            (secs, window.fresh_allocations() / (timed + 1))
        };
        let (off_s, off_allocs) = measure(&snap_off);
        let (on_s, on_allocs) = measure(&snap_on);
        rows.push(Row {
            workload: format!("machine_pool/snapshot_compact/n={N} x{trials}"),
            baseline: "recycle_off",
            contender: "recycle_on",
            baseline_s: off_s,
            contender_s: on_s,
            extras: vec![
                ("recycle_off_allocs", off_allocs),
                ("recycle_on_allocs", on_allocs),
            ],
        });
    }

    rows
}

/// Runs every T11 workload at full scale, emits the table and merges
/// the rows into `BENCH_engine.json` (at the cwd, i.e. the repo root
/// under `cargo run`). Regression floors live in the bench gate
/// ([`crate::gate::check`], run by the `bench_gate` binary in CI), not
/// here — one noisy run must not destroy the regenerated artifact.
///
/// # Panics
///
/// Panics only if a backend pair diverges (see [`measure`]).
pub fn run() {
    let rows = measure(false);

    let mut table = Table::new(
        "T11 execution machinery — backend and engine-reuse comparisons",
        &[
            "workload",
            "baseline",
            "contender",
            "baseline_ms",
            "contender_ms",
            "speedup",
        ],
    );
    for row in &rows {
        table.row(&[
            row.workload.clone(),
            row.baseline.into(),
            row.contender.into(),
            format!("{:.3}", row.baseline_s * 1e3),
            format!("{:.3}", row.contender_s * 1e3),
            format!("{:.2}", row.speedup()),
        ]);
    }
    table.emit();

    if let Err(e) = crate::gate::merge_into_artifact("BENCH_engine.json", &rows) {
        eprintln!("(could not write BENCH_engine.json: {e})");
    } else {
        println!("wrote BENCH_engine.json");
    }

    let backend_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.baseline == "threads")
        .map(Row::speedup)
        .collect();
    if !backend_speedups.is_empty() {
        println!(
            "\nstep engine is {:.0}x-{:.0}x faster than threads; executions verified identical per backend.",
            backend_speedups.iter().copied().fold(f64::INFINITY, f64::min),
            backend_speedups.iter().copied().fold(0.0, f64::max)
        );
    }

    if let Some(reuse) = rows.iter().find(|r| r.baseline == "fresh") {
        println!(
            "engine reuse: {:.3} ms fresh vs {:.3} ms reused per sweep ({:.2}x).",
            reuse.baseline_s * 1e3,
            reuse.contender_s * 1e3,
            reuse.speedup()
        );
    }

    // The snapshot compaction row competes on allocations, not
    // wall-clock — the collect loop dominates its runtime either way.
    let pool_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.workload.starts_with("machine_pool/") && r.baseline == "pr2_boxed")
        .map(Row::speedup)
        .collect();
    if !pool_speedups.is_empty() {
        println!(
            "machine pool: {:.2}x-{:.2}x over boxed-per-trial machines.",
            pool_speedups.iter().copied().fold(f64::INFINITY, f64::min),
            pool_speedups.iter().copied().fold(0.0, f64::max)
        );
    }
}
