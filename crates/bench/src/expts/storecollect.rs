//! T8 — Theorem 5: Store&Collect step bounds in all four knowledge
//! settings. For each setting and contention `k`: the first store (which
//! runs renaming), a repeated store (must be a single write), and a
//! collect (must be `O(k)` reads, independent of the register footprint).

use crate::Table;
use exsel_core::RenameConfig;
use exsel_shm::{Ctx, Pid, ThreadedShm};
use exsel_storecollect::{StoreCollect, StoreHandle};

struct Measured {
    first_store: u64,
    repeat_store: u64,
    collect: u64,
    registers: usize,
    complete: bool,
}

fn measure(sc: &StoreCollect, registers: usize, k: usize) -> Measured {
    let mem = ThreadedShm::new(registers, k);
    // Contenders store twice concurrently; each reports (first-store
    // cost, repeat-store cost).
    let costs: Vec<(u64, u64)> = std::thread::scope(|s| {
        (0..k)
            .map(|p| {
                let (sc, mem) = (sc, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let mut h = StoreHandle::new();
                    let before = ctx.steps();
                    sc.store(ctx, &mut h, p as u64 + 1, p as u64).unwrap();
                    let first = ctx.steps() - before;
                    let before = ctx.steps();
                    sc.store(ctx, &mut h, p as u64 + 1, p as u64 + 100).unwrap();
                    (first, ctx.steps() - before)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let ctx = Ctx::new(&mem, Pid(0));
    let before = ctx.steps();
    let view = sc.collect(ctx).unwrap();
    let collect = ctx.steps() - before;
    Measured {
        first_store: costs.iter().map(|c| c.0).max().unwrap_or(0),
        repeat_store: costs.iter().map(|c| c.1).max().unwrap_or(0),
        collect,
        registers,
        complete: view.len() == k,
    }
}

/// Regenerates the table.
pub fn run() {
    let cfg = RenameConfig::default();
    let mut table = Table::new(
        "T8 Store&Collect — Theorem 5: step costs per setting",
        &[
            "setting",
            "k",
            "first_store",
            "repeat_store",
            "collect",
            "registers",
            "complete",
        ],
    );
    for k in [2usize, 4, 8] {
        {
            let mut alloc = exsel_shm::RegAlloc::new();
            let sc = StoreCollect::known(&mut alloc, k, 1 << 10, &cfg);
            let m = measure(&sc, alloc.total(), k);
            table.row(&[
                "(i) k,N known".into(),
                k.to_string(),
                m.first_store.to_string(),
                m.repeat_store.to_string(),
                m.collect.to_string(),
                m.registers.to_string(),
                m.complete.to_string(),
            ]);
            assert_eq!(m.repeat_store, 1);
        }
        {
            let mut alloc = exsel_shm::RegAlloc::new();
            let sc = StoreCollect::almost_adaptive(&mut alloc, 64, 16, &cfg);
            let m = measure(&sc, alloc.total(), k);
            table.row(&[
                "(ii) N=O(n) known".into(),
                k.to_string(),
                m.first_store.to_string(),
                m.repeat_store.to_string(),
                m.collect.to_string(),
                m.registers.to_string(),
                m.complete.to_string(),
            ]);
        }
        {
            let mut alloc = exsel_shm::RegAlloc::new();
            let sc = StoreCollect::almost_adaptive(&mut alloc, 16 * 16, 16, &cfg);
            let m = measure(&sc, alloc.total(), k);
            table.row(&[
                "(iii) N=poly(n)".into(),
                k.to_string(),
                m.first_store.to_string(),
                m.repeat_store.to_string(),
                m.collect.to_string(),
                m.registers.to_string(),
                m.complete.to_string(),
            ]);
        }
        {
            let mut alloc = exsel_shm::RegAlloc::new();
            let sc = StoreCollect::adaptive(&mut alloc, 16, &cfg);
            let m = measure(&sc, alloc.total(), k);
            table.row(&[
                "(iv) adaptive".into(),
                k.to_string(),
                m.first_store.to_string(),
                m.repeat_store.to_string(),
                m.collect.to_string(),
                m.registers.to_string(),
                m.complete.to_string(),
            ]);
        }
    }
    table.emit();
    println!("shape check: repeat_store = 1 everywhere; collect grows with k but stays far below `registers`");
    println!("(the doubling-interval controls stop the scan at the O(k) prefix); first_store is the renaming cost.");
}
