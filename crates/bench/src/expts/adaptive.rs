//! T6 — Theorem 4: fully adaptive renaming (neither `k` nor `N` known)
//! with `M ≤ 8k − lg k − 1`, `O(k)` steps and `O(n²)` registers.
//!
//! The contenders' original names are drawn from a huge sparse range to
//! stress the "N unknown" claim; true contention `k` sweeps.

use exsel_core::{AdaptiveRename, RenameConfig};
use exsel_shm::RegAlloc;
use exsel_sim::StepEngine;

use crate::runner::sweep_random;
use crate::Table;

/// Regenerates the T6 table.
///
/// # Panics
///
/// Panics if Theorem 4's name bound is violated.
pub fn run() {
    let n_procs = 16usize;
    let cfg = RenameConfig::default();
    let mut probe_alloc = RegAlloc::new();
    let _probe = AdaptiveRename::new(&mut probe_alloc, n_procs, &cfg);

    let mut table = Table::new(
        format!(
            "T6 Adaptive-Rename over n={n_procs} — Theorem 4: M ≤ 8k − lg k − 1, O(k) steps, {} registers",
            probe_alloc.total()
        ),
        &[
            "k", "max_name", "8k-lgk-1", "max_steps", "steps_per_k", "named",
        ],
    );

    let mut engine = StepEngine::reusable(0);
    for k in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        // Sparse, huge originals: N is effectively unbounded.
        let originals: Vec<u64> = (0..k as u64)
            .map(|i| (i + 1).wrapping_mul(0x9E37_79B9))
            .collect();
        let stats = sweep_random(&mut engine, 0..3, &originals, |a| {
            AdaptiveRename::new(a, n_procs, &cfg)
        });
        let lg_k = (k as f64).log2().floor() as u64;
        let theorem_bound = 8 * k as u64 - lg_k - 1;
        assert!(
            stats.max_name <= theorem_bound,
            "Theorem 4 violated: {} > {theorem_bound} at k={k}",
            stats.max_name
        );
        assert_eq!(stats.min_named, k, "not everyone renamed at k={k}");
        table.row(&[
            k.to_string(),
            stats.max_name.to_string(),
            theorem_bound.to_string(),
            stats.max_steps().to_string(),
            format!("{:.0}", stats.max_steps() as f64 / k as f64),
            stats.min_named.to_string(),
        ]);
    }
    table.emit();
    println!("shape check: max_name ≤ 8k − lg k − 1 for every contention; steps_per_k stabilizes, certifying O(k) steps");
    println!("(the per-k constant is the snapshot stage's scan width — see DESIGN.md on the AF-stage substitution).");
}
