//! The service scenarios: the open-loop client harness
//! ([`exsel_sim::service`]) run at benchmark scale on the slab register
//! bank — clients arrive, acquire a naming ticket, store, collect and
//! deposit, and depart, under admission control and (for the storm
//! variant) a crash-hazard fault injector.
//!
//! Four registry entries share this body:
//!
//! - `service-smoke` — seconds-scale CI check (also run `--quick`).
//! - `service-steady` — ≥ 10⁶ sessions at high utilization, crashless;
//!   merges a throughput row into `BENCH_engine.json`.
//! - `service-storm` — the same service under a per-step crash hazard
//!   and a tighter waiting room: the run must degrade *gracefully*
//!   (bounded windowed p999, nonzero shed count, zero ticket
//!   collisions); merges its row into `BENCH_engine.json`.
//! - `service-mega` — the sharded fleet
//!   ([`exsel_sim::service::mega`]): 1250 admission shards × 8 slots =
//!   10⁴ concurrent slots driving ≥ 10⁶ sessions per run, each shard on
//!   its own slab register file; merges its row into
//!   `BENCH_engine.json`, and the bench gate re-probes the whole
//!   committed shard axis for allocation flatness
//!   ([`measure_mega`]).
//!
//! `--json-out` persists the windowed telemetry as **JSON Lines** —
//! one object per window per seed (plus one `summary` line per seed),
//! every value a plain integer, so two runs with the same seed produce
//! bit-identical files. Every line carries `scenario`, `seed`, `shards`
//! and `policy`, like the grid artifact rows.

use std::time::Instant;

use exsel_shm::SlabBank;
use exsel_sim::service::mega::{
    MegaServiceConfig, MegaServiceHarness, MegaServiceReport, MegaServiceWorld,
};
use exsel_sim::service::{
    Admission, Arrivals, ServiceConfig, ServiceHarness, ServiceReport, ServiceWorld, WindowRow,
};

use crate::alloc_probe;
use crate::gate::Measurement as Row;
use crate::scenario::RunOverrides;
use crate::Table;

/// A registry entry's service configuration plus its acceptance
/// assertions and artifact wiring.
pub struct ServiceSpec {
    /// The full-scale run configuration.
    pub cfg: ServiceConfig,
    /// Human label for the workload mix (arrivals + admission), carried
    /// into every JSON row as `policy`.
    pub policy: &'static str,
    /// Session target under `--quick`.
    pub quick_sessions: u64,
    /// Upper bound asserted on every window's session p999 (graceful
    /// degradation); 0 disables the assertion.
    pub p999_bound: u64,
    /// Assert that admission shed at least one client.
    pub expect_shed: bool,
    /// Assert that the fault injector crashed and re-entered clients.
    pub expect_crashes: bool,
    /// Merge a summary row under this workload key into
    /// `BENCH_engine.json` after a full-scale run.
    pub bench_workload: Option<&'static str>,
}

/// `service-steady`: ≥ 10⁶ crashless sessions at ~85% utilization.
///
/// Measured: a session over 8 slots costs ≈ 2360 granted steps end to
/// end (the acquire and deposit scans are Θ(n²) reads, interleaved
/// across the in-flight set), so a Poisson mean gap of 2800 steps runs
/// the grant loop at ρ ≈ 0.84 — busy, with admission rarely shedding.
#[must_use]
pub fn steady_spec() -> ServiceSpec {
    ServiceSpec {
        cfg: ServiceConfig {
            seed: 1,
            slots: 8,
            target_sessions: 1_000_000,
            window: 1 << 24,
            arrivals: Arrivals::Poisson { mean_gap: 2800.0 },
            crash_hazard: 0.0,
            admission: Admission {
                max_inflight: 8,
                queue_capacity: 16,
                backoff_base: 256,
                backoff_cap: 1 << 15,
                max_retries: 10,
                waiting_capacity: 512,
            },
            ..ServiceConfig::default()
        },
        policy: "poisson(2800)/inflight<=8/backoff(256..32768)x10",
        quick_sessions: 20_000,
        p999_bound: 0,
        expect_shed: false,
        expect_crashes: false,
        bench_workload: Some("service/steady/open_loop"),
    }
}

/// `service-storm`: the steady workload under a 0.2% per-step crash
/// hazard, a hotter arrival rate and a tight waiting room — the
/// graceful-degradation variant.
#[must_use]
pub fn storm_spec() -> ServiceSpec {
    ServiceSpec {
        cfg: ServiceConfig {
            seed: 2,
            slots: 8,
            target_sessions: 200_000,
            window: 1 << 20,
            arrivals: Arrivals::Bursty {
                mean_gap: 700.0,
                burst: 1 << 15,
                lull: 1 << 14,
            },
            crash_hazard: 0.002,
            admission: Admission {
                max_inflight: 8,
                queue_capacity: 8,
                backoff_base: 256,
                backoff_cap: 1 << 14,
                max_retries: 6,
                waiting_capacity: 64,
            },
            ..ServiceConfig::default()
        },
        policy: "bursty(700,on32k/off16k)+hazard(2e-3)/inflight<=8",
        quick_sessions: 10_000,
        // Graceful degradation: no window's session p999 may blow past
        // this many steps even mid-storm (sessions that keep crashing
        // re-enter as new admissions, so the per-incarnation tail stays
        // bounded by the backoff envelope).
        p999_bound: 1 << 15,
        expect_shed: true,
        expect_crashes: true,
        bench_workload: Some("service/storm/open_loop"),
    }
}

/// `service-smoke`: a seconds-scale diurnal run with a mild hazard for
/// CI (`--quick` shrinks it further).
#[must_use]
pub fn smoke_spec() -> ServiceSpec {
    ServiceSpec {
        cfg: ServiceConfig {
            seed: 3,
            slots: 4,
            target_sessions: 5_000,
            window: 1 << 14,
            arrivals: Arrivals::Diurnal {
                peak_gap: 150.0,
                trough_gap: 900.0,
                period: 1 << 16,
            },
            crash_hazard: 0.001,
            admission: Admission {
                max_inflight: 4,
                queue_capacity: 8,
                backoff_base: 128,
                backoff_cap: 1 << 13,
                max_retries: 8,
                waiting_capacity: 128,
            },
            ..ServiceConfig::default()
        },
        policy: "diurnal(150..900,64k)+hazard(1e-3)/inflight<=4",
        quick_sessions: 1_000,
        p999_bound: 0,
        expect_shed: false,
        expect_crashes: true,
        bench_workload: None,
    }
}

/// A `service-mega` registry entry: the sharded fleet configuration
/// plus its session target under `--quick` and its artifact wiring.
pub struct MegaServiceSpec {
    /// The full-scale fleet configuration (`base` is per shard for
    /// slots/admission, fleet-wide for arrivals and budgets).
    pub cfg: MegaServiceConfig,
    /// Human label carried into every JSON row as `policy`.
    pub policy: &'static str,
    /// Fleet-wide session target under `--quick`.
    pub quick_sessions: u64,
    /// Merge a summary row under this workload key into
    /// `BENCH_engine.json` after a full-scale run.
    pub bench_workload: Option<&'static str>,
}

/// The per-shard Poisson mean gap every `service-mega` axis point runs
/// at — the `service-steady` operating point (ρ ≈ 0.84 on 8 slots), so
/// mega throughput divides cleanly into a per-shard rate comparable to
/// the unsharded row.
pub const MEGA_PER_SHARD_GAP: f64 = 2800.0;

/// The shard counts the bench gate re-probes ([`measure_mega`]): the
/// unsharded degenerate point, a small fleet, and the committed
/// full-scale fleet (1250 shards × 8 slots = 10⁴ concurrent slots).
pub const MEGA_SHARD_AXIS: [usize; 3] = [1, 16, 1250];

/// `service-mega`: 1250 admission shards × 8 slots, ≥ 10⁶ crashless
/// sessions per run, every shard at the steady operating point (the
/// fleet-wide gap is the per-shard gap thinned by the shard count).
#[must_use]
pub fn mega_spec() -> MegaServiceSpec {
    let shards = 1250;
    #[allow(clippy::cast_precision_loss)]
    let fleet_gap = MEGA_PER_SHARD_GAP / shards as f64;
    MegaServiceSpec {
        cfg: MegaServiceConfig {
            base: ServiceConfig {
                seed: 4,
                slots: 8,
                target_sessions: 1_000_000,
                window: 1 << 16,
                arrivals: Arrivals::Poisson {
                    mean_gap: fleet_gap,
                },
                crash_hazard: 0.0,
                admission: Admission {
                    max_inflight: 8,
                    queue_capacity: 16,
                    backoff_base: 256,
                    backoff_cap: 1 << 15,
                    max_retries: 10,
                    waiting_capacity: 512,
                },
                ..ServiceConfig::default()
            },
            shards,
        },
        policy: "poisson(2800/shard)x1250shards/inflight<=8",
        quick_sessions: 20_000,
        bench_workload: Some("service/mega/open_loop"),
    }
}

/// Asserts a report's service-level invariants for `name` and panics
/// with context on violation: ticket exclusivity across every completed
/// session, the arrival accounting identity, and the spec's shed/crash/
/// tail expectations.
fn assert_report(name: &str, spec: &ServiceSpec, cfg: &ServiceConfig, report: &ServiceReport) {
    assert!(
        report.accounted(),
        "{name}: accounting identity broken: {:?} in_system={}",
        report.totals,
        report.in_system
    );
    if cfg.record_names {
        let mut names = report.names.clone();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(
            names.len(),
            before,
            "{name}: completed sessions share a naming ticket"
        );
    }
    if spec.expect_shed {
        assert!(report.totals.shed > 0, "{name}: storm never shed load");
    }
    if spec.expect_crashes {
        assert!(
            report.totals.crashes > 0 && report.totals.reentries > 0,
            "{name}: hazard produced no crash re-entry ({:?})",
            report.totals
        );
    }
    if spec.p999_bound > 0 {
        for w in &report.windows {
            assert!(
                w.session_p999 <= spec.p999_bound,
                "{name}: window {} session p999 {} blew the {} bound",
                w.window,
                w.session_p999,
                spec.p999_bound
            );
        }
    }
}

/// One window of the time series as a JSON Lines object.
fn window_json(
    name: &str,
    seed: u64,
    shards: u64,
    policy: &str,
    w: &WindowRow,
) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    obj.insert("kind".into(), serde_json::Value::String("window".into()));
    obj.insert("scenario".into(), serde_json::Value::String(name.into()));
    obj.insert("policy".into(), serde_json::Value::String(policy.into()));
    for (key, value) in [
        ("seed", seed),
        ("shards", shards),
        ("window", w.window),
        ("start", w.start),
        ("end", w.end),
        ("arrivals", w.arrivals),
        ("admitted", w.admitted),
        ("completed", w.completed),
        ("crashes", w.crashes),
        ("reentries", w.reentries),
        ("retries", w.retries),
        ("shed", w.shed),
        ("rejected", w.rejected),
        ("inflight", w.inflight),
        ("queued", w.queued),
        ("waiting", w.waiting),
        ("session_p50", w.session_p50),
        ("session_p99", w.session_p99),
        ("session_p999", w.session_p999),
        ("sojourn_p99", w.sojourn_p99),
        ("acquire_p50", w.acquire_p50),
        ("acquire_p99", w.acquire_p99),
        ("acquire_p999", w.acquire_p999),
        ("store_p50", w.store_p50),
        ("store_p99", w.store_p99),
        ("store_p999", w.store_p999),
        ("collect_p50", w.collect_p50),
        ("collect_p99", w.collect_p99),
        ("collect_p999", w.collect_p999),
        ("deposit_p50", w.deposit_p50),
        ("deposit_p99", w.deposit_p99),
        ("deposit_p999", w.deposit_p999),
    ] {
        obj.insert(key.into(), serde_json::Value::from(value));
    }
    serde_json::Value::Object(obj)
}

/// The per-seed summary line closing a seed's window series.
fn summary_json(
    name: &str,
    seed: u64,
    shards: u64,
    policy: &str,
    report: &ServiceReport,
) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    obj.insert("kind".into(), serde_json::Value::String("summary".into()));
    obj.insert("scenario".into(), serde_json::Value::String(name.into()));
    obj.insert("policy".into(), serde_json::Value::String(policy.into()));
    let t = &report.totals;
    let cum = &report.cumulative;
    for (key, value) in [
        ("seed", seed),
        ("shards", shards),
        ("arrivals", t.arrivals),
        ("admitted", t.admitted),
        ("completed", t.completed),
        ("crashes", t.crashes),
        ("reentries", t.reentries),
        ("retries", t.retries),
        ("shed", t.shed),
        ("rejected", t.rejected),
        ("ops", t.ops),
        ("steps", t.steps),
        ("in_system", report.in_system),
        ("session_p50", cum[4].quantile(1, 2)),
        ("session_p99", cum[4].quantile(99, 100)),
        ("session_p999", cum[4].quantile(999, 1000)),
        ("sojourn_p999", cum[5].quantile(999, 1000)),
    ] {
        obj.insert(key.into(), serde_json::Value::from(value));
    }
    serde_json::Value::Object(obj)
}

/// Drives a scenario harness to completion — equivalent to
/// [`ServiceHarness::run`]. Compiled with `--features check`, a
/// footprint checker is installed first and the run must end with zero
/// violations, so every service scenario doubles as a checked battery.
fn run_service_harness(
    world: &ServiceWorld,
    cfg: &ServiceConfig,
    mut harness: ServiceHarness<SlabBank>,
) -> ServiceReport {
    #[cfg(feature = "check")]
    harness.install_checker(
        exsel_sim::AccessChecker::for_instance(world, cfg.slots, world.num_registers())
            .expect("scenario world failed the static non-interference pass"),
    );
    #[cfg(not(feature = "check"))]
    let _ = world;
    let target = match cfg.target_sessions {
        0 => u64::MAX,
        t => t,
    };
    let _ = harness.run_until(target);
    #[cfg(feature = "check")]
    {
        assert!(
            harness.checker().is_some_and(|c| c.trial_ops() > 0),
            "checked scenario run observed no operations"
        );
        assert_eq!(
            harness.checker_violations(),
            0,
            "service scenario stepped outside its declared footprints"
        );
    }
    harness.finish()
}

/// Mega-fleet counterpart of [`run_service_harness`]: one checker per
/// admission shard under `--features check`, zero violations required.
fn run_mega_harness(
    world: &MegaServiceWorld,
    cfg: &MegaServiceConfig,
    mut harness: MegaServiceHarness,
) -> MegaServiceReport {
    #[cfg(feature = "check")]
    harness.install_checkers(
        world
            .shard_worlds()
            .iter()
            .map(|w| {
                exsel_sim::AccessChecker::for_instance(w, cfg.base.slots, w.num_registers())
                    .expect("shard world failed the static non-interference pass")
            })
            .collect(),
    );
    #[cfg(not(feature = "check"))]
    let _ = world;
    let target = match cfg.base.target_sessions {
        0 => u64::MAX,
        t => t,
    };
    let _ = harness.run_until(target);
    #[cfg(feature = "check")]
    assert_eq!(
        harness.checker_violations(),
        0,
        "mega scenario stepped outside its declared footprints"
    );
    harness.finish()
}

/// Runs a service scenario: one full open-loop run per seed (the
/// registry seed, or `0..N` under `--seeds N`; `--quick` shrinks the
/// session target), asserting the report invariants, printing a
/// per-seed summary table, and returning the JSON Lines rows. Full-scale
/// runs with a `bench_workload` also merge their throughput row into
/// `BENCH_engine.json`.
///
/// # Panics
///
/// Panics when any report invariant fails — see `assert_report`.
pub fn run(name: &str, spec: &ServiceSpec, overrides: &RunOverrides) -> Vec<serde_json::Value> {
    let mut cfg = spec.cfg;
    if overrides.quick {
        cfg.target_sessions = spec.quick_sessions;
        // Auto-sized arenas follow the shrunk target automatically.
    }
    let seeds: Vec<u64> = match overrides.seeds {
        Some(n) => (0..n).collect(),
        None => vec![cfg.seed],
    };
    let mut table = Table::new(
        format!("scenario {name} — open-loop service ({})", spec.policy),
        &[
            "seed",
            "completed",
            "steps/session",
            "sessions/sec",
            "crashes",
            "reentries",
            "shed",
            "rejected",
            "p50",
            "p99",
            "p999",
        ],
    );
    let mut rows = Vec::new();
    for seed in seeds {
        cfg.seed = seed;
        let world = ServiceWorld::new(&cfg);
        let harness = ServiceHarness::with_bank(&world, &cfg, SlabBank::new());
        let start = Instant::now();
        let report = run_service_harness(&world, &cfg, harness);
        let secs = start.elapsed().as_secs_f64();
        assert_report(name, spec, &cfg, &report);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let sessions_per_sec = (report.totals.completed as f64 / secs.max(1e-9)) as u64;
        let steps_per_session = report
            .totals
            .ops
            .checked_div(report.totals.completed)
            .unwrap_or(0);
        table.row(&[
            seed.to_string(),
            report.totals.completed.to_string(),
            steps_per_session.to_string(),
            sessions_per_sec.to_string(),
            report.totals.crashes.to_string(),
            report.totals.reentries.to_string(),
            report.totals.shed.to_string(),
            report.totals.rejected.to_string(),
            report.cumulative[4].quantile(1, 2).to_string(),
            report.cumulative[4].quantile(99, 100).to_string(),
            report.cumulative[4].quantile(999, 1000).to_string(),
        ]);
        for w in &report.windows {
            rows.push(window_json(name, seed, 1, spec.policy, w));
        }
        rows.push(summary_json(name, seed, 1, spec.policy, &report));
        if let (Some(workload), false) = (spec.bench_workload, overrides.quick) {
            let bench = Row {
                workload: workload.into(),
                baseline: "sessions_floor",
                contender: "open_loop",
                baseline_s: secs,
                contender_s: secs,
                extras: vec![
                    ("sessions", report.totals.completed),
                    ("sessions_per_sec", sessions_per_sec),
                    ("total_ops", report.totals.ops),
                    ("crashes", report.totals.crashes),
                    ("shed", report.totals.shed),
                    ("rejected", report.totals.rejected),
                    ("session_p999", report.cumulative[4].quantile(999, 1000)),
                ],
            };
            if let Err(e) =
                crate::gate::merge_into_artifact("BENCH_engine.json", std::slice::from_ref(&bench))
            {
                eprintln!("(could not write BENCH_engine.json: {e})");
            } else {
                println!("merged {workload} into BENCH_engine.json");
            }
        }
    }
    table.emit();
    rows
}

/// Asserts a mega report's fleet-level invariants for `name`: the
/// global accounting identity, ticket exclusivity over the namespaced
/// audit, and the per-shard roll-up identity.
fn assert_mega_report(name: &str, cfg: &MegaServiceConfig, mega: &MegaServiceReport) {
    assert!(
        mega.report.accounted(),
        "{name}: accounting identity broken: {:?} in_system={}",
        mega.report.totals,
        mega.report.in_system
    );
    assert!(
        mega.rolled_up(),
        "{name}: shard totals diverge from the global roll-up"
    );
    if cfg.base.record_names {
        let mut names = mega.report.names.clone();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(
            names.len(),
            before,
            "{name}: completed sessions share a naming ticket across the fleet"
        );
    }
}

/// Multiplies every inter-arrival gap of an arrival process by
/// `factor`, preserving burst/lull and diurnal phase structure — how
/// `--shards` overrides resize the fleet while holding each shard's
/// load fixed.
fn scale_gaps(arrivals: Arrivals, factor: f64) -> Arrivals {
    match arrivals {
        Arrivals::Poisson { mean_gap } => Arrivals::Poisson {
            mean_gap: mean_gap * factor,
        },
        Arrivals::Bursty {
            mean_gap,
            burst,
            lull,
        } => Arrivals::Bursty {
            mean_gap: mean_gap * factor,
            burst,
            lull,
        },
        Arrivals::Diurnal {
            peak_gap,
            trough_gap,
            period,
        } => Arrivals::Diurnal {
            peak_gap: peak_gap * factor,
            trough_gap: trough_gap * factor,
            period,
        },
    }
}

/// Runs the `service-mega` scenario: one sharded fleet run per seed
/// (`--quick` shrinks the session target, `--shards` resizes the fleet
/// while keeping each shard at the spec's per-shard arrival rate),
/// asserting the fleet invariants, printing a per-seed summary table
/// and returning the JSON Lines rows. Full-scale runs merge the
/// `service/mega/open_loop` throughput row into `BENCH_engine.json`.
///
/// # Panics
///
/// Panics when any fleet invariant fails — see `assert_mega_report`.
pub fn run_mega(
    name: &str,
    spec: &MegaServiceSpec,
    overrides: &RunOverrides,
) -> Vec<serde_json::Value> {
    let mut cfg = spec.cfg;
    if let Some(shards) = overrides.shards {
        // Resize the fleet, holding per-shard load: the fleet-wide gap
        // scales inversely with the shard count.
        #[allow(clippy::cast_precision_loss)]
        let factor = cfg.shards as f64 / shards as f64;
        cfg.base.arrivals = scale_gaps(cfg.base.arrivals, factor);
        cfg.shards = shards;
    }
    if overrides.quick {
        cfg.base.target_sessions = spec.quick_sessions;
        // Auto-sized arenas follow the shrunk target automatically.
    }
    let seeds: Vec<u64> = match overrides.seeds {
        Some(n) => (0..n).collect(),
        None => vec![cfg.base.seed],
    };
    let mut table = Table::new(
        format!(
            "scenario {name} — sharded open-loop fleet, {} shards x {} slots ({})",
            cfg.shards, cfg.base.slots, spec.policy
        ),
        &[
            "seed",
            "shards",
            "completed",
            "steps/session",
            "sessions/sec",
            "shed",
            "rejected",
            "p50",
            "p99",
            "p999",
        ],
    );
    let mut rows = Vec::new();
    for seed in seeds {
        cfg.base.seed = seed;
        let world = MegaServiceWorld::new(&cfg);
        let harness = MegaServiceHarness::new(&world, &cfg);
        let start = Instant::now();
        let mega = run_mega_harness(&world, &cfg, harness);
        let secs = start.elapsed().as_secs_f64();
        assert_mega_report(name, &cfg, &mega);
        let report = &mega.report;
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let sessions_per_sec = (report.totals.completed as f64 / secs.max(1e-9)) as u64;
        let steps_per_session = report
            .totals
            .ops
            .checked_div(report.totals.completed)
            .unwrap_or(0);
        table.row(&[
            seed.to_string(),
            cfg.shards.to_string(),
            report.totals.completed.to_string(),
            steps_per_session.to_string(),
            sessions_per_sec.to_string(),
            report.totals.shed.to_string(),
            report.totals.rejected.to_string(),
            report.cumulative[4].quantile(1, 2).to_string(),
            report.cumulative[4].quantile(99, 100).to_string(),
            report.cumulative[4].quantile(999, 1000).to_string(),
        ]);
        let shards = cfg.shards as u64;
        for w in &report.windows {
            rows.push(window_json(name, seed, shards, spec.policy, w));
        }
        rows.push(summary_json(name, seed, shards, spec.policy, report));
        if let (Some(workload), false) = (spec.bench_workload, overrides.quick) {
            let bench = Row {
                workload: workload.into(),
                baseline: "sessions_floor",
                contender: "open_loop",
                baseline_s: secs,
                contender_s: secs,
                extras: vec![
                    ("sessions", report.totals.completed),
                    ("sessions_per_sec", sessions_per_sec),
                    ("total_ops", report.totals.ops),
                    ("shards", shards),
                    ("slots", cfg.total_slots() as u64),
                    ("shed", report.totals.shed),
                    ("rejected", report.totals.rejected),
                    ("session_p999", report.cumulative[4].quantile(999, 1000)),
                ],
            };
            if let Err(e) =
                crate::gate::merge_into_artifact("BENCH_engine.json", std::slice::from_ref(&bench))
            {
                eprintln!("(could not write BENCH_engine.json: {e})");
            } else {
                println!("merged {workload} into BENCH_engine.json");
            }
        }
    }
    table.emit();
    rows
}

/// The bench-gate measurement: the steady workload (quick: 20k
/// sessions) with a warm-up segment, the steady segment timed under the
/// allocation probe — the gate holds the row to its sessions/sec floor
/// and, when the counting allocator is installed, to **zero**
/// steady-state allocations.
///
/// # Panics
///
/// Panics if the run ends before reaching its session target.
#[must_use]
pub fn measure(quick: bool) -> Row {
    let mut cfg = steady_spec().cfg;
    if quick {
        cfg.target_sessions = 20_000;
    }
    // The audit vector is pre-sized off the target, so recording names
    // stays in the measured window's zero-allocation budget.
    let warm = cfg.target_sessions / 10;
    let world = ServiceWorld::new(&cfg);
    let mut harness = ServiceHarness::with_bank(&world, &cfg, SlabBank::new());
    assert!(harness.run_until(warm), "service drained during warm-up");
    let ops_before = harness.ops();
    let before = alloc_probe::counts();
    let start = Instant::now();
    assert!(
        harness.run_until(cfg.target_sessions),
        "service drained mid-measurement"
    );
    let secs = start.elapsed().as_secs_f64();
    let window = alloc_probe::counts().since(&before);
    let steady_ops = harness.ops() - ops_before;
    let report = harness.finish();
    let measured = cfg.target_sessions - warm;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let sessions_per_sec = (measured as f64 / secs.max(1e-9)) as u64;
    Row {
        workload: "service/steady/open_loop".into(),
        baseline: "sessions_floor",
        contender: "open_loop",
        baseline_s: secs,
        contender_s: secs,
        extras: vec![
            ("sessions", measured),
            ("sessions_per_sec", sessions_per_sec),
            ("total_ops", steady_ops),
            ("crashes", report.totals.crashes),
            ("shed", report.totals.shed),
            ("rejected", report.totals.rejected),
            ("session_p999", report.cumulative[4].quantile(999, 1000)),
            ("steady_allocs", window.allocs),
            ("steady_frees", window.deallocs),
            ("alloc_probe", u64::from(alloc_probe::active())),
        ],
    }
}

/// One shard-axis point of the mega bench-gate measurement: a fleet of
/// `shards` admission shards (each at the steady per-shard arrival
/// rate), primed, warmed for 10% of the target, then the steady segment
/// timed under the allocation probe. The full-scale axis point
/// (`MEGA_SHARD_AXIS` last) keys the committed `service/mega/open_loop`
/// row; the others gate on the hard floors alone.
///
/// # Panics
///
/// Panics if the fleet drains before its session target or a fleet
/// invariant breaks.
#[must_use]
fn measure_mega_at(shards: usize, target: u64) -> Row {
    let mut cfg = mega_spec().cfg;
    cfg.shards = shards;
    #[allow(clippy::cast_precision_loss)]
    let fleet_gap = MEGA_PER_SHARD_GAP / shards as f64;
    cfg.base.arrivals = Arrivals::Poisson {
        mean_gap: fleet_gap,
    };
    cfg.base.target_sessions = target;
    let warm = target / 10;
    let world = MegaServiceWorld::new(&cfg);
    let mut harness = MegaServiceHarness::new(&world, &cfg);
    // At 10^4 slots a slot can be first-touched arbitrarily deep into
    // the run, so its one-time registration buffers would land inside
    // the measured window; priming pays them all up front.
    harness.prime();
    assert!(harness.run_until(warm), "mega fleet drained during warm-up");
    let ops_before = harness.ops();
    let before = alloc_probe::counts();
    let start = Instant::now();
    assert!(
        harness.run_until(target),
        "mega fleet drained mid-measurement"
    );
    let secs = start.elapsed().as_secs_f64();
    let window = alloc_probe::counts().since(&before);
    let steady_ops = harness.ops() - ops_before;
    let mega = harness.finish();
    assert_mega_report("service-mega(gate)", &cfg, &mega);
    let measured = target - warm;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let sessions_per_sec = (measured as f64 / secs.max(1e-9)) as u64;
    let workload = if shards == MEGA_SHARD_AXIS[MEGA_SHARD_AXIS.len() - 1] {
        "service/mega/open_loop".into()
    } else {
        format!("service/mega/open_loop/shards={shards}")
    };
    Row {
        workload,
        baseline: "sessions_floor",
        contender: "open_loop",
        baseline_s: secs,
        contender_s: secs,
        extras: vec![
            ("sessions", measured),
            ("sessions_per_sec", sessions_per_sec),
            ("total_ops", steady_ops),
            ("shards", shards as u64),
            ("slots", cfg.total_slots() as u64),
            (
                "session_p999",
                mega.report.cumulative[4].quantile(999, 1000),
            ),
            ("steady_allocs", window.allocs),
            ("steady_frees", window.deallocs),
            ("alloc_probe", u64::from(alloc_probe::active())),
        ],
    }
}

/// The mega bench-gate measurements: one row per committed shard-axis
/// point ([`MEGA_SHARD_AXIS`]), each primed, warmed and alloc-probed —
/// so a zero-alloc or throughput regression at *any* shard count fails
/// the gate, not just the full-scale fleet.
#[must_use]
pub fn measure_mega(quick: bool) -> Vec<Row> {
    let target = if quick {
        20_000
    } else {
        mega_spec().cfg.base.target_sessions
    };
    MEGA_SHARD_AXIS
        .iter()
        .map(|&shards| measure_mega_at(shards, target))
        .collect()
}

/// Every service row the bench gate re-measures: the unsharded steady
/// row plus the whole mega shard axis.
#[must_use]
pub fn measure_rows(quick: bool) -> Vec<Row> {
    let mut rows = vec![measure(quick)];
    rows.extend(measure_mega(quick));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_smoke_scenario_runs_and_emits_jsonl_rows() {
        let overrides = RunOverrides {
            quick: true,
            ..RunOverrides::default()
        };
        let rows = run("service-smoke", &smoke_spec(), &overrides);
        assert!(rows.len() >= 2, "expected windows plus a summary");
        let serde_json::Value::Object(last) = rows.last().unwrap() else {
            panic!("summary row is not an object");
        };
        assert_eq!(
            last.get("kind"),
            Some(&serde_json::Value::String("summary".into()))
        );
        for key in ["seed", "shards", "policy", "completed"] {
            assert!(last.get(key).is_some(), "summary row lacks `{key}`");
        }
        let serde_json::Value::Object(first) = &rows[0] else {
            panic!("window row is not an object");
        };
        assert_eq!(
            first.get("kind"),
            Some(&serde_json::Value::String("window".into()))
        );
        for key in ["seed", "shards", "policy", "session_p999", "shed"] {
            assert!(first.get(key).is_some(), "window row lacks `{key}`");
        }
    }

    #[test]
    fn jsonl_rows_are_bit_identical_per_seed() {
        let overrides = RunOverrides {
            quick: true,
            ..RunOverrides::default()
        };
        let a = run("service-smoke", &smoke_spec(), &overrides);
        let b = run("service-smoke", &smoke_spec(), &overrides);
        let render =
            |rows: &[serde_json::Value]| rows.iter().map(|r| format!("{r}\n")).collect::<String>();
        assert_eq!(render(&a), render(&b), "same seed, different JSONL");
    }

    #[test]
    fn quick_measure_row_reports_throughput_and_probe_state() {
        let row = measure(true);
        assert_eq!(row.baseline, "sessions_floor");
        assert!(row.extra("sessions_per_sec").unwrap_or(0) > 0);
        assert_eq!(row.extra("sessions"), Some(18_000));
        // The test harness has no counting allocator; the row must say
        // so rather than claim flatness it never observed.
        assert_eq!(row.extra("alloc_probe"), Some(0));
        assert!(row.extra("session_p999").unwrap_or(0) > 0);
    }

    #[test]
    fn mega_axis_point_measures_and_keys_the_committed_row() {
        // A tiny off-axis fleet keeps this debug-mode test in seconds;
        // the real axis runs inside the release-mode gate binary.
        let row = measure_mega_at(4, 2_000);
        assert_eq!(row.workload, "service/mega/open_loop/shards=4");
        assert_eq!(row.baseline, "sessions_floor");
        assert_eq!(row.extra("sessions"), Some(1_800));
        assert_eq!(row.extra("shards"), Some(4));
        assert_eq!(row.extra("slots"), Some(32));
        assert!(row.extra("sessions_per_sec").unwrap_or(0) > 0);
        // No counting allocator in the test harness; the row must say
        // so rather than claim flatness it never observed.
        assert_eq!(row.extra("alloc_probe"), Some(0));
        // The axis ends at the committed full-scale fleet, so that
        // point's row keys the committed BENCH_engine.json entry.
        assert_eq!(MEGA_SHARD_AXIS.last(), Some(&mega_spec().cfg.shards));
    }

    #[test]
    fn mega_scenario_emits_sharded_jsonl_rows() {
        let spec = MegaServiceSpec {
            cfg: MegaServiceConfig {
                base: ServiceConfig {
                    seed: 9,
                    slots: 4,
                    target_sessions: 600,
                    window: 1 << 12,
                    arrivals: Arrivals::Poisson { mean_gap: 2.0 },
                    crash_hazard: 0.002,
                    admission: Admission {
                        max_inflight: 4,
                        queue_capacity: 8,
                        backoff_base: 32,
                        backoff_cap: 1 << 10,
                        max_retries: 4,
                        waiting_capacity: 32,
                    },
                    ..ServiceConfig::default()
                },
                shards: 4,
            },
            policy: "test",
            quick_sessions: 400,
            bench_workload: None,
        };
        let overrides = RunOverrides {
            quick: true,
            ..RunOverrides::default()
        };
        let rows = run_mega("service-mega", &spec, &overrides);
        assert!(!rows.is_empty());
        let serde_json::Value::Object(last) = rows.last().unwrap() else {
            panic!("summary row is not an object");
        };
        assert_eq!(
            last.get("kind"),
            Some(&serde_json::Value::String("summary".into()))
        );
        assert_eq!(last.get("shards"), Some(&serde_json::Value::from(4u64)));
        // Up to one completion per shard lands on the final tick, so
        // the fleet may overshoot the target by at most shards − 1.
        let Some(&serde_json::Value::Int(completed)) = last.get("completed") else {
            panic!("summary row lacks an integer `completed`");
        };
        assert!(completed >= 400, "short run: {completed}");
    }

    #[test]
    fn storm_spec_quick_degrades_gracefully() {
        let overrides = RunOverrides {
            quick: true,
            ..RunOverrides::default()
        };
        // assert_report inside run() checks shed > 0, crashes > 0,
        // ticket exclusivity and the windowed p999 bound.
        let rows = run("service-storm", &storm_spec(), &overrides);
        assert!(!rows.is_empty());
    }
}
