//! The scenario registry: every experiment in the repository as a named,
//! data-driven entry behind one multiplexer binary.
//!
//! A scenario is either a **table** (one of the EXPERIMENTS.md
//! reproduction tables, T1–T11/S1/A1-3, living in [`crate::expts`]) or a
//! **grid** — a declarative `algorithm × adversary × size-grid × seeds`
//! specification executed by the shared [`run_grid`] driver over one
//! reusable `StepEngine`, with per-trial engine metrics (op mix,
//! contention, crash causes) folded into the emitted table. Adding an
//! experiment is a ~10-line [`GridSpec`] entry in [`registry`], not a new
//! binary.
//!
//! ```text
//! cargo run --release -p exsel-bench --bin expt -- list
//! cargo run --release -p exsel-bench --bin expt -- run smoke
//! cargo run --release -p exsel-bench --bin expt -- run storm-efficient --json
//! ```

use std::ops::Range;

use exsel_core::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, Majority, MoirAnderson,
    PolyLogRename, RenameConfig, SnapshotRename, StepRename,
};
use exsel_shm::RegAlloc;
use exsel_sim::policy::{Bursty, CrashAfter, CrashStorm, Pigeonhole, RandomPolicy, RoundRobin};
use exsel_sim::{Policy, StepEngine};

use crate::runner::{spread_originals, sweep, TrialStats};
use crate::{expts, Table};

/// A named experiment in the registry.
pub struct Scenario {
    /// Registry name (`expt -- run <name>`).
    pub name: &'static str,
    /// One-line summary shown by `expt -- list`.
    pub summary: &'static str,
    /// How the scenario executes.
    pub kind: Kind,
}

/// How a scenario executes.
pub enum Kind {
    /// A reproduction-table experiment (legacy `expt_*` body).
    Table(fn()),
    /// A declarative grid run by [`run_grid`].
    Grid(GridSpec),
}

/// A data-driven scenario: which algorithm, under which adversary, over
/// which `(N, k)` grid, for how many seeds.
pub struct GridSpec {
    /// The renaming algorithm under test.
    pub algo: AlgoSpec,
    /// The adversary scheduling (and possibly crashing) the contenders.
    pub adversary: AdversarySpec,
    /// `(n_names, k)` cells to sweep.
    pub grid: &'static [(usize, usize)],
    /// Seeds per cell (each seed is one trial with a fresh algorithm).
    pub seeds: Range<u64>,
}

/// The renaming algorithms a grid can instantiate. Each is built fresh
/// per trial from `(n_names, k)` and the shared [`RenameConfig`].
#[derive(Clone, Copy, Debug)]
pub enum AlgoSpec {
    /// Moir–Anderson splitter grid (baseline, `M = k(k+1)/2`).
    MoirAnderson,
    /// `Efficient-Rename(k)` — Theorem 2.
    Efficient,
    /// Classic snapshot renaming (baseline, `M = 2k−1`).
    Snapshot,
    /// `Basic-Rename(k, N)` — Lemma 5.
    Basic,
    /// `PolyLog-Rename(k, N)` — Theorem 1.
    PolyLog,
    /// `Almost-Adaptive(N)` over a system of `4k` processes — Theorem 3.
    AlmostAdaptive,
    /// `Adaptive-Rename` over a system of `4k` processes — Theorem 4.
    Adaptive,
    /// `Majority(ℓ, N)` — Lemma 4 (may legitimately rename only half).
    Majority,
}

impl AlgoSpec {
    /// Builds a fresh instance for one trial.
    #[must_use]
    pub fn build(
        self,
        alloc: &mut RegAlloc,
        n_names: usize,
        k: usize,
        cfg: &RenameConfig,
    ) -> Box<dyn StepRename> {
        match self {
            AlgoSpec::MoirAnderson => Box::new(MoirAnderson::new(alloc, k)),
            AlgoSpec::Efficient => Box::new(EfficientRename::new(alloc, k, cfg)),
            AlgoSpec::Snapshot => Box::new(SnapshotRename::new(alloc, k)),
            AlgoSpec::Basic => Box::new(BasicRename::new(alloc, n_names, k, cfg)),
            AlgoSpec::PolyLog => Box::new(PolyLogRename::new(alloc, n_names, k, cfg)),
            AlgoSpec::AlmostAdaptive => Box::new(AlmostAdaptive::new(alloc, n_names, 4 * k, cfg)),
            AlgoSpec::Adaptive => Box::new(AdaptiveRename::new(alloc, 4 * k, cfg)),
            AlgoSpec::Majority => Box::new(Majority::new(alloc, n_names, k, cfg)),
        }
    }

    /// Whether the algorithm guarantees that every *surviving* contender
    /// is named (Majority only promises half).
    #[must_use]
    pub fn names_all_survivors(self) -> bool {
        !matches!(self, AlgoSpec::Majority)
    }
}

/// The adversary family a grid can schedule under. Every variant is
/// seedable and trace-deterministic; `k` scales crash budgets.
#[derive(Clone, Copy, Debug)]
pub enum AdversarySpec {
    /// Fair cyclic schedule.
    RoundRobin,
    /// Seeded uniformly random schedule.
    Random,
    /// Random schedule + random crashes, at most `k − 1` of them.
    CrashStorm {
        /// Per-decision crash probability.
        probability: f64,
    },
    /// Crashes every process reaching local step `after` (≤ `k − 1`).
    CrashAfter {
        /// The fatal local step index.
        after: u64,
    },
    /// The pigeonhole schedule, crashing up to `k − 1` leaders that
    /// pull more than `lead` steps ahead.
    Pigeonhole {
        /// Tolerated lead before the front-runner is crashed.
        lead: u64,
    },
    /// Bursts of `burst` consecutive steps per randomly chosen process.
    Bursty {
        /// Steps granted per burst.
        burst: u64,
    },
}

impl AdversarySpec {
    /// Builds the policy for one trial.
    #[must_use]
    pub fn build(self, seed: u64, k: usize) -> Box<dyn Policy> {
        let budget = k.saturating_sub(1);
        match self {
            AdversarySpec::RoundRobin => Box::new(RoundRobin::new()),
            AdversarySpec::Random => Box::new(RandomPolicy::new(seed)),
            AdversarySpec::CrashStorm { probability } => Box::new(CrashStorm::new(
                Box::new(RandomPolicy::new(seed)),
                !seed,
                probability,
                budget,
            )),
            AdversarySpec::CrashAfter { after } => Box::new(CrashAfter::new(
                Box::new(RandomPolicy::new(seed)),
                after,
                budget,
            )),
            AdversarySpec::Pigeonhole { lead } => {
                Box::new(Pigeonhole::new(seed).crash_leaders(lead, budget))
            }
            AdversarySpec::Bursty { burst } => Box::new(Bursty::new(seed, burst)),
        }
    }

    /// A short label for table rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            AdversarySpec::RoundRobin => "round-robin".into(),
            AdversarySpec::Random => "random".into(),
            AdversarySpec::CrashStorm { probability } => format!("storm(p={probability})"),
            AdversarySpec::CrashAfter { after } => format!("crash-after({after})"),
            AdversarySpec::Pigeonhole { lead } => format!("pigeonhole(lead={lead})"),
            AdversarySpec::Bursty { burst } => format!("bursty({burst})"),
        }
    }
}

/// Runs one grid scenario: for every `(N, k)` cell, sweeps the seeds
/// through the shared [`sweep`] trial loop on one reusable, contention-
/// measuring `StepEngine`, and emits a table with the folded worst cases
/// and engine metrics. Safety (name exclusiveness among survivors) is
/// asserted inside `sweep` on every trial.
///
/// # Panics
///
/// Panics if exclusiveness is violated, or — for algorithms that
/// guarantee it — if a surviving contender ends up unnamed.
pub fn run_grid(name: &str, spec: &GridSpec) {
    let cfg = RenameConfig::default();
    let mut table = Table::new(
        format!(
            "scenario {name} — {:?} under {}",
            spec.algo,
            spec.adversary.label()
        ),
        &[
            "N",
            "k",
            "trials",
            "named_min",
            "crashed",
            "budget_crashed",
            "max_name",
            "max_steps",
            "total_ops",
            "max_contention",
            "hot_reg_ops",
            "registers",
        ],
    );
    // Budget exhaustion is reported (budget_crashed column), not a
    // panic: a livelocking grid cell records its trials instead of
    // killing the whole scenario run.
    let mut engine = StepEngine::reusable(0)
        .measure_contention(true)
        .panic_on_budget(false);
    for &(n_names, k) in spec.grid {
        let originals = spread_originals(k, n_names);
        let stats: TrialStats = sweep(
            &mut engine,
            spec.seeds.clone(),
            &originals,
            |alloc| spec.algo.build(alloc, n_names, k, &cfg),
            |seed| spec.adversary.build(seed, k),
        );
        if spec.algo.names_all_survivors() {
            assert_eq!(
                stats.max_unnamed_survivors, 0,
                "scenario {name}: survivors left unnamed at N={n_names}, k={k}"
            );
        }
        table.row(&[
            n_names.to_string(),
            k.to_string(),
            stats.trials().to_string(),
            stats.min_named.to_string(),
            stats.crashed().to_string(),
            stats.budget_crashed().to_string(),
            stats.max_name.to_string(),
            stats.max_steps().to_string(),
            stats.metrics.total_ops.to_string(),
            stats.metrics.max_contention.to_string(),
            stats
                .metrics
                .hottest_register()
                .map_or(0, |(_, ops)| ops)
                .to_string(),
            stats.registers.to_string(),
        ]);
    }
    table.emit();
}

/// A table scenario entry.
fn table(name: &'static str, summary: &'static str, run: fn()) -> Scenario {
    Scenario {
        name,
        summary,
        kind: Kind::Table(run),
    }
}

/// A grid scenario entry.
fn grid(name: &'static str, summary: &'static str, spec: GridSpec) -> Scenario {
    Scenario {
        name,
        summary,
        kind: Kind::Grid(spec),
    }
}

/// Every named scenario, tables first, grids after.
#[must_use]
pub fn registry() -> Vec<Scenario> {
    vec![
        table(
            "majority",
            "T1 Lemma 4: Majority renames ≥ half in O(log N) steps",
            expts::majority::run,
        ),
        table(
            "basic",
            "T2 Lemma 5: Basic-Rename in O(log k · log N) steps",
            expts::basic::run,
        ),
        table(
            "polylog",
            "T3 Theorem 1: PolyLog-Rename with M = O(k)",
            expts::polylog::run,
        ),
        table(
            "compare",
            "T4 Theorem 2 vs prior k-renaming work",
            expts::compare::run,
        ),
        table(
            "almost-adaptive",
            "T5 Theorem 3: names O(k) at unknown contention",
            expts::almost_adaptive::run,
        ),
        table(
            "adaptive",
            "T6 Theorem 4: fully adaptive, M ≤ 8k − lg k − 1",
            expts::adaptive::run,
        ),
        table(
            "lowerbound",
            "T7 Theorems 6-7: pigeonhole adversary vs real algorithms",
            expts::lowerbound::run,
        ),
        table(
            "storecollect",
            "T8 Theorem 5: Store&Collect step costs per setting",
            expts::storecollect::run,
        ),
        table(
            "repository",
            "T9 Theorems 8-9: repository waste under crash storms",
            expts::repository::run,
        ),
        table(
            "scaling",
            "S1 large-k scaling on real threads",
            expts::scaling::run,
        ),
        table(
            "ablation",
            "A1-A3 design-choice ablations (pipeline, expander profile, width)",
            expts::ablation::run,
        ),
        table(
            "engine",
            "T11 backend + engine-reuse wall-clock (writes BENCH_engine.json)",
            expts::engine::run,
        ),
        grid(
            "smoke",
            "tiny fair-schedule grid for CI (seconds, asserts safety)",
            GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::Random,
                grid: &[(16, 4), (32, 8)],
                seeds: 0..3,
            },
        ),
        grid(
            "storm-efficient",
            "Efficient-Rename under k−1 random crashes: survivors still exclusive",
            GridSpec {
                algo: AlgoSpec::Efficient,
                adversary: AdversarySpec::CrashStorm { probability: 0.05 },
                grid: &[(32, 8), (64, 16), (128, 32)],
                seeds: 0..10,
            },
        ),
        grid(
            "crash-after-moir",
            "Moir-Anderson with every process culled at step 6",
            GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::CrashAfter { after: 6 },
                grid: &[(32, 8), (64, 16), (128, 32)],
                seeds: 0..10,
            },
        ),
        grid(
            "pigeonhole-adaptive",
            "Adaptive-Rename vs the Theorem 6 pigeonhole schedule (leader-crashing)",
            GridSpec {
                algo: AlgoSpec::Adaptive,
                adversary: AdversarySpec::Pigeonhole { lead: 8 },
                grid: &[(64, 4), (64, 8), (256, 16)],
                seeds: 0..10,
            },
        ),
        grid(
            "bursty-basic",
            "Basic-Rename under burst schedules (worst splitter contention)",
            GridSpec {
                algo: AlgoSpec::Basic,
                adversary: AdversarySpec::Bursty { burst: 3 },
                grid: &[(256, 8), (1024, 16)],
                seeds: 0..10,
            },
        ),
        grid(
            "bursty-snapshot",
            "snapshot renaming under burst schedules (scan-heavy baseline)",
            GridSpec {
                algo: AlgoSpec::Snapshot,
                adversary: AdversarySpec::Bursty { burst: 24 },
                grid: &[(32, 8), (64, 16)],
                seeds: 0..10,
            },
        ),
    ]
}

/// Looks a scenario up by name.
#[must_use]
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// Executes one scenario.
pub fn run_scenario(scenario: &Scenario) {
    match &scenario.kind {
        Kind::Table(run) => run(),
        Kind::Grid(spec) => run_grid(scenario.name, spec),
    }
}

/// The `expt` multiplexer CLI: `list` prints the registry, `run <name>`
/// executes one scenario (append `--json` for JSON-lines tables).
/// Returns an error message for unknown commands or scenarios.
///
/// Note that JSON output is switched by `Table::emit`, which reads the
/// **process argv** — a `--json` in `args` only has effect when the
/// process was launched with it (as the `expt` binary always is); the
/// filter below merely tolerates its presence while parsing.
///
/// # Errors
///
/// Returns a human-readable message when the command or scenario name
/// does not resolve; the caller decides the exit code.
pub fn cli(args: &[String]) -> Result<(), String> {
    let args: Vec<&String> = args.iter().filter(|a| *a != "--json").collect();
    match args.first().map(|s| s.as_str()) {
        None | Some("list") => {
            let mut t = Table::new("scenario registry", &["name", "kind", "summary"]);
            for s in registry() {
                t.row(&[
                    s.name.to_string(),
                    match s.kind {
                        Kind::Table(_) => "table".into(),
                        Kind::Grid(_) => "grid".into(),
                    },
                    s.summary.to_string(),
                ]);
            }
            t.emit();
            println!("\nrun one with: expt -- run <name> [--json]");
            Ok(())
        }
        Some("run") => {
            let name = args
                .get(1)
                .ok_or_else(|| "usage: expt -- run <name> [--json]".to_string())?;
            let scenario = find(name).ok_or_else(|| {
                format!(
                    "unknown scenario `{name}` — try `expt -- list`; known: {}",
                    registry()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            run_scenario(&scenario);
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown command `{other}` — usage: expt -- (list | run <name>) [--json]"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_all_tables() {
        let reg = registry();
        let names: std::collections::BTreeSet<&str> = reg.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
        // Every historical expt_* binary is reachable through the
        // registry under its table name.
        for legacy in [
            "majority",
            "basic",
            "polylog",
            "compare",
            "almost-adaptive",
            "adaptive",
            "lowerbound",
            "storecollect",
            "repository",
            "scaling",
            "ablation",
            "engine",
        ] {
            assert!(names.contains(legacy), "missing table scenario {legacy}");
        }
    }

    #[test]
    fn smoke_grid_runs_clean() {
        let scenario = find("smoke").expect("smoke scenario registered");
        run_scenario(&scenario);
    }

    #[test]
    fn grid_with_crashes_keeps_survivors_exclusive() {
        // A small storm grid: sweep asserts exclusiveness per trial.
        run_grid(
            "test-storm",
            &GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::CrashStorm { probability: 0.2 },
                grid: &[(16, 4)],
                seeds: 0..5,
            },
        );
    }

    #[test]
    fn every_adversary_spec_builds_and_schedules() {
        for adv in [
            AdversarySpec::RoundRobin,
            AdversarySpec::Random,
            AdversarySpec::CrashStorm { probability: 0.1 },
            AdversarySpec::CrashAfter { after: 3 },
            AdversarySpec::Pigeonhole { lead: 4 },
            AdversarySpec::Bursty { burst: 5 },
        ] {
            run_grid(
                "test-adversaries",
                &GridSpec {
                    algo: AlgoSpec::Efficient,
                    adversary: adv,
                    grid: &[(16, 4)],
                    seeds: 0..2,
                },
            );
        }
    }

    #[test]
    fn cli_rejects_unknown_scenarios() {
        assert!(cli(&["run".into(), "no-such".into()]).is_err());
        assert!(cli(&["frobnicate".into()]).is_err());
    }
}
