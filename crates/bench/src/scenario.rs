//! The scenario registry: every experiment in the repository as a named,
//! data-driven entry behind one multiplexer binary.
//!
//! A scenario is either a **table** (one of the EXPERIMENTS.md
//! reproduction tables, T1–T11/S1/A1-3, living in [`crate::expts`]) or a
//! **grid** — a declarative `algorithm × adversary × size-grid × seeds`
//! specification executed by the shared [`run_grid`] driver over one
//! reusable `StepEngine`, with per-trial engine metrics (op mix,
//! contention, crash causes) folded into the emitted table. Adding an
//! experiment is a ~10-line [`GridSpec`] entry in [`registry`], not a new
//! binary.
//!
//! ```text
//! cargo run --release -p exsel-bench --bin expt -- list
//! cargo run --release -p exsel-bench --bin expt -- run smoke
//! cargo run --release -p exsel-bench --bin expt -- run storm-efficient --json
//! ```

use std::ops::Range;

use exsel_core::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, Majority, MoirAnderson,
    PolyLogRename, RenameConfig, SnapshotRename,
};
use exsel_shm::{RegAlloc, SlabBank};
use exsel_sim::policy::{Bursty, CrashAfter, CrashStorm, Pigeonhole, RandomPolicy, RoundRobin};
use exsel_sim::{AlgoSet, Policy, StepEngine};
use exsel_storecollect::StoreCollect;
use exsel_unbounded::{AltruisticDeposit, UnboundedNaming};

use crate::runner::{spread_originals, sweep_pool_sharded, TrialStats};
use crate::{expts, Table};

/// A named experiment in the registry.
pub struct Scenario {
    /// Registry name (`expt -- run <name>`).
    pub name: &'static str,
    /// One-line summary shown by `expt -- list`.
    pub summary: &'static str,
    /// How the scenario executes.
    pub kind: Kind,
}

/// How a scenario executes.
pub enum Kind {
    /// A reproduction-table experiment (legacy `expt_*` body).
    Table(fn()),
    /// A table experiment that honors per-run CLI overrides (today:
    /// `--reduce on|off|both` and `--quick` for `explore-reduced`).
    TableWith(fn(&RunOverrides)),
    /// A declarative grid run by [`run_grid`].
    Grid(GridSpec),
    /// An open-loop service run ([`crate::expts::service`]): sessions
    /// with fault injection, admission control and retry/backoff.
    /// Honors `--seeds`/`--quick`; `--json-out` writes the windowed
    /// telemetry as JSON Lines instead of a JSON array.
    Service(expts::service::ServiceSpec),
    /// A sharded mega-fleet service run
    /// ([`crate::expts::service::run_mega`]): per-shard admission
    /// controllers over per-shard slab banks on one global clock. On
    /// top of the service flags it honors `--shards`, which resizes the
    /// fleet while holding each shard's arrival rate fixed.
    Mega(expts::service::MegaServiceSpec),
}

/// A data-driven scenario: which algorithm family, under which
/// adversary, over which `(N, k)` grid, for how many seeds. The grid and
/// seeds are owned so the `expt` CLI can override them per run
/// (`--sizes`, `--seeds`).
pub struct GridSpec {
    /// The algorithm family under test (any [`AlgoSet`] family, not just
    /// renamers).
    pub algo: AlgoSpec,
    /// The adversary scheduling (and possibly crashing) the contenders.
    pub adversary: AdversarySpec,
    /// `(n_names, k)` cells to sweep.
    pub grid: Vec<(usize, usize)>,
    /// Seeds per cell (each seed is one pooled trial).
    pub seeds: Range<u64>,
    /// Shards for the engine's grant loop: `1` (the registry default)
    /// runs the classic unsharded loop; `> 1` splits the pending set
    /// into that many contiguous pid ranges and batches policy
    /// decisions per shard (`StepEngine::run_pool_sharded`). The `expt`
    /// CLI overrides this per run with `--shards`.
    pub shards: usize,
}

/// The algorithm families a grid can instantiate. Each is built **once
/// per cell** from `(n_names, k)` and the shared [`RenameConfig`]; the
/// per-seed trials re-drive one pooled machine set over it
/// ([`crate::runner::sweep_pool`]).
#[derive(Clone, Copy, Debug)]
pub enum AlgoSpec {
    /// Moir–Anderson splitter grid (baseline, `M = k(k+1)/2`).
    MoirAnderson,
    /// `Efficient-Rename(k)` — Theorem 2.
    Efficient,
    /// Classic snapshot renaming (baseline, `M = 2k−1`).
    Snapshot,
    /// `Basic-Rename(k, N)` — Lemma 5.
    Basic,
    /// `PolyLog-Rename(k, N)` — Theorem 1.
    PolyLog,
    /// `Almost-Adaptive(N)` over a system of `4k` processes — Theorem 3.
    AlmostAdaptive,
    /// `Adaptive-Rename` over a system of `4k` processes — Theorem 4.
    Adaptive,
    /// `Majority(ℓ, N)` — Lemma 4 (may legitimately rename only half).
    Majority,
    /// Store&collect, setting (i): `k` and `N` known — Theorem 5. The
    /// trial is each process's first store; the claim is its adopted
    /// value register.
    StoreKnown,
    /// Store&collect, setting (iv): fully adaptive — Theorem 5.
    StoreAdaptive,
    /// The unbounded-naming repository — Theorem 10: `k` processes each
    /// claim this many integers per trial.
    Naming {
        /// Integers each process claims per trial.
        rounds: usize,
    },
    /// The wait-free altruistic deposit repository — Theorem 9: `k`
    /// processes share an `n_names`-register dedicated arena (the grid's
    /// `N` axis sizes the arena); the last `servers` of them only
    /// service their `Help` row (the paper's fairness assumption) while
    /// the rest each perform `rounds` deposits per trial.
    Deposit {
        /// Deposits each depositor performs per trial.
        rounds: usize,
        /// Trailing pids that serve instead of depositing (< `k`).
        servers: usize,
    },
}

impl AlgoSpec {
    /// Builds the cell's algorithm instance as a pooled-machine entry
    /// point.
    #[must_use]
    pub fn build_set(
        self,
        alloc: &mut RegAlloc,
        n_names: usize,
        k: usize,
        cfg: &RenameConfig,
    ) -> AlgoSet {
        match self {
            AlgoSpec::MoirAnderson => AlgoSet::MoirAnderson(MoirAnderson::new(alloc, k)),
            AlgoSpec::Efficient => AlgoSet::Rename(Box::new(EfficientRename::new(alloc, k, cfg))),
            AlgoSpec::Snapshot => AlgoSet::SnapshotRename(SnapshotRename::new(alloc, k)),
            AlgoSpec::Basic => AlgoSet::Rename(Box::new(BasicRename::new(alloc, n_names, k, cfg))),
            AlgoSpec::PolyLog => {
                AlgoSet::Rename(Box::new(PolyLogRename::new(alloc, n_names, k, cfg)))
            }
            AlgoSpec::AlmostAdaptive => {
                AlgoSet::Rename(Box::new(AlmostAdaptive::new(alloc, n_names, 4 * k, cfg)))
            }
            AlgoSpec::Adaptive => AlgoSet::Rename(Box::new(AdaptiveRename::new(alloc, 4 * k, cfg))),
            AlgoSpec::Majority => AlgoSet::Majority(Majority::new(alloc, n_names, k, cfg)),
            AlgoSpec::StoreKnown => {
                AlgoSet::StoreCollect(StoreCollect::known(alloc, k, n_names, cfg))
            }
            AlgoSpec::StoreAdaptive => AlgoSet::StoreCollect(StoreCollect::adaptive(alloc, k, cfg)),
            AlgoSpec::Naming { rounds } => AlgoSet::Naming {
                naming: UnboundedNaming::new(alloc, k),
                rounds,
            },
            AlgoSpec::Deposit { rounds, servers } => {
                assert!(servers < k, "need at least one depositor");
                AlgoSet::Deposit {
                    repo: AltruisticDeposit::new(alloc, k, n_names.max(2 * k)),
                    rounds,
                    servers,
                }
            }
        }
    }

    /// Whether the family guarantees that every *surviving* contender
    /// acquires its claim (Majority only promises half; serve-only
    /// deposit helpers claim nothing by design).
    #[must_use]
    pub fn names_all_survivors(self) -> bool {
        !matches!(
            self,
            AlgoSpec::Majority | AlgoSpec::Deposit { servers: 1.., .. }
        )
    }
}

/// The adversary family a grid can schedule under. Every variant is
/// seedable and trace-deterministic; `k` scales crash budgets.
#[derive(Clone, Copy, Debug)]
pub enum AdversarySpec {
    /// Fair cyclic schedule.
    RoundRobin,
    /// Seeded uniformly random schedule.
    Random,
    /// Random schedule + random crashes, at most `k − 1` of them.
    CrashStorm {
        /// Per-decision crash probability.
        probability: f64,
    },
    /// Crashes every process reaching local step `after` (≤ `k − 1`).
    CrashAfter {
        /// The fatal local step index.
        after: u64,
    },
    /// The pigeonhole schedule, crashing up to `k − 1` leaders that
    /// pull more than `lead` steps ahead.
    Pigeonhole {
        /// Tolerated lead before the front-runner is crashed.
        lead: u64,
    },
    /// Bursts of `burst` consecutive steps per randomly chosen process.
    Bursty {
        /// Steps granted per burst.
        burst: u64,
    },
}

impl AdversarySpec {
    /// Builds the policy for one trial.
    #[must_use]
    pub fn build(self, seed: u64, k: usize) -> Box<dyn Policy> {
        let budget = k.saturating_sub(1);
        match self {
            AdversarySpec::RoundRobin => Box::new(RoundRobin::new()),
            AdversarySpec::Random => Box::new(RandomPolicy::new(seed)),
            AdversarySpec::CrashStorm { probability } => Box::new(CrashStorm::new(
                Box::new(RandomPolicy::new(seed)),
                !seed,
                probability,
                budget,
            )),
            AdversarySpec::CrashAfter { after } => Box::new(CrashAfter::new(
                Box::new(RandomPolicy::new(seed)),
                after,
                budget,
            )),
            AdversarySpec::Pigeonhole { lead } => {
                Box::new(Pigeonhole::new(seed).crash_leaders(lead, budget))
            }
            AdversarySpec::Bursty { burst } => Box::new(Bursty::new(seed, burst)),
        }
    }

    /// A short label for table rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            AdversarySpec::RoundRobin => "round-robin".into(),
            AdversarySpec::Random => "random".into(),
            AdversarySpec::CrashStorm { probability } => format!("storm(p={probability})"),
            AdversarySpec::CrashAfter { after } => format!("crash-after({after})"),
            AdversarySpec::Pigeonhole { lead } => format!("pigeonhole(lead={lead})"),
            AdversarySpec::Bursty { burst } => format!("bursty({burst})"),
        }
    }
}

/// Runs one grid scenario: for every `(N, k)` cell, builds the
/// algorithm instance and its machine pool **once**, then sweeps the
/// seeds through the allocation-free pooled trial loop
/// ([`crate::runner::sweep_pool_sharded`]) on one reusable,
/// contention-measuring slab-backed `StepEngine`, and emits a table with
/// the folded worst cases and engine metrics. Safety (claim
/// exclusiveness among survivors) is asserted inside the sweep on every
/// trial. Returns the rows as JSON objects for `--json-out` artifact
/// persistence; on top of the table columns the JSON rows carry the
/// shard axis (`shards`, `shard_ops`, `shard_contention`) and the slab
/// bank's occupancy telemetry (`slab_live`, `slab_peak`).
///
/// The grids run on the [`exsel_shm::SlabBank`] backend — trials are
/// bit-identical to the `Arc` bank (`tests/pooled_determinism.rs`
/// proves it for every family × policy), so the emitted statistics are
/// unchanged and the scenario doubles as a large-surface exercise of
/// the slab path.
///
/// # Panics
///
/// Panics if exclusiveness is violated, or — for families that
/// guarantee it — if a surviving contender ends up without a claim.
pub fn run_grid(name: &str, spec: &GridSpec) -> Vec<serde_json::Value> {
    let cfg = RenameConfig::default();
    let mut table = Table::new(
        format!(
            "scenario {name} — {:?} under {}",
            spec.algo,
            spec.adversary.label()
        ),
        &[
            "N",
            "k",
            "trials",
            "named_min",
            "crashed",
            "budget_crashed",
            "max_name",
            "max_steps",
            "total_ops",
            "max_contention",
            "hot_reg_ops",
            "registers",
            "snap_allocs",
            "snap_recycled",
        ],
    );
    // Budget exhaustion is reported (budget_crashed column), not a
    // panic: a livelocking grid cell records its trials instead of
    // killing the whole scenario run.
    let mut engine = StepEngine::reusable_with(0, SlabBank::new())
        .measure_contention(true)
        .panic_on_budget(false);
    let mut artifact = Vec::new();
    for &(n_names, k) in &spec.grid {
        let originals = spread_originals(k, n_names);
        let stats: TrialStats = sweep_pool_sharded(
            &mut engine,
            spec.seeds.clone(),
            &originals,
            |alloc| spec.algo.build_set(alloc, n_names, k, &cfg),
            |seed| spec.adversary.build(seed, k),
            spec.shards,
        );
        if spec.algo.names_all_survivors() {
            assert_eq!(
                stats.max_unnamed_survivors, 0,
                "scenario {name}: survivors left unnamed at N={n_names}, k={k}"
            );
        }
        let mut row = serde_json::Map::new();
        row.insert("scenario".into(), serde_json::Value::String(name.into()));
        row.insert(
            "algo".into(),
            serde_json::Value::String(format!("{:?}", spec.algo)),
        );
        row.insert(
            "adversary".into(),
            serde_json::Value::String(spec.adversary.label()),
        );
        // `policy` mirrors `adversary` under the key the service rows
        // use, so every --json-out row (grid or service) carries the
        // same seed/shards/policy triple.
        row.insert(
            "policy".into(),
            serde_json::Value::String(spec.adversary.label()),
        );
        for (key, value) in [
            ("seed", spec.seeds.start),
            ("N", n_names as u64),
            ("k", k as u64),
            ("trials", stats.trials()),
            ("named_min", stats.min_named as u64),
            ("crashed", stats.crashed() as u64),
            ("budget_crashed", stats.budget_crashed() as u64),
            ("max_name", stats.max_name),
            ("max_steps", stats.max_steps()),
            ("total_ops", stats.metrics.total_ops),
            ("max_contention", stats.metrics.max_contention as u64),
            (
                "hot_reg_ops",
                stats.metrics.hottest_register().map_or(0, |(_, ops)| ops),
            ),
            ("registers", stats.registers as u64),
            ("snap_allocs", stats.metrics.snapshot.fresh_allocations()),
            ("snap_recycled", stats.metrics.snapshot.recycled()),
            // The shard axis: grant counts per shard sum to total_ops
            // (all zero width when unsharded), contention is the worst
            // same-register pending count seen within any one shard.
            ("shards", spec.shards as u64),
            ("shard_ops", stats.metrics.shard_ops.iter().sum::<u64>()),
            (
                "shard_contention",
                stats
                    .metrics
                    .shard_contention
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0) as u64,
            ),
            // Slab occupancy: Snap-payload slots still live after the
            // cell's last trial, and the engine-lifetime peak (the slab
            // is reused across cells, so the peak is cumulative).
            ("slab_live", engine.bank().live_slots() as u64),
            ("slab_peak", engine.bank().peak_slots() as u64),
        ] {
            row.insert(key.into(), serde_json::Value::from(value));
        }
        artifact.push(serde_json::Value::Object(row));
        table.row(&[
            n_names.to_string(),
            k.to_string(),
            stats.trials().to_string(),
            stats.min_named.to_string(),
            stats.crashed().to_string(),
            stats.budget_crashed().to_string(),
            stats.max_name.to_string(),
            stats.max_steps().to_string(),
            stats.metrics.total_ops.to_string(),
            stats.metrics.max_contention.to_string(),
            stats
                .metrics
                .hottest_register()
                .map_or(0, |(_, ops)| ops)
                .to_string(),
            stats.registers.to_string(),
            stats.metrics.snapshot.fresh_allocations().to_string(),
            stats.metrics.snapshot.recycled().to_string(),
        ]);
    }
    table.emit();
    artifact
}

/// A table scenario entry.
fn table(name: &'static str, summary: &'static str, run: fn()) -> Scenario {
    Scenario {
        name,
        summary,
        kind: Kind::Table(run),
    }
}

/// A grid scenario entry.
fn grid(name: &'static str, summary: &'static str, spec: GridSpec) -> Scenario {
    Scenario {
        name,
        summary,
        kind: Kind::Grid(spec),
    }
}

/// Every named scenario, tables first, grids after.
#[must_use]
pub fn registry() -> Vec<Scenario> {
    vec![
        table(
            "majority",
            "T1 Lemma 4: Majority renames ≥ half in O(log N) steps",
            expts::majority::run,
        ),
        table(
            "basic",
            "T2 Lemma 5: Basic-Rename in O(log k · log N) steps",
            expts::basic::run,
        ),
        table(
            "polylog",
            "T3 Theorem 1: PolyLog-Rename with M = O(k)",
            expts::polylog::run,
        ),
        table(
            "compare",
            "T4 Theorem 2 vs prior k-renaming work",
            expts::compare::run,
        ),
        table(
            "almost-adaptive",
            "T5 Theorem 3: names O(k) at unknown contention",
            expts::almost_adaptive::run,
        ),
        table(
            "adaptive",
            "T6 Theorem 4: fully adaptive, M ≤ 8k − lg k − 1",
            expts::adaptive::run,
        ),
        table(
            "lowerbound",
            "T7 Theorems 6-7: pigeonhole adversary vs real algorithms",
            expts::lowerbound::run,
        ),
        table(
            "storecollect",
            "T8 Theorem 5: Store&Collect step costs per setting",
            expts::storecollect::run,
        ),
        table(
            "repository",
            "T9 Theorems 8-9: repository waste under crash storms",
            expts::repository::run,
        ),
        table(
            "scaling",
            "S1 large-k scaling on real threads",
            expts::scaling::run,
        ),
        table(
            "ablation",
            "A1-A3 design-choice ablations (pipeline, expander profile, width)",
            expts::ablation::run,
        ),
        table(
            "engine",
            "T11 backend + engine-reuse wall-clock (writes BENCH_engine.json)",
            expts::engine::run,
        ),
        table(
            "mega",
            "n=10^6 majority sweep: slab bank + SoA pool, sharded (updates BENCH_engine.json)",
            expts::mega::run,
        ),
        Scenario {
            name: "explore-reduced",
            summary:
                "reduced exhaustive exploration: sleep-set DPOR + symmetry (updates BENCH_engine.json)",
            kind: Kind::TableWith(|ov| {
                expts::reduced::run(ov.reduce.unwrap_or_default(), ov.quick);
            }),
        },
        grid(
            "smoke",
            "tiny fair-schedule grid for CI (seconds, asserts safety)",
            GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::Random,
                grid: vec![(16, 4), (32, 8)],
                seeds: 0..3,
                shards: 1,
            },
        ),
        grid(
            "storm-efficient",
            "Efficient-Rename under k−1 random crashes: survivors still exclusive",
            GridSpec {
                algo: AlgoSpec::Efficient,
                adversary: AdversarySpec::CrashStorm { probability: 0.05 },
                grid: vec![(32, 8), (64, 16), (128, 32)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "crash-after-moir",
            "Moir-Anderson with every process culled at step 6",
            GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::CrashAfter { after: 6 },
                grid: vec![(32, 8), (64, 16), (128, 32)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "pigeonhole-adaptive",
            "Adaptive-Rename vs the Theorem 6 pigeonhole schedule (leader-crashing)",
            GridSpec {
                algo: AlgoSpec::Adaptive,
                adversary: AdversarySpec::Pigeonhole { lead: 8 },
                grid: vec![(64, 4), (64, 8), (256, 16)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "bursty-basic",
            "Basic-Rename under burst schedules (worst splitter contention)",
            GridSpec {
                algo: AlgoSpec::Basic,
                adversary: AdversarySpec::Bursty { burst: 3 },
                grid: vec![(256, 8), (1024, 16)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "bursty-snapshot",
            "snapshot renaming under burst schedules (scan-heavy baseline)",
            GridSpec {
                algo: AlgoSpec::Snapshot,
                adversary: AdversarySpec::Bursty { burst: 24 },
                grid: vec![(32, 8), (64, 16)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "storm-storecollect",
            "adaptive Store&Collect first stores under k−1 random crashes: value registers stay exclusive",
            GridSpec {
                algo: AlgoSpec::StoreAdaptive,
                adversary: AdversarySpec::CrashStorm { probability: 0.05 },
                grid: vec![(64, 4), (128, 8), (256, 16)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "storecollect-known",
            "Store&Collect setting (i) first stores over the (N, k) grid",
            GridSpec {
                algo: AlgoSpec::StoreKnown,
                adversary: AdversarySpec::Random,
                grid: vec![(64, 4), (256, 8)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "naming-repository",
            "Unbounded-Naming: k processes each claim 3 integers, claims stay exclusive",
            GridSpec {
                algo: AlgoSpec::Naming { rounds: 3 },
                adversary: AdversarySpec::Random,
                grid: vec![(16, 2), (16, 4), (16, 8)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "bursty-naming",
            "Unbounded-Naming under burst schedules + crashless contention",
            GridSpec {
                algo: AlgoSpec::Naming { rounds: 2 },
                adversary: AdversarySpec::Bursty { burst: 8 },
                grid: vec![(16, 2), (16, 4)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "snapshot-compact",
            "large-n snapshot renaming over the view-recycling record arena (memory-compaction axis)",
            GridSpec {
                algo: AlgoSpec::Snapshot,
                adversary: AdversarySpec::Random,
                grid: vec![(63, 32), (127, 64), (255, 128)],
                seeds: 0..3,
                shards: 1,
            },
        ),
        Scenario {
            name: "service-smoke",
            summary: "seconds-scale open-loop service run for CI (diurnal arrivals, mild hazard)",
            kind: Kind::Service(expts::service::smoke_spec()),
        },
        Scenario {
            name: "service-steady",
            summary:
                "10^6 open-loop client sessions at steady state, 0-alloc (updates BENCH_engine.json)",
            kind: Kind::Service(expts::service::steady_spec()),
        },
        Scenario {
            name: "service-storm",
            summary:
                "service under crash storms: shed load, bounded p999, exclusive tickets (updates BENCH_engine.json)",
            kind: Kind::Service(expts::service::storm_spec()),
        },
        Scenario {
            name: "service-mega",
            summary:
                "10^4-slot sharded fleet: per-shard admission + slab banks, 10^6 sessions (updates BENCH_engine.json)",
            kind: Kind::Mega(expts::service::mega_spec()),
        },
        grid(
            "deposit-serve",
            "Altruistic deposit with one serve-only helper: deposits stay exclusive under crashes",
            GridSpec {
                algo: AlgoSpec::Deposit {
                    rounds: 2,
                    servers: 1,
                },
                adversary: AdversarySpec::CrashStorm { probability: 0.02 },
                grid: vec![(512, 2), (512, 3), (768, 4)],
                seeds: 0..10,
                shards: 1,
            },
        ),
        grid(
            "bursty-deposit",
            "all-depositor altruistic repository under burst schedules (Theorem 9 wait-freedom)",
            GridSpec {
                algo: AlgoSpec::Deposit {
                    rounds: 2,
                    servers: 0,
                },
                adversary: AdversarySpec::Bursty { burst: 8 },
                grid: vec![(512, 2), (768, 3)],
                seeds: 0..10,
                shards: 1,
            },
        ),
    ]
}

/// The registry as a plain-text catalog, one `name  kind  summary` line
/// per scenario — the exact block README.md embeds between its
/// `expt-list` markers (`crates/bench/tests/readme_catalog.rs` asserts
/// they match, so the README cannot drift from the registry).
#[must_use]
pub fn catalog() -> String {
    let mut out = String::new();
    for s in registry() {
        let kind = match s.kind {
            Kind::Table(_) | Kind::TableWith(_) => "table",
            Kind::Grid(_) => "grid",
            Kind::Service(_) | Kind::Mega(_) => "service",
        };
        out.push_str(&format!("{:<19} {:<7} {}\n", s.name, kind, s.summary));
    }
    out
}

/// Looks a scenario up by name.
#[must_use]
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// Executes one scenario; grid scenarios return their rows as JSON
/// objects (tables return `None` — their bodies print and persist their
/// own artifacts).
pub fn run_scenario(scenario: &Scenario) -> Option<Vec<serde_json::Value>> {
    run_scenario_with(scenario, &RunOverrides::default())
}

/// Executes one scenario with CLI overrides ([`RunOverrides`] reach
/// [`Kind::TableWith`] bodies; grid overrides are applied by [`cli`]
/// before this is called).
pub fn run_scenario_with(
    scenario: &Scenario,
    overrides: &RunOverrides,
) -> Option<Vec<serde_json::Value>> {
    match &scenario.kind {
        Kind::Table(run) => {
            run();
            None
        }
        Kind::TableWith(run) => {
            run(overrides);
            None
        }
        Kind::Grid(spec) => Some(run_grid(scenario.name, spec)),
        Kind::Service(spec) => Some(expts::service::run(scenario.name, spec, overrides)),
        Kind::Mega(spec) => Some(expts::service::run_mega(scenario.name, spec, overrides)),
    }
}

/// CLI overrides parsed from `expt -- run <name> ...` flags.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RunOverrides {
    /// `--seeds N`: run seeds `0..N` per cell instead of the registry
    /// default.
    pub seeds: Option<u64>,
    /// `--sizes a,b,c`: replace the grid with these cells. Each entry is
    /// `k` (the cell keeps `N = 8k`) or an explicit `N:k` pair.
    pub sizes: Option<Vec<(usize, usize)>>,
    /// `--json-out <path>`: persist grid rows as a JSON artifact (e.g.
    /// `BENCH_grid.json`).
    pub json_out: Option<String>,
    /// `--shards k`: run the grid's trials on the sharded grant loop
    /// with `k` pending-set shards instead of the registry default.
    pub shards: Option<usize>,
    /// `--reduce on|off|both`: which arms the `explore-reduced` table
    /// runs (tables and grids other than `explore-reduced` reject it).
    pub reduce: Option<crate::expts::reduced::ReduceMode>,
    /// `--quick`: run `explore-reduced` at bench-gate scale (smaller
    /// store&collect differential, fewer timing iterations) without
    /// touching `BENCH_engine.json`.
    pub quick: bool,
}

impl RunOverrides {
    /// Applies the overrides to a grid spec (tables ignore them).
    fn apply(&self, spec: &mut GridSpec) {
        if let Some(seeds) = self.seeds {
            spec.seeds = 0..seeds;
        }
        if let Some(sizes) = &self.sizes {
            spec.grid = sizes.clone();
        }
        if let Some(shards) = self.shards {
            spec.shards = shards;
        }
    }
}

/// Parses one `--sizes` entry: `k` or `N:k`.
fn parse_size(entry: &str) -> Result<(usize, usize), String> {
    let bad = |what: &str| format!("bad --sizes entry `{entry}`: {what}");
    match entry.split_once(':') {
        Some((n, k)) => {
            let n: usize = n.parse().map_err(|_| bad("N is not a number"))?;
            let k: usize = k.parse().map_err(|_| bad("k is not a number"))?;
            if k == 0 || n < k {
                return Err(bad("need N ≥ k ≥ 1"));
            }
            Ok((n, k))
        }
        None => {
            let k: usize = entry.parse().map_err(|_| bad("k is not a number"))?;
            if k == 0 {
                return Err(bad("need k ≥ 1"));
            }
            Ok((8 * k, k))
        }
    }
}

/// The `expt` multiplexer CLI behind the single `expt` binary:
///
/// ```text
/// expt -- list [--filter <substr>]
/// expt -- run <name> [--seeds N] [--sizes a,b,c | N:k,...] [--shards k]
///                    [--json-out <path>] [--reduce on|off|both] [--quick]
///                    [--json]
/// ```
///
/// `--seeds`/`--sizes` override a grid scenario's registry defaults;
/// `--json-out` writes the grid rows to a JSON artifact (the repository
/// keeps `BENCH_grid.json` next to `BENCH_engine.json`);
/// `--reduce`/`--quick` select the arms and scale of the
/// `explore-reduced` table.
///
/// Note that JSON *table* output is switched by `Table::emit`, which
/// reads the **process argv** — a `--json` in `args` only has effect
/// when the process was launched with it (as the `expt` binary always
/// is); the filter below merely tolerates its presence while parsing.
///
/// # Errors
///
/// Returns a human-readable message when the command, scenario name or
/// a flag does not resolve; the caller decides the exit code.
pub fn cli(args: &[String]) -> Result<(), String> {
    let args: Vec<&String> = args.iter().filter(|a| *a != "--json").collect();
    match args.first().map(|s| s.as_str()) {
        None | Some("list") => {
            let mut filter = None;
            let mut rest = args.iter().skip(1);
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--filter" => {
                        filter = Some(
                            rest.next()
                                .ok_or_else(|| "--filter needs a substring".to_string())?
                                .to_lowercase(),
                        );
                    }
                    other => return Err(format!("unknown list flag `{other}`")),
                }
            }
            let mut t = Table::new("scenario registry", &["name", "kind", "summary"]);
            for s in registry() {
                if let Some(f) = &filter {
                    if !s.name.to_lowercase().contains(f)
                        && !s.summary.to_lowercase().contains(f)
                    {
                        continue;
                    }
                }
                t.row(&[
                    s.name.to_string(),
                    match s.kind {
                        Kind::Table(_) | Kind::TableWith(_) => "table".into(),
                        Kind::Grid(_) => "grid".into(),
                        Kind::Service(_) | Kind::Mega(_) => "service".into(),
                    },
                    s.summary.to_string(),
                ]);
            }
            t.emit();
            if t.is_empty() {
                println!("(no scenario matches the filter)");
            }
            println!("
run one with: expt -- run <name> [--seeds N] [--sizes a,b,c] [--shards k] [--json-out <path>] [--json]");
            Ok(())
        }
        Some("run") => {
            let name = args
                .get(1)
                .ok_or_else(|| "usage: expt -- run <name> [--seeds N] [--sizes a,b,c] [--shards k] [--json-out <path>]".to_string())?;
            let mut overrides = RunOverrides::default();
            let mut rest = args.iter().skip(2);
            while let Some(flag) = rest.next() {
                let value = |rest: &mut dyn Iterator<Item = &&String>| -> Result<String, String> {
                    rest.next()
                        .map(|s| (*s).clone())
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match flag.as_str() {
                    "--seeds" => {
                        let v = value(&mut rest)?;
                        overrides.seeds =
                            Some(v.parse().map_err(|_| format!("bad --seeds `{v}`"))?);
                    }
                    "--sizes" => {
                        let v = value(&mut rest)?;
                        overrides.sizes = Some(
                            v.split(',')
                                .map(parse_size)
                                .collect::<Result<Vec<_>, _>>()?,
                        );
                    }
                    "--json-out" => overrides.json_out = Some(value(&mut rest)?),
                    "--reduce" => {
                        let v = value(&mut rest)?;
                        overrides.reduce = Some(crate::expts::reduced::ReduceMode::parse(&v)?);
                    }
                    "--quick" => overrides.quick = true,
                    "--shards" => {
                        let v = value(&mut rest)?;
                        let shards: usize =
                            v.parse().map_err(|_| format!("bad --shards `{v}`"))?;
                        if shards == 0 {
                            return Err("--shards needs at least one shard".into());
                        }
                        overrides.shards = Some(shards);
                    }
                    other => return Err(format!("unknown run flag `{other}`")),
                }
            }
            let mut scenario = find(name).ok_or_else(|| {
                format!(
                    "unknown scenario `{name}` — try `expt -- list`; known: {}",
                    registry()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            match &mut scenario.kind {
                Kind::Grid(spec) => {
                    if overrides.reduce.is_some() || overrides.quick {
                        return Err(format!(
                            "scenario `{name}` is a grid — --reduce/--quick only apply to the explore-reduced table"
                        ));
                    }
                    overrides.apply(spec);
                }
                Kind::Service(_) => {
                    if overrides.sizes.is_some()
                        || overrides.shards.is_some()
                        || overrides.reduce.is_some()
                    {
                        return Err(format!(
                            "scenario `{name}` is a service run — only --seeds/--quick/--json-out apply"
                        ));
                    }
                }
                Kind::Mega(_) => {
                    if overrides.sizes.is_some() || overrides.reduce.is_some() {
                        return Err(format!(
                            "scenario `{name}` is a sharded service run — only --seeds/--shards/--quick/--json-out apply"
                        ));
                    }
                }
                Kind::TableWith(_) => {
                    if overrides.seeds.is_some()
                        || overrides.sizes.is_some()
                        || overrides.shards.is_some()
                        || overrides.json_out.is_some()
                    {
                        return Err(format!(
                            "scenario `{name}` only takes --reduce/--quick — --seeds/--sizes/--shards/--json-out apply to grids"
                        ));
                    }
                }
                Kind::Table(_) => {
                    if overrides != RunOverrides::default() {
                        return Err(format!(
                            "scenario `{name}` is a table — --seeds/--sizes/--shards/--json-out only apply to grids, --reduce/--quick to explore-reduced"
                        ));
                    }
                }
            }
            let jsonl = matches!(scenario.kind, Kind::Service(_) | Kind::Mega(_));
            let rows = run_scenario_with(&scenario, &overrides);
            if let Some(path) = &overrides.json_out {
                let rows = rows.expect("json-out rejected for tables above");
                // Service telemetry is a JSON Lines time series (one
                // window object per line); grids stay a JSON array.
                let text = if jsonl {
                    rows.iter().map(|row| format!("{row}\n")).collect()
                } else {
                    format!("{}\n", serde_json::Value::Array(rows))
                };
                std::fs::write(path, text)
                    .map_err(|e| format!("could not write {path}: {e}"))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown command `{other}` — usage: expt -- (list [--filter <substr>] | run <name> [--seeds N] [--sizes a,b,c] [--shards k] [--json-out <path>]) [--json]"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_all_tables() {
        let reg = registry();
        let names: std::collections::BTreeSet<&str> = reg.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
        // Every historical expt_* binary is reachable through the
        // registry under its table name.
        for legacy in [
            "majority",
            "basic",
            "polylog",
            "compare",
            "almost-adaptive",
            "adaptive",
            "lowerbound",
            "storecollect",
            "repository",
            "scaling",
            "ablation",
            "engine",
        ] {
            assert!(names.contains(legacy), "missing table scenario {legacy}");
        }
    }

    #[test]
    fn smoke_grid_runs_clean() {
        let scenario = find("smoke").expect("smoke scenario registered");
        run_scenario(&scenario);
    }

    #[test]
    fn grid_with_crashes_keeps_survivors_exclusive() {
        // A small storm grid: sweep asserts exclusiveness per trial.
        run_grid(
            "test-storm",
            &GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::CrashStorm { probability: 0.2 },
                grid: vec![(16, 4)],
                seeds: 0..5,
                shards: 1,
            },
        );
    }

    #[test]
    fn every_adversary_spec_builds_and_schedules() {
        for adv in [
            AdversarySpec::RoundRobin,
            AdversarySpec::Random,
            AdversarySpec::CrashStorm { probability: 0.1 },
            AdversarySpec::CrashAfter { after: 3 },
            AdversarySpec::Pigeonhole { lead: 4 },
            AdversarySpec::Bursty { burst: 5 },
        ] {
            run_grid(
                "test-adversaries",
                &GridSpec {
                    algo: AlgoSpec::Efficient,
                    adversary: adv,
                    grid: vec![(16, 4)],
                    seeds: 0..2,
                    shards: 1,
                },
            );
        }
    }

    #[test]
    fn cli_rejects_unknown_scenarios() {
        assert!(cli(&["run".into(), "no-such".into()]).is_err());
        assert!(cli(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn cli_rejects_bad_flags() {
        assert!(cli(&["run".into(), "smoke".into(), "--seeds".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--seeds".into(), "x".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--sizes".into(), "0".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--sizes".into(), "4:8".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--shards".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--shards".into(), "x".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--shards".into(), "0".into()]).is_err());
        assert!(cli(&["run".into(), "smoke".into(), "--frob".into()]).is_err());
        assert!(cli(&["list".into(), "--frob".into()]).is_err());
        // Table scenarios reject grid-only overrides without running.
        assert!(cli(&[
            "run".into(),
            "majority".into(),
            "--seeds".into(),
            "1".into()
        ])
        .is_err());
    }

    #[test]
    fn cli_overrides_and_json_artifact() {
        let dir = std::env::temp_dir().join(format!("exsel_grid_{}", std::process::id()));
        let path = dir.to_string_lossy().to_string();
        cli(&[
            "run".into(),
            "smoke".into(),
            "--seeds".into(),
            "2".into(),
            "--sizes".into(),
            "4,32:8".into(),
            "--json-out".into(),
            path.clone(),
        ])
        .expect("overridden smoke run succeeds");
        let artifact = std::fs::read_to_string(&path).expect("artifact written");
        let _ = std::fs::remove_file(&path);
        // Two cells: bare `4` (N = 32) and explicit `32:8`; two seeds.
        assert!(artifact.contains("\"scenario\":\"smoke\""));
        assert!(artifact.contains("\"trials\":2"));
        assert!(artifact.contains("\"k\":4"));
        assert!(artifact.contains("\"k\":8"));
        assert!(artifact.contains("\"shards\":1"));
    }

    #[test]
    fn sharded_grid_rows_carry_the_shard_axis() {
        let rows = run_grid(
            "test-sharded",
            &GridSpec {
                algo: AlgoSpec::MoirAnderson,
                adversary: AdversarySpec::Random,
                grid: vec![(32, 8)],
                seeds: 0..3,
                shards: 4,
            },
        );
        assert_eq!(rows.len(), 1);
        let serde_json::Value::Object(row) = &rows[0] else {
            panic!("grid row is not an object");
        };
        assert_eq!(row.get("shards"), Some(&serde_json::Value::from(4u64)));
        // Every granted op lands in some shard.
        assert_eq!(row.get("shard_ops"), row.get("total_ops"));
        assert!(row.get("slab_live").is_some() && row.get("slab_peak").is_some());
    }

    #[test]
    fn shards_override_reaches_the_artifact() {
        let dir = std::env::temp_dir().join(format!("exsel_shards_{}", std::process::id()));
        let path = dir.to_string_lossy().to_string();
        cli(&[
            "run".into(),
            "smoke".into(),
            "--seeds".into(),
            "2".into(),
            "--shards".into(),
            "3".into(),
            "--json-out".into(),
            path.clone(),
        ])
        .expect("sharded smoke run succeeds");
        let artifact = std::fs::read_to_string(&path).expect("artifact written");
        let _ = std::fs::remove_file(&path);
        assert!(artifact.contains("\"shards\":3"));
    }

    #[test]
    fn parse_size_forms() {
        assert_eq!(parse_size("4"), Ok((32, 4)));
        assert_eq!(parse_size("64:16"), Ok((64, 16)));
        assert!(parse_size("").is_err());
        assert!(parse_size("x:4").is_err());
        assert!(parse_size("4:x").is_err());
    }

    #[test]
    fn store_and_naming_grids_run_clean() {
        let rows = run_grid(
            "test-store",
            &GridSpec {
                algo: AlgoSpec::StoreAdaptive,
                adversary: AdversarySpec::CrashStorm { probability: 0.1 },
                grid: vec![(32, 4)],
                seeds: 0..3,
                shards: 1,
            },
        );
        assert_eq!(rows.len(), 1);
        run_grid(
            "test-store-known",
            &GridSpec {
                algo: AlgoSpec::StoreKnown,
                adversary: AdversarySpec::Random,
                grid: vec![(32, 4)],
                seeds: 0..3,
                shards: 1,
            },
        );
        run_grid(
            "test-naming",
            &GridSpec {
                algo: AlgoSpec::Naming { rounds: 2 },
                adversary: AdversarySpec::Random,
                grid: vec![(16, 3)],
                seeds: 0..3,
                shards: 1,
            },
        );
    }

    #[test]
    fn deposit_grids_run_clean() {
        let rows = run_grid(
            "test-deposit",
            &GridSpec {
                algo: AlgoSpec::Deposit {
                    rounds: 2,
                    servers: 0,
                },
                adversary: AdversarySpec::Bursty { burst: 4 },
                grid: vec![(512, 3)],
                seeds: 0..3,
                shards: 1,
            },
        );
        assert_eq!(rows.len(), 1);
        run_grid(
            "test-deposit-serve",
            &GridSpec {
                algo: AlgoSpec::Deposit {
                    rounds: 2,
                    servers: 1,
                },
                adversary: AdversarySpec::CrashStorm { probability: 0.05 },
                grid: vec![(512, 3)],
                seeds: 0..3,
                shards: 1,
            },
        );
    }
}
