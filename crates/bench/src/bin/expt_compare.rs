//! T4 — Theorem 2 and the prior-work comparison: `Efficient-Rename(k)`
//! achieves `O(k)` steps *and* the optimal `M = 2k−1` simultaneously;
//! Moir–Anderson matches the steps but pays `M = k(k+1)/2`; the classic
//! snapshot renaming matches `M` but needs a system-sized snapshot. This
//! reproduces the "who wins" table of the paper's introduction.
//!
//! Renaming is run at full contention; `N_indep` re-runs Efficient-Rename
//! with originals drawn from a 2¹⁶ range to certify that, being a
//! *k-renaming* algorithm, its cost does not depend on `N`.

use exsel_bench::{run_sim, runner::spread_originals, Table};
use exsel_core::{EfficientRename, MoirAnderson, Rename, RenameConfig, SnapshotRename};
use exsel_shm::RegAlloc;

fn measure<R: Rename + ?Sized>(
    build: impl Fn(&mut RegAlloc) -> Box<R>,
    k: usize,
    n_names: usize,
    seeds: std::ops::Range<u64>,
) -> (u64, u64, usize, usize) {
    let mut max_steps = 0;
    let mut max_name = 0;
    let mut named = k;
    let mut regs = 0;
    for seed in seeds {
        let mut alloc = RegAlloc::new();
        let algo = build(&mut alloc);
        regs = alloc.total();
        let run = run_sim(algo.as_ref(), regs, &spread_originals(k, n_names), seed);
        max_steps = max_steps.max(run.max_steps());
        max_name = max_name.max(run.max_name());
        named = named.min(run.named());
    }
    (max_steps, max_name, named, regs)
}

fn main() {
    let mut table = Table::new(
        "T4 k-renaming comparison — Theorem 2 vs prior work (full contention)",
        &[
            "algorithm",
            "k",
            "N",
            "M_bound",
            "max_name",
            "max_steps",
            "registers",
            "named",
        ],
    );
    let cfg = RenameConfig::default();
    for k in [2usize, 4, 8, 16] {
        let n_small = 4 * k;
        let n_large = 1 << 16;

        let (steps, name, named, regs) =
            measure(|a| Box::new(MoirAnderson::new(a, k)), k, n_small, 0..5);
        table.row(&[
            "MoirAnderson".into(),
            k.to_string(),
            n_small.to_string(),
            (k * (k + 1) / 2).to_string(),
            name.to_string(),
            steps.to_string(),
            regs.to_string(),
            named.to_string(),
        ]);

        let (steps, name, named, regs) = measure(
            |a| Box::new(EfficientRename::new(a, k, &cfg)),
            k,
            n_small,
            0..3,
        );
        table.row(&[
            "EfficientRename".into(),
            k.to_string(),
            n_small.to_string(),
            (2 * k - 1).to_string(),
            name.to_string(),
            steps.to_string(),
            regs.to_string(),
            named.to_string(),
        ]);

        // N-independence: same algorithm, originals from a huge range.
        let (steps, name, named, regs) = measure(
            |a| Box::new(EfficientRename::new(a, k, &cfg)),
            k,
            n_large,
            0..3,
        );
        table.row(&[
            "EfficientRename(N_indep)".into(),
            k.to_string(),
            n_large.to_string(),
            (2 * k - 1).to_string(),
            name.to_string(),
            steps.to_string(),
            regs.to_string(),
            named.to_string(),
        ]);

        // Classic snapshot renaming with a contender-sized snapshot
        // (slot = pid): matches M = 2k−1 but its scans cost O(k) per
        // collect with higher iteration counts under contention.
        let (steps, name, named, regs) =
            measure(|a| Box::new(SnapshotRename::new(a, k)), k, n_small, 0..3);
        table.row(&[
            "SnapshotRename".into(),
            k.to_string(),
            n_small.to_string(),
            (2 * k - 1).to_string(),
            name.to_string(),
            steps.to_string(),
            regs.to_string(),
            named.to_string(),
        ]);
    }
    table.emit();
    println!("shape check: EfficientRename keeps max_name ≤ 2k−1 (optimal) where MoirAnderson pays k(k+1)/2;");
    println!("both are N-independent (compare the N_indep rows); steps grow linearly in k for all three.");
}
