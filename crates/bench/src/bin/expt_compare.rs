//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run compare` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::compare::run();
}
