//! T1 — Lemma 4: `Majority(ℓ, N)` renames at least half of at most `ℓ`
//! contenders in `O(log N)` local steps with `O(M)` registers.
//!
//! Sweeps `N` and `ℓ`, reporting the renamed fraction (must be ≥ 1/2),
//! the worst-case steps (should track the walk length `5Δ = O(log N)`),
//! and the register footprint.

use exsel_bench::{run_sim, runner::spread_originals, Table};
use exsel_core::{Majority, Rename, RenameConfig};
use exsel_shm::RegAlloc;

fn main() {
    let mut table = Table::new(
        "T1 Majority(l,N) — Lemma 4: ≥ half renamed, O(log N) steps",
        &[
            "N",
            "l",
            "degree",
            "M",
            "registers",
            "renamed",
            "frac",
            "max_steps",
            "walk_bound",
        ],
    );
    let cfg = RenameConfig::default();
    for n_exp in [8u32, 10, 12, 14] {
        let n = 1usize << n_exp;
        for l in [4usize, 16, 64] {
            if l * 4 > n {
                continue;
            }
            let mut alloc = RegAlloc::new();
            let algo = Majority::new(&mut alloc, n, l, &cfg);
            let originals = spread_originals(l, n);
            // Worst renamed fraction over several adversarially-seeded
            // schedules.
            let mut worst_named = l;
            let mut max_steps = 0u64;
            for seed in 0..5 {
                let mut a2 = RegAlloc::new();
                let fresh = Majority::new(&mut a2, n, l, &cfg);
                let run = run_sim(&fresh, a2.total(), &originals, seed);
                worst_named = worst_named.min(run.named());
                max_steps = max_steps.max(run.max_steps());
            }
            table.row(&[
                n.to_string(),
                l.to_string(),
                algo.graph().degree().to_string(),
                algo.name_bound().to_string(),
                alloc.total().to_string(),
                worst_named.to_string(),
                format!("{:.2}", worst_named as f64 / l as f64),
                max_steps.to_string(),
                (5 * algo.graph().degree()).to_string(),
            ]);
            assert!(
                worst_named * 2 >= l,
                "Lemma 4 violated: {worst_named}/{l} renamed"
            );
        }
    }
    table.emit();
    println!("shape check: renamed fraction ≥ 0.50 everywhere; max_steps ≤ walk_bound = 5·degree = O(log N).");
}
