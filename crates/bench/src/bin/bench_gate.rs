//! The bench gate: re-measures every committed BENCH workload in quick
//! mode and checks it against the floors in `BENCH_engine.json` (25%
//! per-row regression tolerance, clamped by the per-category hard
//! floors — see [`exsel_bench::gate`]). Run from the repository root:
//!
//! ```text
//! cargo run --release -p exsel-bench --bin bench_gate
//! cargo run --release -p exsel-bench --bin bench_gate -- --full
//! ```
//!
//! Exits non-zero when any row regresses, so CI can gate on it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;

use exsel_bench::expts::{engine, mega, reduced, service};
use exsel_bench::gate;

/// The system allocator with every allocation and deallocation counted
/// into [`exsel_bench::alloc_probe`], so the gate can hold the mega row
/// to its zero-steady-state-allocations promise (the library forbids
/// `unsafe`; the wrapper lives here in the binary).
struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counters are relaxed
// atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        exsel_bench::alloc_probe::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        exsel_bench::alloc_probe::note_dealloc();
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() -> ExitCode {
    // Quick by default; `--full` re-measures at full scale (slower,
    // tighter numbers). Unknown flags are ignored so harnesses that
    // append e.g. `--test` keep working.
    let full = std::env::args().skip(1).any(|a| a == "--full");
    let quick = !full;
    println!(
        "bench gate: {} rerun vs committed BENCH_engine.json floors\n",
        if quick { "quick" } else { "full-scale" }
    );

    let mut rows = engine::measure(quick);
    rows.push(mega::measure(quick));
    rows.extend(reduced::measure(quick));
    rows.extend(service::measure_rows(quick));

    let committed = match std::fs::read_to_string("BENCH_engine.json") {
        Ok(text) => match serde_json::from_str(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("BENCH_engine.json is unreadable ({e}); gating on hard floors only");
                serde_json::Value::Array(Vec::new())
            }
        },
        // No committed artifact (fresh checkout mid-regeneration):
        // the per-category hard floors still apply.
        Err(_) => serde_json::Value::Array(Vec::new()),
    };

    let report = gate::check(&rows, &committed);
    for line in &report.lines {
        println!("{line}");
    }
    if report.passed() {
        println!("\nbench gate: all {} rows within tolerance", rows.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate FAILED:");
        for failure in &report.failures {
            eprintln!("  - {failure}");
        }
        ExitCode::FAILURE
    }
}
