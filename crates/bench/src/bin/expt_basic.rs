//! T2 — Lemma 5: `Basic-Rename(k, N)` is `(k,N)`-renaming in
//! `O(log k · log N)` local steps with `M = O(k·log(N/k))` and as many
//! registers.
//!
//! Sweeps `(k, N)`; the normalized column `steps/(lg k·lg N)` should stay
//! roughly flat while raw steps grow, and `M / (k·lg(N/k))` should stay
//! bounded.

use exsel_bench::{run_sim, runner::spread_originals, Table};
use exsel_core::{BasicRename, Rename, RenameConfig};
use exsel_shm::RegAlloc;

fn main() {
    let mut table = Table::new(
        "T2 Basic-Rename(k,N) — Lemma 5: O(log k · log N) steps, M = O(k log(N/k))",
        &[
            "N",
            "k",
            "stages",
            "M",
            "registers",
            "named",
            "max_steps",
            "steps_norm",
            "M_norm",
        ],
    );
    let cfg = RenameConfig::default();
    for n_exp in [8u32, 10, 12, 14] {
        let n = 1usize << n_exp;
        for k in [2usize, 4, 8, 16] {
            let mut alloc = RegAlloc::new();
            let algo = BasicRename::new(&mut alloc, n, k, &cfg);
            let originals = spread_originals(k, n);
            let mut max_steps = 0u64;
            let mut min_named = k;
            for seed in 0..5 {
                let mut a2 = RegAlloc::new();
                let fresh = BasicRename::new(&mut a2, n, k, &cfg);
                let run = run_sim(&fresh, a2.total(), &originals, seed);
                max_steps = max_steps.max(run.max_steps());
                min_named = min_named.min(run.named());
            }
            let lg_k = (k as f64).log2().max(1.0);
            let lg_n = (n as f64).log2();
            let lg_ratio = ((n / k) as f64).log2().max(1.0);
            table.row(&[
                n.to_string(),
                k.to_string(),
                algo.num_stages().to_string(),
                algo.name_bound().to_string(),
                alloc.total().to_string(),
                min_named.to_string(),
                max_steps.to_string(),
                format!("{:.2}", max_steps as f64 / (lg_k * lg_n)),
                format!("{:.1}", algo.name_bound() as f64 / (k as f64 * lg_ratio)),
            ]);
            assert_eq!(min_named, k, "Lemma 5 violated: not everyone renamed");
        }
    }
    table.emit();
    println!("shape check: steps_norm (≈ constant) certifies O(log k · log N); M_norm certifies M = O(k·log(N/k)).");
}
