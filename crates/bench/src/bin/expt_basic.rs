//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run basic` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::basic::run();
}
