//! T11 — execution backends: the thread-backed lock-step scheduler vs
//! the single-threaded step-machine engine on identical workloads.
//!
//! Both backends replay the *same* executions (same policy ⇒ same trace;
//! the blocking renaming APIs are `drive` adapters over the same step
//! machines), so the comparison isolates the machinery: thread parking +
//! condvar round trips per operation vs a vector walk. Reports wall-clock
//! per workload and the speedup, asserts the engine's executions match
//! the thread-backed ones, and — when run from the repository root —
//! records the numbers in `BENCH_engine.json`.
//!
//! `cargo run --release -p exsel-bench --bin expt_engine`

use std::time::Instant;

use exsel_bench::runner::{run_sim, run_sim_engine, spread_originals};
use exsel_bench::Table;
use exsel_core::{Majority, RenameConfig, SlotBank};
use exsel_shm::RegAlloc;
use exsel_sim::explore::{explore, explore_engine};

/// Wall-clock of `iters` runs of `f`, in seconds.
fn time(iters: u32, mut f: impl FnMut()) -> f64 {
    // One warmup.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

struct Row {
    workload: String,
    threads_s: f64,
    engine_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.threads_s / self.engine_s
    }
}

fn main() {
    let cfg = RenameConfig::default();
    let mut rows = Vec::new();

    // Majority-renaming rounds under a seeded random schedule.
    for k in [8usize, 32, 128] {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 1024, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 1024);
        // Equivalence first: identical names and step counts.
        let a = run_sim(&algo, regs, &originals, 7);
        let b = run_sim_engine(&algo, regs, &originals, 7);
        assert_eq!(a.names, b.names, "backends diverged at k={k}");
        assert_eq!(a.steps, b.steps, "backends diverged at k={k}");
        let iters = if k >= 128 { 3 } else { 10 };
        let threads_s = time(iters, || {
            run_sim(&algo, regs, &originals, 7);
        });
        let engine_s = time(iters, || {
            run_sim_engine(&algo, regs, &originals, 7);
        });
        rows.push(Row {
            workload: format!("majority_round/k={k}"),
            threads_s,
            engine_s,
        });
    }

    // Exhaustive exploration of Compete-For-Register, 3 contenders —
    // the fixed-depth model-checking workload.
    {
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, 1);
        let regs = alloc.total();
        let a = explore(
            regs,
            3,
            u64::MAX,
            |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
            |_| {},
        );
        let b = explore_engine(
            regs,
            3,
            u64::MAX,
            |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
            |_| {},
        );
        assert!(a.complete && b.complete);
        assert_eq!(a.executions, b.executions, "exploration trees diverged");
        let threads_s = time(3, || {
            explore(
                regs,
                3,
                u64::MAX,
                |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
                |_| {},
            );
        });
        let engine_s = time(3, || {
            explore_engine(
                regs,
                3,
                u64::MAX,
                |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
                |_| {},
            );
        });
        rows.push(Row {
            workload: format!("explore_compete/3procs/{}execs", a.executions),
            threads_s,
            engine_s,
        });
    }

    let mut table = Table::new(
        "T11 execution backends — thread scheduler vs step engine",
        &["workload", "threads_ms", "engine_ms", "speedup"],
    );
    for row in &rows {
        table.row(&[
            row.workload.clone(),
            format!("{:.3}", row.threads_s * 1e3),
            format!("{:.3}", row.engine_s * 1e3),
            format!("{:.1}", row.speedup()),
        ]);
    }
    table.emit();

    let min_speedup = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    println!(
        "\nstep engine is {:.0}x-{:.0}x faster; executions verified identical per backend.",
        min_speedup,
        rows.iter().map(Row::speedup).fold(0.0, f64::max)
    );
    assert!(
        min_speedup >= 5.0,
        "engine speedup {min_speedup:.1}x below the 5x acceptance floor"
    );

    // Record for the repository (BENCH_engine.json at the cwd, i.e. the
    // repo root under `cargo run`).
    let mut entries = Vec::new();
    for row in &rows {
        let mut obj = serde_json::Map::new();
        obj.insert(
            "workload".into(),
            serde_json::Value::String(row.workload.clone()),
        );
        obj.insert(
            "threads_ms".into(),
            serde_json::Value::Float(row.threads_s * 1e3),
        );
        obj.insert(
            "engine_ms".into(),
            serde_json::Value::Float(row.engine_s * 1e3),
        );
        obj.insert("speedup".into(), serde_json::Value::Float(row.speedup()));
        entries.push(serde_json::Value::Object(obj));
    }
    let doc = serde_json::Value::Array(entries);
    if let Err(e) = std::fs::write("BENCH_engine.json", format!("{doc}\n")) {
        eprintln!("(could not write BENCH_engine.json: {e})");
    } else {
        println!("wrote BENCH_engine.json");
    }
}
