//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run engine` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::engine::run();
}
