//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run ablation` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::ablation::run();
}
