//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run storecollect` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::storecollect::run();
}
