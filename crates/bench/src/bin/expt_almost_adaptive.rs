//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run almost-adaptive` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::almost_adaptive::run();
}
