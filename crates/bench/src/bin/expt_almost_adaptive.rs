//! T5 — Theorem 3 / Corollary 1: `Almost-Adaptive(N)` renames unknown
//! contention `k` into names of magnitude `O(k)` in
//! `O(log²k (log N + log k·log log N))` steps with `O(n·log(N/n))`
//! registers.
//!
//! `N` and the system size `n` are fixed; true contention `k` sweeps.
//! The observed max name must stay within the phase-`⌈lg k⌉` budget
//! (`O(k)`), far below the full-system name bound.

use exsel_bench::{run_sim, runner::spread_originals, Table};
use exsel_core::{AlmostAdaptive, Rename, RenameConfig};
use exsel_shm::RegAlloc;

fn main() {
    let n_names = 1usize << 12;
    let n_procs = 32usize;
    let cfg = RenameConfig::default();

    let mut probe_alloc = RegAlloc::new();
    let probe = AlmostAdaptive::new(&mut probe_alloc, n_names, n_procs, &cfg);
    let mut table = Table::new(
        format!(
            "T5 Almost-Adaptive(N={n_names}) over n={n_procs} — Theorem 3: names O(k), registers {} (full bound {})",
            probe_alloc.total(),
            probe.name_bound()
        ),
        &[
            "k", "max_name", "bound_for_k", "name_per_k", "max_steps", "steps_norm", "named",
        ],
    );

    for k in [1usize, 2, 4, 8, 16, 32] {
        let mut max_steps = 0u64;
        let mut max_name = 0u64;
        let mut min_named = k;
        for seed in 0..3 {
            let mut alloc = RegAlloc::new();
            let algo = AlmostAdaptive::new(&mut alloc, n_names, n_procs, &cfg);
            let run = run_sim(&algo, alloc.total(), &spread_originals(k, n_names), seed);
            max_steps = max_steps.max(run.max_steps());
            max_name = max_name.max(run.max_name());
            min_named = min_named.min(run.named());
        }
        let bound = probe.name_bound_for_contention(k);
        assert!(
            max_name <= bound,
            "Theorem 3 violated: {max_name} > {bound}"
        );
        assert_eq!(min_named, k, "not everyone renamed at k={k}");
        let lg_k = (k as f64).log2().max(1.0);
        let lg_n = (n_names as f64).log2();
        table.row(&[
            k.to_string(),
            max_name.to_string(),
            bound.to_string(),
            format!("{:.0}", max_name as f64 / k as f64),
            max_steps.to_string(),
            format!(
                "{:.2}",
                max_steps as f64 / (lg_k * lg_k * (lg_n + lg_k * lg_n.log2()))
            ),
            min_named.to_string(),
        ]);
    }
    table.emit();
    println!("shape check: max_name tracks O(k) (bounded by bound_for_k, independent of n or the full bound);");
    println!("steps_norm stays bounded, certifying the polylog-in-k step complexity.");
}
