//! The experiment multiplexer: every scenario in the registry behind one
//! binary.
//!
//! ```text
//! cargo run --release -p exsel-bench --bin expt -- list
//! cargo run --release -p exsel-bench --bin expt -- run smoke
//! cargo run --release -p exsel-bench --bin expt -- run majority --json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;

/// The system allocator with every allocation and deallocation counted
/// into [`exsel_bench::alloc_probe`] — the observer behind the mega
/// scenario's flat-memory claim (the library itself forbids `unsafe`,
/// so the wrapper lives here in the binary).
struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counters are relaxed
// atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        exsel_bench::alloc_probe::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        exsel_bench::alloc_probe::note_dealloc();
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match exsel_bench::scenario::cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
