//! The experiment multiplexer: every scenario in the registry behind one
//! binary.
//!
//! ```text
//! cargo run --release -p exsel-bench --bin expt -- list
//! cargo run --release -p exsel-bench --bin expt -- run smoke
//! cargo run --release -p exsel-bench --bin expt -- run majority --json
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match exsel_bench::scenario::cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
