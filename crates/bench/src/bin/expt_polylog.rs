//! T3 — Theorem 1: `PolyLog-Rename(k, N)` is `(k,N)`-renaming with
//! `M = O(k)` in `O(log k (log N + log k·log log N))` local steps and
//! `O(k·log(N/k))` registers.
//!
//! The defining contrast with T2: `M/k` stays flat as `N` grows (the
//! epochs squeeze the `log(N/k)` factor out of the name range), at the
//! cost of a few more epochs of steps.

use exsel_bench::{run_sim, runner::spread_originals, Table};
use exsel_core::{PolyLogRename, Rename, RenameConfig};
use exsel_shm::RegAlloc;

fn main() {
    let mut table = Table::new(
        "T3 PolyLog-Rename(k,N) — Theorem 1: M = O(k), polylog steps",
        &[
            "N",
            "k",
            "epochs",
            "M",
            "M/k",
            "registers",
            "named",
            "max_steps",
            "steps_norm",
        ],
    );
    let cfg = RenameConfig::default();
    for n_exp in [10u32, 12, 14, 16] {
        let n = 1usize << n_exp;
        for k in [2usize, 4, 8, 16] {
            let mut alloc = RegAlloc::new();
            let algo = PolyLogRename::new(&mut alloc, n, k, &cfg);
            let originals = spread_originals(k, n);
            let mut max_steps = 0u64;
            let mut min_named = k;
            for seed in 0..3 {
                let mut a2 = RegAlloc::new();
                let fresh = PolyLogRename::new(&mut a2, n, k, &cfg);
                let run = run_sim(&fresh, a2.total(), &originals, seed);
                max_steps = max_steps.max(run.max_steps());
                min_named = min_named.min(run.named());
            }
            let lg_k = (k as f64).log2().max(1.0);
            let lg_n = (n as f64).log2();
            let lglg_n = lg_n.log2();
            table.row(&[
                n.to_string(),
                k.to_string(),
                algo.num_epochs().to_string(),
                algo.name_bound().to_string(),
                format!("{:.0}", algo.name_bound() as f64 / k as f64),
                alloc.total().to_string(),
                min_named.to_string(),
                max_steps.to_string(),
                format!("{:.2}", max_steps as f64 / (lg_k * (lg_n + lg_k * lglg_n))),
            ]);
            assert_eq!(min_named, k, "Theorem 1 violated: not everyone renamed");
        }
    }
    table.emit();
    println!("shape check: M/k flat in N (Theorem 1's M = O(k)); steps_norm roughly flat certifies the polylog step bound.");
}
