//! Thin wrapper kept for muscle memory; the canonical entry is
//! `expt -- run polylog` (see `exsel_bench::scenario`).

fn main() {
    exsel_bench::expts::polylog::run();
}
