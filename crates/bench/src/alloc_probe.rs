//! Heap-traffic counters for the flat-memory assertions of the mega
//! scenario and the bench gate.
//!
//! The library forbids `unsafe`, so the `GlobalAlloc` wrapper itself
//! lives in the binaries (`expt`, `bench_gate`): each installs a
//! counting allocator that forwards to the system allocator and bumps
//! [`note_alloc`]/[`note_dealloc`]. Library code only *reads* the
//! counters — and because test harnesses and other embedders do not
//! install the wrapper, every assertion on the counters must first check
//! [`active`]: with no wrapper installed the counters stay at zero and
//! flatness cannot be distinguished from absence of instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation (called by the binaries' `GlobalAlloc`
/// wrappers; never call from library code).
pub fn note_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Records one heap deallocation (see [`note_alloc`]).
pub fn note_dealloc() {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// A window over the counters: capture one before and one after the
/// region of interest, subtract with [`Counts::since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Heap allocations observed so far.
    pub allocs: u64,
    /// Heap deallocations observed so far.
    pub deallocs: u64,
}

impl Counts {
    /// The counter deltas since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: &Counts) -> Counts {
        Counts {
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
        }
    }
}

/// The current counter values.
#[must_use]
pub fn counts() -> Counts {
    Counts {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
    }
}

/// Whether a counting allocator is installed in this process. Any real
/// program has allocated long before a scenario body runs, so a zero
/// count means "no wrapper", not "no traffic".
#[must_use]
pub fn active() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_subtract() {
        let a = Counts {
            allocs: 10,
            deallocs: 4,
        };
        let b = Counts {
            allocs: 17,
            deallocs: 9,
        };
        assert_eq!(
            b.since(&a),
            Counts {
                allocs: 7,
                deallocs: 5
            }
        );
    }
}
