//! Experiment harness for the EXPERIMENTS.md tables (T1–T9) and shared
//! utilities for the Criterion benches (T10).
//!
//! Each `expt_*` binary in `src/bin/` regenerates one table: it sweeps the
//! parameters DESIGN.md §5 lists, runs the algorithms on the deterministic
//! simulator (exact step counts) or on real threads (throughput), and
//! prints both an aligned text table and JSON lines (`--json`).
//!
//! Run everything with:
//!
//! ```text
//! for t in majority basic polylog compare almost_adaptive adaptive \
//!          lowerbound storecollect repository; do
//!     cargo run --release -p exsel-bench --bin expt_$t
//! done
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod table;

pub use runner::{run_sim, run_sim_engine, run_threaded, RenamingRun};
pub use table::Table;
