//! Experiment harness for the EXPERIMENTS.md tables (T1–T11) and shared
//! utilities for the Criterion benches.
//!
//! Every experiment is a named entry in the [`scenario`] registry —
//! either a reproduction table ([`expts`]) or a declarative
//! `algorithm × adversary × size-grid` specification run by the shared
//! grid driver over one reusable `StepEngine`. The single `expt` binary
//! multiplexes them all:
//!
//! ```text
//! cargo run --release -p exsel-bench --bin expt -- list
//! cargo run --release -p exsel-bench --bin expt -- run <name> [--json]
//! ```
//!
//! The historical `expt_*` binaries remain as one-line wrappers. Tables
//! print aligned text, or JSON lines with `--json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_probe;
pub mod expts;
pub mod gate;
pub mod runner;
pub mod scenario;
pub mod table;

pub use runner::{
    run_sim, run_sim_engine, run_sim_engine_with, run_threaded, sweep, sweep_pool,
    sweep_pool_sharded, sweep_random, RenamingRun, TrialStats,
};
pub use table::Table;
