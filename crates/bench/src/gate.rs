//! The bench gate: quick reruns of the committed BENCH workloads checked
//! against the floors recorded in `BENCH_engine.json`.
//!
//! Historically the acceptance floors (engine ≥ 5× threads, pool ≥ 2×
//! boxed, reuse no slower than fresh) lived as asserts inside the
//! experiment bodies, so they only fired when someone regenerated the
//! full artifact. The gate moves them here: `bin/bench_gate` re-measures
//! every workload in quick mode ([`crate::expts::engine::measure`],
//! [`crate::expts::mega::measure`]) and [`check`] compares each fresh
//! row against **per-row tolerances** — a regression of more than 25%
//! against the committed row's speedup fails, clamped by the per-category
//! hard floor so a historically huge speedup (2600× on an idle box) does
//! not make CI flaky on a loaded one.
//!
//! Allocation-competing rows gate on allocation counts instead of
//! wall-clock: the snapshot-compaction row requires recycling to beat the
//! non-recycling arena by 10×, and the mega row requires the measured
//! steady-state trial to perform **zero** heap allocations (when the
//! counting allocator is installed — see [`crate::alloc_probe`]).
//! Service rows re-measure the whole committed shard axis
//! ([`crate::expts::service::measure_rows`]), so a throughput or
//! zero-alloc regression at any shard count fails the gate.

/// One measured workload row — the in-memory form of a
/// `BENCH_engine.json` entry.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload id, e.g. `machine_pool/majority_round/k=32 x64`. Rows are
    /// matched across runs by [`workload_key`], which drops the trial
    /// count suffix so quick reruns compare against full-scale rows.
    pub workload: String,
    /// Baseline label (`threads`, `pr2_boxed`, `fresh`, `recycle_off`,
    /// `arc_pool`) — also selects the gate category.
    pub baseline: &'static str,
    /// Contender label.
    pub contender: &'static str,
    /// Baseline wall-clock, seconds.
    pub baseline_s: f64,
    /// Contender wall-clock, seconds.
    pub contender_s: f64,
    /// Extra integer facts recorded alongside the timings (allocation
    /// counts, steps/sec, shard counts, ...).
    pub extras: Vec<(&'static str, u64)>,
}

impl Measurement {
    /// Baseline time over contender time.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.contender_s
    }

    /// The named extra, if recorded.
    #[must_use]
    pub fn extra(&self, key: &str) -> Option<u64> {
        self.extras.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// The row as a JSON object in the `BENCH_engine.json` layout.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut obj = serde_json::Map::new();
        obj.insert(
            "workload".into(),
            serde_json::Value::String(self.workload.clone()),
        );
        obj.insert(
            format!("{}_ms", self.baseline),
            serde_json::Value::Float(self.baseline_s * 1e3),
        );
        obj.insert(
            format!("{}_ms", self.contender),
            serde_json::Value::Float(self.contender_s * 1e3),
        );
        obj.insert("speedup".into(), serde_json::Value::Float(self.speedup()));
        for (key, value) in &self.extras {
            obj.insert((*key).into(), serde_json::Value::from(*value));
        }
        serde_json::Value::Object(obj)
    }
}

/// The cross-run identity of a workload row: the workload string minus
/// any ` xN` trial-count suffix, so `.../k=32 x16` (quick) matches
/// `.../k=32 x64` (committed).
#[must_use]
pub fn workload_key(workload: &str) -> &str {
    match workload.rsplit_once(" x") {
        Some((head, count)) if !count.is_empty() && count.bytes().all(|b| b.is_ascii_digit()) => {
            head
        }
        _ => workload,
    }
}

/// The hard acceptance floor of a row's category, by baseline label:
/// these are the historical in-code asserts, now data. `None` means the
/// category competes on allocations, not wall-clock.
#[must_use]
pub fn category_floor(baseline: &str) -> Option<f64> {
    match baseline {
        // The step engine must stay ≥ 5× the thread-backed scheduler.
        "threads" => Some(5.0),
        // The machine pool must stay ≥ 2× the PR 2 boxed trial loop.
        "pr2_boxed" => Some(2.0),
        // Reused engines / the slab+SoA mega arm must be "no slower",
        // with headroom for 1-CPU scheduling noise.
        "fresh" | "arc_pool" => Some(0.8),
        // The dynamic footprint checker may cost at most ~10% over the
        // same sweep with no checker installed.
        "check_off" => Some(0.9),
        // Snapshot compaction competes on allocations; the service
        // harness competes on absolute sessions/sec (see [`check`]).
        "recycle_off" | "sessions_floor" => None,
        _ => Some(0.8),
    }
}

/// The hard sessions/sec floor for `sessions_floor` rows — deliberately
/// conservative (the harness clears it by orders of magnitude on any
/// box) so a loaded CI runner cannot flake the gate; the committed
/// row's halved throughput binds when it is lower still.
pub const SESSIONS_FLOOR: u64 = 5_000;

/// The outcome of one gate run: human-readable per-row verdicts plus the
/// subset that failed.
#[derive(Debug, Default)]
pub struct GateReport {
    /// One line per checked row.
    pub lines: Vec<String>,
    /// Failure descriptions (empty means the gate passes).
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether every row passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Looks up the committed speedup for `key` in a parsed
/// `BENCH_engine.json` document.
fn committed_speedup(committed: &serde_json::Value, key: &str) -> Option<f64> {
    let serde_json::Value::Array(rows) = committed else {
        return None;
    };
    rows.iter().find_map(|row| {
        let serde_json::Value::Object(obj) = row else {
            return None;
        };
        match obj.get("workload") {
            Some(serde_json::Value::String(w)) if workload_key(w) == key => {
                match obj.get("speedup") {
                    Some(serde_json::Value::Float(s)) => Some(*s),
                    Some(serde_json::Value::Int(s)) => Some(*s as f64),
                    _ => None,
                }
            }
            _ => None,
        }
    })
}

/// Looks up an integer extra of the committed row matching `key`.
fn committed_extra(committed: &serde_json::Value, key: &str, field: &str) -> Option<u64> {
    let serde_json::Value::Array(rows) = committed else {
        return None;
    };
    rows.iter().find_map(|row| {
        let serde_json::Value::Object(obj) = row else {
            return None;
        };
        match obj.get("workload") {
            Some(serde_json::Value::String(w)) if workload_key(w) == key => match obj.get(field) {
                Some(serde_json::Value::Int(v)) => u64::try_from(*v).ok(),
                _ => None,
            },
            _ => None,
        }
    })
}

/// Gates `fresh` measurements against the committed artifact: every
/// timing row must reach `min(committed_speedup × 0.75, category hard
/// floor)`; allocation rows must keep their allocation invariants (see
/// the module docs). Rows with no committed counterpart are gated on the
/// hard floor alone.
///
/// Reduced-exploration rows additionally gate on **execution counts**,
/// which are deterministic: a fresh `execs_explored` more than 10% above
/// the committed row's count fails (pruning breakage is a regression
/// even when wall-clock looks fine), and wherever an unreduced count is
/// recorded the durable ≥5x reduction floor must hold.
#[must_use]
pub fn check(fresh: &[Measurement], committed: &serde_json::Value) -> GateReport {
    let mut report = GateReport::default();
    for row in fresh {
        let key = workload_key(&row.workload);
        if row.baseline == "recycle_off" {
            // Allocation-competing row: recycling must beat the
            // non-recycling arena by 10× on fresh allocations.
            let off = row.extra("recycle_off_allocs").unwrap_or(0);
            let on = row.extra("recycle_on_allocs").unwrap_or(u64::MAX);
            let ok = on.saturating_mul(10) < off;
            report.lines.push(format!(
                "{} {key}: recycling allocs {on} vs {off} (need 10x reduction)",
                if ok { "PASS" } else { "FAIL" },
            ));
            if !ok {
                report.failures.push(format!(
                    "{key}: recycling barely dented snapshot allocations: {on} vs {off}"
                ));
            }
            continue;
        }
        if row.baseline == "sessions_floor" {
            // Throughput-floor row: absolute sessions/sec, clamped so a
            // historically fast committed run cannot make CI flaky.
            let measured = row.extra("sessions_per_sec").unwrap_or(0);
            let threshold = committed_extra(committed, key, "sessions_per_sec")
                .map_or(SESSIONS_FLOOR, |c| (c / 2).min(SESSIONS_FLOOR));
            let ok = measured >= threshold;
            report.lines.push(format!(
                "{} {key}: {measured} sessions/sec (floor {threshold})",
                if ok { "PASS" } else { "FAIL" },
            ));
            if !ok {
                report.failures.push(format!(
                    "{key}: {measured} sessions/sec below the {threshold} floor"
                ));
            }
        } else {
            let hard = category_floor(row.baseline).expect("timing category has a floor");
            let threshold =
                committed_speedup(committed, key).map_or(hard, |s| (s * 0.75).min(hard));
            let speedup = row.speedup();
            let ok = speedup >= threshold;
            report.lines.push(format!(
                "{} {key}: {:.2}x {} over {} (floor {threshold:.2}x)",
                if ok { "PASS" } else { "FAIL" },
                speedup,
                row.contender,
                row.baseline,
            ));
            if !ok {
                report.failures.push(format!(
                    "{key}: {speedup:.2}x below the {threshold:.2}x floor ({} vs {})",
                    row.contender, row.baseline
                ));
            }
        }
        // Reduction rows: execution counts, not just wall-clock.
        if let Some(explored) = row.extra("execs_explored") {
            if let Some(unreduced) = row.extra("execs_unreduced") {
                let ok = explored.saturating_mul(5) <= unreduced;
                report.lines.push(format!(
                    "{} {key}: {explored} executions vs {unreduced} unreduced (need 5x reduction)",
                    if ok { "PASS" } else { "FAIL" },
                ));
                if !ok {
                    report.failures.push(format!(
                        "{key}: reduction lost its 5x floor: {explored} vs {unreduced} unreduced"
                    ));
                }
            }
            if let Some(frozen) = committed_extra(committed, key, "execs_explored") {
                // Counts are deterministic per workload scale; the 10%
                // headroom only covers intentional workload tweaks that
                // land together with a regenerated artifact.
                let ok = explored <= frozen + frozen.div_ceil(10);
                report.lines.push(format!(
                    "{} {key}: {explored} executions vs {frozen} committed (tolerance +10%)",
                    if ok { "PASS" } else { "FAIL" },
                ));
                if !ok {
                    report.failures.push(format!(
                        "{key}: pruning regressed: {explored} executions vs {frozen} committed"
                    ));
                }
            }
        }
        // The mega row additionally promises a flat steady state: zero
        // heap traffic in the measured trials whenever the counting
        // allocator is installed to observe it.
        if row.extra("alloc_probe") == Some(1) {
            let allocs = row.extra("steady_allocs").unwrap_or(u64::MAX);
            let frees = row.extra("steady_frees").unwrap_or(u64::MAX);
            let flat = allocs == 0 && frees == 0;
            report.lines.push(format!(
                "{} {key}: steady-state heap traffic {allocs} allocs / {frees} frees",
                if flat { "PASS" } else { "FAIL" },
            ));
            if !flat {
                report.failures.push(format!(
                    "{key}: steady state not allocation-free ({allocs} allocs, {frees} frees)"
                ));
            }
        }
    }
    report
}

/// Replaces (by [`workload_key`]) or appends `rows` in the JSON-array
/// artifact at `path`, preserving every other committed row — so the
/// `engine` scenario and the `mega` scenario can regenerate their own
/// rows without clobbering each other's.
///
/// # Errors
///
/// Returns a message when the existing artifact cannot be parsed or the
/// file cannot be written.
pub fn merge_into_artifact(path: &str, rows: &[Measurement]) -> Result<(), String> {
    let mut doc: Vec<serde_json::Value> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str(&text) {
            Ok(serde_json::Value::Array(rows)) => rows,
            Ok(_) => return Err(format!("{path}: committed artifact is not a JSON array")),
            Err(e) => return Err(format!("{path}: {e}")),
        },
        Err(_) => Vec::new(),
    };
    for row in rows {
        let key = workload_key(&row.workload);
        let slot = doc.iter_mut().find(|entry| {
            let serde_json::Value::Object(obj) = entry else {
                return false;
            };
            matches!(obj.get("workload"),
                Some(serde_json::Value::String(w)) if workload_key(w) == key)
        });
        match slot {
            Some(entry) => *entry = row.to_json(),
            None => doc.push(row.to_json()),
        }
    }
    let doc = serde_json::Value::Array(doc);
    std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("could not write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(workload: &str, baseline: &'static str, speedup: f64) -> Measurement {
        Measurement {
            workload: workload.to_string(),
            baseline,
            contender: "contender",
            baseline_s: speedup,
            contender_s: 1.0,
            extras: Vec::new(),
        }
    }

    fn committed(rows: &[(&str, f64)]) -> serde_json::Value {
        serde_json::Value::Array(
            rows.iter()
                .map(|(w, s)| {
                    let mut obj = serde_json::Map::new();
                    obj.insert("workload".into(), serde_json::Value::String((*w).into()));
                    obj.insert("speedup".into(), serde_json::Value::Float(*s));
                    serde_json::Value::Object(obj)
                })
                .collect(),
        )
    }

    #[test]
    fn workload_keys_drop_trial_counts() {
        assert_eq!(
            workload_key("machine_pool/majority_round/k=32 x64"),
            "machine_pool/majority_round/k=32"
        );
        assert_eq!(
            workload_key("engine_reuse/majority k=32 x16"),
            "engine_reuse/majority k=32"
        );
        assert_eq!(workload_key("majority_round/k=8"), "majority_round/k=8");
        assert_eq!(workload_key("odd x"), "odd x");
        assert_eq!(workload_key("odd xab"), "odd xab");
    }

    #[test]
    fn hard_floor_caps_the_committed_tolerance() {
        // Committed 100x: 0.75 tolerance would demand 75x, but the
        // category floor (5x for threads rows) caps the requirement.
        let doc = committed(&[("w", 100.0)]);
        assert!(check(&[meas("w x64", "threads", 6.0)], &doc).passed());
        assert!(!check(&[meas("w x64", "threads", 4.0)], &doc).passed());
    }

    #[test]
    fn committed_tolerance_binds_when_below_the_floor() {
        // Committed 1.08x (engine reuse): min(0.75 × 1.08, 0.8) = 0.8.
        let doc = committed(&[("reuse", 1.08)]);
        assert!(check(&[meas("reuse x16", "fresh", 0.81)], &doc).passed());
        assert!(!check(&[meas("reuse x16", "fresh", 0.79)], &doc).passed());
        // Committed below the floor/0.75 line: the 25% tolerance binds
        // instead — min(0.75 × 1.0, 0.8) = 0.75.
        let doc = committed(&[("reuse", 1.0)]);
        assert!(check(&[meas("reuse x16", "fresh", 0.76)], &doc).passed());
        assert!(!check(&[meas("reuse x16", "fresh", 0.74)], &doc).passed());
    }

    #[test]
    fn missing_committed_row_uses_the_hard_floor() {
        let doc = committed(&[]);
        assert!(check(&[meas("new-row", "pr2_boxed", 2.1)], &doc).passed());
        assert!(!check(&[meas("new-row", "pr2_boxed", 1.9)], &doc).passed());
    }

    #[test]
    fn recycle_rows_gate_on_allocations() {
        let mut ok = meas("snap", "recycle_off", 1.0);
        ok.extras = vec![("recycle_off_allocs", 2048), ("recycle_on_allocs", 0)];
        let mut bad = ok.clone();
        bad.extras = vec![("recycle_off_allocs", 2048), ("recycle_on_allocs", 300)];
        let doc = committed(&[]);
        assert!(check(&[ok], &doc).passed());
        assert!(!check(&[bad], &doc).passed());
    }

    #[test]
    fn mega_rows_gate_on_flat_memory_when_probed() {
        let mut flat = meas("machine_pool/mega", "arc_pool", 1.5);
        flat.extras = vec![
            ("alloc_probe", 1),
            ("steady_allocs", 0),
            ("steady_frees", 0),
        ];
        let mut leaky = flat.clone();
        leaky.extras = vec![
            ("alloc_probe", 1),
            ("steady_allocs", 7),
            ("steady_frees", 0),
        ];
        let mut unprobed = flat.clone();
        unprobed.extras = vec![("alloc_probe", 0), ("steady_allocs", 7)];
        let doc = committed(&[("machine_pool/mega", 1.4)]);
        assert!(check(&[flat], &doc).passed());
        assert!(!check(&[leaky], &doc).passed());
        // Without the counting allocator the flatness check is vacuous
        // (counters never moved), so only the speedup floor applies.
        assert!(check(&[unprobed], &doc).passed());
    }

    #[test]
    fn service_rows_gate_on_sessions_per_sec_and_flat_memory() {
        let mut fast = meas("service/steady/open_loop", "sessions_floor", 1.0);
        fast.extras = vec![
            ("sessions_per_sec", SESSIONS_FLOOR * 10),
            ("alloc_probe", 1),
            ("steady_allocs", 0),
            ("steady_frees", 0),
        ];
        let doc = committed(&[]);
        assert!(check(std::slice::from_ref(&fast), &doc).passed());
        let mut slow = fast.clone();
        slow.extras = vec![("sessions_per_sec", SESSIONS_FLOOR - 1)];
        assert!(!check(std::slice::from_ref(&slow), &doc).passed());
        // A leaky steady state fails even at full throughput.
        let mut leaky = fast.clone();
        leaky.extras = vec![
            ("sessions_per_sec", SESSIONS_FLOOR * 10),
            ("alloc_probe", 1),
            ("steady_allocs", 3),
            ("steady_frees", 0),
        ];
        assert!(!check(std::slice::from_ref(&leaky), &doc).passed());
        // A committed row below the hard floor halves into the binding
        // threshold instead of the constant.
        let committed_slow = {
            let mut obj = serde_json::Map::new();
            obj.insert(
                "workload".into(),
                serde_json::Value::String("service/steady/open_loop".into()),
            );
            obj.insert("sessions_per_sec".into(), serde_json::Value::from(6_000u64));
            serde_json::Value::Array(vec![serde_json::Value::Object(obj)])
        };
        let mut ok = fast.clone();
        ok.extras = vec![("sessions_per_sec", 3_100)];
        assert!(check(std::slice::from_ref(&ok), &committed_slow).passed());
        let mut bad = fast;
        bad.extras = vec![("sessions_per_sec", 2_900)];
        assert!(!check(std::slice::from_ref(&bad), &committed_slow).passed());
    }

    #[test]
    fn reduction_rows_gate_on_execution_counts() {
        let doc = {
            let mut obj = serde_json::Map::new();
            obj.insert(
                "workload".into(),
                serde_json::Value::String("explore_reduced/compete3".into()),
            );
            obj.insert("speedup".into(), serde_json::Value::Float(100.0));
            obj.insert("execs_explored".into(), serde_json::Value::from(11u64));
            serde_json::Value::Array(vec![serde_json::Value::Object(obj)])
        };
        let mut ok = meas("explore_reduced/compete3", "unreduced", 50.0);
        ok.extras = vec![("execs_explored", 11), ("execs_unreduced", 73_608)];
        assert!(check(std::slice::from_ref(&ok), &doc).passed());
        // Exploring more than 110% of the committed count fails even
        // though the timing floor still passes.
        let mut crept = ok.clone();
        crept.extras = vec![("execs_explored", 14), ("execs_unreduced", 73_608)];
        assert!(!check(std::slice::from_ref(&crept), &doc).passed());
        // Losing the 5x floor fails regardless of the committed row.
        let mut shallow = ok.clone();
        shallow.extras = vec![("execs_explored", 11), ("execs_unreduced", 54)];
        assert!(!check(&[shallow], &doc).passed());
        // A row with no committed counterpart gates on the 5x floor
        // alone.
        let mut fresh = ok;
        fresh.workload = "explore_reduced/new".into();
        assert!(check(&[fresh], &doc).passed());
    }

    #[test]
    fn merge_preserves_foreign_rows_and_replaces_by_key() {
        let dir = std::env::temp_dir().join(format!("exsel_gate_{}", std::process::id()));
        let path = dir.to_string_lossy().to_string();
        let first = vec![meas("a x8", "threads", 10.0), meas("b", "pr2_boxed", 3.0)];
        merge_into_artifact(&path, &first).unwrap();
        // Re-merge only `a`, at a different trial count: replaces in
        // place, keeps `b`.
        let second = vec![meas("a x64", "threads", 12.0)];
        merge_into_artifact(&path, &second).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let serde_json::Value::Array(rows) = serde_json::from_str(&text).unwrap() else {
            panic!("artifact is not an array");
        };
        assert_eq!(rows.len(), 2);
        assert!(text.contains("a x64"));
        assert!(!text.contains("a x8"));
        assert!(text.contains("\"b\""));
    }
}
