//! Shared execution helpers: run a renaming algorithm under the
//! deterministic simulator or on real threads, collecting names and step
//! counts.

use std::collections::BTreeSet;

use exsel_core::{Rename, StepRename};
use exsel_shm::{Ctx, Pid, StepMachine, ThreadedShm};
use exsel_sim::{policy::RandomPolicy, SimBuilder, StepEngine};

/// The outcome of one renaming execution.
#[derive(Clone, Debug)]
pub struct RenamingRun {
    /// Acquired names per contender (None = instance reported `Failed` or
    /// the process crashed).
    pub names: Vec<Option<u64>>,
    /// Local steps per contender.
    pub steps: Vec<u64>,
}

impl RenamingRun {
    /// Maximum local steps over contenders — the worst-case step
    /// complexity of the execution.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.steps.iter().copied().max().unwrap_or(0)
    }

    /// Mean local steps.
    #[must_use]
    pub fn mean_steps(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().sum::<u64>() as f64 / self.steps.len() as f64
    }

    /// Largest name handed out.
    #[must_use]
    pub fn max_name(&self) -> u64 {
        self.names.iter().flatten().copied().max().unwrap_or(0)
    }

    /// How many contenders were named.
    #[must_use]
    pub fn named(&self) -> usize {
        self.names.iter().flatten().count()
    }

    /// Exclusiveness check: no two contenders share a name.
    ///
    /// # Panics
    ///
    /// Panics on violation — a bug in the algorithm under test.
    pub fn assert_exclusive(&self) {
        let names: Vec<u64> = self.names.iter().flatten().copied().collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len(), "duplicate names: {names:?}");
    }
}

/// Runs `originals.len()` contenders through `algo` on the deterministic
/// simulator under a seeded random schedule; step counts are exactly
/// reproducible.
pub fn run_sim<R>(algo: &R, num_registers: usize, originals: &[u64], seed: u64) -> RenamingRun
where
    R: Rename + ?Sized,
{
    let outcome = SimBuilder::new(num_registers, Box::new(RandomPolicy::new(seed)))
        .stack_size(256 * 1024)
        .run(originals.len(), |ctx| {
            algo.rename(ctx, originals[ctx.pid().0]).map(|o| o.name())
        });
    let run = RenamingRun {
        names: outcome
            .results
            .into_iter()
            .map(|r| r.ok().flatten())
            .collect(),
        steps: outcome.steps,
    };
    run.assert_exclusive();
    run
}

/// [`run_sim`] on the single-threaded `StepEngine`: no thread spawns, so
/// large contender counts and long seed sweeps run at memory speed. The
/// same seed produces the same execution as [`run_sim`] (the blocking
/// renaming APIs are `drive` adapters over the same step machines).
pub fn run_sim_engine<R>(
    algo: &R,
    num_registers: usize,
    originals: &[u64],
    seed: u64,
) -> RenamingRun
where
    R: StepRename + ?Sized,
{
    let outcome = StepEngine::new(num_registers, Box::new(RandomPolicy::new(seed))).run(
        originals
            .iter()
            .enumerate()
            .map(
                |(p, &orig)| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                    Box::new(
                        algo.begin_rename(Pid(p), orig)
                            .map_output(exsel_core::Outcome::name),
                    )
                },
            )
            .collect(),
    );
    let run = RenamingRun {
        names: outcome
            .results
            .into_iter()
            .map(|r| r.ok().flatten())
            .collect(),
        steps: outcome.steps,
    };
    run.assert_exclusive();
    run
}

/// Runs contenders on real OS threads over [`ThreadedShm`]. Step counts
/// are schedule-dependent but indicative; use for larger instances than
/// the simulator can handle comfortably.
pub fn run_threaded<R>(algo: &R, num_registers: usize, originals: &[u64]) -> RenamingRun
where
    R: Rename + ?Sized,
{
    let mem = ThreadedShm::new(num_registers, originals.len());
    let names: Vec<Option<u64>> = std::thread::scope(|s| {
        originals
            .iter()
            .enumerate()
            .map(|(p, &orig)| {
                let mem = &mem;
                s.spawn(move || algo.rename(Ctx::new(mem, Pid(p)), orig).unwrap().name())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let steps: Vec<u64> = (0..originals.len())
        .map(|p| exsel_shm::Memory::steps(&mem, Pid(p)))
        .collect();
    let run = RenamingRun { names, steps };
    run.assert_exclusive();
    run
}

/// Evenly spread distinct original names in `[1, n_names]`.
#[must_use]
pub fn spread_originals(k: usize, n_names: usize) -> Vec<u64> {
    assert!(k <= n_names, "more contenders than names");
    (0..k).map(|i| (i * n_names / k) as u64 + 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_core::{MoirAnderson, RenameConfig};
    use exsel_shm::RegAlloc;

    #[test]
    fn sim_run_is_reproducible() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 4);
        let originals = spread_originals(4, 64);
        let a = run_sim(&algo, alloc.total(), &originals, 11);
        // Fresh memory per run: rebuild.
        let mut alloc2 = RegAlloc::new();
        let algo2 = MoirAnderson::new(&mut alloc2, 4);
        let b = run_sim(&algo2, alloc2.total(), &originals, 11);
        assert_eq!(a.names, b.names);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn engine_run_matches_thread_backed_run() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 5);
        let originals = spread_originals(5, 100);
        for seed in [0u64, 7, 23] {
            let threaded = run_sim(&algo, alloc.total(), &originals, seed);
            let engine = run_sim_engine(&algo, alloc.total(), &originals, seed);
            assert_eq!(threaded.names, engine.names, "seed {seed}");
            assert_eq!(threaded.steps, engine.steps, "seed {seed}");
        }
    }

    #[test]
    fn threaded_run_names_everyone() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 6);
        let run = run_threaded(&algo, alloc.total(), &spread_originals(6, 100));
        assert_eq!(run.named(), 6);
        assert!(run.max_steps() <= 4 * 6);
        assert!(run.mean_steps() > 0.0);
    }

    #[test]
    fn spread_originals_distinct_in_range() {
        let o = spread_originals(8, 64);
        let set: BTreeSet<u64> = o.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(o.iter().all(|&v| (1..=64).contains(&v)));
    }

    #[test]
    fn cfg_smoke() {
        // Keep the shared config constructible from this crate.
        let _ = RenameConfig::default();
    }
}
