//! Shared execution helpers: run a renaming algorithm under the
//! deterministic simulator or on real threads, collecting names and step
//! counts — plus the **one generic trial loop** ([`sweep`]) that every
//! experiment and scenario shares: rebuild the algorithm fresh per seed,
//! run it on a reusable [`StepEngine`], fold worst-case statistics.

use std::collections::BTreeSet;
use std::ops::Range;

use exsel_core::{Rename, StepRename};
use exsel_shm::{Ctx, Pid, RegAlloc, RegisterBank, StepMachine, ThreadedShm};
use exsel_sim::{
    policy::RandomPolicy, AlgoSet, MachinePool, MachineSet, Metrics, Policy, SimBuilder,
    SimOutcome, StepEngine,
};

/// The outcome of one renaming execution.
#[derive(Clone, Debug)]
pub struct RenamingRun {
    /// Acquired names per contender (None = instance reported `Failed` or
    /// the process crashed).
    pub names: Vec<Option<u64>>,
    /// Local steps per contender.
    pub steps: Vec<u64>,
    /// Contenders crashed by the adversary.
    pub crashed: usize,
    /// Contenders crashed by op-budget exhaustion (kept distinct from
    /// adversary crashes; see `SimOutcome::budget_crashed`).
    pub budget_crashed: usize,
}

impl RenamingRun {
    /// Maximum local steps over contenders — the worst-case step
    /// complexity of the execution.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.steps.iter().copied().max().unwrap_or(0)
    }

    /// Mean local steps.
    #[must_use]
    pub fn mean_steps(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().sum::<u64>() as f64 / self.steps.len() as f64
    }

    /// Largest name handed out.
    #[must_use]
    pub fn max_name(&self) -> u64 {
        self.names.iter().flatten().copied().max().unwrap_or(0)
    }

    /// How many contenders were named.
    #[must_use]
    pub fn named(&self) -> usize {
        self.names.iter().flatten().count()
    }

    /// Exclusiveness check: no two contenders share a name.
    ///
    /// # Panics
    ///
    /// Panics on violation — a bug in the algorithm under test.
    pub fn assert_exclusive(&self) {
        let names: Vec<u64> = self.names.iter().flatten().copied().collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len(), "duplicate names: {names:?}");
    }
}

/// Digests a simulated execution into a [`RenamingRun`] and checks
/// exclusiveness — the one folding point for all backends.
fn digest(outcome: SimOutcome<Option<u64>>) -> RenamingRun {
    let run = RenamingRun {
        crashed: outcome.crashed.len(),
        budget_crashed: outcome.budget_crashed.len(),
        names: outcome
            .results
            .into_iter()
            .map(|r| r.ok().flatten())
            .collect(),
        steps: outcome.steps,
    };
    run.assert_exclusive();
    run
}

/// The renaming machines of `originals.len()` contenders of `algo`
/// (contender `p` holds `originals[p]`), ready for a `StepEngine` trial.
pub fn machines<'a, R>(
    algo: &'a R,
    originals: &[u64],
) -> Vec<Box<dyn StepMachine<Output = Option<u64>> + 'a>>
where
    R: StepRename + ?Sized,
{
    originals
        .iter()
        .enumerate()
        .map(
            |(p, &orig)| -> Box<dyn StepMachine<Output = Option<u64>> + 'a> {
                Box::new(
                    algo.begin_rename(Pid(p), orig)
                        .map_output(exsel_core::Outcome::name),
                )
            },
        )
        .collect()
}

/// Runs `originals.len()` contenders through `algo` on the deterministic
/// simulator under a seeded random schedule; step counts are exactly
/// reproducible.
pub fn run_sim<R>(algo: &R, num_registers: usize, originals: &[u64], seed: u64) -> RenamingRun
where
    R: Rename + ?Sized,
{
    let outcome = SimBuilder::new(num_registers, Box::new(RandomPolicy::new(seed)))
        .stack_size(256 * 1024)
        .run(originals.len(), |ctx| {
            algo.rename(ctx, originals[ctx.pid().0]).map(|o| o.name())
        });
    digest(outcome)
}

/// [`run_sim`] on the single-threaded `StepEngine`: no thread spawns, so
/// large contender counts and long seed sweeps run at memory speed. The
/// same seed produces the same execution as [`run_sim`] (the blocking
/// renaming APIs are `drive` adapters over the same step machines).
pub fn run_sim_engine<R>(
    algo: &R,
    num_registers: usize,
    originals: &[u64],
    seed: u64,
) -> RenamingRun
where
    R: StepRename + ?Sized,
{
    let mut engine = StepEngine::reusable(num_registers);
    let mut policy = RandomPolicy::new(seed);
    run_sim_engine_with(&mut engine, algo, originals, &mut policy)
}

/// [`run_sim_engine`] over a caller-held reusable engine and policy:
/// consecutive trials keep the engine's register bank, pending-op
/// scratch and metric buffers instead of reallocating per run. Point the
/// engine at the right register count with `StepEngine::set_registers`
/// before calling when the algorithm changed.
pub fn run_sim_engine_with<R>(
    engine: &mut StepEngine,
    algo: &R,
    originals: &[u64],
    policy: &mut dyn Policy,
) -> RenamingRun
where
    R: StepRename + ?Sized,
{
    digest(engine.run_trial(policy, machines(algo, originals)))
}

/// Runs contenders on real OS threads over [`ThreadedShm`]. Step counts
/// are schedule-dependent but indicative; use for larger instances than
/// the simulator can handle comfortably.
pub fn run_threaded<R>(algo: &R, num_registers: usize, originals: &[u64]) -> RenamingRun
where
    R: Rename + ?Sized,
{
    let mem = ThreadedShm::new(num_registers, originals.len());
    let names: Vec<Option<u64>> = std::thread::scope(|s| {
        originals
            .iter()
            .enumerate()
            .map(|(p, &orig)| {
                let mem = &mem;
                s.spawn(move || algo.rename(Ctx::new(mem, Pid(p)), orig).unwrap().name())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let steps: Vec<u64> = (0..originals.len())
        .map(|p| exsel_shm::Memory::steps(&mem, Pid(p)))
        .collect();
    let run = RenamingRun {
        names,
        steps,
        crashed: 0,
        budget_crashed: 0,
    };
    run.assert_exclusive();
    run
}

/// Worst-case statistics folded over a seed sweep by [`sweep`].
#[derive(Clone, Debug)]
pub struct TrialStats {
    /// Registers the (last-built) algorithm instance reserved.
    pub registers: usize,
    /// Largest name handed out in any trial.
    pub max_name: u64,
    /// Fewest contenders named in any trial.
    pub min_named: usize,
    /// Worst per-trial count of contenders that neither crashed nor got
    /// a name — 0 for every algorithm that names all survivors.
    pub max_unnamed_survivors: usize,
    /// Engine metrics merged over trials (op mix, per-register
    /// histogram, contention, crash causes, worst steps).
    pub metrics: Metrics,
}

impl TrialStats {
    /// Trials run.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.metrics.trials
    }

    /// Worst max-steps over trials.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.metrics.max_steps
    }

    /// Adversary crashes, totalled over trials.
    #[must_use]
    pub fn crashed(&self) -> usize {
        self.metrics.adversary_crashes
    }

    /// Budget-exhaustion crashes, totalled over trials.
    #[must_use]
    pub fn budget_crashed(&self) -> usize {
        self.metrics.budget_crashes
    }
}

/// The one generic trial loop behind every experiment table and grid
/// scenario: for each seed, rebuild the algorithm fresh (`build`), run
/// one trial of `originals` under `policy(seed)` on the reused `engine`,
/// check exclusiveness and fold worst-case statistics.
pub fn sweep<A, B, P>(
    engine: &mut StepEngine,
    seeds: Range<u64>,
    originals: &[u64],
    build: B,
    policy: P,
) -> TrialStats
where
    A: StepRename,
    B: Fn(&mut RegAlloc) -> A,
    P: Fn(u64) -> Box<dyn Policy>,
{
    let mut stats = TrialStats {
        registers: 0,
        max_name: 0,
        min_named: originals.len(),
        max_unnamed_survivors: 0,
        metrics: Metrics::default(),
    };
    for seed in seeds {
        let mut alloc = RegAlloc::new();
        let algo = build(&mut alloc);
        engine.set_registers(alloc.total());
        let mut policy = policy(seed);
        let run = run_sim_engine_with(engine, &algo, originals, policy.as_mut());
        stats.registers = alloc.total();
        stats.max_name = stats.max_name.max(run.max_name());
        stats.min_named = stats.min_named.min(run.named());
        stats.max_unnamed_survivors = stats.max_unnamed_survivors.max(
            originals
                .len()
                .saturating_sub(run.crashed + run.budget_crashed + run.named()),
        );
        stats.metrics.merge(engine.metrics());
    }
    stats
}

/// The allocation-free form of [`sweep`]: the algorithm instance is
/// built **once** per call, a [`MachinePool`] of [`MachineSet`] machines
/// is built once from it, and every seed's trial re-drives that pool via
/// [`StepEngine::run_pool`] — no per-trial machine boxes, no per-trial
/// result vectors. Trials are trace-identical to [`sweep`]'s
/// rebuild-per-seed form because algorithm construction is deterministic
/// and the engine resets all shared state between trials (tested in
/// `tests/engine_determinism.rs`).
///
/// Works for every algorithm family ([`AlgoSet`]), not just renamers:
/// per-trial safety asserts that completed processes' *claims* (names /
/// value registers / claimed integers) are pairwise distinct. Generic
/// over the engine's register-bank backend, so the same sweep runs on
/// the `Arc` bank and the slab bank.
///
/// # Panics
///
/// Panics if two processes ever hold the same claim.
pub fn sweep_pool<Bank, B, P>(
    engine: &mut StepEngine<Bank>,
    seeds: Range<u64>,
    originals: &[u64],
    build: B,
    policy: P,
) -> TrialStats
where
    Bank: RegisterBank,
    B: FnOnce(&mut RegAlloc) -> AlgoSet,
    P: Fn(u64) -> Box<dyn Policy>,
{
    sweep_pool_sharded(engine, seeds, originals, build, policy, 1)
}

/// [`sweep_pool`] over the sharded grant loop
/// ([`StepEngine::run_pool_sharded`]): the pending set is split into
/// `shards` contiguous pid ranges and the policy decides in cache-local
/// batches per shard. `shards == 1` is exactly [`sweep_pool`] (the
/// engine delegates to the unsharded loop); `shards > 1` is its own
/// deterministic adversary — same safety guarantees, different traces.
///
/// # Panics
///
/// Panics if two processes ever hold the same claim, or if
/// `shards == 0`.
pub fn sweep_pool_sharded<Bank, B, P>(
    engine: &mut StepEngine<Bank>,
    seeds: Range<u64>,
    originals: &[u64],
    build: B,
    policy: P,
    shards: usize,
) -> TrialStats
where
    Bank: RegisterBank,
    B: FnOnce(&mut RegAlloc) -> AlgoSet,
    P: Fn(u64) -> Box<dyn Policy>,
{
    let mut alloc = RegAlloc::new();
    let algo = build(&mut alloc);
    engine.set_registers(alloc.total());
    let mut pool: MachinePool<MachineSet<'_>> = algo.pool(originals);
    // Naming machines claim several integers per trial, so the fewest-
    // claims fold must not be capped at the contender count.
    let mut stats = TrialStats {
        registers: alloc.total(),
        max_name: 0,
        min_named: usize::MAX,
        max_unnamed_survivors: 0,
        metrics: Metrics::default(),
    };
    // Snapshot-arena telemetry is cumulative per object: window the
    // sweep so the folded metrics report only this sweep's allocation
    // and recycling traffic.
    let arena_before = algo.snapshot_arena().map(|a| a.stats());
    let mut claims: Vec<u64> = Vec::with_capacity(originals.len());
    for seed in seeds {
        let mut policy = policy(seed);
        engine.run_pool_sharded(policy.as_mut(), &mut pool, shards);
        // Audit every exclusive claim of the trial. Naming and deposit
        // machines may commit several claims per trial (and claims
        // committed before a crash are permanent), so read the machines'
        // full claim lists — not just each completed process's final
        // output. `claimants` counts *processes* holding at least one
        // claim, which is what the unnamed-survivors gate compares
        // against (total claims can exceed the process count); serve-only
        // deposit machines legitimately claim nothing and are counted as
        // claimants so the gate does not flag them.
        claims.clear();
        let mut claimants = 0usize;
        for (machine, result) in pool.machines().iter().zip(pool.results()) {
            let had = claims.len();
            match machine {
                MachineSet::Naming(m) => claims.extend_from_slice(m.names()),
                MachineSet::Deposit(m) => {
                    claims.extend_from_slice(m.deposits());
                    claimants += usize::from(m.is_server());
                }
                _ => {
                    if let Some(Ok(out)) = result {
                        claims.extend(out.claim());
                    }
                }
            }
            claimants += usize::from(claims.len() > had);
        }
        claims.sort_unstable();
        assert!(
            claims.windows(2).all(|w| w[0] != w[1]),
            "duplicate claims: {claims:?}"
        );
        let trial = engine.metrics();
        stats.max_name = stats.max_name.max(claims.last().copied().unwrap_or(0));
        stats.min_named = stats.min_named.min(claims.len());
        stats.max_unnamed_survivors = stats.max_unnamed_survivors.max(
            originals
                .len()
                .saturating_sub(trial.adversary_crashes + trial.budget_crashes + claimants),
        );
        stats.metrics.merge(trial);
    }
    if stats.metrics.trials == 0 {
        stats.min_named = 0;
    }
    if let (Some(arena), Some(before)) = (algo.snapshot_arena(), arena_before) {
        stats.metrics.record_snapshot(&arena.stats().since(&before));
    }
    stats
}

/// [`sweep`] under the plain seeded-random schedule — the default
/// adversary of the experiment tables.
pub fn sweep_random<A, B>(
    engine: &mut StepEngine,
    seeds: Range<u64>,
    originals: &[u64],
    build: B,
) -> TrialStats
where
    A: StepRename,
    B: Fn(&mut RegAlloc) -> A,
{
    sweep(engine, seeds, originals, build, |seed| {
        Box::new(RandomPolicy::new(seed))
    })
}

/// Evenly spread distinct original names in `[1, n_names]`.
#[must_use]
pub fn spread_originals(k: usize, n_names: usize) -> Vec<u64> {
    assert!(k <= n_names, "more contenders than names");
    (0..k).map(|i| (i * n_names / k) as u64 + 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_core::{MoirAnderson, RenameConfig};
    use exsel_sim::policy::CrashStorm;

    #[test]
    fn sim_run_is_reproducible() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 4);
        let originals = spread_originals(4, 64);
        let a = run_sim(&algo, alloc.total(), &originals, 11);
        // Fresh memory per run: rebuild.
        let mut alloc2 = RegAlloc::new();
        let algo2 = MoirAnderson::new(&mut alloc2, 4);
        let b = run_sim(&algo2, alloc2.total(), &originals, 11);
        assert_eq!(a.names, b.names);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn engine_run_matches_thread_backed_run() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 5);
        let originals = spread_originals(5, 100);
        for seed in [0u64, 7, 23] {
            let threaded = run_sim(&algo, alloc.total(), &originals, seed);
            let engine = run_sim_engine(&algo, alloc.total(), &originals, seed);
            assert_eq!(threaded.names, engine.names, "seed {seed}");
            assert_eq!(threaded.steps, engine.steps, "seed {seed}");
        }
    }

    #[test]
    fn sweep_folds_worst_cases_and_reuses_the_engine() {
        let originals = spread_originals(4, 64);
        let mut engine = StepEngine::reusable(0);
        let stats = sweep_random(&mut engine, 0..5, &originals, |alloc| {
            MoirAnderson::new(alloc, 4)
        });
        assert_eq!(stats.trials(), 5);
        assert_eq!(stats.min_named, 4);
        assert!(stats.max_steps() > 0);
        assert_eq!(stats.metrics.trials, 5);
        assert_eq!(stats.crashed(), 0);

        // The folded worst cases match a hand-rolled loop of single runs.
        let mut max_steps = 0;
        let mut max_name = 0;
        for seed in 0..5 {
            let mut alloc = RegAlloc::new();
            let algo = MoirAnderson::new(&mut alloc, 4);
            let run = run_sim_engine(&algo, alloc.total(), &originals, seed);
            max_steps = max_steps.max(run.max_steps());
            max_name = max_name.max(run.max_name());
        }
        assert_eq!(stats.max_steps(), max_steps);
        assert_eq!(stats.max_name, max_name);
    }

    #[test]
    fn pooled_sweep_matches_boxed_sweep_bit_for_bit() {
        let originals = spread_originals(4, 64);
        let mut engine = StepEngine::reusable(0).measure_contention(true);
        let boxed = sweep_random(&mut engine, 0..6, &originals, |alloc| {
            MoirAnderson::new(alloc, 4)
        });
        let mut engine = StepEngine::reusable(0).measure_contention(true);
        let pooled = sweep_pool(
            &mut engine,
            0..6,
            &originals,
            |alloc| AlgoSet::MoirAnderson(MoirAnderson::new(alloc, 4)),
            |seed| Box::new(RandomPolicy::new(seed)),
        );
        // Same trials ⇒ identical folded statistics, metrics included.
        assert_eq!(boxed.metrics, pooled.metrics);
        assert_eq!(boxed.max_name, pooled.max_name);
        assert_eq!(boxed.min_named, pooled.min_named);
        assert_eq!(boxed.registers, pooled.registers);
        assert_eq!(boxed.max_unnamed_survivors, pooled.max_unnamed_survivors);
    }

    #[test]
    fn sharded_sweep_is_safe_and_one_shard_matches_unsharded() {
        let originals = spread_originals(8, 64);
        let build = |alloc: &mut RegAlloc| AlgoSet::MoirAnderson(MoirAnderson::new(alloc, 8));
        let policy = |seed: u64| -> Box<dyn Policy> { Box::new(RandomPolicy::new(seed)) };
        let mut engine = StepEngine::reusable(0);
        let unsharded = sweep_pool(&mut engine, 0..4, &originals, build, policy);
        // One shard delegates to the unsharded grant loop: identical
        // trials, identical folded metrics.
        let mut engine = StepEngine::reusable(0);
        let one = sweep_pool_sharded(&mut engine, 0..4, &originals, build, policy, 1);
        assert_eq!(unsharded.metrics, one.metrics);
        assert_eq!(unsharded.max_name, one.max_name);
        // Four shards is a different (still deterministic) adversary:
        // safety holds and every granted op lands in some shard.
        let mut engine = StepEngine::reusable(0);
        let four = sweep_pool_sharded(&mut engine, 0..4, &originals, build, policy, 4);
        assert_eq!(four.max_unnamed_survivors, 0);
        assert_eq!(four.min_named, 8);
        assert_eq!(four.metrics.shard_ops.len(), 4);
        assert_eq!(
            four.metrics.shard_ops.iter().sum::<u64>(),
            four.metrics.total_ops
        );
    }

    #[test]
    fn sweep_reports_adversary_crashes() {
        let originals = spread_originals(6, 64);
        let mut engine = StepEngine::reusable(0);
        let stats = sweep(
            &mut engine,
            0..4,
            &originals,
            |alloc| MoirAnderson::new(alloc, 6),
            |seed| {
                Box::new(CrashStorm::new(
                    Box::new(RandomPolicy::new(seed)),
                    !seed,
                    0.2,
                    2,
                ))
            },
        );
        assert!(stats.crashed() > 0, "storm never crashed anyone");
        assert_eq!(stats.budget_crashed(), 0);
        assert!(stats.min_named < originals.len());
    }

    #[test]
    fn threaded_run_names_everyone() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 6);
        let run = run_threaded(&algo, alloc.total(), &spread_originals(6, 100));
        assert_eq!(run.named(), 6);
        assert!(run.max_steps() <= 4 * 6);
        assert!(run.mean_steps() > 0.0);
    }

    #[test]
    fn spread_originals_distinct_in_range() {
        let o = spread_originals(8, 64);
        let set: BTreeSet<u64> = o.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(o.iter().all(|&v| (1..=64).contains(&v)));
    }

    #[test]
    fn cfg_smoke() {
        // Keep the shared config constructible from this crate.
        let _ = RenameConfig::default();
    }
}
