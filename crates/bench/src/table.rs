//! Aligned text tables plus JSON-lines output for experiment results.

use serde_json::{Map, Value};

/// An experiment result table. Collect rows, then [`Table::print`] for the
/// human-readable form or [`Table::print_json`] for machine-readable JSON
/// lines (one object per row, keyed by header).
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table titled `title` with the given column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the text form to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Prints one JSON object per row to stdout.
    pub fn print_json(&self) {
        for row in &self.rows {
            let mut obj = Map::new();
            obj.insert("table".into(), Value::String(self.title.clone()));
            for (h, c) in self.headers.iter().zip(row) {
                // Numbers stay numbers where they parse.
                let v = c
                    .parse::<i64>()
                    .map(Value::from)
                    .or_else(|_| c.parse::<f64>().map(Value::from))
                    .unwrap_or_else(|_| Value::String(c.clone()));
                obj.insert(h.clone(), v);
            }
            println!("{}", Value::Object(obj));
        }
    }

    /// Prints text, or JSON lines when the process arguments contain
    /// `--json`.
    pub fn emit(&self) {
        if std::env::args().any(|a| a == "--json") {
            self.print_json();
        } else {
            self.print();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["k", "steps"]);
        t.row(&["2".into(), "10".into()]);
        t.row(&["16".into(), "1234".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains(" 2"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into()]);
    }
}
