//! The README's scenario catalog is generated from the registry and
//! asserted here: adding, renaming or re-describing a scenario without
//! regenerating the README block fails this test, so the documented
//! catalog can never drift from what `expt -- list` actually offers.

use exsel_bench::scenario::catalog;

const BEGIN: &str = "<!-- expt-list:begin -->";
const END: &str = "<!-- expt-list:end -->";

#[test]
fn readme_catalog_matches_registry() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(path).expect("README.md at the repository root");
    let begin = readme
        .find(BEGIN)
        .expect("README missing expt-list:begin marker");
    let end = readme
        .find(END)
        .expect("README missing expt-list:end marker");
    assert!(begin < end, "markers out of order");

    // The block between the markers is one fenced ```text code block.
    let block = &readme[begin + BEGIN.len()..end];
    let embedded: String = block
        .lines()
        .skip_while(|l| !l.starts_with("```"))
        .skip(1)
        .take_while(|l| !l.starts_with("```"))
        .flat_map(|l| [l.trim_end(), "\n"])
        .collect();
    let generated: String = catalog()
        .lines()
        .flat_map(|l| [l.trim_end(), "\n"])
        .collect();
    assert_eq!(
        embedded, generated,
        "README scenario catalog drifted from the registry — paste the output of \
         `exsel_bench::scenario::catalog()` between the expt-list markers"
    );
}
