//! T10 (wall clock) — repository deposit latency: selfish (non-blocking)
//! vs altruistic (wait-free) on real threads under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
use exsel_unbounded::{AltruisticDeposit, SelfishDeposit};

fn bench_repository(c: &mut Criterion) {
    let mut group = c.benchmark_group("repository_deposit");
    group.sample_size(20);

    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("selfish_burst", n), &n, |b, &n| {
            b.iter(|| {
                let mut alloc = RegAlloc::new();
                let repo = SelfishDeposit::new(&mut alloc, n, 64 * n);
                let mem = ThreadedShm::new(alloc.total(), n);
                std::thread::scope(|s| {
                    for p in 0..n {
                        let (repo, mem) = (&repo, &mem);
                        s.spawn(move || {
                            let ctx = Ctx::new(mem, Pid(p));
                            let mut st = repo.depositor_state();
                            for i in 0..8u64 {
                                repo.deposit(ctx, &mut st, i).unwrap();
                            }
                        });
                    }
                });
            });
        });
        group.bench_with_input(BenchmarkId::new("altruistic_burst", n), &n, |b, &n| {
            b.iter(|| {
                let mut alloc = RegAlloc::new();
                let repo = AltruisticDeposit::new(&mut alloc, n, 128 * n);
                let mem = ThreadedShm::new(alloc.total(), n);
                std::thread::scope(|s| {
                    for p in 0..n {
                        let (repo, mem) = (&repo, &mem);
                        s.spawn(move || {
                            let ctx = Ctx::new(mem, Pid(p));
                            let mut st = repo.depositor_state(Pid(p));
                            for i in 0..8u64 {
                                repo.deposit(ctx, &mut st, i).unwrap();
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repository);
criterion_main!(benches);
