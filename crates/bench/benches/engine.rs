//! Execution-backend comparison: the thread-backed lock-step scheduler
//! (`SimBuilder`) vs the single-threaded step-machine engine
//! (`StepEngine`) on identical workloads — a full Majority-renaming round
//! under a seeded random schedule, exhaustive schedule exploration of
//! `Compete-For-Register` at a fixed depth, and a pigeonhole-adversary
//! run. The executions themselves are identical (same policy ⇒ same
//! trace); only the machinery differs.
//!
//! `cargo bench -p exsel-bench --bench engine`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exsel_bench::runner::{run_sim, run_sim_engine, run_sim_engine_with, spread_originals};
use exsel_core::{Majority, MoirAnderson, Outcome, Rename, RenameConfig, SlotBank, StepRename};
use exsel_lowerbound::{run_against, run_machines_against};
use exsel_shm::{RegAlloc, StepMachine};
use exsel_sim::explore::{explore, explore_engine, explore_pool};
use exsel_sim::policy::RandomPolicy;
use exsel_sim::{AlgoSet, MachinePool, StepEngine};

fn bench_majority_round(c: &mut Criterion) {
    let cfg = RenameConfig::default();
    let mut group = c.benchmark_group("backend_majority");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 256, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 256);
        group.bench_with_input(BenchmarkId::new("threads", k), &k, |b, _| {
            b.iter(|| run_sim(&algo, regs, &originals, 42));
        });
        group.bench_with_input(BenchmarkId::new("step_engine", k), &k, |b, _| {
            b.iter(|| run_sim_engine(&algo, regs, &originals, 42));
        });
    }
    group.finish();
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_explore");
    group.sample_size(10);
    // Three contenders on one compete slot: exhaustive schedule tree,
    // thousands of executions per iteration.
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let regs = alloc.total();
    group.bench_with_input(BenchmarkId::new("threads", 3), &3, |b, _| {
        b.iter(|| {
            explore(
                regs,
                3,
                u64::MAX,
                |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
                |_| {},
            )
        });
    });
    group.bench_with_input(BenchmarkId::new("step_engine", 3), &3, |b, _| {
        b.iter(|| {
            explore_engine(
                regs,
                3,
                u64::MAX,
                |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
                |_| {},
            )
        });
    });
    group.finish();
}

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_adversary");
    group.sample_size(10);
    let (k, n) = (8usize, 256usize);
    let mut alloc = RegAlloc::new();
    let algo = MoirAnderson::new(&mut alloc, k);
    let regs = alloc.total();
    let m = algo.name_bound();
    group.bench_with_input(BenchmarkId::new("threads", n), &n, |b, _| {
        b.iter(|| {
            run_against(n, regs, k, m, regs as u64, |ctx| {
                Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
            })
        });
    });
    group.bench_with_input(BenchmarkId::new("step_engine", n), &n, |b, _| {
        b.iter(|| {
            run_machines_against(n, regs, k, m, regs as u64, |pid| {
                Box::new(
                    algo.begin_rename(pid, pid.0 as u64 + 1)
                        .map_output(Outcome::name),
                )
            })
        });
    });
    group.finish();
}

fn bench_engine_reuse(c: &mut Criterion) {
    // Fresh engine per trial vs one reusable engine across a seed sweep:
    // the reused engine must be no slower (target: faster), since it
    // keeps its register bank and scratch buffers across trials.
    let cfg = RenameConfig::default();
    let mut group = c.benchmark_group("engine_reuse");
    group.sample_size(10);
    let trials = 32u64;
    for k in [8usize, 32] {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 1024, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 1024);
        group.bench_with_input(BenchmarkId::new("fresh", k), &k, |b, _| {
            b.iter(|| {
                for seed in 0..trials {
                    run_sim_engine(&algo, regs, &originals, seed);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("reused", k), &k, |b, _| {
            b.iter(|| {
                let mut engine = StepEngine::reusable(regs);
                for seed in 0..trials {
                    let mut policy = RandomPolicy::new(seed);
                    run_sim_engine_with(&mut engine, &algo, &originals, &mut policy);
                }
            });
        });
    }
    group.finish();
}

fn bench_machine_pool(c: &mut Criterion) {
    // The allocation-free trial loop: the PR 2 recipe (pending set
    // rebuilt per decision + boxed machines per trial) vs one
    // enum-dispatched MachinePool on the incremental engine. Trials are
    // trace-identical; only the machinery differs.
    let cfg = RenameConfig::default();
    let mut group = c.benchmark_group("machine_pool");
    group.sample_size(10);
    let trials = 32u64;
    for k in [8usize, 32] {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, 1024, k, &cfg);
        let regs = alloc.total();
        let originals = spread_originals(k, 1024);
        group.bench_with_input(BenchmarkId::new("pr2_boxed", k), &k, |b, _| {
            b.iter(|| {
                let mut engine = StepEngine::reusable(regs).pending_rebuild(true);
                for seed in 0..trials {
                    let mut policy = RandomPolicy::new(seed);
                    run_sim_engine_with(&mut engine, &algo, &originals, &mut policy);
                }
            });
        });
        let algo_set = AlgoSet::Majority(algo.clone());
        group.bench_with_input(BenchmarkId::new("pooled", k), &k, |b, _| {
            b.iter(|| {
                let mut engine = StepEngine::reusable(regs);
                let mut pool = algo_set.pool(&originals);
                for seed in 0..trials {
                    let mut policy = RandomPolicy::new(seed);
                    engine.run_pool(&mut policy, &mut pool);
                }
            });
        });
    }

    // Pooled exhaustive exploration of Compete-For-Register.
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let regs = alloc.total();
    group.bench_with_input(BenchmarkId::new("explore_pooled", 3), &3, |b, _| {
        b.iter(|| {
            let mut pool: MachinePool<exsel_core::CompeteOp> = (0..3)
                .map(|p| bank.begin_compete(0, p as u64 + 1))
                .collect();
            explore_pool(regs, &mut pool, u64::MAX, |_| {})
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_majority_round,
    bench_explore,
    bench_adversary,
    bench_engine_reuse,
    bench_machine_pool
);
criterion_main!(benches);
