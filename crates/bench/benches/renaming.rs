//! T10 (wall clock) — real-thread throughput of the renaming stack on
//! `ThreadedShm`: one complete renaming round (k contenders, full
//! contention) per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exsel_core::{
    AdaptiveRename, EfficientRename, MoirAnderson, Rename, RenameConfig, SnapshotRename,
};
use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};

fn round<R: Rename>(build: &impl Fn(&mut RegAlloc) -> R, k: usize) {
    let mut alloc = RegAlloc::new();
    let algo = build(&mut alloc);
    let mem = ThreadedShm::new(alloc.total(), k);
    std::thread::scope(|s| {
        for p in 0..k {
            let (algo, mem) = (&algo, &mem);
            s.spawn(move || {
                let out = algo
                    .rename(Ctx::new(mem, Pid(p)), (p as u64 + 1) * 7919)
                    .unwrap();
                assert!(out.is_named());
            });
        }
    });
}

fn bench_renaming(c: &mut Criterion) {
    let cfg = RenameConfig::default();
    let mut group = c.benchmark_group("renaming_round");
    group.sample_size(20);
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("moir_anderson", k), &k, |b, &k| {
            b.iter(|| round(&|a: &mut RegAlloc| MoirAnderson::new(a, k), k));
        });
        group.bench_with_input(BenchmarkId::new("efficient", k), &k, |b, &k| {
            b.iter(|| round(&|a: &mut RegAlloc| EfficientRename::new(a, k, &cfg), k));
        });
        group.bench_with_input(BenchmarkId::new("snapshot", k), &k, |b, &k| {
            b.iter(|| round(&|a: &mut RegAlloc| SnapshotRename::new(a, k), k));
        });
        group.bench_with_input(BenchmarkId::new("adaptive", k), &k, |b, &k| {
            b.iter(|| round(&|a: &mut RegAlloc| AdaptiveRename::new(a, k, &cfg), k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_renaming);
criterion_main!(benches);
