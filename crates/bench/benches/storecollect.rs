//! T10 (wall clock) — Store&Collect operation latency on real threads:
//! steady-state store (post-registration) and collect at contention `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exsel_core::RenameConfig;
use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
use exsel_storecollect::{StoreCollect, StoreHandle};

struct Fixture {
    sc: StoreCollect,
    mem: ThreadedShm,
}

fn fixture(k: usize) -> Fixture {
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let sc = StoreCollect::adaptive(&mut alloc, 16, &cfg);
    let mem = ThreadedShm::new(alloc.total(), k.max(1));
    // Register background processes up front (pid 0 is the one the bench
    // drives and registers itself): the steady state is what we measure.
    for p in 1..k {
        let ctx = Ctx::new(&mem, Pid(p));
        let mut h = StoreHandle::new();
        sc.store(ctx, &mut h, p as u64 + 1, 0).unwrap();
    }
    Fixture { sc, mem }
}

fn bench_storecollect(c: &mut Criterion) {
    let mut group = c.benchmark_group("storecollect");
    for k in [1usize, 4, 8] {
        let fx = fixture(k);
        let ctx = Ctx::new(&fx.mem, Pid(0));
        let mut h = StoreHandle::new();
        fx.sc.store(ctx, &mut h, 1, 0).unwrap(); // register pid 0
        group.bench_with_input(BenchmarkId::new("store_steady", k), &k, |b, _| {
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                fx.sc.store(ctx, &mut h, 1, v).unwrap();
            });
        });
        group.bench_with_input(BenchmarkId::new("collect", k), &k, |b, _| {
            b.iter(|| {
                let view = fx.sc.collect(ctx).unwrap();
                assert_eq!(view.len(), k.max(1));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storecollect);
criterion_main!(benches);
