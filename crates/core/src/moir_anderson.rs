//! The splitter-grid renaming of Moir & Anderson (Sci. Comp. Prog. 1995):
//! `k`-renaming in `O(k)` steps with `M = k(k+1)/2` using `O(k²)`
//! registers. Used both as the first stage of `Efficient-Rename`
//! (Theorem 2) and as a prior-work baseline in the comparison experiments.

use exsel_shm::{drive, Ctx, Pid, Poll, RegAlloc, RegRange, ShmOp, Step, StepMachine, Word};

use crate::step::{RenameMachine, StepRename};
use crate::{Outcome, Rename};

/// A triangular `k × k` grid of wait-free splitters.
///
/// Each splitter (Lamport/Moir–Anderson) guarantees: of the `j` processes
/// that enter it, at most one *stops*, at most `j−1` go right, and at most
/// `j−1` go down. Starting at the top-left corner, a process therefore
/// stops within `k−1` moves whenever at most `k` processes contend; its
/// name is the index of its splitter in the diagonal enumeration. With
/// more than `k` contenders a process may walk off the grid, yielding
/// [`Outcome::Failed`] — which is what lets `Adaptive-Rename` use the grid
/// safely under unknown contention.
#[derive(Clone, Debug)]
pub struct MoirAnderson {
    k: usize,
    /// Two registers (X, Y) per splitter; splitters are stored diagonal-
    /// major: splitter (r, c) on diagonal d = r+c has index
    /// `d(d+1)/2 + r`.
    regs: RegRange,
}

impl MoirAnderson {
    /// Builds a grid for up to `k` contenders.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, k: usize) -> Self {
        assert!(k > 0, "capacity must be positive");
        let splitters = k * (k + 1) / 2;
        MoirAnderson {
            k,
            regs: alloc.reserve(2 * splitters),
        }
    }

    /// The contender capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Registers used: `k(k+1)`.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.regs.len()
    }

    /// Index of splitter `(r, c)` in diagonal-major order.
    fn splitter_index(r: usize, c: usize) -> usize {
        let d = r + c;
        d * (d + 1) / 2 + r
    }

    /// Starts the grid walk of `token` as a [`StepMachine`]: each visited
    /// splitter costs at most 4 operations (write X, read Y, write Y,
    /// read X), announced one at a time.
    #[must_use]
    pub fn begin_walk(&self, token: u64) -> SplitWalkOp<'_> {
        SplitWalkOp {
            algo: self,
            token,
            row: 0,
            col: 0,
            state: SplitState::WriteX,
        }
    }
}

/// Position within one splitter's 4-operation protocol.
#[derive(Copy, Clone, Debug)]
enum SplitState {
    WriteX,
    ReadY,
    WriteY,
    ReadX,
}

/// In-progress Moir–Anderson renaming — a [`StepMachine`] walking the
/// splitter grid one operation per step.
#[derive(Clone, Debug)]
pub struct SplitWalkOp<'a> {
    algo: &'a MoirAnderson,
    token: u64,
    row: usize,
    col: usize,
    state: SplitState,
}

impl SplitWalkOp<'_> {
    fn idx(&self) -> usize {
        MoirAnderson::splitter_index(self.row, self.col)
    }

    /// Applies a splitter verdict of "move on" (right or down): advances
    /// the position, failing if the walk leaves the grid.
    fn step_off(&mut self, down: bool) -> Poll<Outcome> {
        if down {
            self.row += 1;
        } else {
            self.col += 1;
        }
        if self.row + self.col >= self.algo.k {
            // Walked off the grid: more than k contenders.
            return Poll::Ready(Outcome::Failed);
        }
        self.state = SplitState::WriteX;
        Poll::Pending
    }
}

impl StepMachine for SplitWalkOp<'_> {
    type Output = Outcome;

    fn op(&self) -> ShmOp {
        let x = self.algo.regs.get(2 * self.idx());
        let y = self.algo.regs.get(2 * self.idx() + 1);
        match self.state {
            SplitState::WriteX => ShmOp::Write(x, Word::Int(self.token)),
            SplitState::ReadY => ShmOp::Read(y),
            SplitState::WriteY => ShmOp::Write(y, Word::Int(1)),
            SplitState::ReadX => ShmOp::Read(x),
        }
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        use exsel_shm::OpKind::{Read, Write};
        let x = self.algo.regs.get(2 * self.idx());
        let y = self.algo.regs.get(2 * self.idx() + 1);
        match self.state {
            SplitState::WriteX => (Write, x),
            SplitState::ReadY => (Read, y),
            SplitState::WriteY => (Write, y),
            SplitState::ReadX => (Read, x),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<Outcome> {
        match self.state {
            SplitState::WriteX => {
                self.state = SplitState::ReadY;
                Poll::Pending
            }
            SplitState::ReadY => {
                if input.is_null() {
                    self.state = SplitState::WriteY;
                    Poll::Pending
                } else {
                    self.step_off(false) // right
                }
            }
            SplitState::WriteY => {
                self.state = SplitState::ReadX;
                Poll::Pending
            }
            SplitState::ReadX => {
                if *input == Word::Int(self.token) {
                    Poll::Ready(Outcome::Named(self.idx() as u64 + 1)) // stop
                } else {
                    self.step_off(true) // down
                }
            }
        }
    }

    fn reset(&mut self, _pid: Pid) {
        self.row = 0;
        self.col = 0;
        self.state = SplitState::WriteX;
    }
}

impl Rename for MoirAnderson {
    fn name_bound(&self) -> u64 {
        (self.k * (self.k + 1) / 2) as u64
    }

    /// Blocking adapter over [`MoirAnderson::begin_walk`].
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_walk(original), ctx)
    }
}

impl StepRename for MoirAnderson {
    fn begin_rename<'a>(&'a self, _pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(self.begin_walk(original))
    }

    /// Splitter X/Y registers are written by every process reaching the
    /// splitter (that's what makes a splitter split), so the grid is
    /// shared writes for every pid.
    fn footprint(&self, _pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        spec.phase("ma.splitters")
            .reads(self.regs)
            .writes_shared(self.regs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn rename_all(algo: &MoirAnderson, num_regs: usize, originals: &[u64]) -> Vec<Outcome> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (algo, mem) = (algo, &mem);
                    s.spawn(move || algo.rename(Ctx::new(mem, Pid(p)), orig).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn solo_contender_stops_at_first_splitter() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 4);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        assert_eq!(algo.rename(ctx, 9).unwrap(), Outcome::Named(1));
        assert_eq!(ctx.steps(), 4);
    }

    #[test]
    fn full_contention_all_named_exclusively() {
        for k in [1usize, 2, 4, 8, 16] {
            let mut alloc = RegAlloc::new();
            let algo = MoirAnderson::new(&mut alloc, k);
            let originals: Vec<u64> = (0..k as u64).map(|i| i + 1000).collect();
            let outs = rename_all(&algo, alloc.total(), &originals);
            let names: Vec<u64> = outs
                .iter()
                .map(|o| o.name().expect("≤ k contenders must all stop"))
                .collect();
            let set: BTreeSet<u64> = names.iter().copied().collect();
            assert_eq!(set.len(), k, "k={k}: duplicates in {names:?}");
            assert!(names.iter().all(|&m| m >= 1 && m <= algo.name_bound()));
        }
    }

    #[test]
    fn steps_linear_in_k() {
        let mut alloc = RegAlloc::new();
        let k = 16;
        let algo = MoirAnderson::new(&mut alloc, k);
        let mem = ThreadedShm::new(alloc.total(), k);
        let max_steps = std::thread::scope(|s| {
            (0..k)
                .map(|p| {
                    let (algo, mem) = (&algo, &mem);
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        algo.rename(ctx, p as u64 + 1).unwrap();
                        ctx.steps()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap()
        });
        assert!(max_steps <= 4 * k as u64, "{max_steps} > 4k");
    }

    #[test]
    fn overflow_reports_failed_not_bad_name() {
        // 2x the capacity: some processes fail, but names stay exclusive
        // and in range.
        let k = 4;
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let originals: Vec<u64> = (0..2 * k as u64).map(|i| i + 1).collect();
        let outs = rename_all(&algo, alloc.total(), &originals);
        let names: Vec<u64> = outs.iter().filter_map(|o| o.name()).collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len(), "duplicates under overflow");
        assert!(names.iter().all(|&m| m >= 1 && m <= algo.name_bound()));
    }

    #[test]
    fn splitter_indexing_is_bijective() {
        let k = 6;
        let mut seen = BTreeSet::new();
        for d in 0..k {
            for r in 0..=d {
                let c = d - r;
                assert!(seen.insert(MoirAnderson::splitter_index(r, c)));
            }
        }
        assert_eq!(seen.len(), k * (k + 1) / 2);
        assert_eq!(*seen.iter().max().unwrap(), k * (k + 1) / 2 - 1);
    }
}
