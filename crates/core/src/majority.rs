//! `Majority(ℓ, N)` — Lemma 4: at least half of at most `ℓ` contenders
//! acquire unique names in `O(log N)` local steps.

use std::sync::Arc;

use exsel_expander::BipartiteGraph;
use exsel_shm::{drive, Ctx, Pid, Poll, RegAlloc, ShmOp, Step, StepMachine, Word};

use crate::compete::CompeteOp;
use crate::step::{RenameMachine, StepRename};
use crate::{Outcome, Rename, RenameConfig, SlotBank};

/// The expander-walk majority-renaming algorithm.
///
/// The bipartite graph `G = ([N], [M], E)` is part of the code: the
/// process whose original name is `v` tries to win the name slot of each
/// neighbour of `v` in order, adopting the first slot it wins as its new
/// name. By Lemma 2, when at most `capacity` processes contend, more than
/// half of them have a *unique neighbour* — a slot no other contender is
/// adjacent to — which they win by Lemma 1 (if they did not win earlier).
///
/// Local steps: at most `5·Δ = O(log N)`. Registers: `2·M`.
#[derive(Clone, Debug)]
pub struct Majority {
    graph: Arc<BipartiteGraph>,
    slots: SlotBank,
    capacity: usize,
}

impl Majority {
    /// Builds an instance for original names in `[1, n_names]` and up to
    /// `capacity` contenders.
    ///
    /// # Panics
    ///
    /// Panics if `n_names == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n_names: usize, capacity: usize, cfg: &RenameConfig) -> Self {
        assert!(n_names > 0, "need at least one possible original name");
        assert!(capacity > 0, "capacity must be positive");
        let graph = BipartiteGraph::random(n_names, capacity, &cfg.expander, cfg.seed);
        let slots = SlotBank::new(alloc, graph.num_outputs());
        Majority {
            graph: Arc::new(graph),
            slots,
            capacity,
        }
    }

    /// The contender capacity `ℓ` this instance was sized for.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of original names `N` this instance accepts.
    #[must_use]
    pub fn num_names(&self) -> usize {
        self.graph.num_inputs()
    }

    /// The underlying expander.
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The name-slot bank the walk competes in. Exposed so alternative
    /// machine layouts (e.g. `exsel_sim`'s struct-of-arrays pool) can
    /// address the same registers the [`MajorityOp`] machines use.
    #[must_use]
    pub fn slots(&self) -> &SlotBank {
        &self.slots
    }

    /// Registers used (for accounting): two per output node.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.slots.registers().len()
    }

    /// Starts the expander walk of `original` as a [`StepMachine`]: the
    /// adjacency list is competed for slot by slot, at most `5·Δ`
    /// operations in total.
    ///
    /// # Panics
    ///
    /// Panics if `original` is not in `[1, num_names()]`.
    #[must_use]
    pub fn begin_walk(&self, original: u64) -> MajorityOp<'_> {
        let v = usize::try_from(original.checked_sub(1).expect("names are 1-based"))
            .expect("original name fits usize");
        assert!(
            v < self.graph.num_inputs(),
            "original name {original} outside [1, {}]",
            self.graph.num_inputs()
        );
        let first = self.graph.neighbors(v)[0] as usize;
        MajorityOp {
            algo: self,
            original,
            v,
            idx: 0,
            inner: self.slots.begin_compete(first, original),
        }
    }
}

/// In-progress `Majority` renaming — a [`StepMachine`] walking the
/// adjacency list of the original name, one compete operation per step.
#[derive(Clone, Debug)]
pub struct MajorityOp<'a> {
    algo: &'a Majority,
    original: u64,
    /// Input node of the walk (`original − 1`).
    v: usize,
    /// Position in the adjacency list.
    idx: usize,
    inner: CompeteOp,
}

impl StepMachine for MajorityOp<'_> {
    type Output = Outcome;

    fn op(&self) -> ShmOp {
        self.inner.op()
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        self.inner.peek()
    }

    fn advance(&mut self, input: &Word) -> Poll<Outcome> {
        match self.inner.advance(input) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(true) => {
                let w = self.algo.graph.neighbors(self.v)[self.idx];
                Poll::Ready(Outcome::Named(u64::from(w) + 1))
            }
            Poll::Ready(false) => {
                self.idx += 1;
                let neighbors = self.algo.graph.neighbors(self.v);
                match neighbors.get(self.idx) {
                    Some(&w) => {
                        self.inner = self.algo.slots.begin_compete(w as usize, self.original);
                        Poll::Pending
                    }
                    None => Poll::Ready(Outcome::Failed),
                }
            }
        }
    }

    fn reset(&mut self, _pid: Pid) {
        self.idx = 0;
        let first = self.algo.graph.neighbors(self.v)[0] as usize;
        self.inner = self.algo.slots.begin_compete(first, self.original);
    }
}

impl StepRename for Majority {
    fn begin_rename<'a>(&'a self, _pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(self.begin_walk(original))
    }

    /// Every contender competes on every slot register it walks past:
    /// the whole slot bank is multi-writer by design (majority voting),
    /// so the footprint is shared writes over the bank for every pid.
    fn footprint(&self, _pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        let regs = self.slots.registers();
        spec.phase("majority.slots").reads(regs).writes_shared(regs);
    }
}

impl Rename for Majority {
    fn name_bound(&self) -> u64 {
        self.graph.num_outputs() as u64
    }

    /// Walks the adjacency list of `original`, competing for each
    /// neighbour's slot. Blocking adapter over [`Majority::begin_walk`].
    ///
    /// # Panics
    ///
    /// Panics if `original` is not in `[1, num_names()]`.
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_walk(original), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn run_contenders(m: &Majority, num_regs: usize, originals: &[u64]) -> Vec<Outcome> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (m, mem) = (m, &mem);
                    s.spawn(move || m.rename(Ctx::new(mem, Pid(p)), orig).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn solo_contender_always_named() {
        let mut alloc = RegAlloc::new();
        let m = Majority::new(&mut alloc, 64, 4, &RenameConfig::default());
        for orig in [1u64, 17, 64] {
            let mem = ThreadedShm::new(alloc.total(), 1);
            let out = m.rename(Ctx::new(&mem, Pid(0)), orig).unwrap();
            assert!(out.is_named(), "solo contender {orig} failed");
            assert!(out.expect_named() <= m.name_bound());
        }
    }

    #[test]
    fn majority_renamed_and_exclusive() {
        let mut alloc = RegAlloc::new();
        let cap = 8;
        let m = Majority::new(&mut alloc, 256, cap, &RenameConfig::default());
        let originals: Vec<u64> = (0..cap as u64).map(|i| i * 31 + 1).collect();
        let outs = run_contenders(&m, alloc.total(), &originals);
        let names: Vec<u64> = outs.iter().filter_map(|o| o.name()).collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len(), "duplicate names handed out");
        assert!(
            names.len() * 2 >= cap,
            "fewer than half renamed: {} of {cap}",
            names.len()
        );
        assert!(names.iter().all(|&w| w >= 1 && w <= m.name_bound()));
    }

    #[test]
    fn steps_bounded_by_walk_length() {
        let mut alloc = RegAlloc::new();
        let m = Majority::new(&mut alloc, 1 << 12, 4, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        m.rename(ctx, 55).unwrap();
        assert!(ctx.steps() <= 5 * m.graph().degree() as u64);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_original() {
        let mut alloc = RegAlloc::new();
        let m = Majority::new(&mut alloc, 8, 2, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 1);
        let _ = m.rename(Ctx::new(&mem, Pid(0)), 9);
    }

    #[test]
    fn distinct_seeds_distinct_graphs() {
        let mut a1 = RegAlloc::new();
        let mut a2 = RegAlloc::new();
        let m1 = Majority::new(&mut a1, 128, 4, &RenameConfig::with_seed(1));
        let m2 = Majority::new(&mut a2, 128, 4, &RenameConfig::with_seed(2));
        assert_ne!(m1.graph(), m2.graph());
    }
}
