//! Common renaming interface.

use exsel_shm::{Ctx, Step};

/// The result of one renaming attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// A new name was acquired exclusively (1-based, in `[1, name_bound]`).
    Named(u64),
    /// This instance could not produce a name — contention exceeded the
    /// instance's capacity. Adaptive wrappers respond by moving to the
    /// next, larger instance; it never indicates a safety violation.
    Failed,
}

impl Outcome {
    /// The acquired name, if any.
    #[must_use]
    pub fn name(self) -> Option<u64> {
        match self {
            Outcome::Named(m) => Some(m),
            Outcome::Failed => None,
        }
    }

    /// The acquired name.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is [`Outcome::Failed`].
    #[must_use]
    #[track_caller]
    pub fn expect_named(self) -> u64 {
        match self {
            Outcome::Named(m) => m,
            Outcome::Failed => panic!("renaming failed: contention exceeded capacity"),
        }
    }

    /// Whether a name was acquired.
    #[must_use]
    pub fn is_named(self) -> bool {
        matches!(self, Outcome::Named(_))
    }
}

/// A one-shot renaming algorithm.
///
/// Invariants every implementation guarantees:
///
/// * **Exclusiveness** — no two processes are ever `Named` the same value.
/// * **Wait-freedom** — `rename` completes in a bounded number of local
///   steps regardless of the other processes' speeds or crashes.
/// * **Range** — every emitted name lies in `[1, name_bound()]`.
/// * **Progress** — if at most the instance's capacity of processes
///   contend (each with a distinct valid original name), every
///   non-crashed contender is `Named`.
pub trait Rename: Sync {
    /// Upper bound `M` on the names this instance can emit.
    fn name_bound(&self) -> u64;

    /// Acquires a new name for the calling process, whose unique original
    /// name is `original` (1-based).
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-operation.
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome>;
}

impl<T: Rename + ?Sized> Rename for &T {
    fn name_bound(&self) -> u64 {
        (**self).name_bound()
    }
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        (**self).rename(ctx, original)
    }
}

impl<T: Rename + ?Sized> Rename for Box<T> {
    fn name_bound(&self) -> u64 {
        (**self).name_bound()
    }
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        (**self).rename(ctx, original)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Named(m) => write!(f, "named({m})"),
            Outcome::Failed => write!(f, "failed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert_eq!(Outcome::Named(4).name(), Some(4));
        assert_eq!(Outcome::Failed.name(), None);
        assert!(Outcome::Named(1).is_named());
        assert!(!Outcome::Failed.is_named());
        assert_eq!(Outcome::Named(2).expect_named(), 2);
    }

    #[test]
    #[should_panic(expected = "renaming failed")]
    fn expect_named_panics_on_failed() {
        let _ = Outcome::Failed.expect_named();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Outcome::Named(3).to_string(), "named(3)");
        assert_eq!(Outcome::Failed.to_string(), "failed");
    }

    #[test]
    fn blanket_impls_delegate() {
        use crate::{MoirAnderson, RenameConfig};
        let _ = RenameConfig::default();
        let mut alloc = exsel_shm::RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 2);
        let by_ref: &dyn Rename = &algo;
        assert_eq!(by_ref.name_bound(), algo.name_bound());
        let boxed: Box<dyn Rename> =
            Box::new(MoirAnderson::new(&mut exsel_shm::RegAlloc::new(), 2));
        assert_eq!(boxed.name_bound(), 3);
        assert_eq!(boxed.name_bound(), 3);
    }
}
