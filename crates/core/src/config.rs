//! Shared construction configuration.

use exsel_expander::ExpanderParams;

/// Construction-time configuration shared by the renaming algorithms:
/// which expander sizing profile to use and the seed from which all graph
/// randomness is derived (the graphs are part of the algorithm's code, so
/// the same config on every process yields the same algorithm).
#[derive(Clone, Debug, PartialEq)]
pub struct RenameConfig {
    /// Expander sizing profile. Defaults to
    /// [`ExpanderParams::compact`]; use [`ExpanderParams::paper`] for the
    /// literal Lemma 3 constants (large register footprints).
    pub expander: ExpanderParams,
    /// Seed for the randomized expander constructions.
    pub seed: u64,
}

impl Default for RenameConfig {
    fn default() -> Self {
        RenameConfig {
            expander: ExpanderParams::compact(),
            seed: 0xC41EB05,
        }
    }
}

impl RenameConfig {
    /// A config with the given seed and the compact profile.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        RenameConfig {
            seed,
            ..Self::default()
        }
    }

    /// Derives a distinct sub-seed for component `tag` (stage/epoch/phase
    /// indices), so that nested constructions get independent graphs.
    #[must_use]
    pub fn subseed(&self, tag: u64) -> u64 {
        // SplitMix64 step over (seed ⊕ tag).
        let mut z = self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives a child config whose seed is [`RenameConfig::subseed`] of
    /// `tag`.
    #[must_use]
    pub fn child(&self, tag: u64) -> Self {
        RenameConfig {
            expander: self.expander.clone(),
            seed: self.subseed(tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subseeds_differ() {
        let c = RenameConfig::default();
        assert_ne!(c.subseed(0), c.subseed(1));
        assert_ne!(c.subseed(1), c.subseed(2));
        assert_eq!(c.subseed(3), c.subseed(3));
    }

    #[test]
    fn child_propagates_profile() {
        let c = RenameConfig {
            expander: ExpanderParams::paper(),
            seed: 1,
        };
        let child = c.child(5);
        assert_eq!(child.expander, ExpanderParams::paper());
        assert_ne!(child.seed, c.seed);
    }
}
