//! Step-machine drivers for the renaming algorithms.
//!
//! Every renamer in this crate exposes its algorithm in two equivalent
//! forms: the blocking [`Rename`] API (used on real threads over
//! `ThreadedShm`) and a [`StepMachine`] obtained from
//! [`StepRename::begin_rename`] (used by the single-threaded
//! `exsel_sim::StepEngine` and by anything else that needs to interleave
//! renaming with other activities at shared-memory-operation granularity).
//! The blocking form is a thin [`exsel_shm::drive`] adapter over the
//! machine, so **both forms perform identical operation sequences** — a
//! schedule recorded against one replays exactly against the other.

use exsel_shm::{FootprintSpec, Pid, Poll, ShmOp, StepMachine, Word};

use crate::{Outcome, Rename};

/// A boxed in-progress renaming, borrowing its algorithm.
pub type RenameMachine<'a> = Box<dyn StepMachine<Output = Outcome> + 'a>;

/// Renaming algorithms that expose their execution as a [`StepMachine`].
///
/// `pid` is the caller's system identity; most algorithms ignore it (they
/// break symmetry with `original` only), but slot-addressed baselines
/// (`SnapshotRename`) use it the way their blocking `rename` does.
pub trait StepRename: Rename {
    /// Starts a renaming of `original` for process `pid`.
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a>;

    /// Appends the registers a machine begun for `pid` may touch (the
    /// [`exsel_shm::Footprint`] contract, as a provided method so
    /// `StepRename` stays object-safe alongside it). Every renamer in
    /// this crate overrides it; the default declares nothing, which the
    /// analysis pass rejects (missing footprint) rather than silently
    /// accepting an unchecked machine.
    fn footprint(&self, pid: Pid, spec: &mut FootprintSpec) {
        let _ = (pid, spec);
    }
}

impl<T: StepRename + ?Sized> StepRename for &T {
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        (**self).begin_rename(pid, original)
    }

    fn footprint(&self, pid: Pid, spec: &mut FootprintSpec) {
        (**self).footprint(pid, spec);
    }
}

impl<T: StepRename + ?Sized> StepRename for Box<T> {
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        (**self).begin_rename(pid, original)
    }

    fn footprint(&self, pid: Pid, spec: &mut FootprintSpec) {
        (**self).footprint(pid, spec);
    }
}

/// Runs a sequence of sub-renamings that all consume the *same* input,
/// mapping stage `i`'s `Named(w)` to `Named(offset_i + w)`; the first
/// stage to name wins, exhaustion fails. This is the shape of
/// `Basic-Rename` over `Majority` and of the doubling wrappers
/// (`Almost-Adaptive`, `Adaptive-Rename`) over their phases.
pub(crate) struct Staged<'a, F>
where
    F: FnMut(usize) -> Option<(RenameMachine<'a>, u64)>,
{
    next: F,
    idx: usize,
    cur: RenameMachine<'a>,
    offset: u64,
}

impl<'a, F> Staged<'a, F>
where
    F: FnMut(usize) -> Option<(RenameMachine<'a>, u64)>,
{
    /// Builds the chain; `next(i)` yields stage `i`'s machine and name
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics if there is no stage 0.
    pub(crate) fn new(mut next: F) -> Self {
        let (cur, offset) = next(0).expect("at least one stage");
        Staged {
            next,
            idx: 0,
            cur,
            offset,
        }
    }
}

impl<'a, F> StepMachine for Staged<'a, F>
where
    F: FnMut(usize) -> Option<(RenameMachine<'a>, u64)>,
{
    type Output = Outcome;

    fn op(&self) -> ShmOp {
        self.cur.op()
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        self.cur.peek()
    }

    fn advance(&mut self, input: &Word) -> Poll<Outcome> {
        match self.cur.advance(input) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Outcome::Named(w)) => Poll::Ready(Outcome::Named(self.offset + w)),
            Poll::Ready(Outcome::Failed) => {
                self.idx += 1;
                match (self.next)(self.idx) {
                    Some((machine, offset)) => {
                        self.cur = machine;
                        self.offset = offset;
                        Poll::Pending
                    }
                    None => Poll::Ready(Outcome::Failed),
                }
            }
        }
    }

    fn reset(&mut self, _pid: Pid) {
        // Re-enter stage 0; `next` closures capture only the algorithm
        // and the original input, so calling them again is valid (and
        // costs one boxed machine — composite renamers reset by
        // rebuilding their current stage, not the whole chain).
        let (cur, offset) = (self.next)(0).expect("at least one stage");
        self.idx = 0;
        self.cur = cur;
        self.offset = offset;
    }
}

/// Runs a pipeline of sub-renamings where each stage's `Named` output is
/// the next stage's input; the last stage's name is kept. Any stage
/// failing fails the pipeline. This is the shape of `PolyLog-Rename`'s
/// epoch chain.
pub(crate) struct Piped<'a, F>
where
    F: FnMut(usize, u64) -> Option<RenameMachine<'a>>,
{
    next: F,
    idx: usize,
    cur: RenameMachine<'a>,
    input: u64,
}

impl<'a, F> Piped<'a, F>
where
    F: FnMut(usize, u64) -> Option<RenameMachine<'a>>,
{
    /// Builds the pipeline on `input`; `next(i, name)` yields stage `i`'s
    /// machine consuming `name`.
    ///
    /// # Panics
    ///
    /// Panics if there is no stage 0.
    pub(crate) fn new(input: u64, mut next: F) -> Self {
        let cur = next(0, input).expect("at least one stage");
        Piped {
            next,
            idx: 0,
            cur,
            input,
        }
    }
}

impl<'a, F> StepMachine for Piped<'a, F>
where
    F: FnMut(usize, u64) -> Option<RenameMachine<'a>>,
{
    type Output = Outcome;

    fn op(&self) -> ShmOp {
        self.cur.op()
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        self.cur.peek()
    }

    fn advance(&mut self, input: &Word) -> Poll<Outcome> {
        match self.cur.advance(input) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Outcome::Failed) => Poll::Ready(Outcome::Failed),
            Poll::Ready(Outcome::Named(w)) => {
                self.idx += 1;
                match (self.next)(self.idx, w) {
                    Some(machine) => {
                        self.cur = machine;
                        Poll::Pending
                    }
                    None => Poll::Ready(Outcome::Named(w)),
                }
            }
        }
    }

    fn reset(&mut self, _pid: Pid) {
        self.cur = (self.next)(0, self.input).expect("at least one stage");
        self.idx = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicRename, MoirAnderson, RenameConfig};
    use exsel_shm::{drive, Ctx, OpKind, RegAlloc, ThreadedShm};

    #[test]
    fn machine_and_blocking_perform_identical_op_sequences() {
        // Drive the machine one op at a time against one memory and the
        // blocking form against another; step counts must agree exactly.
        let cfg = RenameConfig::default();
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, 64, 4, &cfg);

        let mem_a = ThreadedShm::new(alloc.total(), 1);
        let ctx_a = Ctx::new(&mem_a, Pid(0));
        let out_a = algo.rename(ctx_a, 17).unwrap();

        let mem_b = ThreadedShm::new(alloc.total(), 1);
        let ctx_b = Ctx::new(&mem_b, Pid(0));
        let mut machine = algo.begin_rename(Pid(0), 17);
        let out_b = drive(&mut machine, ctx_b).unwrap();

        assert_eq!(out_a, out_b);
        assert_eq!(ctx_a.steps(), ctx_b.steps());
    }

    #[test]
    fn ops_are_announced_before_execution() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut machine = algo.begin_rename(Pid(0), 5);
        let mut announced = Vec::new();
        loop {
            announced.push((machine.op().kind(), machine.op().reg()));
            if let Poll::Ready(out) = machine.poll(ctx).unwrap() {
                assert!(out.is_named());
                break;
            }
        }
        // Solo walk: one splitter, write X / read Y / write Y / read X.
        assert_eq!(
            announced.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![OpKind::Write, OpKind::Read, OpKind::Write, OpKind::Read]
        );
    }

    #[test]
    fn dyn_renamers_begin_machines() {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, 2);
        let by_ref: &dyn StepRename = &algo;
        let mem = ThreadedShm::new(alloc.total(), 1);
        let out = drive(&mut by_ref.begin_rename(Pid(0), 9), Ctx::new(&mem, Pid(0))).unwrap();
        assert_eq!(out, Outcome::Named(1));
    }
}
