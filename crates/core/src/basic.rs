//! `Basic-Rename(k, N)` — Lemma 5: `(k,N)`-renaming in `O(log k · log N)`
//! local steps with `M = O(k · log(N/k))` new names.

use exsel_shm::{drive, Ctx, Pid, RegAlloc, Step};

use crate::step::{RenameMachine, Staged, StepRename};
use crate::{Majority, Outcome, Rename, RenameConfig};

/// Staged majority renaming.
///
/// The algorithm runs `⌊lg k⌋ + 1` stages; stage `i` is a
/// [`Majority`]`(⌈k/2ⁱ⌉, N)` instance on its own disjoint register bank
/// and name range. A process executes stages in order, keeping its
/// original name as input each time, until some stage names it. Each
/// stage renames at least half of its active contenders (Lemma 4), so at
/// most `⌊k/2^{i}⌋` processes reach stage `i` — the last stage sees at
/// most one, which always wins.
#[derive(Clone, Debug)]
pub struct BasicRename {
    stages: Vec<Majority>,
    /// Cumulative name offset of each stage within `[1, name_bound]`.
    offsets: Vec<u64>,
    capacity: usize,
    n_names: usize,
}

impl BasicRename {
    /// Builds an instance for original names in `[1, n_names]` and up to
    /// `capacity` contenders.
    ///
    /// # Panics
    ///
    /// Panics if `n_names == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n_names: usize, capacity: usize, cfg: &RenameConfig) -> Self {
        assert!(n_names > 0, "need at least one possible original name");
        assert!(capacity > 0, "capacity must be positive");
        let num_stages = capacity.ilog2() as usize + 1;
        let mut stages = Vec::with_capacity(num_stages);
        let mut offsets = Vec::with_capacity(num_stages);
        let mut offset = 0u64;
        for i in 0..num_stages {
            let stage_cap = (capacity >> i).max(1);
            let stage = Majority::new(alloc, n_names, stage_cap, &cfg.child(i as u64));
            offsets.push(offset);
            offset += stage.name_bound();
            stages.push(stage);
        }
        BasicRename {
            stages,
            offsets,
            capacity,
            n_names,
        }
    }

    /// The contender capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of original names `N`.
    #[must_use]
    pub fn num_names(&self) -> usize {
        self.n_names
    }

    /// Number of stages (`⌊lg k⌋ + 1`).
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Registers used across all stages.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.stages.iter().map(Majority::num_registers).sum()
    }
}

impl Rename for BasicRename {
    fn name_bound(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0) + self.stages.last().map_or(0, |s| s.name_bound())
    }

    /// Blocking adapter over [`StepRename::begin_rename`].
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_rename(ctx.pid(), original), ctx)
    }
}

impl StepRename for BasicRename {
    /// The staged walk as a [`exsel_shm::StepMachine`]: stage `i`'s
    /// `Majority` machine runs on the shared `original` until one names
    /// the caller, offset into stage `i`'s name interval.
    fn begin_rename<'a>(&'a self, _pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(Staged::new(move |i| {
            self.stages.get(i).map(|stage| -> (RenameMachine<'a>, u64) {
                (Box::new(stage.begin_walk(original)), self.offsets[i])
            })
        }))
    }

    /// Union of the stages' footprints: a contender may walk any prefix
    /// of the stage chain.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        for stage in &self.stages {
            stage.footprint(pid, spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn rename_all(algo: &BasicRename, num_regs: usize, originals: &[u64]) -> Vec<Outcome> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (algo, mem) = (algo, &mem);
                    s.spawn(move || algo.rename(Ctx::new(mem, Pid(p)), orig).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn all_contenders_named_exclusively() {
        let mut alloc = RegAlloc::new();
        let k = 8;
        let algo = BasicRename::new(&mut alloc, 512, k, &RenameConfig::default());
        let originals: Vec<u64> = (0..k as u64).map(|i| i * 61 + 3).collect();
        let outs = rename_all(&algo, alloc.total(), &originals);
        let names: Vec<u64> = outs
            .iter()
            .map(|o| {
                o.name()
                    .expect("full contention within capacity must name everyone")
            })
            .collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), k, "names not exclusive: {names:?}");
        assert!(names.iter().all(|&m| m >= 1 && m <= algo.name_bound()));
    }

    #[test]
    fn stage_count_formula() {
        for (k, want) in [(1usize, 1usize), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)] {
            let mut alloc = RegAlloc::new();
            let algo = BasicRename::new(&mut alloc, 64, k, &RenameConfig::default());
            assert_eq!(algo.num_stages(), want, "k={k}");
        }
    }

    #[test]
    fn stage_name_ranges_are_disjoint() {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, 256, 4, &RenameConfig::default());
        let mut prev_end = 0;
        for (stage, &offset) in algo.stages.iter().zip(&algo.offsets) {
            assert_eq!(offset, prev_end);
            prev_end = offset + stage.name_bound();
        }
        assert_eq!(prev_end, algo.name_bound());
    }

    #[test]
    fn capacity_one_is_single_stage() {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, 128, 1, &RenameConfig::default());
        assert_eq!(algo.num_stages(), 1);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let out = algo.rename(Ctx::new(&mem, Pid(0)), 100).unwrap();
        assert!(out.is_named());
    }

    #[test]
    fn register_count_matches_allocator() {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, 512, 8, &RenameConfig::default());
        assert_eq!(algo.num_registers(), alloc.total());
    }

    #[test]
    fn repeated_runs_with_crashes_never_duplicate() {
        // Crash half the contenders (by just not running them); survivors
        // must still get exclusive names.
        let mut alloc = RegAlloc::new();
        let k = 8;
        let algo = BasicRename::new(&mut alloc, 512, k, &RenameConfig::default());
        let originals: Vec<u64> = (0..4u64).map(|i| i * 100 + 7).collect();
        let outs = rename_all(&algo, alloc.total(), &originals);
        let names: BTreeSet<u64> = outs.iter().filter_map(|o| o.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
