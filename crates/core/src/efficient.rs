//! `Efficient-Rename(k)` — Theorem 2: `k`-renaming for arbitrary `N` in
//! `O(k)` local steps with the optimal bound `M = 2k−1`, using `O(k²)`
//! registers.
//!
//! The pipeline composes three stages on disjoint register banks, each
//! consuming the previous stage's names:
//!
//! 1. [`MoirAnderson`]`(k)` — compresses arbitrary original names to
//!    `[k(k+1)/2]` in `O(k)` steps;
//! 2. [`PolyLogRename`]`(k, k(k+1)/2)` — compresses to `O(k)` (Theorem 1);
//! 3. the `AF(k, M′)` stage, here the snapshot-based `(2k−1)`-renaming
//!    ([`SnapshotRename`], see DESIGN.md substitution notes) — yields the
//!    final names in `[2k−1]`.
//!
//! Stage 2 only pays off asymptotically: its `O(k)` bound carries a large
//! constant (the fixpoint of `k·c·log`), so for practical `k` it would
//! *expand* `k(k+1)/2`. The constructor detects that and skips the stage
//! (an identity pass keeps the theorem's guarantees); the
//! [`Pipeline::Direct`] ablation forces the skip so benches can measure
//! the stage's contribution at any scale.

use exsel_shm::{drive, Ctx, Pid, Poll, RegAlloc, ShmOp, Step, StepMachine, Word};

use crate::step::{RenameMachine, StepRename};
use crate::{MoirAnderson, Outcome, PolyLogRename, Rename, RenameConfig, SnapshotRename};

/// Which stages the pipeline includes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// The paper's pipeline; the polylog stage is included whenever it
    /// shrinks the name range (always, asymptotically).
    Paper,
    /// Ablation: Moir–Anderson feeding the snapshot stage directly.
    Direct,
}

/// The Theorem 2 renaming pipeline.
#[derive(Clone, Debug)]
pub struct EfficientRename {
    ma: MoirAnderson,
    polylog: Option<PolyLogRename>,
    final_stage: SnapshotRename,
    k: usize,
}

impl EfficientRename {
    /// Builds the paper pipeline for up to `k` contenders.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, k: usize, cfg: &RenameConfig) -> Self {
        Self::with_pipeline(alloc, k, cfg, Pipeline::Paper)
    }

    /// Builds the pipeline with an explicit stage selection.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_pipeline(
        alloc: &mut RegAlloc,
        k: usize,
        cfg: &RenameConfig,
        pipeline: Pipeline,
    ) -> Self {
        assert!(k > 0, "capacity must be positive");
        let ma = MoirAnderson::new(alloc, k);
        let ma_bound = usize::try_from(ma.name_bound()).expect("bound fits usize");

        let polylog = match pipeline {
            Pipeline::Direct => None,
            Pipeline::Paper => {
                // Construct speculatively: commit the registers only if the
                // stage actually shrinks the range.
                let mut trial = alloc.clone();
                let pl = PolyLogRename::new(&mut trial, ma_bound, k, &cfg.child(0x20_0000));
                if pl.name_bound() < ma_bound as u64 {
                    *alloc = trial;
                    Some(pl)
                } else {
                    None
                }
            }
        };

        let slots = polylog
            .as_ref()
            .map_or(ma_bound, |pl| pl.name_bound() as usize);
        let final_stage = SnapshotRename::new(alloc, slots).with_bound(2 * k as u64 - 1);
        EfficientRename {
            ma,
            polylog,
            final_stage,
            k,
        }
    }

    /// The contender capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Whether the polylog stage is active.
    #[must_use]
    pub fn has_polylog_stage(&self) -> bool {
        self.polylog.is_some()
    }

    /// Participant slots of the final snapshot stage — the name range the
    /// preceding stages feed it, and the width of its scans (the dominant
    /// step-cost constant). Exposed for the pipeline ablation (A1).
    #[must_use]
    pub fn final_stage_slots(&self) -> usize {
        self.final_stage.num_slots()
    }

    /// Registers used across all stages.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.ma.num_registers()
            + self
                .polylog
                .as_ref()
                .map_or(0, PolyLogRename::num_registers)
            + self.final_stage.num_registers()
    }
}

impl Rename for EfficientRename {
    fn name_bound(&self) -> u64 {
        2 * self.k as u64 - 1
    }

    /// Blocking adapter over [`StepRename::begin_rename`].
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_rename(ctx.pid(), original), ctx)
    }
}

impl StepRename for EfficientRename {
    /// The three-stage pipeline as a [`StepMachine`]: Moir-Anderson, the
    /// optional polylog compressor, then the snapshot stage on the private
    /// slot `b - 1` with unique token `b`.
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(EfficientOp {
            algo: self,
            pid,
            original,
            stage: EffStage::Ma(Box::new(self.ma.begin_walk(original))),
        })
    }

    /// Union of the stage footprints. The final snapshot stage's slots
    /// are addressed by the *name* the earlier stages produced, not by
    /// pid, so no process can claim one statically: the whole final
    /// bank is declared shared (uniqueness of intermediate names is
    /// what makes it single-writer dynamically — exactly the property
    /// the renaming proof, not the layout, provides).
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        self.ma.footprint(pid, spec);
        if let Some(pl) = &self.polylog {
            pl.footprint(pid, spec);
        }
        let final_regs = self.final_stage.snapshot().registers();
        spec.phase("efficient.final")
            .reads(final_regs)
            .writes_shared(final_regs);
    }
}

enum EffStage<'a> {
    Ma(RenameMachine<'a>),
    Poly(RenameMachine<'a>),
    Final(RenameMachine<'a>),
}

/// In-progress `Efficient-Rename` — a [`StepMachine`] over the pipeline's
/// stages.
pub struct EfficientOp<'a> {
    algo: &'a EfficientRename,
    pid: Pid,
    original: u64,
    stage: EffStage<'a>,
}

impl<'a> EfficientOp<'a> {
    /// Enters the final snapshot stage with the compressed name `b`.
    /// Stage names are exclusive, so `b - 1` is a private slot and `b` a
    /// unique token.
    fn final_stage(&self, b: u64) -> EffStage<'a> {
        EffStage::Final(Box::new(
            self.algo.final_stage.begin_rename_slot((b - 1) as usize, b),
        ))
    }
}

impl StepMachine for EfficientOp<'_> {
    type Output = Outcome;

    fn op(&self) -> ShmOp {
        match &self.stage {
            EffStage::Ma(m) | EffStage::Poly(m) | EffStage::Final(m) => m.op(),
        }
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        match &self.stage {
            EffStage::Ma(m) | EffStage::Poly(m) | EffStage::Final(m) => m.peek(),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<Outcome> {
        match &mut self.stage {
            EffStage::Ma(m) => match m.advance(input) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(Outcome::Failed) => Poll::Ready(Outcome::Failed),
                Poll::Ready(Outcome::Named(a)) => {
                    self.stage = match &self.algo.polylog {
                        Some(pl) => EffStage::Poly(pl.begin_rename(self.pid, a)),
                        None => self.final_stage(a),
                    };
                    Poll::Pending
                }
            },
            EffStage::Poly(m) => match m.advance(input) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(Outcome::Failed) => Poll::Ready(Outcome::Failed),
                Poll::Ready(Outcome::Named(b)) => {
                    self.stage = self.final_stage(b);
                    Poll::Pending
                }
            },
            EffStage::Final(m) => m.advance(input),
        }
    }

    fn reset(&mut self, pid: Pid) {
        // Composite pipelines rebuild their first stage (one box); the
        // stage machines themselves are built lazily as before.
        self.pid = pid;
        self.stage = EffStage::Ma(Box::new(self.algo.ma.begin_walk(self.original)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn rename_all(algo: &EfficientRename, num_regs: usize, originals: &[u64]) -> Vec<Outcome> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (algo, mem) = (algo, &mem);
                    s.spawn(move || algo.rename(Ctx::new(mem, Pid(p)), orig).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn full_contention_exclusive_within_2k_minus_1() {
        for k in [1usize, 2, 4, 8] {
            let mut alloc = RegAlloc::new();
            let algo = EfficientRename::new(&mut alloc, k, &RenameConfig::default());
            // Arbitrary (huge) original names: k-renaming must not care.
            let originals: Vec<u64> = (0..k as u64).map(|i| (i + 1) * 1_000_003).collect();
            let outs = rename_all(&algo, alloc.total(), &originals);
            let names: Vec<u64> = outs
                .iter()
                .map(|o| o.name().expect("within capacity"))
                .collect();
            let set: BTreeSet<u64> = names.iter().copied().collect();
            assert_eq!(set.len(), k, "k={k}: duplicates in {names:?}");
            assert!(
                names.iter().all(|&m| m >= 1 && m < 2 * k as u64),
                "k={k}: beyond 2k-1: {names:?}"
            );
        }
    }

    #[test]
    fn solo_process_gets_a_name() {
        let mut alloc = RegAlloc::new();
        let algo = EfficientRename::new(&mut alloc, 4, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 1);
        let out = algo.rename(Ctx::new(&mem, Pid(0)), u64::MAX / 2).unwrap();
        assert!(out.is_named());
        assert!(out.expect_named() <= 7);
    }

    #[test]
    fn overflow_yields_failed_without_duplicates() {
        let k = 4;
        let mut alloc = RegAlloc::new();
        let algo = EfficientRename::new(&mut alloc, k, &RenameConfig::default());
        let originals: Vec<u64> = (0..3 * k as u64).map(|i| i + 1).collect();
        let outs = rename_all(&algo, alloc.total(), &originals);
        let names: Vec<u64> = outs.iter().filter_map(|o| o.name()).collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len(), "duplicates under overflow");
        assert!(names.iter().all(|&m| m < 2 * k as u64));
    }

    #[test]
    fn small_k_skips_polylog_stage() {
        // At laptop scale the polylog fixpoint exceeds k(k+1)/2, so the
        // stage must be skipped (it would expand the range).
        let mut alloc = RegAlloc::new();
        let algo = EfficientRename::new(&mut alloc, 8, &RenameConfig::default());
        assert!(!algo.has_polylog_stage());
    }

    #[test]
    fn direct_pipeline_matches_paper_at_small_k() {
        let cfg = RenameConfig::default();
        let mut a1 = RegAlloc::new();
        let p1 = EfficientRename::with_pipeline(&mut a1, 4, &cfg, Pipeline::Paper);
        let mut a2 = RegAlloc::new();
        let p2 = EfficientRename::with_pipeline(&mut a2, 4, &cfg, Pipeline::Direct);
        assert_eq!(p1.num_registers(), p2.num_registers());
        assert_eq!(p1.name_bound(), p2.name_bound());
    }

    #[test]
    fn register_count_matches_allocator() {
        let mut alloc = RegAlloc::new();
        let algo = EfficientRename::new(&mut alloc, 8, &RenameConfig::default());
        assert_eq!(algo.num_registers(), alloc.total());
    }
}
