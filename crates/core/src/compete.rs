//! `Compete-For-Register` — Figure 1 of the paper.

use exsel_shm::{Ctx, RegAlloc, RegRange, Step, Word};

/// A bank of *name slots*, each backed by two registers: the placeholder
/// `HR` (a reservation) and the register `R` itself. A process wins slot
/// `s` by running the procedure of Figure 1; Lemma 1 guarantees
///
/// * **exclusive wins** — at most one contender ever wins a given slot, and
/// * **solo wins** — a contender running without opposition wins.
///
/// Under contention a slot may end up won by nobody; the renaming
/// algorithms absorb that through expansion.
///
/// ```
/// use exsel_core::SlotBank;
/// use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
///
/// let mut alloc = RegAlloc::new();
/// let bank = SlotBank::new(&mut alloc, 3);
/// let mem = ThreadedShm::new(alloc.total(), 1);
/// let ctx = Ctx::new(&mem, Pid(0));
/// assert!(bank.compete(ctx, 1, 42)?); // solo contender wins
/// assert!(!bank.compete(ctx, 1, 43)?); // slot already taken
/// # Ok::<(), exsel_shm::Crash>(())
/// ```
#[derive(Clone, Debug)]
pub struct SlotBank {
    regs: RegRange,
    slots: usize,
}

impl SlotBank {
    /// Reserves `slots` name slots (two registers each).
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, slots: usize) -> Self {
        SlotBank {
            regs: alloc.reserve(2 * slots),
            slots,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots
    }

    /// Whether the bank has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots == 0
    }

    /// Registers backing the bank (for register accounting).
    #[must_use]
    pub fn registers(&self) -> RegRange {
        self.regs
    }

    /// Procedure `Compete-For-Register` (Figure 1) on slot `slot`, with
    /// `token` standing for the process identity `p`. Tokens must be
    /// unique among the contenders of a bank. Returns whether the caller
    /// won the slot. At most 5 local steps.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-procedure.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn compete(&self, ctx: Ctx<'_>, slot: usize, token: u64) -> Step<bool> {
        assert!(slot < self.slots, "slot {slot} out of bank of {}", self.slots);
        let hr = self.regs.get(2 * slot);
        let r = self.regs.get(2 * slot + 1);

        // read: contention ← HR; if null then write HR ← p else exit
        if ctx.read(hr)?.is_null() {
            ctx.write(hr, token)?;
        } else {
            return Ok(false);
        }
        // read: contention ← R; if null then write R ← p else exit
        if ctx.read(r)?.is_null() {
            ctx.write(r, token)?;
        } else {
            return Ok(false);
        }
        // read: contention ← HR; if contention = p then win else exit
        Ok(ctx.read(hr)? == Word::Int(token))
    }

    /// The token that won slot `slot`, if any — i.e. the current contents
    /// of the slot's register `R` *provided* the win completed. Reading
    /// costs one local step. Used by collect operations and tests.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn winner(&self, ctx: Ctx<'_>, slot: usize) -> Step<Option<u64>> {
        assert!(slot < self.slots, "slot {slot} out of bank of {}", self.slots);
        Ok(ctx.read(self.regs.get(2 * slot + 1))?.as_int())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};

    fn bank(slots: usize, procs: usize) -> (SlotBank, ThreadedShm) {
        let mut alloc = RegAlloc::new();
        let b = SlotBank::new(&mut alloc, slots);
        (b, ThreadedShm::new(alloc.total(), procs))
    }

    #[test]
    fn solo_contender_wins() {
        let (b, mem) = bank(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        assert!(b.compete(ctx, 0, 7).unwrap());
        assert_eq!(b.winner(ctx, 0).unwrap(), Some(7));
        assert_eq!(b.winner(ctx, 1).unwrap(), None);
    }

    #[test]
    fn second_contender_loses_after_win() {
        let (b, mem) = bank(1, 2);
        assert!(b.compete(Ctx::new(&mem, Pid(0)), 0, 1).unwrap());
        assert!(!b.compete(Ctx::new(&mem, Pid(1)), 0, 2).unwrap());
        assert_eq!(b.winner(Ctx::new(&mem, Pid(0)), 0).unwrap(), Some(1));
    }

    #[test]
    fn win_takes_at_most_five_steps() {
        let (b, mem) = bank(1, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        b.compete(ctx, 0, 9).unwrap();
        assert!(ctx.steps() <= 5);
    }

    #[test]
    fn wins_are_exclusive_under_real_contention() {
        // Hammer one slot from many threads, many rounds: never 2 winners.
        for round in 0..50 {
            let (b, mem) = bank(1, 8);
            let wins: Vec<bool> = std::thread::scope(|s| {
                (0..8)
                    .map(|p| {
                        let (b, mem) = (&b, &mem);
                        s.spawn(move || b.compete(Ctx::new(mem, Pid(p)), 0, 100 + p as u64).unwrap())
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let winners = wins.iter().filter(|&&w| w).count();
            assert!(winners <= 1, "round {round}: {winners} winners on one slot");
        }
    }

    #[test]
    #[should_panic(expected = "out of bank")]
    fn out_of_range_slot_panics() {
        let (b, mem) = bank(1, 1);
        let _ = b.compete(Ctx::new(&mem, Pid(0)), 1, 5);
    }

    #[test]
    fn empty_bank() {
        let (b, _mem) = bank(0, 1);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
