//! `Compete-For-Register` — Figure 1 of the paper.

use exsel_shm::{
    drive, Ctx, Fingerprint, Pid, Poll, RegAlloc, RegId, RegRange, ShmOp, StateHasher, Step,
    StepMachine, TokenMap, Word,
};

/// A bank of *name slots*, each backed by two registers: the placeholder
/// `HR` (a reservation) and the register `R` itself. A process wins slot
/// `s` by running the procedure of Figure 1; Lemma 1 guarantees
///
/// * **exclusive wins** — at most one contender ever wins a given slot, and
/// * **solo wins** — a contender running without opposition wins.
///
/// Under contention a slot may end up won by nobody; the renaming
/// algorithms absorb that through expansion.
///
/// ```
/// use exsel_core::SlotBank;
/// use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
///
/// let mut alloc = RegAlloc::new();
/// let bank = SlotBank::new(&mut alloc, 3);
/// let mem = ThreadedShm::new(alloc.total(), 1);
/// let ctx = Ctx::new(&mem, Pid(0));
/// assert!(bank.compete(ctx, 1, 42)?); // solo contender wins
/// assert!(!bank.compete(ctx, 1, 43)?); // slot already taken
/// # Ok::<(), exsel_shm::Crash>(())
/// ```
#[derive(Clone, Debug)]
pub struct SlotBank {
    regs: RegRange,
    slots: usize,
}

impl SlotBank {
    /// Reserves `slots` name slots (two registers each).
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, slots: usize) -> Self {
        SlotBank {
            regs: alloc.reserve(2 * slots),
            slots,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots
    }

    /// Whether the bank has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots == 0
    }

    /// Registers backing the bank (for register accounting).
    #[must_use]
    pub fn registers(&self) -> RegRange {
        self.regs
    }

    /// Starts `Compete-For-Register` (Figure 1) on slot `slot` as a
    /// [`StepMachine`], with `token` standing for the process identity
    /// `p`. Tokens must be unique among the contenders of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn begin_compete(&self, slot: usize, token: u64) -> CompeteOp {
        assert!(
            slot < self.slots,
            "slot {slot} out of bank of {}",
            self.slots
        );
        CompeteOp {
            hr: self.regs.get(2 * slot),
            r: self.regs.get(2 * slot + 1),
            token,
            state: CompeteState::ReadHr,
        }
    }

    /// Procedure `Compete-For-Register` (Figure 1) on slot `slot`, with
    /// `token` standing for the process identity `p`. Tokens must be
    /// unique among the contenders of a bank. Returns whether the caller
    /// won the slot. At most 5 local steps. Blocking adapter over
    /// [`SlotBank::begin_compete`].
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes mid-procedure.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn compete(&self, ctx: Ctx<'_>, slot: usize, token: u64) -> Step<bool> {
        drive(&mut self.begin_compete(slot, token), ctx)
    }

    /// The token that won slot `slot`, if any — i.e. the current contents
    /// of the slot's register `R` *provided* the win completed. Reading
    /// costs one local step. Used by collect operations and tests.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn winner(&self, ctx: Ctx<'_>, slot: usize) -> Step<Option<u64>> {
        assert!(
            slot < self.slots,
            "slot {slot} out of bank of {}",
            self.slots
        );
        Ok(ctx.read(self.regs.get(2 * slot + 1))?.as_int())
    }
}

#[derive(Copy, Clone, Debug)]
enum CompeteState {
    /// read: contention ← HR; if null then write HR ← p else exit
    ReadHr,
    WriteHr,
    /// read: contention ← R; if null then write R ← p else exit
    ReadR,
    WriteR,
    /// read: contention ← HR; if contention = p then win else exit
    Verify,
}

/// In-progress `Compete-For-Register` — a [`StepMachine`] performing the
/// at-most-5 operations of Figure 1, one per step. `Ready(true)` means the
/// caller won the slot.
#[derive(Copy, Clone, Debug)]
pub struct CompeteOp {
    hr: RegId,
    r: RegId,
    token: u64,
    state: CompeteState,
}

impl StepMachine for CompeteOp {
    type Output = bool;

    fn op(&self) -> ShmOp {
        match self.state {
            CompeteState::ReadHr => ShmOp::Read(self.hr),
            CompeteState::WriteHr => ShmOp::Write(self.hr, Word::Int(self.token)),
            CompeteState::ReadR => ShmOp::Read(self.r),
            CompeteState::WriteR => ShmOp::Write(self.r, Word::Int(self.token)),
            CompeteState::Verify => ShmOp::Read(self.hr),
        }
    }

    fn peek(&self) -> (exsel_shm::OpKind, RegId) {
        use exsel_shm::OpKind::{Read, Write};
        match self.state {
            CompeteState::ReadHr | CompeteState::Verify => (Read, self.hr),
            CompeteState::WriteHr => (Write, self.hr),
            CompeteState::ReadR => (Read, self.r),
            CompeteState::WriteR => (Write, self.r),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<bool> {
        match self.state {
            CompeteState::ReadHr => {
                if input.is_null() {
                    self.state = CompeteState::WriteHr;
                    Poll::Pending
                } else {
                    Poll::Ready(false)
                }
            }
            CompeteState::WriteHr => {
                self.state = CompeteState::ReadR;
                Poll::Pending
            }
            CompeteState::ReadR => {
                if input.is_null() {
                    self.state = CompeteState::WriteR;
                    Poll::Pending
                } else {
                    Poll::Ready(false)
                }
            }
            CompeteState::WriteR => {
                self.state = CompeteState::Verify;
                Poll::Pending
            }
            CompeteState::Verify => Poll::Ready(*input == Word::Int(self.token)),
        }
    }

    fn reset(&mut self, _pid: Pid) {
        self.state = CompeteState::ReadHr;
    }
}

/// Complete control state of an in-flight compete: the phase tag, the
/// slot registers, and the (relabeled) token. Hashing `hr`/`r` keeps the
/// digest sound when contenders target different slots; in the symmetric
/// single-slot trials the reduced explorer runs, every contender shares
/// them, so pid-permuted states still collide.
impl Fingerprint for CompeteOp {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        hasher.write_u8(match self.state {
            CompeteState::ReadHr => 0,
            CompeteState::WriteHr => 1,
            CompeteState::ReadR => 2,
            CompeteState::WriteR => 3,
            CompeteState::Verify => 4,
        });
        hasher.write_u64(self.hr.0 as u64);
        hasher.write_u64(self.r.0 as u64);
        hasher.write_u64(map.relabel(self.token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};

    fn bank(slots: usize, procs: usize) -> (SlotBank, ThreadedShm) {
        let mut alloc = RegAlloc::new();
        let b = SlotBank::new(&mut alloc, slots);
        (b, ThreadedShm::new(alloc.total(), procs))
    }

    #[test]
    fn solo_contender_wins() {
        let (b, mem) = bank(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        assert!(b.compete(ctx, 0, 7).unwrap());
        assert_eq!(b.winner(ctx, 0).unwrap(), Some(7));
        assert_eq!(b.winner(ctx, 1).unwrap(), None);
    }

    #[test]
    fn second_contender_loses_after_win() {
        let (b, mem) = bank(1, 2);
        assert!(b.compete(Ctx::new(&mem, Pid(0)), 0, 1).unwrap());
        assert!(!b.compete(Ctx::new(&mem, Pid(1)), 0, 2).unwrap());
        assert_eq!(b.winner(Ctx::new(&mem, Pid(0)), 0).unwrap(), Some(1));
    }

    #[test]
    fn win_takes_at_most_five_steps() {
        let (b, mem) = bank(1, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        b.compete(ctx, 0, 9).unwrap();
        assert!(ctx.steps() <= 5);
    }

    #[test]
    fn wins_are_exclusive_under_real_contention() {
        // Hammer one slot from many threads, many rounds: never 2 winners.
        for round in 0..50 {
            let (b, mem) = bank(1, 8);
            let wins: Vec<bool> = std::thread::scope(|s| {
                (0..8)
                    .map(|p| {
                        let (b, mem) = (&b, &mem);
                        s.spawn(move || {
                            b.compete(Ctx::new(mem, Pid(p)), 0, 100 + p as u64).unwrap()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let winners = wins.iter().filter(|&&w| w).count();
            assert!(winners <= 1, "round {round}: {winners} winners on one slot");
        }
    }

    #[test]
    #[should_panic(expected = "out of bank")]
    fn out_of_range_slot_panics() {
        let (b, mem) = bank(1, 1);
        let _ = b.compete(Ctx::new(&mem, Pid(0)), 1, 5);
    }

    #[test]
    fn empty_bank() {
        let (b, _mem) = bank(0, 1);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
