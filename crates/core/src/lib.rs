//! Wait-free renaming algorithms from *Asynchronous Exclusive Selection*
//! (Chlebus & Kowalski, PODC 2008).
//!
//! Any `k ≤ n` processes holding unique *original names* in `[N]` contend
//! to acquire unique *new names* in a much smaller range `[M]`, using only
//! shared read/write registers, wait-free. The central technique: names
//! are nodes of a bipartite lossless expander; a process walks its
//! adjacency list competing for each visited node with the two-register
//! procedure of Figure 1 ([`SlotBank::compete`]); expansion guarantees a
//! majority of contenders meet no opposition.
//!
//! | Algorithm | Knows | Steps (paper) | `M` | Registers |
//! |---|---|---|---|---|
//! | [`Majority`] (Lemma 4) | `ℓ,N` | `O(log N)` | `O(ℓ·log(N/ℓ))`, ≥ half renamed | `O(M)` |
//! | [`BasicRename`] (Lemma 5) | `k,N` | `O(log k·log N)` | `O(k·log(N/k))` | `O(k·log(N/k))` |
//! | [`PolyLogRename`] (Thm 1) | `k,N` | `O(log k(log N + log k·log log N))` | `O(k)` | `O(k·log(N/k))` |
//! | [`EfficientRename`] (Thm 2) | `k` | `O(k)` | `2k−1` | `O(k²)` |
//! | [`AlmostAdaptive`] (Thm 3) | `N` | `O(log²k(log N + log k·log log N))` | `O(k)` | `O(n·log(N/n))` |
//! | [`AdaptiveRename`] (Thm 4) | — | `O(k)` | `8k − lg k − 1` | `O(n²)` |
//! | [`MoirAnderson`] (baseline \[41\]) | `k` | `O(k)` | `k(k+1)/2` | `O(k²)` |
//! | [`SnapshotRename`] (baseline \[14\]) | — | — | `2k−1` | `O(n)` |
//!
//! All algorithms implement [`Rename`] and run unchanged on the real
//! threads of `exsel_shm::ThreadedShm` or the deterministic scheduler of
//! `exsel-sim`.
//!
//! # Quickstart
//!
//! ```
//! use exsel_core::{AdaptiveRename, Outcome, Rename, RenameConfig};
//! use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm};
//!
//! // A fully adaptive instance for a system of up to 8 processes.
//! let mut alloc = RegAlloc::new();
//! let algo = AdaptiveRename::new(&mut alloc, 8, &RenameConfig::default());
//! let mem = ThreadedShm::new(alloc.total(), 8);
//!
//! // Three contenders with sparse original names rename concurrently.
//! let originals = [907_u64, 12, 444_444];
//! let names: Vec<u64> = std::thread::scope(|s| {
//!     originals
//!         .iter()
//!         .enumerate()
//!         .map(|(p, &orig)| {
//!             let (algo, mem) = (&algo, &mem);
//!             s.spawn(move || {
//!                 algo.rename(Ctx::new(mem, Pid(p)), orig)
//!                     .unwrap()
//!                     .expect_named()
//!             })
//!         })
//!         .collect::<Vec<_>>()
//!         .into_iter()
//!         .map(|h| h.join().unwrap())
//!         .collect()
//! });
//! // Names are exclusive and within the adaptive bound 8k − lg k − 1.
//! assert_eq!(names.iter().collect::<std::collections::BTreeSet<_>>().len(), 3);
//! assert!(names.iter().all(|&m| m >= 1 && m <= 8 * 3 - 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod almost_adaptive;
mod basic;
mod compete;
mod config;
mod efficient;
mod majority;
mod moir_anderson;
mod outcome;
mod polylog;
mod snapshot_rename;
mod step;

pub use adaptive::AdaptiveRename;
pub use almost_adaptive::AlmostAdaptive;
pub use basic::BasicRename;
pub use compete::{CompeteOp, SlotBank};
pub use config::RenameConfig;
pub use efficient::{EfficientOp, EfficientRename, Pipeline};
pub use majority::{Majority, MajorityOp};
pub use moir_anderson::{MoirAnderson, SplitWalkOp};
pub use outcome::{Outcome, Rename};
pub use polylog::PolyLogRename;
pub use snapshot_rename::{SnapshotRename, SnapshotRenameOp};
pub use step::{RenameMachine, StepRename};
