//! `PolyLog-Rename(k, N)` — Theorem 1: `(k,N)`-renaming with `M = O(k)`
//! in `O(log k (log N + log k · log log N))` local steps.

use exsel_shm::{drive, Ctx, Pid, RegAlloc, Step};

use crate::step::{Piped, RenameMachine, StepRename};
use crate::{BasicRename, Outcome, Rename, RenameConfig};

/// Epoch-iterated basic renaming.
///
/// Epoch `j` runs [`BasicRename`]`(k, N_j)` where `N_1 = N` and `N_{j+1}`
/// is the name bound of epoch `j`; every process acquires a new name in
/// *every* epoch, feeding it to the next, and keeps the name of the final
/// epoch. The bound chain contracts geometrically (`N_{j+1}/N_j ≤ 27/32`
/// in the paper's constants) until it stalls at the fixpoint
/// `M = Θ(k·log(M/k)) = O(k)`; construction stops at the first epoch whose
/// bound would not shrink any further.
#[derive(Clone, Debug)]
pub struct PolyLogRename {
    epochs: Vec<BasicRename>,
    capacity: usize,
    n_names: usize,
}

impl PolyLogRename {
    /// Builds an instance for original names in `[1, n_names]` and up to
    /// `capacity` contenders.
    ///
    /// # Panics
    ///
    /// Panics if `n_names == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n_names: usize, capacity: usize, cfg: &RenameConfig) -> Self {
        assert!(n_names > 0, "need at least one possible original name");
        assert!(capacity > 0, "capacity must be positive");
        let mut epochs = Vec::new();
        let mut nj = n_names;
        for j in 0.. {
            let epoch = BasicRename::new(alloc, nj, capacity, &cfg.child(0x10_0000 + j));
            let next = usize::try_from(epoch.name_bound()).expect("bound fits usize");
            epochs.push(epoch);
            if next >= nj {
                // The chain stalled: `nj` is (within a factor) the fixpoint
                // M = Θ(k log(M/k)); a further epoch could not shrink it.
                break;
            }
            nj = next;
        }
        PolyLogRename {
            epochs,
            capacity,
            n_names,
        }
    }

    /// The contender capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of original names `N`.
    #[must_use]
    pub fn num_names(&self) -> usize {
        self.n_names
    }

    /// Number of epochs (paper: `O(log log N)`).
    #[must_use]
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Registers used across all epochs.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.epochs.iter().map(BasicRename::num_registers).sum()
    }
}

impl Rename for PolyLogRename {
    /// The bound of the final epoch (the names a process keeps).
    fn name_bound(&self) -> u64 {
        self.epochs.last().expect("at least one epoch").name_bound()
    }

    /// Blocking adapter over [`StepRename::begin_rename`].
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_rename(ctx.pid(), original), ctx)
    }
}

impl StepRename for PolyLogRename {
    /// The epoch chain as a [`exsel_shm::StepMachine`]: every epoch's name
    /// feeds the next epoch; the final epoch's name is kept.
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(Piped::new(original, move |j, name| {
            self.epochs
                .get(j)
                .map(|epoch| epoch.begin_rename(pid, name))
        }))
    }

    /// Union of the epochs' footprints: a contender pipelines through a
    /// prefix of the epoch chain.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        for epoch in &self.epochs {
            epoch.footprint(pid, spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn rename_all(algo: &PolyLogRename, num_regs: usize, originals: &[u64]) -> Vec<Outcome> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (algo, mem) = (algo, &mem);
                    s.spawn(move || algo.rename(Ctx::new(mem, Pid(p)), orig).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn names_exclusive_and_all_named() {
        let mut alloc = RegAlloc::new();
        let k = 8;
        let algo = PolyLogRename::new(&mut alloc, 1 << 14, k, &RenameConfig::default());
        let originals: Vec<u64> = (0..k as u64).map(|i| (i + 1) * 1009).collect();
        let outs = rename_all(&algo, alloc.total(), &originals);
        let names: Vec<u64> = outs
            .iter()
            .map(|o| o.name().expect("within capacity: everyone named"))
            .collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), k);
        assert!(names.iter().all(|&m| m >= 1 && m <= algo.name_bound()));
    }

    #[test]
    fn final_bound_is_linear_in_k_not_n() {
        // M = O(k): growing N by 64x should not move the final bound much
        // (it is the fixpoint of k·log), while growing k moves it
        // proportionally.
        let cfg = RenameConfig::default();
        let bound = |n: usize, k: usize| {
            let mut alloc = RegAlloc::new();
            PolyLogRename::new(&mut alloc, n, k, &cfg).name_bound()
        };
        let b_small_n = bound(1 << 10, 8);
        let b_large_n = bound(1 << 16, 8);
        assert!(
            b_large_n <= b_small_n * 2,
            "bound grew with N: {b_small_n} -> {b_large_n}"
        );
        let b_double_k = bound(1 << 16, 16);
        assert!(b_double_k > b_large_n, "bound must grow with k");
        assert!(b_double_k <= b_large_n * 3, "bound superlinear in k");
    }

    #[test]
    fn epoch_chain_contracts() {
        let mut alloc = RegAlloc::new();
        let algo = PolyLogRename::new(&mut alloc, 1 << 16, 8, &RenameConfig::default());
        assert!(algo.num_epochs() >= 2, "large N should need several epochs");
        for pair in algo.epochs.windows(2) {
            assert!(pair[1].num_names() < pair[0].num_names());
        }
    }

    #[test]
    fn tiny_instance_single_epoch() {
        let mut alloc = RegAlloc::new();
        let algo = PolyLogRename::new(&mut alloc, 4, 2, &RenameConfig::default());
        assert_eq!(algo.num_epochs(), 1);
        let mem = ThreadedShm::new(alloc.total(), 1);
        assert!(algo.rename(Ctx::new(&mem, Pid(0)), 3).unwrap().is_named());
    }

    #[test]
    fn register_count_matches_allocator() {
        let mut alloc = RegAlloc::new();
        let algo = PolyLogRename::new(&mut alloc, 1 << 12, 4, &RenameConfig::default());
        assert_eq!(algo.num_registers(), alloc.total());
    }
}
