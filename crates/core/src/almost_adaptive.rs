//! `Almost-Adaptive(N)` — Theorem 3: `N`-renaming with unknown contention
//! `k`, new names of magnitude `O(k)`, in
//! `O(log²k (log N + log k · log log N))` local steps with
//! `O(n·log(N/n))` registers.

use exsel_shm::{drive, Ctx, Pid, RegAlloc, Step};

use crate::step::{RenameMachine, Staged, StepRename};
use crate::{Outcome, PolyLogRename, Rename, RenameConfig};

/// Doubling over [`PolyLogRename`]: phase `i` runs
/// `PolyLog-Rename(2ⁱ, N)` on its own registers and name range; a process
/// walks phases `0, 1, …` with its *original* name until one names it. At
/// most `k` contenders are still active when phase `⌈lg k⌉` starts, whose
/// capacity suffices, so every contender is named by then and the total
/// name range is `O(Σ_{i ≤ ⌈lg k⌉} 2ⁱ) = O(k)`.
#[derive(Clone, Debug)]
pub struct AlmostAdaptive {
    phases: Vec<PolyLogRename>,
    offsets: Vec<u64>,
    n_names: usize,
    n_processes: usize,
}

impl AlmostAdaptive {
    /// Builds an instance for original names in `[1, n_names]` in a system
    /// of up to `n_processes` processes (phases go up to capacity
    /// `2^⌈lg n⌉ ≥ n`).
    ///
    /// # Panics
    ///
    /// Panics if `n_names == 0` or `n_processes == 0`.
    #[must_use]
    pub fn new(
        alloc: &mut RegAlloc,
        n_names: usize,
        n_processes: usize,
        cfg: &RenameConfig,
    ) -> Self {
        assert!(n_names > 0, "need at least one possible original name");
        assert!(n_processes > 0, "need at least one process");
        let top = n_processes.next_power_of_two().ilog2() as usize;
        let mut phases = Vec::with_capacity(top + 1);
        let mut offsets = Vec::with_capacity(top + 1);
        let mut offset = 0u64;
        for i in 0..=top {
            let phase =
                PolyLogRename::new(alloc, n_names, 1 << i, &cfg.child(0x30_0000 + i as u64));
            offsets.push(offset);
            offset += phase.name_bound();
            phases.push(phase);
        }
        AlmostAdaptive {
            phases,
            offsets,
            n_names,
            n_processes,
        }
    }

    /// The number of original names `N`.
    #[must_use]
    pub fn num_names(&self) -> usize {
        self.n_names
    }

    /// The system size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n_processes
    }

    /// The largest name that contention `k` can produce — `O(k)`: the end
    /// of phase `⌈lg k⌉`'s name range. This is the quantity Theorem 3
    /// bounds; experiments compare it (and observed names) against `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > num_processes()` (rounded up to the next
    /// power of two).
    #[must_use]
    pub fn name_bound_for_contention(&self, k: usize) -> u64 {
        assert!(k > 0, "contention must be positive");
        let phase = k.next_power_of_two().ilog2() as usize;
        assert!(
            phase < self.phases.len(),
            "contention {k} beyond system size"
        );
        self.offsets[phase] + self.phases[phase].name_bound()
    }

    /// Registers used across all phases (paper: `O(n·log(N/n))`).
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.phases.iter().map(PolyLogRename::num_registers).sum()
    }
}

impl Rename for AlmostAdaptive {
    fn name_bound(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0) + self.phases.last().map_or(0, |p| p.name_bound())
    }

    /// Blocking adapter over [`StepRename::begin_rename`].
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_rename(ctx.pid(), original), ctx)
    }
}

impl StepRename for AlmostAdaptive {
    /// The doubling walk as a [`exsel_shm::StepMachine`]: phase `i` runs
    /// `PolyLog-Rename(2^i, N)` on the shared `original`, offset into its
    /// own name interval.
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(Staged::new(move |i| {
            self.phases
                .get(i)
                .map(|phase| (phase.begin_rename(pid, original), self.offsets[i]))
        }))
    }

    /// Union of the phases' footprints: the doubling walk may reach any
    /// phase.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        for phase in &self.phases {
            phase.footprint(pid, spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn rename_all(algo: &AlmostAdaptive, num_regs: usize, originals: &[u64]) -> Vec<u64> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (algo, mem) = (algo, &mem);
                    s.spawn(move || {
                        algo.rename(Ctx::new(mem, Pid(p)), orig)
                            .unwrap()
                            .expect_named()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn low_contention_uses_low_names() {
        let mut alloc = RegAlloc::new();
        let algo = AlmostAdaptive::new(&mut alloc, 1 << 12, 16, &RenameConfig::default());
        let k = 3;
        let originals: Vec<u64> = (0..k as u64).map(|i| (i + 1) * 999).collect();
        let names = rename_all(&algo, alloc.total(), &originals);
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), k);
        let cap = algo.name_bound_for_contention(k);
        assert!(
            names.iter().all(|&m| m <= cap),
            "contention {k} produced names {names:?} beyond adaptive bound {cap}"
        );
        // And the adaptive bound is far below the full-system bound.
        assert!(cap < algo.name_bound());
    }

    #[test]
    fn full_contention_all_named() {
        let mut alloc = RegAlloc::new();
        let n = 8;
        let algo = AlmostAdaptive::new(&mut alloc, 256, n, &RenameConfig::default());
        let originals: Vec<u64> = (0..n as u64).map(|i| i * 17 + 5).collect();
        let names = rename_all(&algo, alloc.total(), &originals);
        assert_eq!(names.iter().collect::<BTreeSet<_>>().len(), n);
    }

    #[test]
    fn bound_for_contention_monotone() {
        let mut alloc = RegAlloc::new();
        let algo = AlmostAdaptive::new(&mut alloc, 1 << 10, 32, &RenameConfig::default());
        let mut prev = 0;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let b = algo.name_bound_for_contention(k);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "beyond system size")]
    fn contention_beyond_system_panics() {
        let mut alloc = RegAlloc::new();
        let algo = AlmostAdaptive::new(&mut alloc, 64, 4, &RenameConfig::default());
        let _ = algo.name_bound_for_contention(64);
    }

    #[test]
    fn phase_count_is_log_n() {
        let mut alloc = RegAlloc::new();
        let algo = AlmostAdaptive::new(&mut alloc, 128, 16, &RenameConfig::default());
        assert_eq!(algo.phases.len(), 5); // capacities 1,2,4,8,16
    }
}
