//! Classic snapshot-based `(2k−1)`-renaming (Attiya, Bar-Noy, Dolev,
//! Peleg, Reischuk — JACM 1990, adapted to shared memory as in Attiya &
//! Welch). This is the substitute for the Attiya–Fouren `AF(k, N)` stage
//! of `Efficient-Rename`: identical interface and identical name bound
//! `M = 2k−1` (see `DESIGN.md`, substitution notes).
//!
//! Each participant repeatedly publishes `(token, proposal)` in an atomic
//! snapshot and scans: if its proposal is unique among the published
//! proposals it decides; otherwise it re-proposes the `r`-th smallest
//! integer not proposed by anyone else, where `r` is the rank of its token
//! among all published tokens. With `k` participants ranks are at most `k`
//! and at most `k−1` foreign proposals are skipped, so decided names never
//! exceed `2k−1`.

use std::sync::Arc;

use exsel_shm::snapshot::{ScanOp, UpdateOp};
use exsel_shm::{drive, Ctx, Pid, Poll, RegAlloc, ShmOp, Snapshot, Step, StepMachine, Word};

use crate::step::{RenameMachine, StepRename};
use crate::{Outcome, Rename};

/// Snapshot-based wait-free renaming with the optimal bound `M = 2k−1`
/// for `k` participants.
#[derive(Clone, Debug)]
pub struct SnapshotRename {
    snap: Snapshot,
    /// Names above this bound are never decided; a process whose proposal
    /// would exceed it returns [`Outcome::Failed`] instead (used by
    /// `Adaptive-Rename` to cap each phase's name range under overflow).
    bound: Option<u64>,
    /// Bail-out on pathological schedules in *overloaded* instances; within
    /// capacity the algorithm terminates long before this.
    max_iterations: u64,
}

impl SnapshotRename {
    /// Builds an instance with one snapshot component per participant
    /// slot. Callers assign each participant a distinct `slot` in
    /// `[0, slots)` (e.g. its process index, or a name from a previous
    /// renaming stage).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, slots: usize) -> Self {
        SnapshotRename {
            snap: Snapshot::new(alloc, slots),
            bound: None,
            max_iterations: 64 * (slots as u64 + 2),
        }
    }

    /// Caps emitted names at `bound`; proposals beyond it yield
    /// [`Outcome::Failed`].
    #[must_use]
    pub fn with_bound(mut self, bound: u64) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Number of participant slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.snap.num_slots()
    }

    /// Registers used: one per slot (plus none beyond the snapshot).
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.snap.registers().len()
    }

    /// The backing snapshot object (introspection — e.g. reading its
    /// record-recycling arena telemetry after a sweep).
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// Renames with an explicit participant slot. `token` must be unique
    /// among participants (original names qualify); `slot` must be unique
    /// too and is this participant's snapshot component.
    ///
    /// # Errors
    ///
    /// Returns [`exsel_shm::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= num_slots()`.
    pub fn rename_slot(&self, ctx: Ctx<'_>, slot: usize, token: u64) -> Step<Outcome> {
        drive(&mut self.begin_rename_slot(slot, token), ctx)
    }

    /// Starts [`SnapshotRename::rename_slot`] as a [`StepMachine`]: an
    /// update/scan round trip per proposal, one shared-memory operation
    /// per step.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= num_slots()`.
    #[must_use]
    pub fn begin_rename_slot(&self, slot: usize, token: u64) -> SnapshotRenameOp<'_> {
        assert!(slot < self.num_slots(), "slot {slot} out of range");
        SnapshotRenameOp {
            algo: self,
            slot,
            token,
            proposal: 1,
            iterations: 0,
            update: self.snap.begin_update(slot, Word::Pair(token, 1)),
            scan: self.snap.begin_scan(),
            phase: SrPhase::Update,
            tokens: Vec::new(),
            foreign_proposals: Vec::new(),
        }
    }
}

/// Which of the two owned sub-machines is running.
#[derive(Clone, Copy, Debug)]
enum SrPhase {
    Update,
    Scan,
}

/// In-progress snapshot-based renaming — a [`StepMachine`] running the
/// propose/scan/re-propose loop one shared-memory operation per step.
///
/// The update and scan sub-machines are **owned and re-armed in place**
/// (like the unbounded-naming `AcquireOp`): a re-proposal round calls
/// [`UpdateOp::rearm`]/[`ScanOp::restart`] instead of constructing fresh
/// ops, and the decide scratch (token/proposal sort buffers) keeps its
/// capacity across rounds — so a pooled steady-state trial allocates
/// nothing (`tests/alloc_free.rs`).
#[derive(Clone, Debug)]
pub struct SnapshotRenameOp<'a> {
    algo: &'a SnapshotRename,
    slot: usize,
    token: u64,
    proposal: u64,
    /// Completed propose/scan rounds.
    iterations: u64,
    update: UpdateOp,
    scan: ScanOp,
    phase: SrPhase,
    /// Decide scratch: published tokens of the last view, sorted.
    tokens: Vec<u64>,
    /// Decide scratch: other participants' proposals, sorted.
    foreign_proposals: Vec<u64>,
}

impl SnapshotRenameOp<'_> {
    /// Digests a completed scan: decide, or compute the next proposal.
    fn decide(&mut self, view: &Arc<[Word]>) -> Poll<Outcome> {
        self.tokens.clear();
        self.foreign_proposals.clear();
        let mut duplicate = false;
        for (i, w) in view.iter().enumerate() {
            if let Some((t, p)) = w.as_pair() {
                self.tokens.push(t);
                if i != self.slot {
                    self.foreign_proposals.push(p);
                    if p == self.proposal {
                        duplicate = true;
                    }
                }
            }
        }
        if !duplicate {
            // Names above the cap are never decided (a degenerate bound
            // below the initial proposal fails here, after one round).
            if self.algo.bound.is_some_and(|bound| self.proposal > bound) {
                return Poll::Ready(Outcome::Failed);
            }
            return Poll::Ready(Outcome::Named(self.proposal));
        }
        // Re-propose: the r-th smallest positive integer free of foreign
        // proposals, r = rank of our token.
        self.tokens.sort_unstable();
        let rank = self
            .tokens
            .iter()
            .position(|&t| t == self.token)
            .expect("own token in view")
            + 1;
        self.foreign_proposals.sort_unstable();
        self.proposal = nth_free(&self.foreign_proposals, rank);

        self.iterations += 1;
        if self.iterations >= self.algo.max_iterations {
            // Unreachable within capacity; in overloaded instances we bail
            // out like a crashed process (safe: wait-free algorithms
            // tolerate it).
            return Poll::Ready(Outcome::Failed);
        }
        if let Some(bound) = self.algo.bound {
            if self.proposal > bound {
                return Poll::Ready(Outcome::Failed);
            }
        }
        self.update
            .rearm(self.slot, Word::Pair(self.token, self.proposal));
        self.phase = SrPhase::Update;
        Poll::Pending
    }
}

impl StepMachine for SnapshotRenameOp<'_> {
    type Output = Outcome;

    fn op(&self) -> ShmOp {
        match self.phase {
            SrPhase::Update => self.update.op(),
            SrPhase::Scan => self.scan.op(),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<Outcome> {
        match self.phase {
            SrPhase::Update => {
                if let Poll::Ready(()) = self.update.advance(input) {
                    // In-trial restart keeps the scanner's generation
                    // caches (valid while writer sequence numbers grow).
                    self.scan.restart();
                    self.phase = SrPhase::Scan;
                }
                Poll::Pending
            }
            SrPhase::Scan => match self.scan.advance(input) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(view) => self.decide(&view),
            },
        }
    }

    fn peek(&self) -> (exsel_shm::OpKind, exsel_shm::RegId) {
        match self.phase {
            SrPhase::Update => self.update.peek(),
            SrPhase::Scan => self.scan.peek(),
        }
    }

    fn reset(&mut self, pid: Pid) {
        // The slot is part of the machine's construction (`pid.0` when
        // started through `StepRename::begin_rename`, the caller's slot
        // otherwise) and stays; only the execution state re-arms. The
        // sub-machines reset fully (cross-trial: writer sequence numbers
        // restart, so scan generation caches must drop), then the update
        // is re-armed to the first proposal.
        self.proposal = 1;
        self.iterations = 0;
        self.update.reset(pid);
        self.update.rearm(self.slot, Word::Pair(self.token, 1));
        self.scan.reset(pid);
        self.phase = SrPhase::Update;
    }
}

/// The `rank`-th smallest positive integer not contained in `taken`
/// (`taken` sorted ascending, may contain duplicates).
fn nth_free(taken: &[u64], rank: usize) -> u64 {
    let mut remaining = rank as u64;
    let mut candidate = 1u64;
    let mut i = 0;
    loop {
        while i < taken.len() && taken[i] < candidate {
            i += 1;
        }
        let is_taken = i < taken.len() && taken[i] == candidate;
        if !is_taken {
            remaining -= 1;
            if remaining == 0 {
                return candidate;
            }
        }
        candidate += 1;
    }
}

impl Rename for SnapshotRename {
    /// Without an explicit bound this is `2·slots − 1` (the worst case
    /// with every slot occupied).
    fn name_bound(&self) -> u64 {
        self.bound.unwrap_or(2 * self.num_slots() as u64 - 1)
    }

    /// Renames using the caller's process id as its slot; requires
    /// `num_slots() >= num_processes`.
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        self.rename_slot(ctx, ctx.pid().0, original)
    }
}

impl StepRename for SnapshotRename {
    /// Uses `pid` as the participant slot, exactly like the blocking
    /// [`Rename::rename`].
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(self.begin_rename_slot(pid.0, original))
    }

    /// The single-writer discipline of the snapshot literature, made
    /// checkable: scans read every component, but updates land only in
    /// the caller's own slot — which under [`StepRename::begin_rename`]
    /// is `pid`, so that slot is declared exclusively owned. (Pids
    /// beyond the slot count cannot begin a machine and declare reads
    /// only.)
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        let regs = self.snap.registers();
        let b = spec.phase("snapshot.slots").reads(regs);
        if pid.0 < self.num_slots() {
            b.writes_excl(regs.slice(pid.0, 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    #[test]
    fn nth_free_basics() {
        assert_eq!(nth_free(&[], 1), 1);
        assert_eq!(nth_free(&[], 3), 3);
        assert_eq!(nth_free(&[1, 2, 3], 1), 4);
        assert_eq!(nth_free(&[2], 1), 1);
        assert_eq!(nth_free(&[2], 2), 3);
        assert_eq!(nth_free(&[1, 1, 3], 2), 4); // duplicates collapse
        assert_eq!(nth_free(&[5], 5), 6);
    }

    #[test]
    fn solo_participant_gets_name_one() {
        let mut alloc = RegAlloc::new();
        let algo = SnapshotRename::new(&mut alloc, 4);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let out = algo.rename_slot(Ctx::new(&mem, Pid(0)), 2, 77).unwrap();
        assert_eq!(out, Outcome::Named(1));
    }

    #[test]
    fn k_participants_within_2k_minus_1() {
        for k in [2usize, 3, 5, 8] {
            let mut alloc = RegAlloc::new();
            let algo = SnapshotRename::new(&mut alloc, k);
            let mem = ThreadedShm::new(alloc.total(), k);
            let names: Vec<u64> = std::thread::scope(|s| {
                (0..k)
                    .map(|p| {
                        let (algo, mem) = (&algo, &mem);
                        s.spawn(move || {
                            algo.rename_slot(Ctx::new(mem, Pid(p)), p, 500 + p as u64)
                                .unwrap()
                                .expect_named()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let set: BTreeSet<u64> = names.iter().copied().collect();
            assert_eq!(set.len(), k, "k={k}: duplicates in {names:?}");
            assert!(
                names.iter().all(|&m| m >= 1 && m < 2 * k as u64),
                "k={k}: name beyond 2k-1 in {names:?}"
            );
        }
    }

    #[test]
    fn degenerate_zero_bound_fails_cleanly() {
        // A bound below the initial proposal can never name anyone; it
        // must fail (never decide a name above the cap), not panic.
        let mut alloc = RegAlloc::new();
        let algo = SnapshotRename::new(&mut alloc, 2).with_bound(0);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let out = algo.rename_slot(Ctx::new(&mem, Pid(0)), 0, 5).unwrap();
        assert_eq!(out, Outcome::Failed);
    }

    #[test]
    fn bound_turns_overflow_into_failed() {
        let mut alloc = RegAlloc::new();
        let algo = SnapshotRename::new(&mut alloc, 4).with_bound(1);
        let mem = ThreadedShm::new(alloc.total(), 2);
        // Occupy name 1 via slot 0…
        let first = algo.rename_slot(Ctx::new(&mem, Pid(0)), 0, 10).unwrap();
        assert_eq!(first, Outcome::Named(1));
        // …then a second participant must fail rather than exceed bound 1.
        let second = algo.rename_slot(Ctx::new(&mem, Pid(1)), 1, 20).unwrap();
        assert_eq!(second, Outcome::Failed);
    }

    #[test]
    fn rename_trait_uses_pid_slot() {
        let mut alloc = RegAlloc::new();
        let algo = SnapshotRename::new(&mut alloc, 3);
        let mem = ThreadedShm::new(alloc.total(), 3);
        let names: Vec<u64> = std::thread::scope(|s| {
            (0..3)
                .map(|p| {
                    let (algo, mem) = (&algo, &mem);
                    s.spawn(move || {
                        algo.rename(Ctx::new(mem, Pid(p)), 900 + p as u64)
                            .unwrap()
                            .expect_named()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(names.iter().collect::<BTreeSet<_>>().len(), 3);
        assert!(names.iter().all(|&m| m <= algo.name_bound()));
    }

    #[test]
    fn abandoned_participant_does_not_block_others() {
        // Slot 0 publishes a proposal and then "crashes" (never proceeds).
        // Others must still decide, treating the stale proposal as taken.
        let mut alloc = RegAlloc::new();
        let algo = SnapshotRename::new(&mut alloc, 3);
        let mem = ThreadedShm::new(alloc.total(), 3);
        // Simulate the stale participant: a raw update of (token=1, prop=1).
        algo.snap
            .update(Ctx::new(&mem, Pid(0)), 0, Word::Pair(1, 1))
            .unwrap();
        let names: Vec<u64> = std::thread::scope(|s| {
            (1..3)
                .map(|p| {
                    let (algo, mem) = (&algo, &mem);
                    s.spawn(move || {
                        algo.rename_slot(Ctx::new(mem, Pid(p)), p, 100 + p as u64)
                            .unwrap()
                            .expect_named()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let set: BTreeSet<u64> = names.iter().copied().collect();
        assert_eq!(set.len(), 2);
        assert!(!names.contains(&1), "stale proposal 1 must be avoided");
    }
}
