//! `Adaptive-Rename` — Theorem 4: fully adaptive renaming (neither `k` nor
//! `N` known) with `M = 8k − lg k − 1`, `O(k)` local steps and `O(n²)`
//! registers.

use exsel_shm::{drive, Ctx, Pid, RegAlloc, Step};

use crate::step::{RenameMachine, Staged, StepRename};
use crate::{EfficientRename, Outcome, Rename, RenameConfig};

/// Doubling over [`EfficientRename`]: phase `i` runs
/// `Efficient-Rename(2ⁱ)` on its own registers and its own name interval
/// of length `2^{i+1} − 1`. A process walks phases `0, 1, …` with its
/// original name until one names it. With true contention `k`, at most
/// `k ≤ 2^{⌈lg k⌉}` processes reach phase `⌈lg k⌉`, which then names all
/// of them; the names consumed total
/// `Σ_{i ≤ ⌈lg k⌉} (2^{i+1} − 1) ≤ 8k − lg k − 1`.
#[derive(Clone, Debug)]
pub struct AdaptiveRename {
    phases: Vec<EfficientRename>,
    offsets: Vec<u64>,
    n_processes: usize,
}

impl AdaptiveRename {
    /// Builds an instance for a system of up to `n_processes` processes
    /// (phases go up to capacity `2^⌈lg n⌉ ≥ n`).
    ///
    /// # Panics
    ///
    /// Panics if `n_processes == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n_processes: usize, cfg: &RenameConfig) -> Self {
        assert!(n_processes > 0, "need at least one process");
        let top = n_processes.next_power_of_two().ilog2() as usize;
        let mut phases = Vec::with_capacity(top + 1);
        let mut offsets = Vec::with_capacity(top + 1);
        let mut offset = 0u64;
        for i in 0..=top {
            let phase = EfficientRename::new(alloc, 1 << i, &cfg.child(0x40_0000 + i as u64));
            offsets.push(offset);
            offset += phase.name_bound(); // 2^{i+1} − 1
            phases.push(phase);
        }
        AdaptiveRename {
            phases,
            offsets,
            n_processes,
        }
    }

    /// The system size `n`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n_processes
    }

    /// Theorem 4's bound on names under true contention `k`:
    /// `8k − lg k − 1` (names through phase `⌈lg k⌉`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or exceeds the system size (rounded up to a
    /// power of two).
    #[must_use]
    pub fn name_bound_for_contention(&self, k: usize) -> u64 {
        assert!(k > 0, "contention must be positive");
        let phase = k.next_power_of_two().ilog2() as usize;
        assert!(
            phase < self.phases.len(),
            "contention {k} beyond system size"
        );
        self.offsets[phase] + self.phases[phase].name_bound()
    }

    /// Registers used across all phases (paper: `O(n²)`).
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.phases.iter().map(EfficientRename::num_registers).sum()
    }
}

impl Rename for AdaptiveRename {
    fn name_bound(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0) + self.phases.last().map_or(0, |p| p.name_bound())
    }

    /// Blocking adapter over [`StepRename::begin_rename`].
    fn rename(&self, ctx: Ctx<'_>, original: u64) -> Step<Outcome> {
        drive(&mut self.begin_rename(ctx.pid(), original), ctx)
    }
}

impl StepRename for AdaptiveRename {
    /// The doubling walk as a [`exsel_shm::StepMachine`]: phase `i` runs
    /// `Efficient-Rename(2^i)` on the shared `original`, offset into its
    /// own name interval.
    fn begin_rename<'a>(&'a self, pid: Pid, original: u64) -> RenameMachine<'a> {
        Box::new(Staged::new(move |i| {
            self.phases
                .get(i)
                .map(|phase| (phase.begin_rename(pid, original), self.offsets[i]))
        }))
    }

    /// Union of the phases' footprints: the doubling walk may reach any
    /// phase.
    fn footprint(&self, pid: Pid, spec: &mut exsel_shm::FootprintSpec) {
        for phase in &self.phases {
            phase.footprint(pid, spec);
        }
    }
}

/// Checks Theorem 4's closed form: the cumulative ranges indeed satisfy
/// `Σ_{i=0}^{⌈lg k⌉} (2^{i+1} − 1) = 2^{⌈lg k⌉+2} − ⌈lg k⌉ − 3 ≤ 8k − lg k − 1`.
#[cfg(test)]
fn closed_form_bound(k: usize) -> u64 {
    let i_star = k.next_power_of_two().ilog2() as u64;
    (1u64 << (i_star + 2)) - i_star - 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsel_shm::{Pid, ThreadedShm};
    use std::collections::BTreeSet;

    fn rename_all(algo: &AdaptiveRename, num_regs: usize, originals: &[u64]) -> Vec<u64> {
        let mem = ThreadedShm::new(num_regs, originals.len());
        std::thread::scope(|s| {
            originals
                .iter()
                .enumerate()
                .map(|(p, &orig)| {
                    let (algo, mem) = (algo, &mem);
                    s.spawn(move || {
                        algo.rename(Ctx::new(mem, Pid(p)), orig)
                            .unwrap()
                            .expect_named()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn names_within_8k_bound_for_all_contentions() {
        let mut alloc = RegAlloc::new();
        let algo = AdaptiveRename::new(&mut alloc, 8, &RenameConfig::default());
        for k in [1usize, 2, 3, 5, 8] {
            // Fresh memory per contention level (one-shot algorithm).
            let originals: Vec<u64> = (0..k as u64).map(|i| (i + 1) * 7919).collect();
            let names = rename_all(&algo, alloc.total(), &originals);
            let set: BTreeSet<u64> = names.iter().copied().collect();
            assert_eq!(set.len(), k, "k={k}");
            let bound = algo.name_bound_for_contention(k);
            assert!(
                names.iter().all(|&m| m <= bound),
                "k={k}: names {names:?} beyond {bound}"
            );
            assert!(
                bound <= 8 * k as u64,
                "k={k}: structural bound {bound} above 8k"
            );
        }
    }

    #[test]
    fn structural_bound_matches_closed_form() {
        let mut alloc = RegAlloc::new();
        let algo = AdaptiveRename::new(&mut alloc, 32, &RenameConfig::default());
        for k in 1..=32usize {
            assert_eq!(
                algo.name_bound_for_contention(k),
                closed_form_bound(k),
                "k={k}"
            );
        }
    }

    #[test]
    fn closed_form_is_at_most_8k_minus_lgk_minus_1() {
        for k in 1..=1024usize {
            let lg_k = (k as f64).log2().floor() as u64;
            assert!(
                closed_form_bound(k) < 8 * k as u64 - lg_k,
                "k={k}: {} > 8k − lg k − 1",
                closed_form_bound(k)
            );
        }
    }

    #[test]
    fn original_names_can_be_arbitrary_u64() {
        let mut alloc = RegAlloc::new();
        let algo = AdaptiveRename::new(&mut alloc, 4, &RenameConfig::default());
        let originals = [u64::MAX, 1, u64::MAX / 3];
        let names = rename_all(&algo, alloc.total(), &originals);
        assert_eq!(names.iter().collect::<BTreeSet<_>>().len(), 3);
    }

    #[test]
    fn single_process_system() {
        let mut alloc = RegAlloc::new();
        let algo = AdaptiveRename::new(&mut alloc, 1, &RenameConfig::default());
        let mem = ThreadedShm::new(alloc.total(), 1);
        let out = algo.rename(Ctx::new(&mem, Pid(0)), 42).unwrap();
        assert_eq!(out, Outcome::Named(1));
    }
}
