//! Deterministic step-bound checks: each algorithm's worst-case local
//! steps, measured exactly on the simulator, stay within the structural
//! bound its analysis promises (with explicit constants, not just
//! O-shapes).

use exsel_core::{
    BasicRename, EfficientRename, Majority, MoirAnderson, PolyLogRename, Rename, RenameConfig,
};
use exsel_shm::RegAlloc;
use exsel_sim::{policy::RandomPolicy, SimBuilder};

fn worst_steps<R: Rename>(algo: &R, num_regs: usize, originals: &[u64], seeds: u64) -> u64 {
    let mut worst = 0;
    for seed in 0..seeds {
        let outcome = SimBuilder::new(num_regs, Box::new(RandomPolicy::new(seed)))
            .run(originals.len(), |ctx| {
                algo.rename(ctx, originals[ctx.pid().0]).map(|o| o.name())
            });
        worst = worst.max(outcome.max_steps());
    }
    worst
}

#[test]
fn moir_anderson_at_most_4k_steps() {
    for k in [1usize, 2, 4, 8, 16] {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let originals: Vec<u64> = (1..=k as u64).collect();
        let worst = worst_steps(&algo, alloc.total(), &originals, 10);
        assert!(worst <= 4 * k as u64, "k={k}: {worst} > 4k");
    }
}

#[test]
fn majority_at_most_five_delta_steps() {
    let cfg = RenameConfig::default();
    for (n, l) in [(256usize, 4usize), (1024, 8), (4096, 16)] {
        let mut alloc = RegAlloc::new();
        let algo = Majority::new(&mut alloc, n, l, &cfg);
        let originals: Vec<u64> = (0..l).map(|i| (i * n / l) as u64 + 1).collect();
        let worst = worst_steps(&algo, alloc.total(), &originals, 8);
        let bound = 5 * algo.graph().degree() as u64;
        assert!(worst <= bound, "(n={n},l={l}): {worst} > 5Δ = {bound}");
    }
}

#[test]
fn basic_rename_within_sum_of_stage_walks() {
    let cfg = RenameConfig::default();
    for (n, k) in [(256usize, 4usize), (1024, 8)] {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, n, k, &cfg);
        let originals: Vec<u64> = (0..k).map(|i| (i * n / k) as u64 + 1).collect();
        let worst = worst_steps(&algo, alloc.total(), &originals, 8);
        // Every stage walk is ≤ 5Δ_stage; the per-stage degree is at most
        // the capacity-1 stage's degree.
        let mut stage_bound = 0u64;
        for i in 0..algo.num_stages() {
            let mut probe = RegAlloc::new();
            let stage = Majority::new(&mut probe, n, (k >> i).max(1), &cfg.child(i as u64));
            stage_bound += 5 * stage.graph().degree() as u64;
        }
        assert!(
            worst <= stage_bound,
            "(n={n},k={k}): {worst} > Σ 5Δ = {stage_bound}"
        );
    }
}

#[test]
fn polylog_steps_flat_in_n_at_fixed_k() {
    // Theorem 1's point: the step cost grows with log N, not N. Measure
    // at N and 16N and require less-than-doubling.
    let cfg = RenameConfig::default();
    let k = 4;
    let steps_at = |n: usize| {
        let mut alloc = RegAlloc::new();
        let algo = PolyLogRename::new(&mut alloc, n, k, &cfg);
        let originals: Vec<u64> = (0..k).map(|i| (i * n / k) as u64 + 1).collect();
        worst_steps(&algo, alloc.total(), &originals, 5)
    };
    let near = steps_at(1 << 10);
    let far = steps_at(1 << 14);
    assert!(
        far <= near * 2,
        "polylog steps grew superlogarithmically: {near} -> {far}"
    );
}

#[test]
fn efficient_rename_steps_do_not_depend_on_original_magnitude() {
    let cfg = RenameConfig::default();
    let k = 4;
    let run_with = |originals: &[u64]| {
        let mut alloc = RegAlloc::new();
        let algo = EfficientRename::new(&mut alloc, k, &cfg);
        worst_steps(&algo, alloc.total(), originals, 5)
    };
    let small = run_with(&[1, 2, 3, 4]);
    let huge = run_with(&[u64::MAX, u64::MAX / 2, u64::MAX / 3, u64::MAX / 5]);
    assert_eq!(
        small, huge,
        "k-renaming steps varied with the magnitude of original names"
    );
}
